//! Regression: adversarial tick-gaming across the whole policy registry —
//! the test twin of `experiments adversarial`.
//!
//! One strategic source phase-locks its bursts against the shedding tick
//! ([`RatePattern::Adversarial`]): it dumps its entire per-tick volume in
//! the first emission beat after each tick boundary, so by the time the
//! next tick fires its batches are the oldest in the buffer. Long-run
//! demand is identical to its 7 honest steady peers. Under every
//! registered policy the run must complete and shed hard; for the
//! SIC-aware (`balance-sic*`) policies the strategic source's SIC
//! advantage over the honest mean must stay within [`EPSILON`] — timing
//! must buy it nothing. For the timing-sensitive baselines (`fifo`,
//! `priority`, `random`) the leak is *documented* (printed, visible under
//! `--nocapture`), not asserted: how much an attacker extracts from them
//! is an observation, not a contract.

use std::time::Duration;

use themis::prelude::*;

/// Maximum tolerated relative SIC advantage of the strategic source over
/// the mean of its honest peers, under `balance-sic*`. Mirrors
/// `ADVERSARIAL_EPSILON` in the `experiments adversarial` gate.
const EPSILON: f64 = 0.15;

struct Attack {
    strategic_sic: f64,
    honest_mean: f64,
    honest_jain: f64,
    shed_fraction: f64,
}

impl Attack {
    fn advantage(&self) -> f64 {
        if self.honest_mean <= 0.0 {
            return if self.strategic_sic > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        (self.strategic_sic - self.honest_mean) / self.honest_mean
    }
}

/// One overloaded node: the attacker attached first (QueryId 0 — the most
/// favourable spot an id-ordered baseline can hand it), 7 honest peers at
/// the same mean rate, capacity at half the demand. The STW window and
/// warm-up match the `experiments adversarial` geometry: a shorter SIC
/// window makes the lowest-first variant's estimates jumpy enough to
/// flake.
fn run_attack(policy: Policy) -> Attack {
    let honest = 7usize;
    let rate = 200u32;
    let tick = TimeDelta::from_millis(250);
    // 20 batches/s: the 50 ms emission beat divides the 250 ms tick, so
    // the adversarial pattern's mean factor is exactly 1 (honest-looking).
    let strategic = SourceProfile::steady(rate, 20, Dataset::Uniform)
        .with_pattern(RatePattern::Adversarial { tick });
    let peers = SourceProfile::steady(rate, 20, Dataset::Uniform);
    let stw = TimeDelta::from_secs(2);

    let scenario = ScenarioBuilder::new("adversarial-regression", 42)
        .nodes(1)
        .capacity_tps((honest + 1) as u32 * rate / 2)
        .shedding_interval(tick)
        .stw_window(stw)
        .warmup(TimeDelta::from_millis(2500))
        .add_queries(Template::Avg, 1, strategic)
        .add_queries(Template::Avg, honest, peers)
        .build()
        .unwrap();
    let strategic_id = scenario.queries[0].id;

    let mut engine = Engine::start(
        &scenario,
        EngineConfig {
            policy,
            enforce_capacity: true,
            record_series: true,
            ..Default::default()
        },
    );
    engine.run_for(Duration::from_millis(2500));
    engine.run_for(Duration::from_millis(2500));
    let report = engine.finish();

    let strategic_sic = report
        .per_query_sic
        .iter()
        .find(|&&(q, _)| q == strategic_id)
        .map(|&(_, s)| s)
        .unwrap();
    let honest_sics: Vec<f64> = report
        .per_query_sic
        .iter()
        .filter(|&&(q, _)| q != strategic_id)
        .map(|&(_, s)| s)
        .collect();
    assert_eq!(honest_sics.len(), honest);
    Attack {
        strategic_sic,
        honest_mean: honest_sics.iter().sum::<f64>() / honest_sics.len() as f64,
        honest_jain: jain_index(&honest_sics),
        shed_fraction: report.shed_fraction(),
    }
}

#[test]
fn tick_gaming_buys_nothing_under_sic_aware_policies() {
    for policy in registered_policies() {
        let name = policy.name().to_string();
        let sic_aware = name.starts_with("balance-sic");
        let attack = run_attack(policy);

        // Every policy must face a genuinely overloaded node: capacity is
        // half the demand, so roughly every other tuple has to go.
        assert!(
            attack.shed_fraction > 0.3,
            "{name}: the attack run must overload the node (shed {:.1}%)",
            attack.shed_fraction * 100.0
        );
        assert!(
            attack.strategic_sic > 0.0 && attack.honest_mean > 0.0,
            "{name}: both sides must retain some information"
        );

        let advantage = attack.advantage();
        if sic_aware {
            assert!(
                advantage <= EPSILON,
                "{name}: strategic source extracted {:+.1}% over its honest peers \
                 (epsilon {:.0}%)",
                advantage * 100.0,
                EPSILON * 100.0
            );
            // The honest cohort must not pay for the defence unevenly.
            assert!(
                attack.honest_jain > 0.9,
                "{name}: honest peers stay mutually fair (Jain {:.4})",
                attack.honest_jain
            );
        } else {
            // Documented, not asserted: what a timing attack extracts
            // from timing-sensitive baselines.
            println!(
                "{name}: strategic advantage {advantage:+.1} \
                 (documented — non-SIC baselines make no fairness promise)",
            );
        }
    }
}
