//! Integration: the §7.5 related-work baselines against THEMIS semantics.

use themis::prelude::*;

/// The paper's simple set-up: the FIT LP starves almost every query while
/// the log-utility program shares evenly — reproducing the §7.5 numbers
/// (3 full queries, 1 partial, the rest starved).
#[test]
fn fit_is_unfair_log_utility_is_fair_on_simple_setup() {
    let n = 60;
    let hosts: Vec<Vec<usize>> = (0..n).map(|_| vec![0, 1]).collect();
    let p = AllocationProblem::uniform(vec![1.0; n], hosts, vec![3.5, 3.5]);

    let fit = solve_fit(&p).unwrap();
    assert_eq!(
        fit.fully_admitted(&p, 1e-6),
        3,
        "3 of 60 queries get all input"
    );
    assert_eq!(fit.starved(1e-6), n - 4, "one more gets a fraction");
    assert!(fit.jain_rate_fractions(&p) < 0.1);

    let pf = solve_log_utility(&p, UtilityOpts::default());
    assert_eq!(pf.starved(1e-6), 0);
    assert!(
        pf.jain_rate_fractions(&p) > 0.99,
        "identical queries share evenly"
    );
}

/// On the complex heterogeneous deployment, log utility is fair-ish but
/// measurably below THEMIS' BALANCE-SIC fairness (paper: 0.87 vs 0.97).
#[test]
fn log_utility_less_fair_than_balance_sic_on_complex_deployment() {
    // Heterogeneous fragment counts and input rates over 4 nodes.
    let hosts: Vec<Vec<usize>> = (0..30)
        .map(|q| match q % 3 {
            0 => vec![q % 4, (q + 1) % 4, (q + 2) % 4], // 3 fragments
            1 => vec![q % 4, (q + 1) % 4],
            _ => vec![q % 4, (q + 3) % 4],
        })
        .collect();
    let inputs: Vec<f64> = (0..30)
        .map(|q| match q % 3 {
            0 => 30.0, // AVG-all: 30 sources
            1 => 4.0,  // COV
            _ => 40.0, // TOP-5
        })
        .collect();
    let mut node_load = [0.0f64; 4];
    for (q, hs) in hosts.iter().enumerate() {
        for &n in hs {
            node_load[n] += inputs[q];
        }
    }
    let capacities: Vec<f64> = node_load.iter().map(|l| l * 0.4).collect();
    let p = AllocationProblem::uniform(inputs, hosts, capacities);
    let pf = solve_log_utility(&p, UtilityOpts::default());
    let log_jain = pf.jain_log_utilities(&p);
    assert!(log_jain < 0.99, "not perfectly fair: {log_jain}");

    // THEMIS on an equivalent (small) simulated deployment.
    let profile = SourceProfile::steady(20, 4, Dataset::Uniform);
    let scenario = ScenarioBuilder::new("baseline-complex", 1)
        .nodes(4)
        .capacity_tps(450)
        .duration(TimeDelta::from_secs(20))
        .warmup(TimeDelta::from_secs(8))
        .stw_window(TimeDelta::from_secs(5))
        .add_queries(Template::AvgAll { fragments: 3 }, 4, profile)
        .add_queries(Template::Cov { fragments: 2 }, 4, profile)
        .add_queries(Template::Top5 { fragments: 2 }, 4, profile)
        .build()
        .unwrap();
    let report = run_scenario(scenario, SimConfig::default());
    assert!(report.shed_fraction() > 0.1, "overloaded");
    assert!(
        report.jain() > log_jain - 0.05,
        "BALANCE-SIC {} vs log-utility {}",
        report.jain(),
        log_jain
    );
}

/// The simplex solver agrees with brute-force vertex enumeration on small
/// random LPs.
#[test]
fn simplex_matches_brute_force_on_small_problems() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..50 {
        // 2 variables, box constraints + one coupling constraint.
        let c = [rng.gen_range(0.1..2.0), rng.gen_range(0.1..2.0)];
        let bound = [rng.gen_range(0.5..3.0), rng.gen_range(0.5..3.0)];
        let couple = rng.gen_range(0.5..4.0);
        let lp = Lp {
            objective: c.to_vec(),
            constraints: vec![
                (vec![1.0, 0.0], bound[0]),
                (vec![0.0, 1.0], bound[1]),
                (vec![1.0, 1.0], couple),
            ],
        };
        let s = solve(&lp).unwrap();
        // Brute force over a fine grid.
        let mut best = 0.0f64;
        let steps = 200;
        for i in 0..=steps {
            for j in 0..=steps {
                let x = bound[0] * i as f64 / steps as f64;
                let y = bound[1] * j as f64 / steps as f64;
                if x + y <= couple + 1e-12 {
                    best = best.max(c[0] * x + c[1] * y);
                }
            }
        }
        assert!(
            s.objective >= best - 1e-2,
            "simplex {} vs grid {best}",
            s.objective
        );
    }
}

/// Log-utility allocations satisfy proportional fairness's defining
/// property on a shared link: equal users get equal rates, and the sum
/// saturates capacity.
#[test]
fn log_utility_saturates_capacity() {
    let p = AllocationProblem::uniform(
        vec![100.0; 5],
        (0..5).map(|_| vec![0]).collect(),
        vec![50.0],
    );
    let a = solve_log_utility(&p, UtilityOpts::default());
    let total: f64 = a.rates.iter().sum();
    assert!((total - 50.0).abs() < 1.0, "capacity saturated: {total}");
}
