//! The unified shedding-policy registry: name round-trips, and sim↔engine
//! parity — every `PolicyKind` must run in both runtimes.

use themis::prelude::*;

#[test]
fn registry_round_trips_names() {
    // Registry keys are the single source of truth: every registered
    // policy looks itself up by its own name, and the built shedder
    // reports the same canonical spelling.
    for p in registered_policies() {
        let looked_up = lookup_policy(p.name()).unwrap();
        assert_eq!(looked_up.name(), p.name());
        assert_eq!(p.build(1).name(), p.name());
    }
    // The deprecated PolicyKind shim reads from the same table.
    for k in PolicyKind::ALL {
        assert_eq!(k.name().parse::<PolicyKind>(), Ok(k));
        assert_eq!(Policy::from(k).name(), k.name());
        assert!(registered_policy_names().contains(&k.name().to_string()));
    }
}

#[test]
fn registry_rejects_unknown_names() {
    // The registry error lists every registered policy by name...
    let err = lookup_policy("no-such-policy").unwrap_err().to_string();
    for name in registered_policy_names() {
        assert!(err.contains(&name), "{err} should list {name}");
    }
    // ...and the legacy FromStr shim stays actionable too.
    let err = "no-such-policy".parse::<PolicyKind>().unwrap_err();
    assert!(err.to_string().contains("balance-sic"));
}

/// An overloaded two-node scenario for the simulator (simulated time, so
/// generous durations are cheap).
fn sim_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new("policy-parity-sim", seed)
        .nodes(2)
        .capacity_tps(120)
        .duration(TimeDelta::from_secs(12))
        .warmup(TimeDelta::from_secs(6))
        .stw_window(TimeDelta::from_secs(3))
        .add_queries(
            Template::Cov { fragments: 2 },
            6,
            SourceProfile::steady(40, 4, Dataset::Uniform),
        )
        .build()
        .unwrap()
}

/// A short wall-clock scenario for the engine (kept tight: this runs in
/// real time for each of the six policies). Overload margin matches the
/// pre-existing engine tests — 2 queries x 400 t/s = 800 t/s demand per
/// node vs 1/(2 ms) = 500 t/s capacity — so shedding is robust even on a
/// loaded CI runner.
fn engine_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new("policy-parity-engine", seed)
        .nodes(2)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_millis(1500))
        .warmup(TimeDelta::from_millis(500))
        .stw_window(TimeDelta::from_secs(1))
        .add_queries(
            Template::Avg,
            4,
            SourceProfile::steady(400, 5, Dataset::Uniform),
        )
        .build()
        .unwrap()
}

/// Every registry policy runs to completion in the deterministic
/// simulator, sheds under overload, and reports its canonical name.
#[test]
fn every_policy_runs_in_the_simulator() {
    for p in PolicyKind::ALL {
        let report = run_scenario(sim_scenario(11), SimConfig::with_policy(p));
        assert_eq!(report.policy, p.name());
        assert_eq!(report.per_query.len(), 6, "{p}: all queries reported");
        assert!(
            report.shed_fraction() > 0.1,
            "{p}: overloaded run must shed (got {})",
            report.shed_fraction()
        );
    }
}

/// Every registry policy also runs in the multi-threaded engine — the
/// parity the unified registry exists to guarantee. A synthetic per-tuple
/// cost forces genuine overload so each shedder actually executes.
#[test]
fn every_policy_runs_in_the_engine() {
    for p in PolicyKind::ALL {
        let cfg = EngineConfig {
            policy: p.into(),
            synthetic_cost: TimeDelta::from_micros(2000),
            ..Default::default()
        };
        let report = run_engine(&engine_scenario(13), cfg);
        assert_eq!(report.policy, p.name());
        assert!(
            report.nodes.iter().any(|n| n.arrived_tuples > 0),
            "{p}: tuples flowed"
        );
        assert!(
            report.shed_fraction() > 0.0,
            "{p}: synthetic cost must force shedding"
        );
    }
}
