//! Regression: engine churn parity — the engine analogue of the
//! simulator's `figures/dynamics.rs` churn experiment.
//!
//! Under **every** shedding policy in the registry, a cohort of queries
//! attaches to a running engine mid-run and departs again. The run must
//! not panic any shard, the nodes that hosted only the cohort must be
//! torn down when it leaves (their shedding deadlines are abandoned — a
//! torn-down node never ticks again), and the resident queries' SIC
//! means must match a churn-free control run within tolerance.

use std::time::Duration;

use themis::prelude::*;

const INTERVAL_MS: u64 = 100;

fn scenario(policy_tag: u64) -> Scenario {
    // 4 resident AVG queries on nodes 0..4 (round-robin); nodes 4 and 5
    // stay empty until the churn cohort arrives. Residents run at 200 t/s
    // under a 400 t/s declared capacity: no resident shedding.
    ScenarioBuilder::new("churn-parity", 1000 + policy_tag)
        .nodes(6)
        .capacity_tps(400)
        .shedding_interval(TimeDelta::from_millis(INTERVAL_MS))
        .stw_window(TimeDelta::from_secs(1))
        .warmup(TimeDelta::from_millis(1000))
        .add_queries(
            Template::Avg,
            4,
            SourceProfile::steady(200, 5, Dataset::Uniform),
        )
        .build()
        .unwrap()
}

fn config(policy: PolicyKind) -> EngineConfig {
    EngineConfig {
        policy: policy.into(),
        enforce_capacity: true,
        ..Default::default()
    }
}

/// Runs warm-up plus three phases; `churn` controls whether the cohort
/// actually attaches. Phase slicing is identical either way, so the two
/// runs differ only by the cohort's presence.
fn run(policy: PolicyKind, churn: bool) -> (EngineReport, Vec<QueryId>) {
    let scn = scenario(policy as u64);
    let mut engine = Engine::start(&scn, config(policy));
    engine.run_for(Duration::from_millis(1700));
    // The cohort overloads its own dedicated nodes (4, 5): 700 t/s
    // against the declared 400 t/s capacity, so every policy's shedder
    // actually runs during the churn window. 25 batches/s keeps single
    // batches (28 tuples) under the 40-tuple interval capacity —
    // shedders admit whole batches, so some always survive.
    let cohort = if churn {
        engine.attach_queries(
            Template::Avg,
            2,
            SourceProfile::steady(700, 25, Dataset::Uniform),
        )
    } else {
        Vec::new()
    };
    engine.run_for(Duration::from_millis(1400));
    for &q in &cohort {
        assert!(engine.detach_query(q));
    }
    engine.run_for(Duration::from_millis(1100));
    (engine.finish(), cohort)
}

#[test]
fn churn_parity_under_every_policy() {
    for policy in PolicyKind::ALL {
        let (churned, cohort) = run(policy, true);
        let (control, _) = run(policy, false);
        assert_eq!(cohort, vec![QueryId(4), QueryId(5)]);

        // The cohort landed on the empty nodes, was overloaded there
        // (this policy's shedder ran), and produced results.
        let cohort_shed: u64 = churned.nodes[4..6].iter().map(|n| n.shed_tuples).sum();
        assert!(cohort_shed > 0, "{policy:?}: cohort nodes never shed");
        for q in &cohort {
            assert!(
                churned.result_counts.contains_key(q),
                "{policy:?}: cohort query {q} produced no results"
            );
        }

        // No deadline-heap leak: the cohort nodes were torn down at
        // departure, so they tick for roughly the churn window only,
        // while resident nodes tick for the whole run.
        let resident_ticks = churned.nodes[..4].iter().map(|n| n.ticks).min().unwrap();
        for (i, n) in churned.nodes[4..6].iter().enumerate() {
            assert!(
                n.ticks > 0,
                "{policy:?}: cohort node {} never ticked",
                i + 4
            );
            assert!(
                n.ticks < resident_ticks * 2 / 3,
                "{policy:?}: detached node {} kept ticking ({} vs resident {})",
                i + 4,
                n.ticks,
                resident_ticks
            );
        }

        // Resident parity: churn on disjoint nodes must not disturb the
        // resident queries' SIC means beyond run-to-run wall noise.
        for &(q, sic) in &churned.per_query_sic {
            if cohort.contains(&q) {
                continue;
            }
            let control_sic = control
                .per_query_sic
                .iter()
                .find(|&&(cq, _)| cq == q)
                .map(|&(_, s)| s)
                .unwrap();
            assert!(sic > 0.2, "{policy:?}: resident {q} starved: {sic}");
            assert!(
                (sic - control_sic).abs() < 0.35,
                "{policy:?}: resident {q} diverged under churn: {sic:.3} vs {control_sic:.3}"
            );
        }
    }
}
