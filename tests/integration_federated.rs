//! Cross-process federation: real source processes over loopback TCP
//! against a live engine.
//!
//! The test binary re-executes itself as the source-pump child (the
//! [`source_pump_child_mode`] "test" is a no-op unless `THEMIS_PUMP_ARGS`
//! is set), so the pump really runs in a separate process with its own
//! scheduler, allocator and sockets — the thing the in-process tests
//! cannot pin. Two properties are pinned here:
//!
//! * **parity** — two source processes collectively reproduce the
//!   in-process control's resident SIC within a loose tolerance (the
//!   strict 2% gate over all six policies is the `experiments --
//!   federated` benchmark; this tier-1 test only has to catch transport
//!   that drops, duplicates or mis-routes load);
//! * **survival** — killing one source process mid-run leaves the
//!   engine serving the survivors: the run finishes cleanly, results
//!   keep flowing, and the dead peer is recorded in
//!   [`EngineReport::errors`] instead of panicking anything.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use themis::engine::prelude::EngineError;
use themis::prelude::*;
use themis::workloads::remote::{build_federated_scenario, pump_main, FederatedParams};

/// Child-process hook: when `THEMIS_PUMP_ARGS` is set this "test" runs a
/// remote source pump to completion and the surrounding harness exit
/// code reports its success. Without the variable it does nothing, so
/// ordinary test runs see an instant pass.
#[test]
fn source_pump_child_mode() {
    let Ok(raw) = std::env::var("THEMIS_PUMP_ARGS") else {
        return;
    };
    let args: Vec<String> = raw.split_whitespace().map(str::to_string).collect();
    match pump_main(&args) {
        Ok(stats) => eprintln!(
            "pump child: emitted {} sent {} shed {}",
            stats.emitted_batches, stats.sent_batches, stats.shed_batches
        ),
        Err(e) => panic!("pump child failed: {e}"),
    }
}

/// A quick federated scenario: 8 queries on 2 nodes at 1.5× overload,
/// sized so one arm runs in about six seconds.
fn params() -> FederatedParams {
    FederatedParams {
        nodes: 2,
        queries: 8,
        warmup_ms: 2500,
        duration_ms: 3000,
        ..FederatedParams::default()
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        enforce_capacity: true,
        shards: Some(2),
        ..EngineConfig::default()
    }
}

fn spawn_pump(
    addr: &str,
    part: usize,
    parts: usize,
    start_unix_us: u64,
    p: &FederatedParams,
) -> Child {
    let args = format!(
        "--addr={addr} --part={part} --parts={parts} --run-ms={} --start-unix-us={start_unix_us} \
         --peer=itest-pump-{part} --seed={} --nodes={} --queries={} --rate={} --batches={} \
         --capacity={} --stw-ms={} --warmup-ms={} --duration-ms={}",
        p.warmup_ms + p.duration_ms,
        p.seed,
        p.nodes,
        p.queries,
        p.rate_tps,
        p.batches_per_sec,
        p.capacity_tps,
        p.stw_ms,
        p.warmup_ms,
        p.duration_ms,
    );
    Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", "source_pump_child_mode", "--nocapture"])
        .env("THEMIS_PUMP_ARGS", args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .expect("re-exec test binary as source pump")
}

fn reap(mut child: Child, label: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("{label} hung past shutdown");
            }
        }
    }
}

/// Runs the federated arm with `parts` source processes; when
/// `kill_first`, source process 0 is killed halfway through the measured
/// window. Returns the engine report.
fn run_federated(p: &FederatedParams, parts: usize, kill_first: bool) -> EngineReport {
    let scenario = build_federated_scenario(p);
    let cfg = EngineConfig {
        ingest_listen: Some("127.0.0.1:0".to_string()),
        remote_sources: true,
        ..engine_config()
    };
    let mut engine = Engine::start(&scenario, cfg);
    let addr = engine
        .ingest_addr()
        .expect("ingest listener bound")
        .to_string();
    let start_unix_us = engine.epoch_unix_us();
    let mut children: Vec<Option<Child>> = (0..parts)
        .map(|part| Some(spawn_pump(&addr, part, parts, start_unix_us, p)))
        .collect();
    engine.run_for(Duration::from_millis(p.warmup_ms));
    if kill_first {
        engine.run_for(Duration::from_millis(p.duration_ms / 2));
        let mut victim = children[0].take().expect("victim spawned");
        victim.kill().expect("kill source process 0");
        let _ = victim.wait();
        engine.run_for(Duration::from_millis(p.duration_ms - p.duration_ms / 2));
    } else {
        engine.run_for(Duration::from_millis(p.duration_ms));
    }
    // Idle-wire tail: let the surviving children finish and say bye
    // without sampling the decaying windowed SIC.
    engine.pause_sampling();
    engine.run_for(Duration::from_millis(600));
    for (part, child) in children.into_iter().enumerate() {
        if let Some(child) = child {
            reap(child, &format!("source pump {part}"));
        }
    }
    engine.finish()
}

/// Two source processes over loopback reproduce the in-process SIC.
#[test]
fn federation_matches_in_process_control() {
    let p = params();
    let control = run_engine(&build_federated_scenario(&p), engine_config());
    assert!(control.fairness.mean > 0.0, "control produced no SIC");

    // Both arms are live wall-clock runs; one retry absorbs a scheduler
    // stall on small machines without masking a systematic gap.
    let mut last_diff = f64::INFINITY;
    for attempt in 0..2 {
        let fed = run_federated(&p, 2, false);
        assert!(
            fed.errors.is_empty(),
            "clean federation must report no errors: {:?}",
            fed.errors
        );
        assert!(fed.remote_batches > 0, "the wire carried no batches");
        assert_eq!(
            fed.remote_shed_batches, 0,
            "loopback at this rate must not shed on the link"
        );
        last_diff = (fed.fairness.mean - control.fairness.mean).abs() / control.fairness.mean;
        if last_diff <= 0.25 {
            return;
        }
        eprintln!("(attempt {attempt}: sic rel diff {last_diff:.3}; retrying)");
    }
    panic!("federated SIC diverged from in-process control by {last_diff:.3} (> 0.25)");
}

/// Killing a source process mid-run: the engine keeps serving the
/// survivors, shuts down cleanly, and records the dead peer.
#[test]
fn engine_survives_a_killed_source_process() {
    let p = params();
    let report = run_federated(&p, 2, true);

    assert!(
        report.remote_batches > 0,
        "survivors stopped feeding the engine"
    );
    assert!(
        report.fairness.mean > 0.0,
        "surviving sources must keep resident SIC alive"
    );
    // The kill must be *recorded*, not amplified: the dead peer shows up
    // as an ingest error and nothing else breaks.
    assert!(
        !report.errors.is_empty(),
        "a killed source process must be recorded in EngineReport::errors"
    );
    for e in &report.errors {
        match e {
            EngineError::Ingest { peer, detail } => {
                assert!(
                    peer.contains("itest-pump") || peer.contains("127.0.0.1"),
                    "ingest error should name the peer: {peer}: {detail}"
                );
            }
            other => panic!("only ingest errors are acceptable here, got {other}"),
        }
    }
}
