//! Integration: the multi-threaded prototype engine against the same
//! workloads as the simulator.

use themis::prelude::*;

fn scenario(n_queries: usize, rate: u32, seed: u64) -> Scenario {
    ScenarioBuilder::new("engine-int", seed)
        .nodes(2)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_millis(2500))
        .warmup(TimeDelta::from_millis(1200))
        .stw_window(TimeDelta::from_secs(2))
        .add_queries(
            Template::Avg,
            n_queries,
            SourceProfile::steady(rate, 5, Dataset::Uniform),
        )
        .build()
        .unwrap()
}

/// Without synthetic cost the engine keeps everything and results flow.
#[test]
fn engine_processes_everything_without_overload() {
    let report = run_engine(&scenario(4, 200, 1), EngineConfig::default());
    assert_eq!(report.shed_fraction(), 0.0);
    assert_eq!(
        report.result_counts.len(),
        4,
        "all queries produced results"
    );
    let total_results: usize = report.result_counts.values().sum();
    assert!(total_results >= 4, "results {total_results}");
    assert!(report.coordinator_messages > 0);
}

/// Synthetic per-tuple cost turns the same workload into an overloaded
/// one: tuples are shed, the shedder's execution time is measured.
#[test]
fn engine_sheds_under_synthetic_cost() {
    // Per node: 2 queries x 400 t/s = 800 t/s demand vs 1/(2 ms) = 500 t/s.
    let cfg = EngineConfig {
        policy: PolicyKind::BalanceSic.into(),
        synthetic_cost: TimeDelta::from_micros(2000),
        ..Default::default()
    };
    let report = run_engine(&scenario(4, 400, 2), cfg);
    assert!(
        report.shed_fraction() > 0.1,
        "shed {}",
        report.shed_fraction()
    );
    assert!(report.mean_shed_time_us() > 0.0);
    // Overload does not stop results entirely.
    assert!(!report.result_counts.is_empty());
}

/// Multi-fragment queries traverse real channels between worker threads.
#[test]
fn engine_routes_multi_fragment_queries() {
    let scn = ScenarioBuilder::new("engine-chain", 3)
        .nodes(2)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_millis(2500))
        .warmup(TimeDelta::from_millis(1200))
        .stw_window(TimeDelta::from_secs(2))
        .add_queries(
            Template::Cov { fragments: 2 },
            3,
            SourceProfile::steady(100, 5, Dataset::Gaussian),
        )
        .build()
        .unwrap();
    let report = run_engine(&scn, EngineConfig::default());
    assert_eq!(
        report.result_counts.len(),
        3,
        "all chained queries emitted results: {:?}",
        report.result_counts
    );
}

/// A scenario far beyond the old thread-per-node ceiling runs on a small
/// bounded shard pool: 128 nodes on 4 shard threads, every node ticking
/// its detector and every query emitting results.
#[test]
fn engine_scales_nodes_onto_bounded_shard_pool() {
    let scn = ScenarioBuilder::new("engine-scale", 9)
        .nodes(128)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_millis(1500))
        .warmup(TimeDelta::from_millis(600))
        .stw_window(TimeDelta::from_secs(1))
        .add_queries(
            Template::Avg,
            128,
            SourceProfile::steady(20, 4, Dataset::Uniform),
        )
        .build()
        .unwrap();
    let report = run_engine(
        &scn,
        EngineConfig {
            shards: Some(4),
            ..Default::default()
        },
    );
    assert_eq!(report.shards, 4);
    assert_eq!(report.nodes.len(), 128);
    assert!(
        report.nodes.iter().all(|n| n.ticks > 0),
        "a node never reached its shedding tick"
    );
    assert_eq!(
        report.result_counts.len(),
        128,
        "all queries produced results: got {}",
        report.result_counts.len()
    );
}

/// The random-shedding engine also runs to completion (used by the §7.6
/// overhead comparison).
#[test]
fn engine_random_policy_runs() {
    let cfg = EngineConfig {
        policy: PolicyKind::Random.into(),
        synthetic_cost: TimeDelta::from_micros(2000),
        ..Default::default()
    };
    let report = run_engine(&scenario(4, 400, 4), cfg);
    assert_eq!(report.policy, "random");
    assert!(report.shed_fraction() > 0.05);
}
