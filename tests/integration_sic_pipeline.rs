//! Cross-crate integration: SIC mass flows correctly from sources through
//! operators, fragments, the network and the result tracker.

use themis::prelude::*;

fn underloaded(template: Template, n: usize, nodes: usize, seed: u64) -> SimReport {
    let scenario = ScenarioBuilder::new("sic-pipeline", seed)
        .nodes(nodes)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_secs(16))
        .warmup(TimeDelta::from_secs(8))
        .stw_window(TimeDelta::from_secs(5))
        .add_queries(template, n, SourceProfile::steady(40, 4, Dataset::Uniform))
        .build()
        .unwrap();
    run_scenario(scenario, SimConfig::default())
}

/// Without overload, every template's result SIC sits near 1 — Eq. 1-4
/// conserve source information end to end.
#[test]
fn perfect_processing_reaches_unit_sic() {
    for (template, nodes) in [
        (Template::Avg, 1),
        (Template::Max, 1),
        (Template::Count, 1),
        (Template::AvgAll { fragments: 2 }, 2),
        (Template::Cov { fragments: 2 }, 2),
        (Template::Top5 { fragments: 2 }, 2),
    ] {
        let report = underloaded(template, 2, nodes, 5);
        for q in &report.per_query {
            assert!(
                q.mean_sic > 0.85,
                "{} ({} fragments): SIC {}",
                q.template,
                q.fragments,
                q.mean_sic
            );
            assert!(
                q.mean_sic < 1.05,
                "{}: SIC cannot exceed 1 (+STW noise): {}",
                q.template,
                q.mean_sic
            );
        }
    }
}

/// Fragment chains of any length preserve SIC mass.
#[test]
fn chain_length_does_not_leak_sic() {
    for fragments in [1usize, 2, 3, 4] {
        let report = underloaded(Template::Cov { fragments }, 2, fragments.max(2), 9);
        for q in &report.per_query {
            assert!(
                q.mean_sic > 0.8,
                "{fragments}-fragment chain leaked mass: {}",
                q.mean_sic
            );
        }
    }
}

/// The AVG-all tree merges partial aggregates exactly: the result value
/// equals the global average of all source values.
#[test]
fn avg_all_tree_value_correctness() {
    let scenario = ScenarioBuilder::new("avg-all-values", 3)
        .nodes(3)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_secs(12))
        .warmup(TimeDelta::from_secs(6))
        .stw_window(TimeDelta::from_secs(4))
        .add_queries(
            Template::AvgAll { fragments: 3 },
            1,
            SourceProfile::steady(40, 4, Dataset::Uniform),
        )
        .build()
        .unwrap();
    let cfg = SimConfig {
        record_results: true,
        ..Default::default()
    };
    let report = run_scenario(scenario, cfg);
    let results = report.results.values().next().expect("results recorded");
    assert!(!results.is_empty());
    // Uniform on [0,100]: every windowed average over 300 source tuples
    // should be close to 50.
    for (_, rows) in results {
        let v = rows[0][0].as_f64();
        assert!((v - 50.0).abs() < 15.0, "window avg {v}");
    }
}

/// Shedding reduces SIC proportionally: halving capacity roughly halves
/// the result SIC of a single query.
#[test]
fn sic_tracks_capacity_fraction() {
    let run = |capacity: u32| -> f64 {
        let scenario = ScenarioBuilder::new("sic-fraction", 4)
            .nodes(1)
            .capacity_tps(capacity)
            .duration(TimeDelta::from_secs(16))
            .warmup(TimeDelta::from_secs(8))
            .stw_window(TimeDelta::from_secs(5))
            .add_queries(
                Template::Avg,
                4,
                SourceProfile::steady(40, 4, Dataset::Gaussian),
            )
            .build()
            .unwrap();
        run_scenario(scenario, SimConfig::default()).mean_sic()
    };
    // Demand is 160 t/s.
    let full = run(200);
    let half = run(80);
    let quarter = run(40);
    assert!(full > 0.9, "no overload: {full}");
    assert!((half - 0.5).abs() < 0.15, "half capacity: {half}");
    assert!((quarter - 0.25).abs() < 0.12, "quarter capacity: {quarter}");
    assert!(full > half && half > quarter);
}

/// Eq. 1 normalisation: a query's SIC is rate-independent — doubling all
/// source rates under proportionally doubled capacity leaves SIC the same.
#[test]
fn sic_is_rate_normalised() {
    let run = |rate: u32, capacity: u32| -> f64 {
        let scenario = ScenarioBuilder::new("rate-norm", 8)
            .nodes(1)
            .capacity_tps(capacity)
            .duration(TimeDelta::from_secs(16))
            .warmup(TimeDelta::from_secs(8))
            .stw_window(TimeDelta::from_secs(5))
            .add_queries(
                Template::Avg,
                2,
                SourceProfile::steady(rate, 4, Dataset::Uniform),
            )
            .build()
            .unwrap();
        run_scenario(scenario, SimConfig::default()).mean_sic()
    };
    let slow = run(40, 40);
    let fast = run(80, 80);
    assert!(
        (slow - fast).abs() < 0.1,
        "SIC must be rate-normalised: {slow} vs {fast}"
    );
}

/// A custom sliding-window query (2 s range, 1 s slide) conserves SIC mass
/// end to end: each tuple's mass is split across its panes (§6 "divide the
/// SIC value of an input tuple across all its derived tuples per slide")
/// and re-summed by the result tracker.
#[test]
fn sliding_window_query_conserves_sic() {
    use themis::operators::op::OperatorSpec;
    use themis::operators::window::WindowSpec;
    use themis::query::graph::{FragmentSpec, LocalEdge, SourceBinding, SourceSpec};
    use themis::query::runtime::{FragmentRuntime, Ingress};

    let source = SourceId(0);
    let frag = FragmentSpec {
        operators: vec![
            OperatorSpec::identity(),
            OperatorSpec::with_grace(
                WindowSpec::sliding(TimeDelta::from_secs(2), TimeDelta::from_secs(1)),
                LogicSpec::Avg { field: 0 },
                TimeDelta::ZERO,
            ),
            OperatorSpec::identity(),
        ],
        edges: vec![
            LocalEdge {
                from: 0,
                to: 1,
                port: 0,
            },
            LocalEdge {
                from: 1,
                to: 2,
                port: 0,
            },
        ],
        sources: vec![SourceBinding {
            source,
            op: 0,
            port: 0,
        }],
        upstreams: vec![],
        root: 2,
    };
    let q = QuerySpec {
        id: QueryId(0),
        template: "sliding-avg".to_string(),
        fragments: vec![frag],
        result_fragment: 0,
        sources: vec![SourceSpec::plain(source, None, SourceKind::Generic)],
    };
    q.validate().unwrap();

    let mut rt = FragmentRuntime::new(&q.fragments[0]);
    // 8 seconds of tuples, 4 per second, each worth 1/32 so total mass = 1.
    let mut emitted = 0.0;
    let mut out = Vec::new();
    for s in 0..8u64 {
        for k in 0..4u64 {
            let ts = Timestamp::from_millis(s * 1000 + k * 250 + 100);
            out.extend(rt.ingest(
                Ingress::Source(source),
                vec![Tuple::measurement(ts, Sic(1.0 / 32.0), 50.0)],
                ts,
            ));
        }
        emitted += 4.0 / 32.0;
    }
    // Close every remaining pane (well past the last window).
    out.extend(rt.tick(Timestamp::from_secs(20)));
    let total: f64 = out.iter().map(|e| e.sic().value()).sum();
    assert!(
        (total - emitted).abs() < 1e-9,
        "sliding windows must conserve mass: {total} vs {emitted}"
    );
    // Overlapping windows: roughly one result per slide.
    assert!(out.len() >= 7, "panes emitted: {}", out.len());
    for e in &out {
        assert!(
            (e.batch().row(0).f64(0) - 50.0).abs() < 1e-9,
            "window average"
        );
    }
}
