//! Cross-crate integration: BALANCE-SIC fairness end to end, against the
//! baselines, across deployments — miniature versions of §7.2-§7.4.

use themis::prelude::*;

fn overloaded_mix(seed: u64, policy: PolicyKind, coordinator: bool) -> SimReport {
    let profile = SourceProfile::steady(20, 4, Dataset::Uniform);
    let scenario = ScenarioBuilder::new("fairness-mix", seed)
        .nodes(4)
        .capacity_tps(220)
        .duration(TimeDelta::from_secs(20))
        .warmup(TimeDelta::from_secs(8))
        .stw_window(TimeDelta::from_secs(5))
        .add_queries(Template::Cov { fragments: 2 }, 4, profile)
        .add_queries(Template::AvgAll { fragments: 2 }, 3, profile)
        .add_queries(Template::Cov { fragments: 4 }, 3, profile)
        .build()
        .unwrap();
    let cfg = SimConfig {
        coordinator,
        ..SimConfig::with_policy(policy)
    };
    run_scenario(scenario, cfg)
}

/// Under heterogeneous multi-fragment overload, BALANCE-SIC is at least as
/// fair as random shedding (the paper reports 33% fairer on the mixed
/// workload).
#[test]
fn balance_sic_beats_random_fairness() {
    let balance = overloaded_mix(1, PolicyKind::BalanceSic, true);
    let random = overloaded_mix(1, PolicyKind::Random, true);
    assert!(balance.shed_fraction() > 0.2, "must be overloaded");
    assert!(
        balance.jain() > random.jain() - 0.02,
        "balance {} vs random {}",
        balance.jain(),
        random.jain()
    );
    // And it concentrates capacity on valuable tuples: higher mean SIC.
    assert!(
        balance.mean_sic() >= random.mean_sic() - 0.05,
        "balance mean {} vs random {}",
        balance.mean_sic(),
        random.mean_sic()
    );
}

/// The spread (std) of SIC values shrinks under BALANCE-SIC vs random
/// (Figure 10b).
#[test]
fn balance_sic_reduces_spread() {
    let balance = overloaded_mix(2, PolicyKind::BalanceSic, true);
    let random = overloaded_mix(2, PolicyKind::Random, true);
    assert!(
        balance.fairness.std <= random.fairness.std + 0.03,
        "balance std {} vs random {}",
        balance.fairness.std,
        random.fairness.std
    );
}

/// Disabling updateSIC dissemination (Figure 4) hurts fairness when
/// spanning queries share nodes with local ones: each node balances only
/// its local view and over-services the spanning queries.
#[test]
fn update_sic_dissemination_matters() {
    let run = |coordinator: bool| -> SimReport {
        let profile = SourceProfile::steady(20, 4, Dataset::Uniform);
        let scenario = ScenarioBuilder::new("fig4", 3)
            .nodes(3)
            .capacity_tps(70) // ~3x overload
            .duration(TimeDelta::from_secs(25))
            .warmup(TimeDelta::from_secs(10))
            .stw_window(TimeDelta::from_secs(5))
            .add_queries(Template::Cov { fragments: 1 }, 6, profile)
            .add_queries(Template::Cov { fragments: 3 }, 3, profile)
            .build()
            .unwrap();
        let cfg = SimConfig {
            coordinator,
            ..Default::default()
        };
        run_scenario(scenario, cfg)
    };
    let with = run(true);
    let without = run(false);
    assert!(with.jain() > 0.95, "with updateSIC: {}", with.jain());
    assert!(
        with.jain() > without.jain() + 0.03,
        "updateSIC must improve fairness: with {} vs without {}",
        with.jain(),
        without.jain()
    );
    assert_eq!(without.coordinator_messages, 0);
}

/// Single-node convergence (Figure 8's mechanism): equal-demand queries
/// converge to near-equal SIC values even under extreme overload.
#[test]
fn single_node_convergence_under_extreme_overload() {
    let profile = SourceProfile::steady(40, 4, Dataset::Exponential);
    let scenario = ScenarioBuilder::new("single-node", 4)
        .nodes(1)
        .capacity_tps(60) // 12 queries x 40 t/s = 480 t/s demand: 8x
        .duration(TimeDelta::from_secs(20))
        .warmup(TimeDelta::from_secs(8))
        .stw_window(TimeDelta::from_secs(5))
        .add_queries(Template::Avg, 6, profile)
        .add_queries(Template::Count, 6, profile)
        .build()
        .unwrap();
    let report = run_scenario(scenario, SimConfig::default());
    assert!(
        report.mean_sic() < 0.3,
        "extreme overload: {}",
        report.mean_sic()
    );
    assert!(report.mean_sic() > 0.03);
    assert!(report.jain() > 0.9, "jain {}", report.jain());
}

/// Heterogeneous node capacities: the shedders on the slow node shed more,
/// but fairness across queries survives (site autonomy, C3).
#[test]
fn heterogeneous_capacities_stay_fair() {
    let profile = SourceProfile::steady(20, 4, Dataset::Uniform);
    let scenario = ScenarioBuilder::new("hetero", 5)
        .nodes(3)
        .node_capacities(vec![80, 160, 320])
        .duration(TimeDelta::from_secs(20))
        .warmup(TimeDelta::from_secs(8))
        .stw_window(TimeDelta::from_secs(5))
        .add_queries(Template::Cov { fragments: 3 }, 6, profile)
        .build()
        .unwrap();
    let report = run_scenario(scenario, SimConfig::default());
    assert!(report.shed_fraction() > 0.1);
    assert!(report.jain() > 0.85, "jain {}", report.jain());
    // The slowest node shed the most.
    let shed: Vec<u64> = report.nodes.iter().map(|n| n.shed_tuples).collect();
    assert!(shed[0] > shed[2], "slow node sheds more: {shed:?}");
}

/// Bursty sources and WAN latency do not break fairness (§7.4).
#[test]
fn bursty_wan_deployment_stays_fair() {
    let profile =
        SourceProfile::steady(20, 4, Dataset::Uniform).with_pattern(RatePattern::PAPER_BURSTY);
    let scenario = ScenarioBuilder::new("bursty-wan", 6)
        .nodes(4)
        .capacity_tps(150)
        .link_latency(TimeDelta::from_millis(50))
        .duration(TimeDelta::from_secs(20))
        .warmup(TimeDelta::from_secs(8))
        .stw_window(TimeDelta::from_secs(5))
        .add_queries(Template::Cov { fragments: 2 }, 8, profile)
        .build()
        .unwrap();
    let report = run_scenario(scenario, SimConfig::default());
    assert!(
        report.mean_sic() > 0.1,
        "results flow: {}",
        report.mean_sic()
    );
    assert!(report.jain() > 0.8, "jain {}", report.jain());
}

/// Query churn (§5's "arrivals and departures"): when a cohort of queries
/// joins mid-run, BALANCE-SIC drains SIC from the residents and raises the
/// newcomers until the active queries are balanced again.
#[test]
fn churn_converges_to_fairness_after_arrival() {
    let profile = SourceProfile::steady(20, 4, Dataset::Uniform);
    let n = 4usize;
    let scenario = ScenarioBuilder::new("churn", 9)
        .nodes(2)
        .capacity_tps(110)
        .duration(TimeDelta::from_secs(24))
        .warmup(TimeDelta::from_secs(10))
        .stw_window(TimeDelta::from_secs(6))
        .add_queries(Template::Cov { fragments: 2 }, n, profile)
        .add_queries_with_lifetime(
            Template::Cov { fragments: 2 },
            n,
            profile,
            TimeDelta::from_secs(14),
            None,
        )
        .build()
        .unwrap();
    let cfg = SimConfig {
        record_series: true,
        ..Default::default()
    };
    let report = run_scenario(scenario, cfg);
    // Cohort means per sample. The windowed qSIC lags the shedder's
    // actions by up to one STW, so the cohorts oscillate around the fair
    // point rather than pinning to it — assert on time averages.
    let series_mean_at = |qs: std::ops::Range<u32>, i: usize| -> f64 {
        let vals: Vec<f64> = qs
            .filter_map(|q| report.sic_series[&QueryId(q)].get(i).map(|&(_, v)| v))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let samples = report.sic_series[&QueryId(0)].len();
    assert!(samples >= 12, "enough samples: {samples}");
    let gaps: Vec<f64> = (0..samples)
        .map(|i| (series_mean_at(0..n as u32, i) - series_mean_at(n as u32..2 * n as u32, i)).abs())
        .collect();
    // Newcomers get meaningful service at some point.
    let newcomer_peak = (0..samples)
        .map(|i| series_mean_at(n as u32..2 * n as u32, i))
        .fold(0.0f64, f64::max);
    assert!(
        newcomer_peak > 0.15,
        "newcomers served: peak {newcomer_peak}"
    );
    // The cohort gap shrinks on average after the initial shock.
    let third = samples / 3;
    let early: f64 = gaps[..third].iter().sum::<f64>() / third as f64;
    let late: f64 = gaps[samples - third..].iter().sum::<f64>() / third as f64;
    assert!(
        late < early,
        "gap shrinks on average: early {early:.3} vs late {late:.3} ({gaps:?})"
    );
}
