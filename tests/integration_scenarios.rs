//! Integration: experiment-shape checks — miniature versions of the
//! figure sweeps assert the *shapes* the paper reports.

use themis::prelude::*;

fn profile(rate: u32) -> SourceProfile {
    SourceProfile::steady(rate, 4, Dataset::Uniform)
}

/// Figure 8's shape: with more queries on a fixed node, mean SIC falls
/// while Jain's index stays high.
#[test]
fn fig8_shape_mean_falls_jain_stays() {
    let run = |count: usize| -> (f64, f64) {
        let scenario = ScenarioBuilder::new("fig8-mini", 11)
            .nodes(1)
            .capacity_tps(160)
            .duration(TimeDelta::from_secs(16))
            .warmup(TimeDelta::from_secs(8))
            .stw_window(TimeDelta::from_secs(5))
            .add_queries(Template::Avg, count, profile(40))
            .build()
            .unwrap();
        let r = run_scenario(scenario, SimConfig::default());
        (r.mean_sic(), r.jain())
    };
    let (m4, j4) = run(4);
    let (m16, j16) = run(16);
    assert!(m4 > m16 + 0.2, "mean SIC falls with load: {m4} vs {m16}");
    assert!(j4 > 0.9 && j16 > 0.9, "jain stays high: {j4}, {j16}");
}

/// Figure 9's shape: the shedding interval barely affects fairness.
#[test]
fn fig9_shape_interval_insensitive() {
    let run = |ms: u64| -> f64 {
        let scenario = ScenarioBuilder::new("fig9-mini", 12)
            .nodes(2)
            .capacity_tps(150)
            .shedding_interval(TimeDelta::from_millis(ms))
            .duration(TimeDelta::from_secs(16))
            .warmup(TimeDelta::from_secs(8))
            .stw_window(TimeDelta::from_secs(5))
            .add_queries(Template::Cov { fragments: 2 }, 6, profile(40))
            .build()
            .unwrap();
        run_scenario(scenario, SimConfig::default()).jain()
    };
    let j50 = run(50);
    let j250 = run(250);
    assert!(j50 > 0.85 && j250 > 0.85, "fair at both: {j50}, {j250}");
    assert!((j50 - j250).abs() < 0.1, "insensitive: {j50} vs {j250}");
}

/// Figure 12's shape: more nodes (more capacity) raise the mean SIC.
#[test]
fn fig12_shape_more_nodes_more_sic() {
    let run = |nodes: usize| -> f64 {
        let scenario = ScenarioBuilder::new("fig12-mini", 13)
            .nodes(nodes)
            .capacity_tps(120)
            .placement(PlacementPolicy::Zipf { exponent: 1.0 })
            .duration(TimeDelta::from_secs(16))
            .warmup(TimeDelta::from_secs(8))
            .stw_window(TimeDelta::from_secs(5))
            .add_queries(Template::Cov { fragments: 2 }, 10, profile(40))
            .build()
            .unwrap();
        run_scenario(scenario, SimConfig::default()).mean_sic()
    };
    let m3 = run(3);
    let m8 = run(8);
    assert!(m8 > m3 + 0.05, "more nodes help: {m3} -> {m8}");
}

/// Figure 13's shape: more queries on fixed capacity lower the mean SIC
/// but keep shedding fair.
#[test]
fn fig13_shape_more_queries_less_sic() {
    let run = |count: usize| -> (f64, f64) {
        let scenario = ScenarioBuilder::new("fig13-mini", 14)
            .nodes(2)
            .capacity_tps(200)
            .duration(TimeDelta::from_secs(16))
            .warmup(TimeDelta::from_secs(8))
            .stw_window(TimeDelta::from_secs(5))
            .add_queries(Template::Cov { fragments: 2 }, count, profile(40))
            .build()
            .unwrap();
        let r = run_scenario(scenario, SimConfig::default());
        (r.mean_sic(), r.jain())
    };
    let (m4, _) = run(4);
    let (m12, j12) = run(12);
    assert!(m4 > m12, "{m4} vs {m12}");
    assert!(j12 > 0.85, "still fair: {j12}");
}

/// §7.1's mechanism: lower SIC means larger result error (COUNT is the
/// paper's strongest correlation).
#[test]
fn count_error_tracks_sic() {
    let run = |capacity: u32| -> (f64, f64) {
        let build = |cap: u32| {
            ScenarioBuilder::new("count-corr", 15)
                .nodes(1)
                .capacity_tps(cap)
                .duration(TimeDelta::from_secs(16))
                .warmup(TimeDelta::from_secs(8))
                .stw_window(TimeDelta::from_secs(5))
                .add_queries(Template::Count, 4, profile(40))
                .build()
                .unwrap()
        };
        let mut cfg = SimConfig::with_policy(PolicyKind::Random);
        cfg.record_results = true;
        let degraded = run_scenario(build(capacity), cfg.clone());
        let perfect = run_scenario(build(1_000_000), cfg);
        // Average counts across queries/windows.
        let avg_count = |r: &SimReport| -> f64 {
            let mut sum = 0.0;
            let mut n = 0;
            for records in r.results.values() {
                for (_, rows) in records {
                    sum += rows[0][0].as_f64();
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };
        (
            degraded.mean_sic(),
            avg_count(&degraded) / avg_count(&perfect),
        )
    };
    let (sic_hi, frac_hi) = run(120); // ~75% capacity
    let (sic_lo, frac_lo) = run(40); // ~25% capacity
    assert!(sic_hi > sic_lo);
    assert!(
        frac_hi > frac_lo,
        "count fraction follows SIC: {frac_hi} vs {frac_lo}"
    );
    // The degraded COUNT is roughly proportional to the SIC value.
    assert!((frac_lo - sic_lo).abs() < 0.25, "{frac_lo} vs {sic_lo}");
}

/// Table 1's structural claims hold for every template.
#[test]
fn table1_structure() {
    let mut src = IdGen::new();
    for (t, ops, sources) in [
        (Template::AvgAll { fragments: 4 }, 13, 10),
        (Template::Top5 { fragments: 4 }, 29, 20),
        (Template::Cov { fragments: 4 }, 5, 2),
    ] {
        let q = t.build(QueryId(0), &mut src);
        q.validate().unwrap();
        for f in &q.fragments {
            assert_eq!(f.n_operators(), ops);
        }
        assert_eq!(q.n_sources(), sources * 4);
    }
}
