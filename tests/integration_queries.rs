//! The declarative query frontend end to end: Table-1 parity through the
//! parser, actionable rejection messages, an externally registered
//! shedding policy driving the engine, and a `GROUP BY` query attached
//! at runtime dispatching the dictionary group-by kernel.

use themis::operators::kernels::group_kernel_invocations;
use themis::prelude::*;

/// The Table-1 presets at their quoted fragment counts.
fn table1() -> Vec<Template> {
    vec![
        Template::Avg,
        Template::Max,
        Template::Count,
        Template::AvgAll { fragments: 3 },
        Template::Top5 { fragments: 2 },
        Template::Cov { fragments: 2 },
    ]
}

/// Every Table-1 template's canonical text re-parses and compiles into
/// the operator-for-operator identical graph the preset builds.
#[test]
fn template_text_compiles_to_identical_graphs() {
    for t in table1() {
        let mut parsed_ids = IdGen::new();
        let mut preset_ids = IdGen::new();
        let via_text = QueryDef::parse(&t.text())
            .expect("template text parses")
            .named(t.name())
            .validate()
            .expect("template text validates")
            .compile(QueryId(3), &mut parsed_ids)
            .into_spec();
        assert_eq!(
            via_text,
            t.build(QueryId(3), &mut preset_ids),
            "{}",
            t.name()
        );
    }
}

/// An overloaded scenario built from parsed query text simulates to
/// bitwise-identical fairness numbers as the preset path, under every
/// policy in the registry — behavioural parity, not just structural.
#[test]
fn parsed_queries_simulate_identically_under_every_policy() {
    let t = Template::AvgAll { fragments: 2 };
    let parsed = QueryDef::parse(&t.text())
        .unwrap()
        .named(t.name())
        .validate()
        .unwrap();
    let profile = SourceProfile::steady(40, 4, Dataset::Uniform);
    let base = |seed| {
        ScenarioBuilder::new("spec-parity", seed)
            .nodes(2)
            .capacity_tps(300)
            .stw_window(TimeDelta::from_secs(3))
            .duration(TimeDelta::from_secs(12))
            .warmup(TimeDelta::from_secs(6))
    };
    for policy in registered_policies() {
        let via_template = run_scenario(
            base(17).add_queries(t, 4, profile).build().unwrap(),
            SimConfig::with_policy(policy.clone()),
        );
        let via_spec = run_scenario(
            base(17)
                .add_query_defs(&parsed, 4, profile)
                .build()
                .unwrap(),
            SimConfig::with_policy(policy.clone()),
        );
        assert!(
            via_template.shed_fraction() > 0.0,
            "{}: parity must be measured under overload",
            policy.name()
        );
        assert_eq!(
            via_template.mean_sic().to_bits(),
            via_spec.mean_sic().to_bits(),
            "{}: mean SIC diverged",
            policy.name()
        );
        assert_eq!(
            via_template.jain().to_bits(),
            via_spec.jain().to_bits(),
            "{}: Jain diverged",
            policy.name()
        );
    }
}

/// Frontend rejections name the offender and suggest the fix.
#[test]
fn rejections_are_actionable() {
    let err = |text: &str| match QueryDef::parse(text).and_then(|d| d.validate()) {
        Ok(_) => panic!("`{text}` should be rejected"),
        Err(e) => e.to_string(),
    };

    let unknown = err("SELECT AVG(temp) FROM cpu[4]");
    assert!(unknown.contains("unknown column `temp`"), "{unknown}");
    assert!(unknown.contains("value"), "{unknown}");

    let on_tag = err("SELECT host, MAX(host) FROM cpu[4] GROUP BY host");
    assert!(on_tag.contains("MAX over tag column `host`"), "{on_tag}");
    assert!(on_tag.contains("GROUP BY host"), "{on_tag}");

    let numeric_group = err("SELECT SUM(value) FROM cpu[4] GROUP BY value");
    assert!(
        numeric_group.contains("cannot GROUP BY numeric column"),
        "{numeric_group}"
    );

    let bad_cmp = err("SELECT AVG(value) FROM cpu[4] WHERE value != 3");
    assert!(bad_cmp.contains("unsupported comparison"), "{bad_cmp}");
}

/// A policy registered by this test — no `themis-core` edit — runs the
/// threaded engine under overload and reports its own name.
#[test]
fn externally_registered_policy_drives_the_engine() {
    // Newest-first admission: a policy none of the builtins implement.
    struct KeepNewest;
    impl Shedder for KeepNewest {
        fn select_to_keep(
            &mut self,
            capacity_tuples: usize,
            queries: &[QueryBufferState],
        ) -> ShedDecision {
            let mut all: Vec<(u64, usize, usize)> = queries
                .iter()
                .flat_map(|q| {
                    q.batches
                        .iter()
                        .map(|b| (b.created.as_micros(), b.buffer_index, b.tuples))
                })
                .collect();
            all.sort_unstable_by(|a, b| b.cmp(a));
            let mut keep = Vec::new();
            let mut kept_tuples = 0;
            for (_, idx, tuples) in all {
                if kept_tuples + tuples <= capacity_tuples {
                    keep.push(idx);
                    kept_tuples += tuples;
                }
            }
            let total: usize = queries.iter().map(|q| q.buffered_tuples()).sum();
            let batches: usize = queries.iter().map(|q| q.batches.len()).sum();
            ShedDecision {
                shed_tuples: total - kept_tuples,
                shed_batches: batches - keep.len(),
                keep,
                kept_tuples,
            }
        }
        fn name(&self) -> &'static str {
            "keep-newest"
        }
    }

    register_shedder("keep-newest", |_seed| Box::new(KeepNewest)).unwrap();
    assert!(registered_policy_names().contains(&"keep-newest".to_string()));

    let scenario = ScenarioBuilder::new("custom-policy-engine", 23)
        .nodes(2)
        .capacity_tps(1_000_000)
        .stw_window(TimeDelta::from_secs(1))
        .duration(TimeDelta::from_secs(2))
        .warmup(TimeDelta::from_millis(500))
        .add_queries(
            Template::Avg,
            4,
            SourceProfile::steady(400, 5, Dataset::Uniform),
        )
        .build()
        .unwrap();
    let report = run_engine(
        &scenario,
        EngineConfig {
            policy: lookup_policy("keep-newest").unwrap(),
            synthetic_cost: TimeDelta::from_micros(2000),
            ..Default::default()
        },
    );
    assert_eq!(report.policy, "keep-newest");
    assert!(
        report.shed_fraction() > 0.0,
        "custom shedder must actually run"
    );
}

/// A declarative `GROUP BY` query attached to the live engine
/// ([`Engine::attach_spec`]) dispatches the typed dictionary group-by
/// kernel and produces grouped results.
#[test]
fn attached_group_by_query_dispatches_the_kernel() {
    let scenario = ScenarioBuilder::new("attach-group-by", 29)
        .nodes(2)
        .capacity_tps(1_000_000)
        .stw_window(TimeDelta::from_secs(1))
        .duration(TimeDelta::from_secs(4))
        .warmup(TimeDelta::from_millis(500))
        .add_queries(
            Template::Avg,
            1,
            SourceProfile::steady(200, 5, Dataset::Uniform),
        )
        .build()
        .unwrap();
    let validated = QueryDef::parse("SELECT host, SUM(value) FROM sensors[4] GROUP BY host")
        .unwrap()
        .validate()
        .unwrap();

    let mut engine = Engine::start(&scenario, EngineConfig::default());
    engine.run_for(std::time::Duration::from_millis(500));
    let calls_before = group_kernel_invocations();
    let attached = engine.attach_spec(&validated, SourceProfile::steady(200, 5, Dataset::Uniform));
    engine.run_for(std::time::Duration::from_secs(3));
    let kernel_calls = group_kernel_invocations() - calls_before;
    let report = engine.finish();

    assert!(kernel_calls > 0, "group kernel never fired");
    assert!(
        report.result_counts.get(&attached).copied().unwrap_or(0) > 0,
        "attached GROUP BY query produced no results"
    );
}
