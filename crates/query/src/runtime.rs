//! Fragment runtime: instantiates a [`FragmentSpec`]'s operator DAG and
//! pushes tuples through it in topological order.
//!
//! Both the discrete-event simulator and the multi-threaded engine drive
//! fragments through this runtime: columnar batches accepted by the shedder
//! are [`FragmentRuntime::ingest`]ed (a move of the batch's columns, not a
//! per-tuple copy), and logical time advances via
//! [`FragmentRuntime::tick`]. Emissions of the fragment's root operator are
//! returned to the caller, which routes them to the downstream fragment (or
//! to the user as query results).

use std::collections::HashMap;

use themis_core::prelude::*;
use themis_operators::prelude::*;

use crate::graph::FragmentSpec;

/// Where an injected batch enters the fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ingress {
    /// A batch from a data source.
    Source(SourceId),
    /// A batch produced by the given upstream fragment of the same query.
    Upstream(usize),
}

/// An instantiated fragment: operators plus routing tables.
pub struct FragmentRuntime {
    ops: Vec<WindowedOperator>,
    /// Per-operator downstream targets `(op, port)`.
    downstream: Vec<Vec<(usize, usize)>>,
    topo: Vec<usize>,
    ingress: HashMap<Ingress, (usize, usize)>,
    root: usize,
    /// Tuples delivered to operators since the last cost probe.
    processed_since_probe: u64,
}

impl FragmentRuntime {
    /// Builds the runtime; the spec must be valid (see
    /// [`FragmentSpec::topo_order`]).
    pub fn new(spec: &FragmentSpec) -> Self {
        let ops: Vec<WindowedOperator> = spec.operators.iter().map(OperatorSpec::build).collect();
        let mut downstream = vec![Vec::new(); ops.len()];
        for e in &spec.edges {
            downstream[e.from].push((e.to, e.port));
        }
        let mut ingress = HashMap::new();
        for s in &spec.sources {
            ingress.insert(Ingress::Source(s.source), (s.op, s.port));
        }
        for u in &spec.upstreams {
            ingress.insert(Ingress::Upstream(u.fragment), (u.op, u.port));
        }
        let topo = spec.topo_order().expect("fragment spec must be acyclic");
        FragmentRuntime {
            ops,
            downstream,
            topo,
            ingress,
            root: spec.root,
            processed_since_probe: 0,
        }
    }

    /// The root operator's local index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Attaches a [`BatchPool`] to every operator: spent input and pane
    /// batches recycle instead of round-tripping the allocator (see
    /// [`WindowedOperator::set_pool`]).
    pub fn set_pool(&mut self, pool: &BatchPool) {
        for op in &mut self.ops {
            op.set_pool(pool.clone());
        }
    }

    /// Injects a columnar batch arriving through `ingress`; returns root
    /// emissions triggered synchronously (pass-through chains).
    pub fn ingest(
        &mut self,
        ingress: Ingress,
        batch: impl Into<TupleBatch>,
        now: Timestamp,
    ) -> Vec<Emission> {
        let Some(&(op, port)) = self.ingress.get(&ingress) else {
            // Unroutable data (e.g. a stale batch after reconfiguration) is
            // dropped; its SIC mass is lost like any shed tuple.
            return Vec::new();
        };
        let batch = batch.into();
        self.processed_since_probe += batch.len() as u64;
        self.run(now, vec![(op, port, batch)])
    }

    /// Advances logical time: closes due windows on every operator, in
    /// topological order, cascading intra-fragment emissions.
    pub fn tick(&mut self, now: Timestamp) -> Vec<Emission> {
        self.run(now, Vec::new())
    }

    /// Tuples ingested since the previous call (cost-model accounting).
    pub fn take_processed(&mut self) -> u64 {
        std::mem::take(&mut self.processed_since_probe)
    }

    /// Total tuples buffered in open windows across operators.
    pub fn buffered_tuples(&self) -> usize {
        self.ops.iter().map(WindowedOperator::buffered_tuples).sum()
    }

    /// Exports every operator's buffered window panes for checkpointing:
    /// `(op index, pane key, port, batch)` entries, ops addressed by their
    /// position (stable for a given spec).
    pub fn snapshot_windows(&self) -> Vec<(usize, PaneKey, usize, TupleBatch)> {
        let mut out = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            for (key, port, batch) in op.export_window() {
                out.push((i, key, port, batch));
            }
        }
        out
    }

    /// Restores one checkpointed pane into operator `op` (by position);
    /// entries for vanished operator indices are ignored — the bounded
    /// divergence a reconfigured restore accepts.
    pub fn restore_window(&mut self, op: usize, key: PaneKey, port: usize, batch: TupleBatch) {
        if let Some(op) = self.ops.get_mut(op) {
            op.import_window(key, port, batch);
        }
    }

    fn run(&mut self, now: Timestamp, initial: Vec<(usize, usize, TupleBatch)>) -> Vec<Emission> {
        let mut inbox: Vec<Vec<(usize, TupleBatch)>> = vec![Vec::new(); self.ops.len()];
        for (op, port, batch) in initial {
            inbox[op].push((port, batch));
        }
        let mut results = Vec::new();
        for idx in 0..self.topo.len() {
            let i = self.topo[idx];
            // Feed every pending delivery (all ports!) before draining, so
            // multi-port operators never close a pane with partial input.
            for (port, batch) in std::mem::take(&mut inbox[i]) {
                self.ops[i].feed(port, batch, now);
            }
            let emissions = self.ops[i].tick(now);
            if emissions.is_empty() {
                continue;
            }
            if i == self.root {
                results.extend(emissions);
            } else {
                for e in emissions {
                    for &(to, port) in &self.downstream[i] {
                        // Columnar clone: a handful of memcpys, not one
                        // allocation per tuple.
                        inbox[to].push((port, e.batch().clone()));
                    }
                }
            }
        }
        results
    }
}

impl std::fmt::Debug for FragmentRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FragmentRuntime")
            .field("ops", &self.ops.len())
            .field("root", &self.root)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Template;

    fn source_tuples(key: Option<i64>, n: usize, ms: u64, sic: f64, v: f64) -> Vec<Tuple> {
        (0..n)
            .map(|_| {
                let values = match key {
                    Some(k) => vec![Value::I64(k), Value::F64(v)],
                    None => vec![Value::F64(v)],
                };
                Tuple::new(Timestamp::from_millis(ms), Sic(sic), values)
            })
            .collect()
    }

    #[test]
    fn avg_query_end_to_end() {
        let mut gen = IdGen::new();
        let q = Template::Avg.build(QueryId(0), &mut gen);
        let mut rt = FragmentRuntime::new(&q.fragments[0]);
        let src = q.sources[0].id;
        // 10 tuples of value 40 and 10 of value 60 within the first second.
        rt.ingest(
            Ingress::Source(src),
            source_tuples(None, 10, 100, 0.05, 40.0),
            Timestamp::from_millis(100),
        );
        rt.ingest(
            Ingress::Source(src),
            source_tuples(None, 10, 600, 0.05, 60.0),
            Timestamp::from_millis(600),
        );
        // Window [0,1s) closes after its grace (500 ms).
        assert!(rt.tick(Timestamp::from_millis(1000)).is_empty());
        let out = rt.tick(Timestamp::from_millis(1500));
        assert_eq!(out.len(), 1);
        let result = out[0].batch().row(0).to_tuple();
        assert_eq!(result.f64(0), 50.0);
        // All source SIC mass arrives at the result: 20 * 0.05 = 1.0.
        assert!((result.sic.value() - 1.0).abs() < 1e-12);
        assert_eq!(rt.take_processed(), 20);
        assert_eq!(rt.take_processed(), 0);
    }

    #[test]
    fn unroutable_ingress_is_dropped() {
        let mut gen = IdGen::new();
        let q = Template::Avg.build(QueryId(0), &mut gen);
        let mut rt = FragmentRuntime::new(&q.fragments[0]);
        let out = rt.ingest(
            Ingress::Source(SourceId(999)),
            source_tuples(None, 5, 0, 0.1, 1.0),
            Timestamp(0),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn cov_fragment_produces_covariance() {
        let mut gen = IdGen::new();
        let q = Template::Cov { fragments: 1 }.build(QueryId(0), &mut gen);
        let mut rt = FragmentRuntime::new(&q.fragments[0]);
        let (s0, s1) = (q.sources[0].id, q.sources[1].id);
        // Positively correlated series.
        for i in 0..8u64 {
            let ms = 100 * i + 50;
            rt.ingest(
                Ingress::Source(s0),
                source_tuples(None, 1, ms, 0.0625, i as f64),
                Timestamp::from_millis(ms),
            );
            rt.ingest(
                Ingress::Source(s1),
                source_tuples(None, 1, ms, 0.0625, 2.0 * i as f64),
                Timestamp::from_millis(ms),
            );
        }
        // COV merge window sits at chain position 0 (grace 500 ms), but the
        // merge window consumes cov outputs stamped at 1s-1us, closing at
        // 1s + grace; tick well past it.
        let out = rt.tick(Timestamp::from_millis(2500));
        assert_eq!(out.len(), 1, "one covariance result");
        assert!(out[0].batch().row(0).f64(0) > 0.0, "positive covariance");
        // Mass: 16 tuples * 0.0625 = 1.0.
        assert!((out[0].sic().value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top5_fragment_emits_ranked_list() {
        let mut gen = IdGen::new();
        let q = Template::Top5 { fragments: 1 }.build(QueryId(0), &mut gen);
        let mut rt = FragmentRuntime::new(&q.fragments[0]);
        // Feed each cpu source a distinct load, all mem sources pass filter.
        for (i, s) in q.sources.iter().enumerate() {
            let key = s.key.unwrap();
            let (v, n) = match s.kind {
                crate::graph::SourceKind::Cpu => (10.0 + key as f64, 4),
                _ => (200_000.0, 4),
            };
            let _ = i;
            rt.ingest(
                Ingress::Source(s.id),
                source_tuples(Some(key), n, 500, 1.0 / 80.0, v),
                Timestamp::from_millis(500),
            );
        }
        let out = rt.tick(Timestamp::from_millis(2500));
        assert_eq!(out.len(), 1);
        let rows = out[0].batch();
        assert_eq!(rows.len(), 5, "top-5 list");
        // Highest CPU id is 9 (value 19.0).
        assert_eq!(rows.row(0).i64(0), 9);
        // All 80 source tuples contributed: mass 1.
        assert!((out[0].sic().value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn avg_all_tree_merges_partials() {
        let mut gen = IdGen::new();
        let q = Template::AvgAll { fragments: 3 }.build(QueryId(0), &mut gen);
        let mut roots: Vec<FragmentRuntime> =
            q.fragments.iter().map(FragmentRuntime::new).collect();
        // Feed every fragment's sources; leaf f gets values f*10.
        for (fi, frag) in q.fragments.iter().enumerate() {
            for b in &frag.sources {
                roots[fi].ingest(
                    Ingress::Source(b.source),
                    source_tuples(None, 2, 300, 1.0 / 60.0, (fi * 10) as f64),
                    Timestamp::from_millis(300),
                );
            }
        }
        // Leaves emit partials after 1 s + 500 ms grace.
        let mut partials = Vec::new();
        for (fi, rt) in roots.iter_mut().enumerate().skip(1) {
            let out = rt.tick(Timestamp::from_millis(1600));
            assert_eq!(out.len(), 1, "leaf {fi} partial");
            partials.push((fi, out.into_iter().next().unwrap()));
        }
        // Root merges local + upstream partials; its merge grace is 1 s.
        for (fi, e) in partials {
            roots[0].ingest(
                Ingress::Upstream(fi),
                e.into_batch(),
                Timestamp::from_millis(1650),
            );
        }
        let out = roots[0].tick(Timestamp::from_millis(2600));
        assert_eq!(out.len(), 1, "final average");
        let avg = out[0].batch().row(0).f64(0);
        // 20 tuples each of 0, 10, 20 -> global average 10.
        assert!((avg - 10.0).abs() < 1e-9, "avg {avg}");
        // Full SIC mass: 60 tuples * 1/60.
        assert!((out[0].sic().value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pooled_runtime_recycles_spent_batches() {
        let mut gen = IdGen::new();
        let q = Template::Avg.build(QueryId(0), &mut gen);
        let mut rt = FragmentRuntime::new(&q.fragments[0]);
        let pool = BatchPool::new();
        rt.set_pool(&pool);
        let src = q.sources[0].clone();
        let mut b = pool.acquire(&src.schema(), 2);
        for v in [40.0, 60.0] {
            b.push_row(Timestamp::from_millis(100), Sic(0.05), &[Value::F64(v)]);
        }
        rt.ingest(Ingress::Source(src.id), b, Timestamp::from_millis(100));
        let out = rt.tick(Timestamp::from_millis(1500));
        assert_eq!(out.len(), 1);
        // The ingested batch and the closed pane's columns came back.
        let stats = pool.stats();
        assert!(stats.recycled >= 2, "{stats:?}");
        assert!(pool.idle() >= 1);
        // A later acquisition of the same schema reuses a pooled slot.
        let _ = pool.acquire(&src.schema(), 2);
        assert!(pool.stats().reused >= 1);
    }

    #[test]
    fn buffered_tuples_reflects_open_windows() {
        let mut gen = IdGen::new();
        let q = Template::Avg.build(QueryId(0), &mut gen);
        let mut rt = FragmentRuntime::new(&q.fragments[0]);
        rt.ingest(
            Ingress::Source(q.sources[0].id),
            source_tuples(None, 7, 100, 0.1, 1.0),
            Timestamp::from_millis(100),
        );
        assert_eq!(rt.buffered_tuples(), 7);
        rt.tick(Timestamp::from_millis(1500));
        assert_eq!(rt.buffered_tuples(), 0);
    }
}
