//! # themis-query
//!
//! Query graphs, fragments and deployments for THEMIS (§3 of the paper),
//! the Table-1 evaluation workloads, and the fragment runtime shared by the
//! simulator and the prototype engine.
//!
//! * [`graph`] — [`graph::QuerySpec`] / [`graph::FragmentSpec`]: operator
//!   DAGs partitioned into fragments, with validation;
//! * [`spec`] — the declarative frontend: a SQL-ish text parser and a
//!   typed builder, staged `Draft → Validated → Compiled` into
//!   [`graph::QuerySpec`];
//! * [`templates`] — the aggregate (`AVG`, `MAX`, `COUNT`) and complex
//!   (`AVG-all`, `TOP-5`, `COV`) workloads of Table 1, as presets over
//!   [`spec`];
//! * [`placement`] — round-robin and Zipf fragment placement under the
//!   "one node per fragment of a query" constraint;
//! * [`runtime`] — [`runtime::FragmentRuntime`], which executes a
//!   fragment's operators with SIC propagation.
//!
//! ```
//! use themis_core::prelude::*;
//! use themis_query::prelude::*;
//!
//! let mut sources = IdGen::new();
//! let q = Template::Top5 { fragments: 2 }.build(QueryId(0), &mut sources);
//! assert_eq!(q.n_fragments(), 2);
//! assert_eq!(q.fragments[0].n_operators(), 29); // Table 1
//! q.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod placement;
pub mod runtime;
pub mod spec;
pub mod templates;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::graph::{
        keyed_measurement_schema, measurement_schema, FragmentSpec, LocalEdge, QueryError,
        QuerySpec, SourceBinding, SourceKind, SourceSpec, TagSource, UpstreamBinding,
    };
    pub use crate::placement::{place, Deployment, PlacementError, PlacementPolicy};
    pub use crate::runtime::{FragmentRuntime, Ingress};
    pub use crate::spec::{
        AggFunc, CompiledQuery, MergeShape, QueryDef, Select, SpecError, StreamDef, ValidatedQuery,
    };
    pub use crate::templates::Template;
}
