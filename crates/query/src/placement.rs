//! Fragment-to-node placement.
//!
//! The paper assumes placement is chosen by the query user and fixed for the
//! query's lifetime (§3); fragments of one query always land on *different*
//! nodes. The evaluation uses round-robin-style balanced placements and a
//! Zipf-skewed placement for the scalability experiment (§7.3, Fig. 12),
//! reflecting characteristic C1 (skewed query workload distribution).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use themis_core::prelude::*;

use crate::graph::QuerySpec;

/// Maps every fragment of every query to its hosting node.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    assignments: HashMap<(QueryId, usize), NodeId>,
}

impl Deployment {
    /// Creates an empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns one fragment to a node.
    pub fn assign(&mut self, query: QueryId, fragment: usize, node: NodeId) {
        self.assignments.insert((query, fragment), node);
    }

    /// The node hosting `(query, fragment)`.
    pub fn node_of(&self, query: QueryId, fragment: usize) -> Option<NodeId> {
        self.assignments.get(&(query, fragment)).copied()
    }

    /// All nodes hosting fragments of `query` (deduplicated, sorted).
    pub fn hosts_of(&self, query: QueryId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .assignments
            .iter()
            .filter(|((q, _), _)| *q == query)
            .map(|(_, &n)| n)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Number of fragments assigned per node.
    pub fn load_per_node(&self) -> HashMap<NodeId, usize> {
        let mut load = HashMap::new();
        for &node in self.assignments.values() {
            *load.entry(node).or_insert(0) += 1;
        }
        load
    }

    /// Total assignments.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Checks the paper's constraint: fragments of one query never share a
    /// node, and every fragment of every given query is assigned.
    pub fn validate(&self, queries: &[QuerySpec]) -> Result<(), PlacementError> {
        for q in queries {
            let mut seen: Vec<NodeId> = Vec::with_capacity(q.n_fragments());
            for f in 0..q.n_fragments() {
                let Some(node) = self.node_of(q.id, f) else {
                    return Err(PlacementError::Unassigned {
                        query: q.id,
                        fragment: f,
                    });
                };
                if seen.contains(&node) {
                    return Err(PlacementError::SharedNode { query: q.id, node });
                }
                seen.push(node);
            }
        }
        Ok(())
    }
}

/// Placement failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// A fragment has no node.
    Unassigned {
        /// The query.
        query: QueryId,
        /// The fragment index.
        fragment: usize,
    },
    /// Two fragments of one query share a node.
    SharedNode {
        /// The query.
        query: QueryId,
        /// The shared node.
        node: NodeId,
    },
    /// A query has more fragments than there are nodes.
    TooFewNodes {
        /// The query.
        query: QueryId,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Unassigned { query, fragment } => {
                write!(f, "fragment {fragment} of {query} unassigned")
            }
            PlacementError::SharedNode { query, node } => {
                write!(f, "{query} has two fragments on {node}")
            }
            PlacementError::TooFewNodes { query } => {
                write!(f, "{query} has more fragments than nodes")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementPolicy {
    /// Balanced: fragments cycle through nodes, each query starting where
    /// the previous one stopped. Beware: when the workload cycles query
    /// templates with a period that divides the node count, round-robin
    /// aligns templates with nodes and co-locates only same-template
    /// fragments; prefer [`PlacementPolicy::UniformRandom`] for mixed
    /// workloads.
    RoundRobin,
    /// Each query's fragments land on a uniformly random set of distinct
    /// nodes (the paper's multi-node evaluations deploy fragments
    /// randomly).
    UniformRandom,
    /// Zipf-skewed: node `k` (1-based rank) is chosen with probability
    /// proportional to `1/k^s` — some sites host far more fragments than
    /// others (§7.3).
    Zipf {
        /// Skew exponent (the paper's scalability runs use ≈ 1).
        exponent: f64,
    },
}

/// Computes a deployment of `queries` over `n_nodes` nodes.
///
/// Fragments of one query are always placed on distinct nodes; queries with
/// more fragments than nodes are rejected.
pub fn place(
    queries: &[QuerySpec],
    n_nodes: usize,
    policy: PlacementPolicy,
    rng: &mut StdRng,
) -> Result<Deployment, PlacementError> {
    let mut deployment = Deployment::new();
    let mut cursor = 0usize;
    for q in queries {
        if q.n_fragments() > n_nodes {
            return Err(PlacementError::TooFewNodes { query: q.id });
        }
        match policy {
            PlacementPolicy::RoundRobin => {
                for f in 0..q.n_fragments() {
                    deployment.assign(q.id, f, NodeId((cursor % n_nodes) as u32));
                    cursor += 1;
                }
            }
            PlacementPolicy::UniformRandom => {
                // Sample a distinct node per fragment, uniformly.
                let mut available: Vec<usize> = (0..n_nodes).collect();
                for f in 0..q.n_fragments() {
                    let pick = rng.gen_range(0..available.len());
                    deployment.assign(q.id, f, NodeId(available.swap_remove(pick) as u32));
                }
            }
            PlacementPolicy::Zipf { exponent } => {
                let mut weights: Vec<f64> = (1..=n_nodes)
                    .map(|k| 1.0 / (k as f64).powf(exponent))
                    .collect();
                for f in 0..q.n_fragments() {
                    let total: f64 = weights.iter().sum();
                    let mut x = rng.gen::<f64>() * total;
                    let mut pick = 0;
                    for (i, &w) in weights.iter().enumerate() {
                        if w <= 0.0 {
                            continue;
                        }
                        x -= w;
                        pick = i;
                        if x <= 0.0 {
                            break;
                        }
                    }
                    deployment.assign(q.id, f, NodeId(pick as u32));
                    // Without replacement within one query.
                    weights[pick] = 0.0;
                }
            }
        }
    }
    Ok(deployment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::Template;
    use rand::SeedableRng;

    fn queries(n: usize, fragments: usize) -> Vec<QuerySpec> {
        let mut src = IdGen::new();
        (0..n)
            .map(|i| Template::Cov { fragments }.build(QueryId(i as u32), &mut src))
            .collect()
    }

    #[test]
    fn round_robin_balances() {
        let qs = queries(10, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let d = place(&qs, 6, PlacementPolicy::RoundRobin, &mut rng).unwrap();
        assert_eq!(d.len(), 30);
        d.validate(&qs).unwrap();
        let load = d.load_per_node();
        assert!(load.values().all(|&l| l == 5), "{load:?}");
    }

    #[test]
    fn zipf_skews_load() {
        let qs = queries(200, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let d = place(&qs, 10, PlacementPolicy::Zipf { exponent: 1.0 }, &mut rng).unwrap();
        d.validate(&qs).unwrap();
        let load = d.load_per_node();
        let first = *load.get(&NodeId(0)).unwrap_or(&0);
        let last = *load.get(&NodeId(9)).unwrap_or(&0);
        assert!(
            first > 2 * last.max(1),
            "zipf should load node 0 far more: {first} vs {last}"
        );
    }

    #[test]
    fn fragments_never_share_nodes() {
        let qs = queries(50, 4);
        let mut rng = StdRng::seed_from_u64(3);
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::Zipf { exponent: 1.0 },
        ] {
            let d = place(&qs, 4, policy, &mut rng).unwrap();
            d.validate(&qs).unwrap();
        }
    }

    #[test]
    fn too_few_nodes_rejected() {
        let qs = queries(1, 5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            place(&qs, 4, PlacementPolicy::RoundRobin, &mut rng).err(),
            Some(PlacementError::TooFewNodes { query: QueryId(0) })
        );
    }

    #[test]
    fn hosts_of_lists_unique_nodes() {
        let qs = queries(1, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let d = place(&qs, 5, PlacementPolicy::RoundRobin, &mut rng).unwrap();
        let hosts = d.hosts_of(QueryId(0));
        assert_eq!(hosts.len(), 3);
    }

    #[test]
    fn validate_detects_missing_and_shared() {
        let qs = queries(1, 2);
        let mut d = Deployment::new();
        d.assign(QueryId(0), 0, NodeId(0));
        assert!(matches!(
            d.validate(&qs),
            Err(PlacementError::Unassigned { .. })
        ));
        d.assign(QueryId(0), 1, NodeId(0));
        assert!(matches!(
            d.validate(&qs),
            Err(PlacementError::SharedNode { .. })
        ));
    }
}
