//! The text front-end: a hand-rolled lexer and recursive-descent parser
//! for the surface syntax described in the [module docs](super). Parsing
//! only builds a [`QueryDef`] draft — semantic checks live in
//! [`validate`](super::validate).

use themis_core::prelude::TimeDelta;
use themis_operators::prelude::CmpOp;

use super::def::{AggFunc, FilterDef, MergeShape, QueryDef, Select, StreamDef};
use super::validate::SpecError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Cmp(CmpOp),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Number(n) => format!("number `{n}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Cmp(_) => "comparison operator".into(),
        }
    }
}

fn err(pos: usize, message: impl Into<String>) -> SpecError {
    SpecError::Parse {
        pos,
        message: message.into(),
    }
}

fn lex(text: &str) -> Result<Vec<(usize, Tok)>, SpecError> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '[' => {
                toks.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                toks.push((i, Tok::RBracket));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '.' => {
                toks.push((i, Tok::Dot));
                i += 1;
            }
            '<' | '>' | '=' | '!' => {
                let two = &text[i..(i + 2).min(text.len())];
                let (op, len) = match two {
                    "<=" => (Some(CmpOp::Le), 2),
                    ">=" => (Some(CmpOp::Ge), 2),
                    "==" => (Some(CmpOp::Eq), 2),
                    "!=" => (None, 2),
                    _ if c == '<' => (Some(CmpOp::Lt), 1),
                    _ if c == '>' => (Some(CmpOp::Gt), 1),
                    _ if c == '=' => (Some(CmpOp::Eq), 1),
                    _ => (None, 1),
                };
                match op {
                    Some(op) => toks.push((i, Tok::Cmp(op))),
                    None => {
                        return Err(err(
                            i,
                            format!(
                                "unsupported comparison `{}` (use <, <=, >, >= or ==)",
                                &two[..len]
                            ),
                        ))
                    }
                }
                i += len;
            }
            '0'..='9' => {
                let start = i;
                let mut seen_dot = false;
                let mut digits = String::new();
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        digits.push(d);
                        i += 1;
                    } else if d == '_' {
                        i += 1;
                    } else if d == '.'
                        && !seen_dot
                        && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                    {
                        seen_dot = true;
                        digits.push('.');
                        i += 1;
                    } else {
                        break;
                    }
                }
                let n: f64 = digits
                    .parse()
                    .map_err(|_| err(start, format!("bad number `{digits}`")))?;
                toks.push((start, Tok::Number(n)));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((start, Tok::Ident(text[start..i].to_string())));
            }
            other => return Err(err(i, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|(p, _)| *p).unwrap_or(self.end)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// True when the next token is the given keyword (case-insensitive);
    /// consumes it if so.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SpecError> {
        let pos = self.here();
        if self.eat_kw(kw) {
            Ok(())
        } else {
            match self.peek() {
                Some(t) => Err(err(pos, format!("expected `{kw}`, found {}", t.describe()))),
                None => Err(err(pos, format!("expected `{kw}`, found end of query"))),
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SpecError> {
        let pos = self.here();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(err(pos, format!("expected {what}, found {}", t.describe()))),
            None => Err(err(pos, format!("expected {what}, found end of query"))),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64, SpecError> {
        let pos = self.here();
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            Some(t) => Err(err(pos, format!("expected {what}, found {}", t.describe()))),
            None => Err(err(pos, format!("expected {what}, found end of query"))),
        }
    }

    fn expect_uint(&mut self, what: &str) -> Result<usize, SpecError> {
        let pos = self.here();
        let n = self.expect_number(what)?;
        if n.fract() != 0.0 || n < 0.0 || n > usize::MAX as f64 {
            return Err(err(pos, format!("expected {what}, found `{n}`")));
        }
        Ok(n as usize)
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<(), SpecError> {
        let pos = self.here();
        match self.next() {
            Some(t) if t == tok => Ok(()),
            Some(t) => Err(err(pos, format!("expected {what}, found {}", t.describe()))),
            None => Err(err(pos, format!("expected {what}, found end of query"))),
        }
    }

    /// `FUNC ( column )`, with the function name already consumed.
    fn agg_tail(
        &mut self,
        func_name: &str,
        func_pos: usize,
    ) -> Result<(AggFunc, String), SpecError> {
        let func = AggFunc::parse(func_name).ok_or_else(|| {
            err(
                func_pos,
                format!(
                    "unknown aggregate `{func_name}` (expected AVG, MAX, MIN, SUM, COUNT or COV)"
                ),
            )
        })?;
        self.expect_tok(Tok::LParen, "`(`")?;
        let column = self.expect_ident("a column name")?;
        self.expect_tok(Tok::RParen, "`)`")?;
        Ok((func, column))
    }

    /// `name[count]` (count defaults to 1).
    fn stream(&mut self) -> Result<StreamDef, SpecError> {
        let name = self.expect_ident("a stream name")?;
        let mut count = 1;
        if self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            count = self.expect_uint("a source count")?;
            self.expect_tok(Tok::RBracket, "`]`")?;
        }
        Ok(StreamDef::new(name, count))
    }

    /// `number unit` where unit is `s`, `ms` or `us`.
    fn duration(&mut self) -> Result<TimeDelta, SpecError> {
        let n = self.expect_number("a window length like `1s`")?;
        let pos = self.here();
        let unit = self.expect_ident("a time unit (`s`, `ms` or `us`)")?;
        let per = match unit.to_ascii_lowercase().as_str() {
            "s" | "sec" | "secs" => 1_000_000.0,
            "ms" => 1_000.0,
            "us" => 1.0,
            other => {
                return Err(err(
                    pos,
                    format!("unknown time unit `{other}` (use s, ms or us)"),
                ))
            }
        };
        Ok(TimeDelta::from_micros((n * per).round() as u64))
    }
}

pub(super) fn parse(text: &str) -> Result<QueryDef, SpecError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: text.len(),
    };

    p.expect_kw("SELECT")?;

    // SELECT clause: `TOP k key BY AGG(col)`, `group, AGG(col)` or
    // `AGG(col)`.
    let mut selected_group: Option<(usize, String)> = None;
    let select = if p.eat_kw("TOP") {
        let k = p.expect_uint("a rank count after TOP")?;
        let key = p.expect_ident("a key column after TOP k")?;
        p.expect_kw("BY")?;
        let func_pos = p.here();
        let func_name = p.expect_ident("an aggregate function")?;
        let (func, column) = p.agg_tail(&func_name, func_pos)?;
        Select::TopK {
            k,
            key,
            func,
            column,
        }
    } else {
        let first_pos = p.here();
        let first = p.expect_ident("an aggregate function or group column")?;
        if p.peek() == Some(&Tok::Comma) {
            p.pos += 1;
            let func_pos = p.here();
            let func_name = p.expect_ident("an aggregate function")?;
            let (func, column) = p.agg_tail(&func_name, func_pos)?;
            selected_group = Some((first_pos, first));
            Select::Agg { func, column }
        } else {
            let (func, column) = p.agg_tail(&first, first_pos)?;
            Select::Agg { func, column }
        }
    };

    p.expect_kw("FROM")?;
    let primary = p.stream()?;
    let mut def = match &select {
        Select::Agg { func, column } => QueryDef::aggregate(*func, column.clone()),
        Select::TopK {
            k,
            key,
            func,
            column,
        } => QueryDef::top_k(*k, key.clone(), *func, column.clone()),
    };
    def = def.from_stream(primary);

    if p.eat_kw("JOIN") {
        let joined = p.stream()?;
        p.expect_kw("ON")?;
        let on = p.expect_ident("a join key column")?;
        def = def.join(joined, on);
    }

    if p.eat_kw("WHERE") {
        let first = p.expect_ident("a column in WHERE")?;
        let (stream, column) = if p.peek() == Some(&Tok::Dot) {
            p.pos += 1;
            (Some(first), p.expect_ident("a column after `.`")?)
        } else {
            (None, first)
        };
        let pos = p.here();
        let op = match p.next() {
            Some(Tok::Cmp(op)) => op,
            Some(t) => {
                return Err(err(
                    pos,
                    format!("expected a comparison operator, found {}", t.describe()),
                ))
            }
            None => {
                return Err(err(
                    pos,
                    "expected a comparison operator, found end of query",
                ))
            }
        };
        let value = p.expect_number("a constant in WHERE")?;
        def.filter = Some(FilterDef {
            stream,
            column,
            op,
            value,
        });
    }

    if p.eat_kw("GROUP") {
        p.expect_kw("BY")?;
        let col = p.expect_ident("a column after GROUP BY")?;
        def = def.group_by(col);
    }

    if p.eat_kw("WINDOW") {
        def.window = p.duration()?;
    }

    if p.eat_kw("FRAGMENTS") {
        def.fragments = p.expect_uint("a fragment count")?;
    }

    if p.eat_kw("MERGE") {
        let pos = p.here();
        if p.eat_kw("CHAIN") {
            def.merge = MergeShape::Chain;
        } else if p.eat_kw("TREE") {
            def.merge = MergeShape::Tree;
        } else {
            return Err(err(pos, "expected `CHAIN` or `TREE` after MERGE"));
        }
    }

    if let Some(t) = p.peek() {
        return Err(err(
            p.here(),
            format!(
                "unexpected {} — clauses must appear in the order \
                 JOIN, WHERE, GROUP BY, WINDOW, FRAGMENTS, MERGE",
                t.describe()
            ),
        ));
    }

    // `SELECT g, AGG(v) ... GROUP BY g`: the selected group column and the
    // GROUP BY clause must agree; selecting one implies grouping by it.
    if let Some((pos, g)) = selected_group {
        match &def.group_by {
            None => def.group_by = Some(g),
            Some(existing) if *existing == g => {}
            Some(existing) => {
                return Err(err(
                    pos,
                    format!("selected group column `{g}` does not match GROUP BY `{existing}`"),
                ))
            }
        }
    }

    Ok(def)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_simple_aggregate() {
        let d = parse("SELECT AVG(value) FROM src WINDOW 1s").unwrap();
        assert_eq!(
            d.select,
            Select::Agg {
                func: AggFunc::Avg,
                column: "value".into()
            }
        );
        assert_eq!(d.streams, vec![StreamDef::new("src", 1)]);
        assert_eq!(d.window, TimeDelta::from_secs(1));
        assert_eq!(d.fragments, 1);
    }

    #[test]
    fn parses_every_clause() {
        let d = parse(
            "select top 5 key by avg(value) from cpu[10] join mem[10] on key \
             where mem.value >= 100_000 window 1s fragments 4 merge chain",
        )
        .unwrap();
        assert_eq!(
            d.select,
            Select::TopK {
                k: 5,
                key: "key".into(),
                func: AggFunc::Avg,
                column: "value".into()
            }
        );
        assert_eq!(d.streams.len(), 2);
        assert_eq!(d.streams[1].name, "mem");
        assert_eq!(d.join_on.as_deref(), Some("key"));
        let f = d.filter.unwrap();
        assert_eq!(f.stream.as_deref(), Some("mem"));
        assert_eq!(f.op, CmpOp::Ge);
        assert_eq!(f.value, 100_000.0);
        assert_eq!(d.fragments, 4);
    }

    #[test]
    fn parses_group_select_and_reconciles_group_by() {
        let d = parse("SELECT host, SUM(value) FROM sensors[8] GROUP BY host WINDOW 1s").unwrap();
        assert_eq!(d.group_by.as_deref(), Some("host"));
        // Selecting the group column alone implies GROUP BY.
        let d2 = parse("SELECT host, SUM(value) FROM sensors[8] WINDOW 1s").unwrap();
        assert_eq!(d2.group_by.as_deref(), Some("host"));
        let e = parse("SELECT host, SUM(value) FROM s GROUP BY rack").unwrap_err();
        assert!(e.to_string().contains("does not match GROUP BY"));
    }

    #[test]
    fn parses_durations() {
        for (text, us) in [("2s", 2_000_000), ("250ms", 250_000), ("1500us", 1_500)] {
            let d = parse(&format!("SELECT AVG(value) FROM s WINDOW {text}")).unwrap();
            assert_eq!(d.window.as_micros(), us, "{text}");
        }
    }

    #[test]
    fn errors_name_the_offender() {
        let e = parse("SELECT MEDIAN(value) FROM s").unwrap_err();
        assert!(e.to_string().contains("unknown aggregate `MEDIAN`"), "{e}");

        let e = parse("SELECT AVG(value) FROM s WHERE value != 3").unwrap_err();
        assert!(e.to_string().contains("unsupported comparison"), "{e}");

        let e = parse("SELECT AVG(value)").unwrap_err();
        assert!(e.to_string().contains("expected `FROM`"), "{e}");

        let e = parse("SELECT AVG(value) FROM s WINDOW 1 fortnights").unwrap_err();
        assert!(e.to_string().contains("unknown time unit"), "{e}");

        let e = parse("SELECT AVG(value) FROM s LIMIT 3").unwrap_err();
        assert!(e.to_string().contains("unexpected"), "{e}");
    }

    #[test]
    fn round_trips_through_text() {
        for text in [
            "SELECT AVG(value) FROM src[1] WINDOW 1s",
            "SELECT COUNT(value) FROM src[1] WHERE value >= 50 WINDOW 1s",
            "SELECT AVG(value) FROM cpu[10] WINDOW 1s FRAGMENTS 4 MERGE TREE",
            "SELECT TOP 5 key BY AVG(value) FROM cpu[10] JOIN mem[10] ON key \
             WHERE mem.value >= 100000 WINDOW 1s FRAGMENTS 2",
            "SELECT COV(value) FROM cpu[2] WINDOW 1s FRAGMENTS 3",
            "SELECT host, SUM(value) FROM sensors[8] GROUP BY host WINDOW 1s",
        ] {
            let d = parse(text).unwrap();
            assert_eq!(d.text(), text, "canonical form differs");
            assert_eq!(parse(&d.text()).unwrap(), d, "re-parse differs");
        }
    }
}
