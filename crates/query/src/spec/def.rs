//! The *Draft* stage: [`QueryDef`], an untyped-but-structured query
//! definition produced by the text parser or the builder API.
//!
//! A draft makes no semantic promises — columns may not exist, aggregates
//! may target tag columns, fragment shapes may be inconsistent. All of
//! that is checked exactly once by [`QueryDef::validate`], which is the
//! only way to obtain a [`ValidatedQuery`](super::ValidatedQuery); the
//! later stages are therefore correct by construction.

use std::fmt;

use themis_core::prelude::TimeDelta;
use themis_operators::prelude::CmpOp;

use super::validate::{SpecError, ValidatedQuery};
use crate::graph::SourceKind;

/// Aggregate functions of the declarative query language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Arithmetic mean of the aggregated column.
    Avg,
    /// Maximum of the aggregated column.
    Max,
    /// Minimum of the aggregated column.
    Min,
    /// Sum of the aggregated column.
    Sum,
    /// Row count (an optional `WHERE` acts as the paper's `Having`).
    Count,
    /// Covariance of two source streams (Table 1's `COV`).
    Cov,
}

impl AggFunc {
    /// Every aggregate function, in surface-syntax order.
    pub const ALL: [AggFunc; 6] = [
        AggFunc::Avg,
        AggFunc::Max,
        AggFunc::Min,
        AggFunc::Sum,
        AggFunc::Count,
        AggFunc::Cov,
    ];

    /// Canonical (upper-case) surface spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Avg => "AVG",
            AggFunc::Max => "MAX",
            AggFunc::Min => "MIN",
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Cov => "COV",
        }
    }

    /// Parses a function name, case-insensitively.
    pub fn parse(s: &str) -> Option<AggFunc> {
        let up = s.to_ascii_uppercase();
        AggFunc::ALL.into_iter().find(|f| f.name() == up)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One input stream declaration — `cpu[10]` in the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDef {
    /// Stream name (used for `WHERE` qualification and tag labels).
    pub name: String,
    /// Number of physical sources feeding each fragment.
    pub count: usize,
    /// What the sources measure; drives the workload generators.
    pub kind: SourceKind,
}

impl StreamDef {
    /// Declares a stream of `count` sources per fragment. The source kind
    /// is inferred from the name: `cpu*` streams report CPU usage, `mem*`
    /// streams report free memory, anything else is a generic measurement.
    pub fn new(name: impl Into<String>, count: usize) -> StreamDef {
        let name = name.into();
        let kind = infer_kind(&name);
        StreamDef { name, count, kind }
    }

    /// Overrides the inferred source kind.
    pub fn with_kind(mut self, kind: SourceKind) -> StreamDef {
        self.kind = kind;
        self
    }
}

fn infer_kind(name: &str) -> SourceKind {
    let lower = name.to_ascii_lowercase();
    if lower.starts_with("cpu") {
        SourceKind::Cpu
    } else if lower.starts_with("mem") {
        SourceKind::MemFree
    } else {
        SourceKind::Generic
    }
}

/// A `WHERE` predicate: `[stream.]column <cmp> value`.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterDef {
    /// Qualifying stream name (`mem` in `mem.value`), if any. Required
    /// when the query joins two streams.
    pub stream: Option<String>,
    /// Column the predicate reads.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand constant.
    pub value: f64,
}

/// The `SELECT` clause of a draft query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Select {
    /// A plain aggregate: `AGG(column)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Column to aggregate.
        column: String,
    },
    /// A ranking query: `TOP k key BY AGG(column)`.
    TopK {
        /// How many keys to keep.
        k: usize,
        /// Key column identifying ranked entities.
        key: String,
        /// Ranking aggregate.
        func: AggFunc,
        /// Column the ranking aggregate reads.
        column: String,
    },
}

/// How a multi-fragment query combines per-fragment partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeShape {
    /// Fragments form a chain; each merges the upstream fragment's
    /// partial into its local result (Table 1's `TOP-5` / `COV`).
    #[default]
    Chain,
    /// Fragments form a depth-1 tree: every fragment sends its partial to
    /// fragment 0, which merges them (Table 1's `AVG-all`).
    Tree,
}

/// A draft query definition — the entry stage of the
/// `Draft → Validated → Compiled` pipeline.
///
/// Construct one with the builder API ([`QueryDef::aggregate`],
/// [`QueryDef::top_k`] plus the chainable setters) or from text with
/// [`QueryDef::parse`]; both produce the same structure, so every query
/// expressible in the surface language is expressible in code and vice
/// versa. Fields are public: a draft is plain data and carries no
/// invariants — those are established by [`QueryDef::validate`].
///
/// ```
/// use themis_query::spec::{AggFunc, QueryDef, StreamDef};
///
/// let built = QueryDef::aggregate(AggFunc::Avg, "value")
///     .from_stream(StreamDef::new("src", 1));
/// let parsed = QueryDef::parse("SELECT AVG(value) FROM src WINDOW 1s").unwrap();
/// assert_eq!(built, parsed);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDef {
    /// Query name used in reports (defaults to `AGG(column)`).
    pub name: String,
    /// The `SELECT` clause.
    pub select: Select,
    /// Input streams (one, or two when joining).
    pub streams: Vec<StreamDef>,
    /// Join key column, when two streams are joined.
    pub join_on: Option<String>,
    /// Optional `WHERE` predicate.
    pub filter: Option<FilterDef>,
    /// Optional `GROUP BY` tag column.
    pub group_by: Option<String>,
    /// Window length (Table 1 reports once per second).
    pub window: TimeDelta,
    /// Number of fragments.
    pub fragments: usize,
    /// Partial-merge shape for multi-fragment queries.
    pub merge: MergeShape,
}

/// One-second default window, matching the Table-1 evaluation.
const DEFAULT_WINDOW: TimeDelta = TimeDelta(1_000_000);

impl QueryDef {
    /// Starts a plain aggregate draft: `SELECT func(column) FROM src`.
    pub fn aggregate(func: AggFunc, column: impl Into<String>) -> QueryDef {
        let column = column.into();
        QueryDef {
            name: format!("{}({})", func.name(), column),
            select: Select::Agg { func, column },
            streams: vec![StreamDef::new("src", 1)],
            join_on: None,
            filter: None,
            group_by: None,
            window: DEFAULT_WINDOW,
            fragments: 1,
            merge: MergeShape::Chain,
        }
    }

    /// Starts a ranking draft: `SELECT TOP k key BY func(column)`.
    pub fn top_k(
        k: usize,
        key: impl Into<String>,
        func: AggFunc,
        column: impl Into<String>,
    ) -> QueryDef {
        QueryDef {
            name: format!("TOP-{k}"),
            select: Select::TopK {
                k,
                key: key.into(),
                func,
                column: column.into(),
            },
            streams: vec![StreamDef::new("src", 1)],
            join_on: None,
            filter: None,
            group_by: None,
            window: DEFAULT_WINDOW,
            fragments: 1,
            merge: MergeShape::Chain,
        }
    }

    /// Sets the report name.
    pub fn named(mut self, name: impl Into<String>) -> QueryDef {
        self.name = name.into();
        self
    }

    /// Replaces the primary input stream.
    pub fn from_stream(mut self, stream: StreamDef) -> QueryDef {
        if self.streams.is_empty() {
            self.streams.push(stream);
        } else {
            self.streams[0] = stream;
        }
        self
    }

    /// Joins a second stream on the given key column.
    pub fn join(mut self, stream: StreamDef, on: impl Into<String>) -> QueryDef {
        self.streams.truncate(1);
        self.streams.push(stream);
        self.join_on = Some(on.into());
        self
    }

    /// Adds a `WHERE` predicate. The column may be qualified with a
    /// stream name (`"mem.value"`), which is required when joining.
    pub fn filter(mut self, column: &str, op: CmpOp, value: f64) -> QueryDef {
        let (stream, column) = match column.split_once('.') {
            Some((s, c)) => (Some(s.to_string()), c.to_string()),
            None => (None, column.to_string()),
        };
        self.filter = Some(FilterDef {
            stream,
            column,
            op,
            value,
        });
        self
    }

    /// Groups the aggregate by a tag column.
    pub fn group_by(mut self, column: impl Into<String>) -> QueryDef {
        self.group_by = Some(column.into());
        self
    }

    /// Sets the window length.
    pub fn window(mut self, window: TimeDelta) -> QueryDef {
        self.window = window;
        self
    }

    /// Sets the fragment count.
    pub fn fragments(mut self, fragments: usize) -> QueryDef {
        self.fragments = fragments;
        self
    }

    /// Sets the partial-merge shape.
    pub fn merge(mut self, merge: MergeShape) -> QueryDef {
        self.merge = merge;
        self
    }

    /// Parses the surface syntax into a draft. See the [module
    /// docs](super) for the grammar.
    pub fn parse(text: &str) -> Result<QueryDef, SpecError> {
        super::parse::parse(text)
    }

    /// Checks the draft's semantics, promoting it to a
    /// [`ValidatedQuery`] or explaining what is wrong.
    pub fn validate(self) -> Result<ValidatedQuery, SpecError> {
        super::validate::validate(self)
    }

    /// Renders the draft back into canonical surface syntax, such that
    /// `QueryDef::parse(def.text())` reproduces the draft (up to the
    /// report name, which the text form does not carry).
    pub fn text(&self) -> String {
        let mut out = String::from("SELECT ");
        match &self.select {
            Select::Agg { func, column } => {
                if let Some(g) = &self.group_by {
                    out.push_str(g);
                    out.push_str(", ");
                }
                out.push_str(&format!("{func}({column})"));
            }
            Select::TopK {
                k,
                key,
                func,
                column,
            } => out.push_str(&format!("TOP {k} {key} BY {func}({column})")),
        }
        for (i, s) in self.streams.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!(" FROM {}[{}]", s.name, s.count));
            } else {
                out.push_str(&format!(" JOIN {}[{}]", s.name, s.count));
                if let Some(on) = &self.join_on {
                    out.push_str(&format!(" ON {on}"));
                }
            }
        }
        if let Some(f) = &self.filter {
            out.push_str(" WHERE ");
            if let Some(s) = &f.stream {
                out.push_str(&format!("{s}."));
            }
            let cmp = match f.op {
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Eq => "==",
            };
            out.push_str(&format!("{} {cmp} {}", f.column, f.value));
        }
        if let Some(g) = &self.group_by {
            out.push_str(&format!(" GROUP BY {g}"));
        }
        out.push_str(&format!(" WINDOW {}", fmt_duration(self.window)));
        if self.fragments != 1 {
            out.push_str(&format!(" FRAGMENTS {}", self.fragments));
        }
        if self.merge == MergeShape::Tree {
            out.push_str(" MERGE TREE");
        }
        out
    }
}

fn fmt_duration(d: TimeDelta) -> String {
    let us = d.as_micros();
    if us % 1_000_000 == 0 {
        format!("{}s", us / 1_000_000)
    } else if us % 1_000 == 0 {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_func_names_round_trip() {
        for f in AggFunc::ALL {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
            assert_eq!(AggFunc::parse(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(AggFunc::parse("median"), None);
    }

    #[test]
    fn stream_kind_inference() {
        assert_eq!(StreamDef::new("cpu", 10).kind, SourceKind::Cpu);
        assert_eq!(StreamDef::new("mem", 10).kind, SourceKind::MemFree);
        assert_eq!(StreamDef::new("sensors", 4).kind, SourceKind::Generic);
        assert_eq!(
            StreamDef::new("sensors", 4).with_kind(SourceKind::Cpu).kind,
            SourceKind::Cpu
        );
    }

    #[test]
    fn builder_defaults_match_table1() {
        let d = QueryDef::aggregate(AggFunc::Avg, "value");
        assert_eq!(d.window, TimeDelta::from_secs(1));
        assert_eq!(d.fragments, 1);
        assert_eq!(d.merge, MergeShape::Chain);
        assert_eq!(d.name, "AVG(value)");
    }

    #[test]
    fn text_renders_every_clause() {
        let d = QueryDef::top_k(5, "key", AggFunc::Avg, "value")
            .from_stream(StreamDef::new("cpu", 10))
            .join(StreamDef::new("mem", 10), "key")
            .filter("mem.value", CmpOp::Ge, 100_000.0)
            .fragments(3);
        assert_eq!(
            d.text(),
            "SELECT TOP 5 key BY AVG(value) FROM cpu[10] JOIN mem[10] ON key \
             WHERE mem.value >= 100000 WINDOW 1s FRAGMENTS 3"
        );
    }

    #[test]
    fn duration_formatting_picks_the_coarsest_unit() {
        assert_eq!(fmt_duration(TimeDelta::from_secs(2)), "2s");
        assert_eq!(fmt_duration(TimeDelta::from_millis(250)), "250ms");
        assert_eq!(fmt_duration(TimeDelta::from_micros(1500)), "1500us");
    }
}
