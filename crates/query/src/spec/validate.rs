//! The *Validated* stage: semantic checking of a draft.
//!
//! [`validate`] resolves every column reference against the schema the
//! query's streams will emit, checks the aggregate/grouping/fragment
//! combination against the shapes the runtime supports, and records the
//! chosen lowering as a private [`Plan`]. A [`ValidatedQuery`] can only
//! be built here, so [`compile`](super::compile) never sees an invalid
//! query — the invalid states are unrepresentable past this point.

use std::fmt;

use themis_core::prelude::{IdGen, QueryId};
use themis_operators::prelude::Predicate;

use super::compile::CompiledQuery;
use super::def::{AggFunc, FilterDef, MergeShape, QueryDef, Select};

/// Everything that can go wrong turning text or a draft into a query
/// graph.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The text did not match the grammar.
    Parse {
        /// Byte offset of the offending token.
        pos: usize,
        /// What was expected / found.
        message: String,
    },
    /// A column reference does not exist in the stream schema.
    UnknownColumn {
        /// The unresolved column.
        column: String,
        /// Columns the schema does declare.
        available: Vec<String>,
    },
    /// An aggregate targets a tag (string) column.
    AggregateOnTag {
        /// The aggregate.
        func: AggFunc,
        /// The tag column.
        column: String,
    },
    /// `GROUP BY` targets the numeric measurement column.
    GroupByNotTag {
        /// The numeric column.
        column: String,
    },
    /// The combination is well-formed but outside the supported shapes.
    Unsupported {
        /// Why, and what to use instead.
        message: String,
    },
    /// A structurally invalid draft (zero sources, zero window, ...).
    Invalid {
        /// What is wrong.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { pos, message } => {
                write!(f, "parse error at byte {pos}: {message}")
            }
            SpecError::UnknownColumn { column, available } => {
                write!(
                    f,
                    "unknown column `{column}` (available columns: {})",
                    available.join(", ")
                )
            }
            SpecError::AggregateOnTag { func, column } => write!(
                f,
                "cannot compute {func} over tag column `{column}`; aggregates need a \
                 numeric column (did you mean `GROUP BY {column}`?)"
            ),
            SpecError::GroupByNotTag { column } => write!(
                f,
                "cannot GROUP BY numeric column `{column}`; grouping needs a tag \
                 column — the numeric measurement stays the aggregate input"
            ),
            SpecError::Unsupported { message } | SpecError::Invalid { message } => {
                f.write_str(message)
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn unsupported(message: impl Into<String>) -> SpecError {
    SpecError::Unsupported {
        message: message.into(),
    }
}

fn invalid(message: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        message: message.into(),
    }
}

/// The lowering chosen for a validated query. Private to the spec
/// module: external code only observes the compiled [`QuerySpec`]
/// (`crate::graph::QuerySpec`).
#[derive(Debug, Clone, PartialEq)]
pub(super) enum Plan {
    /// Single-fragment windowed aggregate (Table 1's `AVG`/`MAX`/`COUNT`
    /// shape, plus `MIN`/`SUM` and optional `WHERE`).
    Simple {
        func: AggFunc,
        predicate: Option<Predicate>,
    },
    /// Multi-fragment partial-average tree (`AVG-all`).
    Tree,
    /// Keyed two-stream join chain ranking the top `k` keys (`TOP-5`).
    TopK {
        k: usize,
        threshold: Option<Predicate>,
    },
    /// Chained two-source covariance (`COV`).
    CovChain,
    /// Single-fragment tag group-by dispatching to the columnar
    /// group-aggregate kernel.
    GroupBy { group: String },
}

/// A semantically checked query — the *Validated* stage.
///
/// Only [`QueryDef::validate`] constructs one; both fields stay private
/// so a `ValidatedQuery` always holds a draft that passed every check,
/// together with its lowering plan. Compilation cannot fail from here.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedQuery {
    def: QueryDef,
    plan: Plan,
}

impl ValidatedQuery {
    /// The underlying (validated) draft.
    pub fn def(&self) -> &QueryDef {
        &self.def
    }

    pub(super) fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Lowers the query to a [`crate::graph::QuerySpec`] graph, drawing
    /// fresh source ids from `sources` — the *Compiled* stage. This is
    /// infallible: every failure mode was ruled out by validation.
    pub fn compile(&self, id: QueryId, sources: &mut IdGen) -> CompiledQuery {
        super::compile::compile(self, id, sources)
    }
}

/// Column names of the plain measurement schema (`[value: f64]`).
const VALUE: &str = "value";
/// Key column of the keyed measurement schema (`[key: i64, value: f64]`).
const KEY: &str = "key";

pub(super) fn validate(def: QueryDef) -> Result<ValidatedQuery, SpecError> {
    if def.streams.is_empty() {
        return Err(invalid("the query declares no input stream"));
    }
    for s in &def.streams {
        if s.count == 0 {
            return Err(invalid(format!(
                "stream `{}` declares zero sources; use `{}[n]` with n >= 1",
                s.name, s.name
            )));
        }
    }
    if def.fragments == 0 {
        return Err(invalid("FRAGMENTS must be at least 1"));
    }
    if def.window.is_zero() {
        return Err(invalid("WINDOW must be positive"));
    }

    let plan = match &def.select {
        Select::TopK {
            k,
            key,
            func,
            column,
        } => plan_top_k(&def, *k, key, *func, column)?,
        Select::Agg { func, column } => match &def.group_by {
            Some(group) => plan_group_by(&def, *func, column, group)?,
            None => plan_aggregate(&def, *func, column)?,
        },
    };

    Ok(ValidatedQuery { def, plan })
}

fn plan_top_k(
    def: &QueryDef,
    k: usize,
    key: &str,
    func: AggFunc,
    column: &str,
) -> Result<Plan, SpecError> {
    if k == 0 {
        return Err(invalid("TOP 0 selects nothing; use TOP k with k >= 1"));
    }
    if def.group_by.is_some() {
        return Err(unsupported(
            "TOP k .. BY already groups by its key column; drop the GROUP BY clause",
        ));
    }
    if def.merge == MergeShape::Tree {
        return Err(unsupported(
            "TOP k fragments form a chain; drop `MERGE TREE`",
        ));
    }
    if def.join_on.is_none() || def.streams.len() != 2 {
        return Err(unsupported(
            "TOP k ranks entities across two keyed streams; join one, e.g. \
             `FROM cpu[10] JOIN mem[10] ON key`",
        ));
    }
    // Joined streams emit the keyed measurement schema [key, value].
    let keyed = || vec![KEY.to_string(), VALUE.to_string()];
    for col in [key, def.join_on.as_deref().unwrap_or_default()] {
        if col != KEY {
            return Err(SpecError::UnknownColumn {
                column: col.to_string(),
                available: keyed(),
            });
        }
    }
    if column != VALUE {
        return Err(SpecError::UnknownColumn {
            column: column.to_string(),
            available: keyed(),
        });
    }
    if func != AggFunc::Avg {
        return Err(unsupported(format!(
            "TOP k ranks by the per-key window average; use AVG instead of {func}"
        )));
    }
    let (a, b) = (&def.streams[0], &def.streams[1]);
    if a.count != b.count {
        return Err(invalid(format!(
            "TOP k pairs sources one-to-one per key, so both streams need the \
             same source count (got {}[{}] and {}[{}])",
            a.name, a.count, b.name, b.count
        )));
    }
    let threshold = match &def.filter {
        None => None,
        Some(f) => {
            match f.stream.as_deref() {
                None => {
                    return Err(unsupported(format!(
                        "a WHERE over joined streams is ambiguous; qualify the \
                         column, e.g. `{}.{}`",
                        b.name, f.column
                    )))
                }
                Some(s) if s == a.name => {
                    return Err(unsupported(format!(
                        "filters on the first (ranked) stream `{}` are not \
                         supported; TOP k filters the joined stream `{}`",
                        a.name, b.name
                    )))
                }
                Some(s) if s == b.name => {}
                Some(s) => {
                    return Err(invalid(format!(
                        "unknown stream `{s}` in WHERE (declared streams: {}, {})",
                        a.name, b.name
                    )))
                }
            }
            if f.column != VALUE {
                return Err(SpecError::UnknownColumn {
                    column: f.column.clone(),
                    available: keyed(),
                });
            }
            Some(Predicate::new(1, f.op, f.value))
        }
    };
    Ok(Plan::TopK { k, threshold })
}

fn plan_group_by(
    def: &QueryDef,
    func: AggFunc,
    column: &str,
    group: &str,
) -> Result<Plan, SpecError> {
    if def.join_on.is_some() || def.streams.len() != 1 {
        return Err(unsupported("GROUP BY queries read a single stream"));
    }
    if def.fragments != 1 || def.merge == MergeShape::Tree {
        return Err(unsupported(
            "GROUP BY queries are single-fragment; drop FRAGMENTS/MERGE",
        ));
    }
    if group == VALUE {
        return Err(SpecError::GroupByNotTag {
            column: group.to_string(),
        });
    }
    // The stream emits [group: tag, value: f64].
    if column == group {
        return Err(SpecError::AggregateOnTag {
            func,
            column: column.to_string(),
        });
    }
    if column != VALUE {
        return Err(SpecError::UnknownColumn {
            column: column.to_string(),
            available: vec![group.to_string(), VALUE.to_string()],
        });
    }
    if !matches!(func, AggFunc::Sum | AggFunc::Avg | AggFunc::Count) {
        return Err(unsupported(format!(
            "GROUP BY supports SUM, AVG and COUNT (the grouped sum/count \
             kernel); got {func}"
        )));
    }
    if let Some(f) = &def.filter {
        if f.column != VALUE {
            return Err(SpecError::UnknownColumn {
                column: f.column.clone(),
                available: vec![group.to_string(), VALUE.to_string()],
            });
        }
        return Err(unsupported(
            "WHERE is not yet supported with GROUP BY; drop the predicate",
        ));
    }
    Ok(Plan::GroupBy {
        group: group.to_string(),
    })
}

fn plan_aggregate(def: &QueryDef, func: AggFunc, column: &str) -> Result<Plan, SpecError> {
    if def.join_on.is_some() || def.streams.len() != 1 {
        return Err(unsupported(
            "JOIN is only supported with `TOP k .. BY`; plain aggregates read \
             a single stream",
        ));
    }
    let stream = &def.streams[0];
    // The stream emits the plain measurement schema [value].
    if column != VALUE {
        return Err(SpecError::UnknownColumn {
            column: column.to_string(),
            available: vec![VALUE.to_string()],
        });
    }
    let predicate = match &def.filter {
        None => None,
        Some(FilterDef {
            stream: qual,
            column,
            op,
            value,
        }) => {
            if let Some(q) = qual {
                if *q != stream.name {
                    return Err(invalid(format!(
                        "unknown stream `{q}` in WHERE (declared stream: {})",
                        stream.name
                    )));
                }
            }
            if column != VALUE {
                return Err(SpecError::UnknownColumn {
                    column: column.clone(),
                    available: vec![VALUE.to_string()],
                });
            }
            Some(Predicate::new(0, *op, *value))
        }
    };
    if func == AggFunc::Cov {
        if stream.count != 2 {
            return Err(invalid(format!(
                "COV correlates exactly two sources per fragment; declare \
                 `{}[2]` (got {})",
                stream.name, stream.count
            )));
        }
        if predicate.is_some() {
            return Err(unsupported("WHERE is not supported with COV"));
        }
        if def.merge == MergeShape::Tree {
            return Err(unsupported("COV fragments form a chain; drop `MERGE TREE`"));
        }
        return Ok(Plan::CovChain);
    }
    if def.merge == MergeShape::Tree {
        if func != AggFunc::Avg {
            return Err(unsupported(format!(
                "MERGE TREE merges [sum, count] partials into an average and \
                 only supports AVG; got {func}"
            )));
        }
        if predicate.is_some() {
            return Err(unsupported(
                "WHERE is not supported with multi-fragment AVG",
            ));
        }
        return Ok(Plan::Tree);
    }
    if def.fragments > 1 {
        return Err(unsupported(format!(
            "multi-fragment {func} has no merge rule; use `MERGE TREE` with \
             AVG, or COV / TOP k chains"
        )));
    }
    Ok(Plan::Simple { func, predicate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SourceKind;
    use crate::spec::StreamDef;
    use themis_operators::prelude::CmpOp;

    #[test]
    fn validates_the_table1_shapes() {
        for text in [
            "SELECT AVG(value) FROM src WINDOW 1s",
            "SELECT MAX(value) FROM src WINDOW 1s",
            "SELECT MIN(value) FROM src WINDOW 1s",
            "SELECT SUM(value) FROM src WINDOW 1s",
            "SELECT COUNT(value) FROM src WHERE value >= 50 WINDOW 1s",
            "SELECT AVG(value) FROM cpu[10] WINDOW 1s FRAGMENTS 4 MERGE TREE",
            "SELECT TOP 5 key BY AVG(value) FROM cpu[10] JOIN mem[10] ON key \
             WHERE mem.value >= 100000 WINDOW 1s FRAGMENTS 2",
            "SELECT COV(value) FROM cpu[2] WINDOW 1s FRAGMENTS 3",
            "SELECT host, SUM(value) FROM sensors[8] GROUP BY host WINDOW 1s",
        ] {
            QueryDef::parse(text)
                .and_then(QueryDef::validate)
                .unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn unknown_column_lists_available_ones() {
        let e = QueryDef::parse("SELECT AVG(volts) FROM src")
            .unwrap()
            .validate()
            .unwrap_err();
        assert_eq!(
            e,
            SpecError::UnknownColumn {
                column: "volts".into(),
                available: vec!["value".into()]
            }
        );
        assert!(e.to_string().contains("available columns: value"), "{e}");
    }

    #[test]
    fn aggregate_on_tag_is_rejected() {
        let e = QueryDef::parse("SELECT host, SUM(host) FROM sensors[4] GROUP BY host")
            .unwrap()
            .validate()
            .unwrap_err();
        assert!(
            matches!(&e, SpecError::AggregateOnTag { column, .. } if column == "host"),
            "{e:?}"
        );
        assert!(e.to_string().contains("GROUP BY host"), "{e}");
    }

    #[test]
    fn group_by_on_numeric_column_is_rejected() {
        let e = QueryDef::parse("SELECT SUM(value) FROM sensors[4] GROUP BY value")
            .unwrap()
            .validate()
            .unwrap_err();
        assert!(
            matches!(&e, SpecError::GroupByNotTag { column } if column == "value"),
            "{e:?}"
        );
    }

    #[test]
    fn top_k_requires_a_keyed_join() {
        let e = QueryDef::parse("SELECT TOP 5 key BY AVG(value) FROM cpu[10]")
            .unwrap()
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("JOIN"), "{e}");

        let e =
            QueryDef::parse("SELECT TOP 5 node BY AVG(value) FROM cpu[10] JOIN mem[10] ON node")
                .unwrap()
                .validate()
                .unwrap_err();
        assert!(
            matches!(&e, SpecError::UnknownColumn { column, .. } if column == "node"),
            "{e:?}"
        );
    }

    #[test]
    fn join_filters_must_be_qualified_with_the_joined_stream() {
        let base = "SELECT TOP 5 key BY AVG(value) FROM cpu[10] JOIN mem[10] ON key";
        for (clause, needle) in [
            (" WHERE value >= 1", "ambiguous"),
            (" WHERE cpu.value >= 1", "first (ranked) stream"),
            (" WHERE disk.value >= 1", "unknown stream `disk`"),
        ] {
            let e = QueryDef::parse(&format!("{base}{clause}"))
                .unwrap()
                .validate()
                .unwrap_err();
            assert!(e.to_string().contains(needle), "{clause}: {e}");
        }
    }

    #[test]
    fn shape_mismatches_are_actionable() {
        for (text, needle) in [
            ("SELECT MAX(value) FROM s FRAGMENTS 3", "MERGE TREE"),
            (
                "SELECT MAX(value) FROM s FRAGMENTS 3 MERGE TREE",
                "only supports AVG",
            ),
            ("SELECT COV(value) FROM s[3]", "exactly two sources"),
            ("SELECT SUM(value) FROM s[0]", "zero sources"),
            ("SELECT SUM(value) FROM s FRAGMENTS 0", "at least 1"),
            ("SELECT SUM(value) FROM s WINDOW 0s", "positive"),
            (
                "SELECT TOP 0 key BY AVG(value) FROM cpu[2] JOIN mem[2] ON key",
                "TOP 0",
            ),
            (
                "SELECT TOP 5 key BY AVG(value) FROM cpu[10] JOIN mem[4] ON key",
                "same source count",
            ),
            (
                "SELECT host, MAX(value) FROM s[4] GROUP BY host",
                "SUM, AVG and COUNT",
            ),
            (
                "SELECT host, SUM(value) FROM s[4] GROUP BY host FRAGMENTS 2",
                "single-fragment",
            ),
        ] {
            let e = QueryDef::parse(text).unwrap().validate().unwrap_err();
            assert!(e.to_string().contains(needle), "{text}: {e}");
        }
    }

    #[test]
    fn validated_query_exposes_its_def() {
        let v = QueryDef::aggregate(AggFunc::Avg, "value")
            .from_stream(StreamDef::new("cpu", 1).with_kind(SourceKind::Generic))
            .validate()
            .unwrap();
        assert_eq!(v.def().streams[0].kind, SourceKind::Generic);
    }

    #[test]
    fn builder_filter_parses_qualified_columns() {
        let d = QueryDef::aggregate(AggFunc::Count, "value").filter("src.value", CmpOp::Ge, 50.0);
        let f = d.filter.as_ref().unwrap();
        assert_eq!(f.stream.as_deref(), Some("src"));
        assert_eq!(f.column, "value");
        d.validate().unwrap();
    }
}
