//! The *Compiled* stage: infallible lowering of a [`ValidatedQuery`]
//! into the [`QuerySpec`] operator graph the runtimes execute.
//!
//! The lowerings generalise the hand-built Table-1 graphs (the
//! pre-refactor `templates.rs` constructors) over the draft's window,
//! stream counts and fragment count — at the Table-1 parameter values
//! they reproduce those graphs *exactly*, operator for operator and
//! grace for grace, which the template parity tests pin. The `GROUP BY`
//! lowering is new: it compiles a shared tag dictionary into every
//! source so the window panes dispatch to the columnar grouped sum/count
//! kernel at runtime.

use themis_core::prelude::*;
use themis_operators::prelude::*;

use super::def::QueryDef;
use super::validate::{Plan, ValidatedQuery};
use crate::graph::{
    FragmentSpec, LocalEdge, QuerySpec, SourceBinding, SourceSpec, TagSource, UpstreamBinding,
};

/// Base lateness grace for time windows (covers one shedding interval
/// plus LAN latency).
pub const GRACE_BASE: TimeDelta = TimeDelta(500_000);
/// Additional grace per upstream fragment hop, so merge windows wait
/// for partials that crossed the network and a shedding queue.
pub const GRACE_STEP: TimeDelta = TimeDelta(500_000);

pub(crate) fn chain_grace(pos: usize) -> TimeDelta {
    TimeDelta(GRACE_BASE.as_micros() + GRACE_STEP.as_micros() * pos as u64)
}

/// A compiled query — the final stage. Wraps the lowered
/// [`QuerySpec`]; construction is private to the spec module, so every
/// `CompiledQuery` went through parsing/building *and* validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    spec: QuerySpec,
}

impl CompiledQuery {
    /// The lowered operator graph.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Unwraps into the operator graph for deployment.
    pub fn into_spec(self) -> QuerySpec {
        self.spec
    }
}

pub(super) fn compile(vq: &ValidatedQuery, id: QueryId, sources: &mut IdGen) -> CompiledQuery {
    let def = vq.def();
    let spec = match vq.plan() {
        Plan::Simple { func, predicate } => lower_simple(def, *func, *predicate, id, sources),
        Plan::Tree => lower_tree(def, id, sources),
        Plan::TopK { k, threshold } => lower_top_k(def, *k, *threshold, id, sources),
        Plan::CovChain => lower_cov(def, id, sources),
        Plan::GroupBy { group } => lower_group_by(def, group, id, sources),
    };
    debug_assert_eq!(spec.validate(), Ok(()));
    CompiledQuery { spec }
}

fn window_op(def: &QueryDef, logic: LogicSpec, grace: TimeDelta) -> OperatorSpec {
    OperatorSpec::with_grace(WindowSpec::tumbling(def.window), logic, grace)
}

/// `AVG`/`MAX`/`MIN`/`SUM`/`COUNT`: receivers -> optional filter ->
/// windowed aggregate -> output, in one fragment.
fn lower_simple(
    def: &QueryDef,
    func: super::AggFunc,
    predicate: Option<Predicate>,
    id: QueryId,
    sources: &mut IdGen,
) -> QuerySpec {
    use super::AggFunc;
    let stream = &def.streams[0];
    let n = stream.count;
    // COUNT absorbs the predicate as its HAVING clause (Table 1's
    // `Count ... Having t.v >= 50`); other aggregates get a filter op.
    let (logic, filter) = match func {
        AggFunc::Avg => (LogicSpec::Avg { field: 0 }, predicate),
        AggFunc::Max => (LogicSpec::Max { field: 0 }, predicate),
        AggFunc::Min => (LogicSpec::Min { field: 0 }, predicate),
        AggFunc::Sum => (LogicSpec::Sum { field: 0 }, predicate),
        AggFunc::Count => (LogicSpec::Count { predicate }, None),
        AggFunc::Cov => unreachable!("COV lowers via Plan::CovChain"),
    };

    let mut operators: Vec<OperatorSpec> = (0..n).map(|_| OperatorSpec::identity()).collect();
    let mut edges = Vec::new();
    let mut next = n;
    if let Some(p) = filter {
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::Filter(p),
        ));
        for i in 0..n {
            edges.push(LocalEdge {
                from: i,
                to: next,
                port: 0,
            });
        }
        let win = next + 1;
        edges.push(LocalEdge {
            from: next,
            to: win,
            port: 0,
        });
        next = win;
    } else {
        for i in 0..n {
            edges.push(LocalEdge {
                from: i,
                to: next,
                port: 0,
            });
        }
    }
    operators.push(window_op(def, logic, GRACE_BASE));
    let out = next + 1;
    operators.push(OperatorSpec::identity());
    edges.push(LocalEdge {
        from: next,
        to: out,
        port: 0,
    });

    let mut declared = Vec::with_capacity(n);
    let mut bindings = Vec::with_capacity(n);
    for i in 0..n {
        let sid: SourceId = sources.next();
        declared.push(SourceSpec::plain(sid, None, stream.kind));
        bindings.push(SourceBinding {
            source: sid,
            op: i,
            port: 0,
        });
    }
    QuerySpec {
        id,
        template: def.name.clone(),
        fragments: vec![FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams: vec![],
            root: out,
        }],
        result_fragment: 0,
        sources: declared,
    }
}

/// `MERGE TREE` average (`AVG-all`): every fragment computes a
/// `[sum, count]` partial over its receivers; fragment 0 merges.
fn lower_tree(def: &QueryDef, id: QueryId, sources: &mut IdGen) -> QuerySpec {
    let stream = &def.streams[0];
    let n = stream.count;
    let fragments = def.fragments;
    let mut specs = Vec::with_capacity(fragments);
    let mut declared = Vec::new();
    for f in 0..fragments {
        let mut operators: Vec<OperatorSpec> = (0..n).map(|_| OperatorSpec::identity()).collect();
        // Window grouping all local sources.
        operators.push(window_op(def, LogicSpec::Identity, GRACE_BASE));
        // Partial [sum, count] over the grouped pane.
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::PartialAvg { field: 0 },
        ));
        // Leaf output (identity) or root merge (tree depth 1).
        if f == 0 {
            operators.push(window_op(def, LogicSpec::MergeAvg, chain_grace(1)));
        } else {
            operators.push(OperatorSpec::identity());
        }
        let mut edges: Vec<LocalEdge> = (0..n)
            .map(|i| LocalEdge {
                from: i,
                to: n,
                port: 0,
            })
            .collect();
        edges.push(LocalEdge {
            from: n,
            to: n + 1,
            port: 0,
        });
        edges.push(LocalEdge {
            from: n + 1,
            to: n + 2,
            port: 0,
        });
        let mut bindings = Vec::with_capacity(n);
        for i in 0..n {
            let sid: SourceId = sources.next();
            declared.push(SourceSpec::plain(sid, None, stream.kind));
            bindings.push(SourceBinding {
                source: sid,
                op: i,
                port: 0,
            });
        }
        specs.push(FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams: Vec::new(),
            root: n + 2,
        });
    }
    for f in 1..fragments {
        specs[0].upstreams.push(UpstreamBinding {
            fragment: f,
            op: n + 2,
            port: 0,
        });
    }
    QuerySpec {
        id,
        template: def.name.clone(),
        fragments: specs,
        result_fragment: 0,
        sources: declared,
    }
}

/// `TOP k .. BY` over a keyed two-stream join (`TOP-5`): chained
/// fragments each merge their local candidates with the upstream
/// partial list.
fn lower_top_k(
    def: &QueryDef,
    k: usize,
    threshold: Option<Predicate>,
    id: QueryId,
    sources: &mut IdGen,
) -> QuerySpec {
    let (left, right) = (&def.streams[0], &def.streams[1]);
    let c = left.count;
    let fragments = def.fragments;
    let mut specs = Vec::with_capacity(fragments);
    let mut declared = Vec::new();
    for f in 0..fragments {
        // Receivers: left stream at 0..c, right stream at c..2c.
        let mut operators: Vec<OperatorSpec> =
            (0..2 * c).map(|_| OperatorSpec::identity()).collect();
        // Optional per-batch filter on the joined stream.
        let filter = threshold.map(|p| {
            operators.push(OperatorSpec::new(
                WindowSpec::PassThrough,
                LogicSpec::Filter(p),
            ));
            operators.len() - 1
        });
        let left_win = operators.len();
        operators.push(window_op(def, LogicSpec::Identity, GRACE_BASE));
        let right_win = operators.len();
        operators.push(window_op(def, LogicSpec::Identity, GRACE_BASE));
        // Per-key averages over the window panes.
        let left_avg = operators.len();
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::GroupAvg {
                key_field: 0,
                value_field: 1,
            },
        ));
        let right_avg = operators.len();
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::GroupAvg {
                key_field: 0,
                value_field: 1,
            },
        ));
        // Join both streams on the key.
        let join = operators.len();
        operators.push(window_op(
            def,
            LogicSpec::Join {
                left_key: 0,
                right_key: 0,
            },
            GRACE_BASE,
        ));
        // Merge window combining local candidates and the upstream list.
        let merge = operators.len();
        operators.push(window_op(def, LogicSpec::Identity, chain_grace(f)));
        let top = operators.len();
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::TopK {
                k,
                id_field: 0,
                value_field: 1,
            },
        ));
        let out = operators.len();
        operators.push(OperatorSpec::identity());

        let mut edges: Vec<LocalEdge> = Vec::new();
        for i in 0..c {
            edges.push(LocalEdge {
                from: i,
                to: left_win,
                port: 0,
            });
        }
        let right_sink = filter.unwrap_or(right_win);
        for i in c..2 * c {
            edges.push(LocalEdge {
                from: i,
                to: right_sink,
                port: 0,
            });
        }
        if let Some(fi) = filter {
            edges.push(LocalEdge {
                from: fi,
                to: right_win,
                port: 0,
            });
        }
        edges.push(LocalEdge {
            from: left_win,
            to: left_avg,
            port: 0,
        });
        edges.push(LocalEdge {
            from: right_win,
            to: right_avg,
            port: 0,
        });
        edges.push(LocalEdge {
            from: left_avg,
            to: join,
            port: 0,
        });
        edges.push(LocalEdge {
            from: right_avg,
            to: join,
            port: 1,
        });
        edges.push(LocalEdge {
            from: join,
            to: merge,
            port: 0,
        });
        edges.push(LocalEdge {
            from: merge,
            to: top,
            port: 0,
        });
        edges.push(LocalEdge {
            from: top,
            to: out,
            port: 0,
        });

        let mut bindings = Vec::with_capacity(2 * c);
        for i in 0..c {
            let node_key = (f * c + i) as i64;
            let l: SourceId = sources.next();
            declared.push(SourceSpec::plain(l, Some(node_key), left.kind));
            bindings.push(SourceBinding {
                source: l,
                op: i,
                port: 0,
            });
            let r: SourceId = sources.next();
            declared.push(SourceSpec::plain(r, Some(node_key), right.kind));
            bindings.push(SourceBinding {
                source: r,
                op: c + i,
                port: 0,
            });
        }
        let upstreams = if f > 0 {
            vec![UpstreamBinding {
                fragment: f - 1,
                op: merge,
                port: 0,
            }]
        } else {
            Vec::new()
        };
        specs.push(FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams,
            root: out,
        });
    }
    QuerySpec {
        id,
        template: def.name.clone(),
        fragments: specs,
        result_fragment: fragments - 1,
        sources: declared,
    }
}

/// `COV`: chained fragments, each windowing the covariance of its two
/// sources and averaging in the upstream partial.
fn lower_cov(def: &QueryDef, id: QueryId, sources: &mut IdGen) -> QuerySpec {
    let stream = &def.streams[0];
    let fragments = def.fragments;
    let mut specs = Vec::with_capacity(fragments);
    let mut declared = Vec::new();
    for f in 0..fragments {
        let operators = vec![
            OperatorSpec::identity(),
            OperatorSpec::identity(),
            window_op(def, LogicSpec::Cov { field: 0 }, GRACE_BASE),
            window_op(def, LogicSpec::Identity, chain_grace(f)),
            OperatorSpec::new(WindowSpec::PassThrough, LogicSpec::Avg { field: 0 }),
        ];
        let edges = vec![
            LocalEdge {
                from: 0,
                to: 2,
                port: 0,
            },
            LocalEdge {
                from: 1,
                to: 2,
                port: 1,
            },
            LocalEdge {
                from: 2,
                to: 3,
                port: 0,
            },
            LocalEdge {
                from: 3,
                to: 4,
                port: 0,
            },
        ];
        let mut bindings = Vec::with_capacity(2);
        for i in 0..2 {
            let sid: SourceId = sources.next();
            declared.push(SourceSpec::plain(sid, None, stream.kind));
            bindings.push(SourceBinding {
                source: sid,
                op: i,
                port: 0,
            });
        }
        let upstreams = if f > 0 {
            vec![UpstreamBinding {
                fragment: f - 1,
                op: 3,
                port: 0,
            }]
        } else {
            Vec::new()
        };
        specs.push(FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams,
            root: 4,
        });
    }
    QuerySpec {
        id,
        template: def.name.clone(),
        fragments: specs,
        result_fragment: fragments - 1,
        sources: declared,
    }
}

/// `GROUP BY` on a tag column: receivers -> window -> grouped
/// sum/count -> output, with every source sharing one tag dictionary
/// so the window panes hit `kernels::group_sum_count_f64`.
fn lower_group_by(def: &QueryDef, group: &str, id: QueryId, sources: &mut IdGen) -> QuerySpec {
    let stream = &def.streams[0];
    let n = stream.count;
    // One schema (and thus one interner) for the whole query: panes can
    // only take the columnar group path when all their tag columns
    // resolve against the same dictionary.
    let schema = Schema::new([
        (group.to_string(), FieldType::Tag),
        ("value".to_string(), FieldType::F64),
    ]);
    let dict = schema
        .interner()
        .expect("tag field implies an interner")
        .clone();

    let mut operators: Vec<OperatorSpec> = (0..n).map(|_| OperatorSpec::identity()).collect();
    operators.push(window_op(def, LogicSpec::Identity, GRACE_BASE));
    operators.push(OperatorSpec::new(
        WindowSpec::PassThrough,
        LogicSpec::GroupAggregate {
            key_field: 0,
            value_field: 1,
        },
    ));
    operators.push(OperatorSpec::identity());
    let mut edges: Vec<LocalEdge> = (0..n)
        .map(|i| LocalEdge {
            from: i,
            to: n,
            port: 0,
        })
        .collect();
    edges.push(LocalEdge {
        from: n,
        to: n + 1,
        port: 0,
    });
    edges.push(LocalEdge {
        from: n + 1,
        to: n + 2,
        port: 0,
    });

    let mut declared = Vec::with_capacity(n);
    let mut bindings = Vec::with_capacity(n);
    for i in 0..n {
        let sid: SourceId = sources.next();
        let label = format!("{}-{i}", stream.name);
        let code = dict.intern(&label);
        declared.push(SourceSpec {
            id: sid,
            key: None,
            kind: stream.kind,
            tag: Some(TagSource {
                label,
                code,
                schema: schema.clone(),
            }),
        });
        bindings.push(SourceBinding {
            source: sid,
            op: i,
            port: 0,
        });
    }
    QuerySpec {
        id,
        template: def.name.clone(),
        fragments: vec![FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams: vec![],
            root: n + 2,
        }],
        result_fragment: 0,
        sources: declared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QueryDef;

    fn compile_text(text: &str) -> QuerySpec {
        let mut gen = IdGen::new();
        QueryDef::parse(text)
            .unwrap()
            .validate()
            .unwrap()
            .compile(QueryId(0), &mut gen)
            .into_spec()
    }

    #[test]
    fn compiled_specs_validate() {
        for text in [
            "SELECT AVG(value) FROM src WINDOW 1s",
            "SELECT SUM(value) FROM src[4] WHERE value >= 10 WINDOW 250ms",
            "SELECT AVG(value) FROM cpu[3] WINDOW 1s FRAGMENTS 4 MERGE TREE",
            "SELECT TOP 3 key BY AVG(value) FROM cpu[4] JOIN mem[4] ON key \
             WINDOW 1s FRAGMENTS 2",
            "SELECT COV(value) FROM cpu[2] WINDOW 1s FRAGMENTS 3",
            "SELECT host, SUM(value) FROM sensors[8] GROUP BY host WINDOW 1s",
        ] {
            let q = compile_text(text);
            assert_eq!(q.validate(), Ok(()), "{text}");
        }
    }

    #[test]
    fn where_inserts_a_filter_stage() {
        let plain = compile_text("SELECT SUM(value) FROM src[4] WINDOW 1s");
        let filtered = compile_text("SELECT SUM(value) FROM src[4] WHERE value >= 10 WINDOW 1s");
        assert_eq!(plain.fragments[0].n_operators(), 6);
        assert_eq!(filtered.fragments[0].n_operators(), 7);
        assert_eq!(
            filtered.fragments[0].operators[4].logic,
            LogicSpec::Filter(Predicate::new(0, CmpOp::Ge, 10.0))
        );
        // COUNT keeps the predicate inside the aggregate instead.
        let count = compile_text("SELECT COUNT(value) FROM src WHERE value >= 50 WINDOW 1s");
        assert_eq!(count.fragments[0].n_operators(), 3);
        assert_eq!(
            count.fragments[0].operators[1].logic,
            LogicSpec::Count {
                predicate: Some(Predicate::new(0, CmpOp::Ge, 50.0))
            }
        );
    }

    #[test]
    fn top_k_without_where_drops_the_filter_op() {
        let filtered = compile_text(
            "SELECT TOP 3 key BY AVG(value) FROM cpu[4] JOIN mem[4] ON key \
             WHERE mem.value >= 1 WINDOW 1s",
        );
        let open =
            compile_text("SELECT TOP 3 key BY AVG(value) FROM cpu[4] JOIN mem[4] ON key WINDOW 1s");
        assert_eq!(filtered.fragments[0].n_operators(), 17);
        assert_eq!(open.fragments[0].n_operators(), 16);
        open.validate().unwrap();
    }

    #[test]
    fn custom_windows_reach_every_windowed_operator() {
        let q = compile_text("SELECT AVG(value) FROM cpu[3] WINDOW 250ms FRAGMENTS 2 MERGE TREE");
        for f in &q.fragments {
            for op in &f.operators {
                if let WindowSpec::Tumbling { size } = op.window {
                    assert_eq!(size, TimeDelta::from_millis(250));
                }
            }
        }
    }

    #[test]
    fn group_by_shares_one_dictionary_across_sources() {
        let q = compile_text("SELECT host, SUM(value) FROM sensors[8] GROUP BY host WINDOW 1s");
        assert_eq!(q.sources.len(), 8);
        let first = q.sources[0].tag.as_ref().unwrap();
        let dict = first.schema.interner().unwrap();
        for (i, s) in q.sources.iter().enumerate() {
            let tag = s.tag.as_ref().unwrap();
            assert_eq!(tag.label, format!("sensors-{i}"));
            assert!(std::sync::Arc::ptr_eq(dict, tag.schema.interner().unwrap()));
            assert_eq!(tag.schema.field_name(0), Some("host"));
            assert_eq!(dict.resolve(tag.code).as_deref(), Some(tag.label.as_str()));
        }
        // The aggregate dispatches to the grouped kernel logic.
        assert_eq!(
            q.fragments[0].operators[9].logic,
            LogicSpec::GroupAggregate {
                key_field: 0,
                value_field: 1
            }
        );
    }
}
