//! Declarative query frontend: text or builder → staged compilation
//! into the [`QuerySpec`](crate::graph::QuerySpec) operator graph.
//!
//! Queries move through three stages, and each transition is the only
//! way to obtain the next stage's type, so invalid states are
//! unrepresentable downstream:
//!
//! ```text
//! text ── QueryDef::parse ──┐
//!                           ├─ QueryDef (Draft)
//! builder API ──────────────┘      │ .validate()      — all semantic checks
//!                                  ▼
//!                           ValidatedQuery            — plan chosen, no public constructor
//!                                  │ .compile(id, &mut IdGen)   — infallible
//!                                  ▼
//!                           CompiledQuery ── .into_spec() ──▶ QuerySpec
//! ```
//!
//! # Surface syntax
//!
//! ```text
//! SELECT <select> FROM <stream>
//!     [JOIN <stream> ON <column>]
//!     [WHERE [<stream>.]<column> (< | <= | > | >= | ==) <number>]
//!     [GROUP BY <column>]
//!     [WINDOW <number>(s | ms | us)]
//!     [FRAGMENTS <n>]
//!     [MERGE (CHAIN | TREE)]
//!
//! <select> := AGG(<column>)                  plain aggregate
//!           | <column>, AGG(<column>)        grouped aggregate
//!           | TOP <k> <column> BY AGG(<column>)   ranking
//! <agg>    := AVG | MAX | MIN | SUM | COUNT | COV
//! <stream> := <name>[<n sources>]            count defaults to 1
//! ```
//!
//! Keywords are case-insensitive and clauses appear in the order above.
//! Stream names choose the workload generator (`cpu*` → CPU usage,
//! `mem*` → free memory, else generic measurements). Plain streams emit
//! `[value: f64]` rows; joined streams emit `[key: i64, value: f64]`;
//! `GROUP BY g` streams emit `[g: tag, value: f64]` where every source
//! is labelled `<stream>-<i>` in one shared tag dictionary, so the
//! grouped aggregate runs on the columnar grouped sum/count kernel.
//!
//! The six Table-1 templates are thin presets over this layer — see
//! [`Template`](crate::templates::Template) — so declarative queries and
//! template-built queries share one graph-construction path:
//!
//! ```
//! use themis_core::prelude::*;
//! use themis_query::spec::QueryDef;
//! use themis_query::templates::Template;
//!
//! let mut a = IdGen::new();
//! let mut b = IdGen::new();
//! let parsed = QueryDef::parse(
//!     "SELECT AVG(value) FROM cpu[10] WINDOW 1s FRAGMENTS 4 MERGE TREE",
//! )
//! .unwrap()
//! .named("AVG-all")
//! .validate()
//! .unwrap()
//! .compile(QueryId(7), &mut a)
//! .into_spec();
//! assert_eq!(parsed, Template::AvgAll { fragments: 4 }.build(QueryId(7), &mut b));
//! ```

mod compile;
mod def;
mod parse;
mod validate;

pub use compile::{CompiledQuery, GRACE_BASE, GRACE_STEP};
pub use def::{AggFunc, FilterDef, MergeShape, QueryDef, Select, StreamDef};
pub use validate::{SpecError, ValidatedQuery};

// Builder-API conveniences so `spec` users don't need a separate
// operators import for predicates.
pub use themis_operators::prelude::CmpOp;
