//! The query workloads of Table 1, as presets over the declarative
//! [`spec`](crate::spec) layer.
//!
//! **Aggregate workload** (single source, 1 s windows): `AVG`, `MAX`,
//! `COUNT` (`Having t.v >= 50`).
//!
//! **Complex workload** (data-centre monitoring, multi-fragment):
//! * `AVG-all` — average CPU usage over all sources; fragments form a
//!   *tree*: every fragment computes a `[sum, count]` partial over its 10
//!   sources and the root fragment merges partials into the final average.
//!   13 operators per fragment.
//! * `TOP-5` — top 5 nodes by available CPU with free memory ≥ 100 MB;
//!   fragments form a *chain*, each merging its local top-5 candidates with
//!   the upstream partial list. 29 operators per fragment (10 CPU
//!   receivers, 10 memory receivers, 1 filter, 3 time windows, 2 averages,
//!   1 join, 1 top-k, 1 output).
//! * `COV` — covariance of the CPU usage of two nodes; fragments form a
//!   chain; the final value is the mean of the per-fragment covariances
//!   (incremental-equivalent processing, see DESIGN.md). 5 operators per
//!   fragment.
//!
//! Each template is a [`QueryDef`] draft ([`Template::def`]) pushed
//! through the staged `validate → compile` pipeline, so templates and
//! hand-written declarative queries share a single graph-construction
//! path; [`Template::text`] shows the equivalent surface syntax.

use themis_core::prelude::*;

use crate::graph::{keyed_measurement_schema, measurement_schema, QuerySpec};
use crate::spec::{AggFunc, CmpOp, MergeShape, QueryDef, StreamDef};

pub use crate::spec::{GRACE_BASE, GRACE_STEP};

/// The evaluation's window length: every Table-1 query reports once per
/// second.
pub const WINDOW: TimeDelta = TimeDelta(1_000_000);

/// A Table-1 query template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// `Select Avg(t.v) from Src[Range 1 sec]`
    Avg,
    /// `Select Max(t.v) from Src[Range 1 sec]`
    Max,
    /// `Select Count(t.v) ... Having t.v >= 50`
    Count,
    /// Average CPU usage over all sources (tree of fragments).
    AvgAll {
        /// Number of fragments (≥ 1).
        fragments: usize,
    },
    /// Top-5 nodes by CPU with memory filter (chain of fragments).
    Top5 {
        /// Number of fragments (≥ 1).
        fragments: usize,
    },
    /// Covariance of two CPU streams (chain of fragments).
    Cov {
        /// Number of fragments (≥ 1).
        fragments: usize,
    },
}

impl Template {
    /// Template name as in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Template::Avg => "AVG",
            Template::Max => "MAX",
            Template::Count => "COUNT",
            Template::AvgAll { .. } => "AVG-all",
            Template::Top5 { .. } => "TOP-5",
            Template::Cov { .. } => "COV",
        }
    }

    /// Operators per fragment, matching Table 1 for the complex workload.
    pub fn ops_per_fragment(&self) -> usize {
        match self {
            Template::Avg | Template::Max | Template::Count => 3,
            Template::AvgAll { .. } => 13,
            Template::Top5 { .. } => 29,
            Template::Cov { .. } => 5,
        }
    }

    /// Sources per fragment.
    pub fn sources_per_fragment(&self) -> usize {
        match self {
            Template::Avg | Template::Max | Template::Count => 1,
            Template::AvgAll { .. } => 10,
            Template::Top5 { .. } => 20,
            Template::Cov { .. } => 2,
        }
    }

    /// The per-query [`Schema`] its sources emit, declared by the
    /// template: TOP-5 sources tag each reading with a node id
    /// (`[key: i64, value: f64]`); every other workload streams plain
    /// measurements (`[value: f64]`). Sources build typed column batches
    /// against this declaration, which the window and operator path
    /// preserves end to end so the aggregate kernels read native slices.
    pub fn source_schema(&self) -> Schema {
        match self {
            Template::Top5 { .. } => keyed_measurement_schema(),
            _ => measurement_schema(),
        }
    }

    /// Number of fragments.
    pub fn fragments(&self) -> usize {
        match self {
            Template::Avg | Template::Max | Template::Count => 1,
            Template::AvgAll { fragments }
            | Template::Top5 { fragments }
            | Template::Cov { fragments } => (*fragments).max(1),
        }
    }

    /// The template as a declarative [`QueryDef`] draft — the single
    /// source of truth for what each Table-1 query *is*. [`Template::build`]
    /// pushes this draft through `validate → compile`.
    pub fn def(&self) -> QueryDef {
        let def = match self {
            Template::Avg => {
                QueryDef::aggregate(AggFunc::Avg, "value").from_stream(StreamDef::new("src", 1))
            }
            Template::Max => {
                QueryDef::aggregate(AggFunc::Max, "value").from_stream(StreamDef::new("src", 1))
            }
            Template::Count => QueryDef::aggregate(AggFunc::Count, "value")
                .from_stream(StreamDef::new("src", 1))
                .filter("value", CmpOp::Ge, 50.0),
            Template::AvgAll { .. } => QueryDef::aggregate(AggFunc::Avg, "value")
                .from_stream(StreamDef::new("cpu", 10))
                .fragments(self.fragments())
                .merge(MergeShape::Tree),
            Template::Top5 { .. } => QueryDef::top_k(5, "key", AggFunc::Avg, "value")
                .from_stream(StreamDef::new("cpu", 10))
                .join(StreamDef::new("mem", 10), "key")
                .filter("mem.value", CmpOp::Ge, 100_000.0)
                .fragments(self.fragments()),
            Template::Cov { .. } => QueryDef::aggregate(AggFunc::Cov, "value")
                .from_stream(StreamDef::new("cpu", 2))
                .fragments(self.fragments()),
        };
        def.named(self.name()).window(WINDOW)
    }

    /// The template in the declarative surface syntax
    /// (`QueryDef::parse(t.text())` reproduces [`Template::def`]).
    pub fn text(&self) -> String {
        self.def().text()
    }

    /// Builds the query, drawing fresh source ids from `sources`.
    pub fn build(&self, id: QueryId, sources: &mut IdGen) -> QuerySpec {
        self.def()
            .validate()
            .expect("Table-1 templates are valid by construction")
            .compile(id, sources)
            .into_spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SourceKind;

    fn build(t: Template) -> QuerySpec {
        let mut gen = IdGen::new();
        t.build(QueryId(0), &mut gen)
    }

    #[test]
    fn table1_operator_counts() {
        // The paper's Table 1: 13, 29 and 5 operators per fragment.
        for (t, ops) in [
            (Template::AvgAll { fragments: 3 }, 13),
            (Template::Top5 { fragments: 2 }, 29),
            (Template::Cov { fragments: 2 }, 5),
        ] {
            let q = build(t);
            for f in &q.fragments {
                assert_eq!(f.n_operators(), ops, "{}", t.name());
            }
            assert_eq!(t.ops_per_fragment(), ops);
        }
    }

    #[test]
    fn table1_source_counts() {
        for (t, srcs) in [
            (Template::Avg, 1),
            (Template::AvgAll { fragments: 4 }, 40),
            (Template::Top5 { fragments: 2 }, 40),
            (Template::Cov { fragments: 3 }, 6),
        ] {
            let q = build(t);
            assert_eq!(q.n_sources(), srcs, "{}", t.name());
        }
    }

    #[test]
    fn all_templates_validate() {
        for t in [
            Template::Avg,
            Template::Max,
            Template::Count,
            Template::AvgAll { fragments: 1 },
            Template::AvgAll { fragments: 6 },
            Template::Top5 { fragments: 1 },
            Template::Top5 { fragments: 6 },
            Template::Cov { fragments: 1 },
            Template::Cov { fragments: 6 },
        ] {
            let q = build(t);
            assert_eq!(q.validate(), Ok(()), "{}", t.name());
        }
    }

    #[test]
    fn avg_all_is_a_tree() {
        let q = build(Template::AvgAll { fragments: 4 });
        // Root fragment 0 consumes all leaves.
        assert_eq!(q.fragments[0].upstreams.len(), 3);
        assert_eq!(q.result_fragment, 0);
        for f in 1..4 {
            assert_eq!(q.downstream_of(f), Some(0));
        }
    }

    #[test]
    fn top5_and_cov_are_chains() {
        for t in [
            Template::Top5 { fragments: 4 },
            Template::Cov { fragments: 4 },
        ] {
            let q = build(t);
            assert_eq!(q.result_fragment, 3);
            for f in 0..3 {
                assert_eq!(q.downstream_of(f), Some(f + 1), "{}", t.name());
            }
            assert_eq!(q.downstream_of(3), None);
        }
    }

    #[test]
    fn chain_grace_grows_downstream() {
        let q = build(Template::Top5 { fragments: 3 });
        let merge_grace = |f: usize| q.fragments[f].operators[26].grace.as_micros();
        assert!(merge_grace(0) < merge_grace(1));
        assert!(merge_grace(1) < merge_grace(2));
    }

    #[test]
    fn templates_declare_source_schemas() {
        assert_eq!(
            Template::Top5 { fragments: 2 }.source_schema(),
            keyed_measurement_schema()
        );
        for t in [
            Template::Avg,
            Template::Max,
            Template::Count,
            Template::AvgAll { fragments: 2 },
            Template::Cov { fragments: 2 },
        ] {
            assert_eq!(t.source_schema(), measurement_schema(), "{}", t.name());
        }
        // Every declared source's schema agrees with its template.
        for t in [
            Template::Avg,
            Template::Top5 { fragments: 2 },
            Template::Cov { fragments: 2 },
        ] {
            let q = build(t);
            for s in &q.sources {
                assert_eq!(s.schema(), t.source_schema(), "{}", t.name());
            }
        }
        // The declared field layout matches what sources emit.
        let keyed = keyed_measurement_schema();
        assert_eq!(keyed.index_of("key"), Some(0));
        assert_eq!(keyed.field_type(1), Some(FieldType::F64));
        assert_eq!(measurement_schema().len(), 1);
    }

    #[test]
    fn source_ids_are_unique_across_queries() {
        let mut gen = IdGen::new();
        let q1 = Template::Top5 { fragments: 2 }.build(QueryId(0), &mut gen);
        let q2 = Template::Cov { fragments: 2 }.build(QueryId(1), &mut gen);
        let mut all: Vec<u32> = q1
            .sources
            .iter()
            .chain(q2.sources.iter())
            .map(|s| s.id.0)
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn top5_keys_pair_cpu_and_mem() {
        let q = build(Template::Top5 { fragments: 2 });
        // For each key there must be exactly one Cpu and one MemFree source.
        use std::collections::HashMap;
        let mut by_key: HashMap<i64, (u32, u32)> = HashMap::new();
        for s in &q.sources {
            let e = by_key.entry(s.key.unwrap()).or_insert((0, 0));
            match s.kind {
                SourceKind::Cpu => e.0 += 1,
                SourceKind::MemFree => e.1 += 1,
                SourceKind::Generic => {}
            }
        }
        assert_eq!(by_key.len(), 20);
        assert!(by_key.values().all(|&(c, m)| c == 1 && m == 1));
    }

    #[test]
    fn template_text_round_trips_through_the_parser() {
        for t in [
            Template::Avg,
            Template::Max,
            Template::Count,
            Template::AvgAll { fragments: 4 },
            Template::Top5 { fragments: 3 },
            Template::Cov { fragments: 2 },
        ] {
            let reparsed = QueryDef::parse(&t.text())
                .unwrap_or_else(|e| panic!("{}: {e}", t.name()))
                .named(t.name());
            assert_eq!(reparsed, t.def(), "{}", t.name());
            let mut a = IdGen::new();
            let mut b = IdGen::new();
            let via_text = reparsed
                .validate()
                .unwrap()
                .compile(QueryId(0), &mut a)
                .into_spec();
            assert_eq!(via_text, t.build(QueryId(0), &mut b), "{}", t.name());
        }
    }

    #[test]
    fn template_streams_declare_their_kinds() {
        let d = Template::Top5 { fragments: 2 }.def();
        assert_eq!(d.streams[0].kind, SourceKind::Cpu);
        assert_eq!(d.streams[1].kind, SourceKind::MemFree);
        assert_eq!(Template::Avg.def().streams[0].kind, SourceKind::Generic);
        assert_eq!(
            Template::Cov { fragments: 2 }.def().streams[0].kind,
            SourceKind::Cpu
        );
    }
}
