//! The query workloads of Table 1.
//!
//! **Aggregate workload** (single source, 1 s windows): `AVG`, `MAX`,
//! `COUNT` (`Having t.v >= 50`).
//!
//! **Complex workload** (data-centre monitoring, multi-fragment):
//! * `AVG-all` — average CPU usage over all sources; fragments form a
//!   *tree*: every fragment computes a `[sum, count]` partial over its 10
//!   sources and the root fragment merges partials into the final average.
//!   13 operators per fragment.
//! * `TOP-5` — top 5 nodes by available CPU with free memory ≥ 100 MB;
//!   fragments form a *chain*, each merging its local top-5 candidates with
//!   the upstream partial list. 29 operators per fragment (10 CPU
//!   receivers, 10 memory receivers, 1 filter, 3 time windows, 2 averages,
//!   1 join, 1 top-k, 1 output).
//! * `COV` — covariance of the CPU usage of two nodes; fragments form a
//!   chain; the final value is the mean of the per-fragment covariances
//!   (incremental-equivalent processing, see DESIGN.md). 5 operators per
//!   fragment.

use themis_core::prelude::*;
use themis_operators::prelude::*;

use crate::graph::{
    keyed_measurement_schema, measurement_schema, FragmentSpec, LocalEdge, QuerySpec,
    SourceBinding, SourceKind, SourceSpec, UpstreamBinding,
};

/// Base lateness grace for time windows (covers one shedding interval plus
/// LAN latency).
pub const GRACE_BASE: TimeDelta = TimeDelta(500_000);
/// Additional grace per upstream fragment hop, so merge windows wait for
/// partials that crossed the network and a shedding queue.
pub const GRACE_STEP: TimeDelta = TimeDelta(500_000);

/// The evaluation's window length: every Table-1 query reports once per
/// second.
pub const WINDOW: TimeDelta = TimeDelta(1_000_000);

/// A Table-1 query template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// `Select Avg(t.v) from Src[Range 1 sec]`
    Avg,
    /// `Select Max(t.v) from Src[Range 1 sec]`
    Max,
    /// `Select Count(t.v) ... Having t.v >= 50`
    Count,
    /// Average CPU usage over all sources (tree of fragments).
    AvgAll {
        /// Number of fragments (≥ 1).
        fragments: usize,
    },
    /// Top-5 nodes by CPU with memory filter (chain of fragments).
    Top5 {
        /// Number of fragments (≥ 1).
        fragments: usize,
    },
    /// Covariance of two CPU streams (chain of fragments).
    Cov {
        /// Number of fragments (≥ 1).
        fragments: usize,
    },
}

impl Template {
    /// Template name as in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Template::Avg => "AVG",
            Template::Max => "MAX",
            Template::Count => "COUNT",
            Template::AvgAll { .. } => "AVG-all",
            Template::Top5 { .. } => "TOP-5",
            Template::Cov { .. } => "COV",
        }
    }

    /// Operators per fragment, matching Table 1 for the complex workload.
    pub fn ops_per_fragment(&self) -> usize {
        match self {
            Template::Avg | Template::Max | Template::Count => 3,
            Template::AvgAll { .. } => 13,
            Template::Top5 { .. } => 29,
            Template::Cov { .. } => 5,
        }
    }

    /// Sources per fragment.
    pub fn sources_per_fragment(&self) -> usize {
        match self {
            Template::Avg | Template::Max | Template::Count => 1,
            Template::AvgAll { .. } => 10,
            Template::Top5 { .. } => 20,
            Template::Cov { .. } => 2,
        }
    }

    /// The per-query [`Schema`] its sources emit, declared by the
    /// template: TOP-5 sources tag each reading with a node id
    /// (`[key: i64, value: f64]`); every other workload streams plain
    /// measurements (`[value: f64]`). Sources build typed column batches
    /// against this declaration, which the window and operator path
    /// preserves end to end so the aggregate kernels read native slices.
    pub fn source_schema(&self) -> Schema {
        match self {
            Template::Top5 { .. } => keyed_measurement_schema(),
            _ => measurement_schema(),
        }
    }

    /// Number of fragments.
    pub fn fragments(&self) -> usize {
        match self {
            Template::Avg | Template::Max | Template::Count => 1,
            Template::AvgAll { fragments }
            | Template::Top5 { fragments }
            | Template::Cov { fragments } => (*fragments).max(1),
        }
    }

    /// Builds the query, drawing fresh source ids from `sources`.
    pub fn build(&self, id: QueryId, sources: &mut IdGen) -> QuerySpec {
        let spec = match self {
            Template::Avg => build_simple(id, self.name(), sources, LogicSpec::Avg { field: 0 }),
            Template::Max => build_simple(id, self.name(), sources, LogicSpec::Max { field: 0 }),
            Template::Count => build_simple(
                id,
                self.name(),
                sources,
                LogicSpec::Count {
                    predicate: Some(Predicate::new(0, CmpOp::Ge, 50.0)),
                },
            ),
            Template::AvgAll { .. } => build_avg_all(id, self.fragments(), sources),
            Template::Top5 { .. } => build_top5(id, self.fragments(), sources),
            Template::Cov { .. } => build_cov(id, self.fragments(), sources),
        };
        debug_assert_eq!(spec.validate(), Ok(()));
        spec
    }
}

fn chain_grace(pos: usize) -> TimeDelta {
    TimeDelta(GRACE_BASE.as_micros() + GRACE_STEP.as_micros() * pos as u64)
}

/// AVG / MAX / COUNT: receiver -> 1 s windowed aggregate -> output.
fn build_simple(
    id: QueryId,
    template: &'static str,
    sources: &mut IdGen,
    logic: LogicSpec,
) -> QuerySpec {
    let src: SourceId = sources.next();
    let frag = FragmentSpec {
        operators: vec![
            OperatorSpec::identity(),
            OperatorSpec::with_grace(WindowSpec::tumbling(WINDOW), logic, GRACE_BASE),
            OperatorSpec::identity(),
        ],
        edges: vec![
            LocalEdge {
                from: 0,
                to: 1,
                port: 0,
            },
            LocalEdge {
                from: 1,
                to: 2,
                port: 0,
            },
        ],
        sources: vec![SourceBinding {
            source: src,
            op: 0,
            port: 0,
        }],
        upstreams: vec![],
        root: 2,
    };
    QuerySpec {
        id,
        template,
        fragments: vec![frag],
        result_fragment: 0,
        sources: vec![SourceSpec {
            id: src,
            key: None,
            kind: SourceKind::Generic,
        }],
    }
}

/// AVG-all: `fragments` fragments of 13 operators, tree-merged at
/// fragment 0.
///
/// Per fragment: 10 receivers (0-9), 1 time window (10), 1 partial average
/// (11), 1 output (12). The root fragment's op 12 is the merge window that
/// combines local and upstream `[sum, count]` partials into the final
/// average.
fn build_avg_all(id: QueryId, fragments: usize, sources: &mut IdGen) -> QuerySpec {
    let mut specs = Vec::with_capacity(fragments);
    let mut declared = Vec::new();
    for f in 0..fragments {
        let mut operators: Vec<OperatorSpec> = (0..10).map(|_| OperatorSpec::identity()).collect();
        // Op 10: the 1 s time window grouping all local sources.
        operators.push(OperatorSpec::with_grace(
            WindowSpec::tumbling(WINDOW),
            LogicSpec::Identity,
            GRACE_BASE,
        ));
        // Op 11: partial [sum, count] over the grouped pane.
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::PartialAvg { field: 0 },
        ));
        // Op 12: leaf output (identity) or root merge (tree depth 1).
        if f == 0 {
            operators.push(OperatorSpec::with_grace(
                WindowSpec::tumbling(WINDOW),
                LogicSpec::MergeAvg,
                chain_grace(1),
            ));
        } else {
            operators.push(OperatorSpec::identity());
        }
        let mut edges: Vec<LocalEdge> = (0..10)
            .map(|i| LocalEdge {
                from: i,
                to: 10,
                port: 0,
            })
            .collect();
        edges.push(LocalEdge {
            from: 10,
            to: 11,
            port: 0,
        });
        edges.push(LocalEdge {
            from: 11,
            to: 12,
            port: 0,
        });
        let mut bindings = Vec::with_capacity(10);
        for i in 0..10 {
            let sid: SourceId = sources.next();
            // Unkeyed rows ([value]): the tree aggregates a single field
            // and never joins, so no node id is carried.
            declared.push(SourceSpec {
                id: sid,
                key: None,
                kind: SourceKind::Cpu,
            });
            bindings.push(SourceBinding {
                source: sid,
                op: i,
                port: 0,
            });
        }
        // Leaves feed the root fragment's merge operator.
        let upstreams = Vec::new();
        specs.push(FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams,
            root: 12,
        });
    }
    for f in 1..fragments {
        specs[0].upstreams.push(UpstreamBinding {
            fragment: f,
            op: 12,
            port: 0,
        });
    }
    QuerySpec {
        id,
        template: "AVG-all",
        fragments: specs,
        result_fragment: 0,
        sources: declared,
    }
}

/// TOP-5: `fragments` fragments of 29 operators, chained; the last fragment
/// emits the query result.
///
/// Per fragment: 10 CPU receivers (0-9), 10 memory receivers (10-19),
/// memory filter (20), CPU window (21), memory window (22), 2 group
/// averages (23, 24), join (25), merge window (26), top-k (27), output
/// (28). Upstream partial lists join at the merge window.
fn build_top5(id: QueryId, fragments: usize, sources: &mut IdGen) -> QuerySpec {
    let mut specs = Vec::with_capacity(fragments);
    let mut declared = Vec::new();
    for f in 0..fragments {
        let mut operators: Vec<OperatorSpec> = (0..20).map(|_| OperatorSpec::identity()).collect();
        // 20: free-memory filter (>= 100 000 KB), per-batch atomic.
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::Filter(Predicate::new(1, CmpOp::Ge, 100_000.0)),
        ));
        // 21/22: CPU and memory 1 s windows.
        operators.push(OperatorSpec::with_grace(
            WindowSpec::tumbling(WINDOW),
            LogicSpec::Identity,
            GRACE_BASE,
        ));
        operators.push(OperatorSpec::with_grace(
            WindowSpec::tumbling(WINDOW),
            LogicSpec::Identity,
            GRACE_BASE,
        ));
        // 23/24: per-node averages over the window panes.
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::GroupAvg {
                key_field: 0,
                value_field: 1,
            },
        ));
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::GroupAvg {
                key_field: 0,
                value_field: 1,
            },
        ));
        // 25: join CPU with filtered memory on node id.
        operators.push(OperatorSpec::with_grace(
            WindowSpec::tumbling(WINDOW),
            LogicSpec::Join {
                left_key: 0,
                right_key: 0,
            },
            GRACE_BASE,
        ));
        // 26: merge window combining local candidates and upstream top-5.
        operators.push(OperatorSpec::with_grace(
            WindowSpec::tumbling(WINDOW),
            LogicSpec::Identity,
            chain_grace(f),
        ));
        // 27: top-5 by CPU ([id, cpu] after the join row projection below).
        operators.push(OperatorSpec::new(
            WindowSpec::PassThrough,
            LogicSpec::TopK {
                k: 5,
                id_field: 0,
                value_field: 1,
            },
        ));
        // 28: output.
        operators.push(OperatorSpec::identity());

        let mut edges: Vec<LocalEdge> = Vec::new();
        for i in 0..10 {
            edges.push(LocalEdge {
                from: i,
                to: 21,
                port: 0,
            });
        }
        for i in 10..20 {
            edges.push(LocalEdge {
                from: i,
                to: 20,
                port: 0,
            });
        }
        edges.push(LocalEdge {
            from: 20,
            to: 22,
            port: 0,
        });
        edges.push(LocalEdge {
            from: 21,
            to: 23,
            port: 0,
        });
        edges.push(LocalEdge {
            from: 22,
            to: 24,
            port: 0,
        });
        edges.push(LocalEdge {
            from: 23,
            to: 25,
            port: 0,
        });
        edges.push(LocalEdge {
            from: 24,
            to: 25,
            port: 1,
        });
        edges.push(LocalEdge {
            from: 25,
            to: 26,
            port: 0,
        });
        edges.push(LocalEdge {
            from: 26,
            to: 27,
            port: 0,
        });
        edges.push(LocalEdge {
            from: 27,
            to: 28,
            port: 0,
        });

        let mut bindings = Vec::with_capacity(20);
        for i in 0..10 {
            let node_key = (f * 10 + i) as i64;
            let cpu: SourceId = sources.next();
            declared.push(SourceSpec {
                id: cpu,
                key: Some(node_key),
                kind: SourceKind::Cpu,
            });
            bindings.push(SourceBinding {
                source: cpu,
                op: i,
                port: 0,
            });
            let mem: SourceId = sources.next();
            declared.push(SourceSpec {
                id: mem,
                key: Some(node_key),
                kind: SourceKind::MemFree,
            });
            bindings.push(SourceBinding {
                source: mem,
                op: 10 + i,
                port: 0,
            });
        }
        let upstreams = if f > 0 {
            vec![UpstreamBinding {
                fragment: f - 1,
                op: 26,
                port: 0,
            }]
        } else {
            Vec::new()
        };
        specs.push(FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams,
            root: 28,
        });
    }
    QuerySpec {
        id,
        template: "TOP-5",
        fragments: specs,
        result_fragment: fragments - 1,
        sources: declared,
    }
}

/// COV: `fragments` fragments of 5 operators, chained.
///
/// Per fragment: 2 receivers (0, 1), a windowed covariance (2), a merge
/// window combining local and upstream partial covariances (3), and an
/// averaging output (4).
fn build_cov(id: QueryId, fragments: usize, sources: &mut IdGen) -> QuerySpec {
    let mut specs = Vec::with_capacity(fragments);
    let mut declared = Vec::new();
    for f in 0..fragments {
        let operators = vec![
            OperatorSpec::identity(),
            OperatorSpec::identity(),
            OperatorSpec::with_grace(
                WindowSpec::tumbling(WINDOW),
                LogicSpec::Cov { field: 0 },
                GRACE_BASE,
            ),
            OperatorSpec::with_grace(
                WindowSpec::tumbling(WINDOW),
                LogicSpec::Identity,
                chain_grace(f),
            ),
            OperatorSpec::new(WindowSpec::PassThrough, LogicSpec::Avg { field: 0 }),
        ];
        let edges = vec![
            LocalEdge {
                from: 0,
                to: 2,
                port: 0,
            },
            LocalEdge {
                from: 1,
                to: 2,
                port: 1,
            },
            LocalEdge {
                from: 2,
                to: 3,
                port: 0,
            },
            LocalEdge {
                from: 3,
                to: 4,
                port: 0,
            },
        ];
        let mut bindings = Vec::with_capacity(2);
        for i in 0..2 {
            let sid: SourceId = sources.next();
            declared.push(SourceSpec {
                id: sid,
                key: None,
                kind: SourceKind::Cpu,
            });
            bindings.push(SourceBinding {
                source: sid,
                op: i,
                port: 0,
            });
        }
        let upstreams = if f > 0 {
            vec![UpstreamBinding {
                fragment: f - 1,
                op: 3,
                port: 0,
            }]
        } else {
            Vec::new()
        };
        specs.push(FragmentSpec {
            operators,
            edges,
            sources: bindings,
            upstreams,
            root: 4,
        });
    }
    QuerySpec {
        id,
        template: "COV",
        fragments: specs,
        result_fragment: fragments - 1,
        sources: declared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(t: Template) -> QuerySpec {
        let mut gen = IdGen::new();
        t.build(QueryId(0), &mut gen)
    }

    #[test]
    fn table1_operator_counts() {
        // The paper's Table 1: 13, 29 and 5 operators per fragment.
        for (t, ops) in [
            (Template::AvgAll { fragments: 3 }, 13),
            (Template::Top5 { fragments: 2 }, 29),
            (Template::Cov { fragments: 2 }, 5),
        ] {
            let q = build(t);
            for f in &q.fragments {
                assert_eq!(f.n_operators(), ops, "{}", t.name());
            }
            assert_eq!(t.ops_per_fragment(), ops);
        }
    }

    #[test]
    fn table1_source_counts() {
        for (t, srcs) in [
            (Template::Avg, 1),
            (Template::AvgAll { fragments: 4 }, 40),
            (Template::Top5 { fragments: 2 }, 40),
            (Template::Cov { fragments: 3 }, 6),
        ] {
            let q = build(t);
            assert_eq!(q.n_sources(), srcs, "{}", t.name());
        }
    }

    #[test]
    fn all_templates_validate() {
        for t in [
            Template::Avg,
            Template::Max,
            Template::Count,
            Template::AvgAll { fragments: 1 },
            Template::AvgAll { fragments: 6 },
            Template::Top5 { fragments: 1 },
            Template::Top5 { fragments: 6 },
            Template::Cov { fragments: 1 },
            Template::Cov { fragments: 6 },
        ] {
            let q = build(t);
            assert_eq!(q.validate(), Ok(()), "{}", t.name());
        }
    }

    #[test]
    fn avg_all_is_a_tree() {
        let q = build(Template::AvgAll { fragments: 4 });
        // Root fragment 0 consumes all leaves.
        assert_eq!(q.fragments[0].upstreams.len(), 3);
        assert_eq!(q.result_fragment, 0);
        for f in 1..4 {
            assert_eq!(q.downstream_of(f), Some(0));
        }
    }

    #[test]
    fn top5_and_cov_are_chains() {
        for t in [
            Template::Top5 { fragments: 4 },
            Template::Cov { fragments: 4 },
        ] {
            let q = build(t);
            assert_eq!(q.result_fragment, 3);
            for f in 0..3 {
                assert_eq!(q.downstream_of(f), Some(f + 1), "{}", t.name());
            }
            assert_eq!(q.downstream_of(3), None);
        }
    }

    #[test]
    fn chain_grace_grows_downstream() {
        let q = build(Template::Top5 { fragments: 3 });
        let merge_grace = |f: usize| q.fragments[f].operators[26].grace.as_micros();
        assert!(merge_grace(0) < merge_grace(1));
        assert!(merge_grace(1) < merge_grace(2));
    }

    #[test]
    fn templates_declare_source_schemas() {
        assert_eq!(
            Template::Top5 { fragments: 2 }.source_schema(),
            keyed_measurement_schema()
        );
        for t in [
            Template::Avg,
            Template::Max,
            Template::Count,
            Template::AvgAll { fragments: 2 },
            Template::Cov { fragments: 2 },
        ] {
            assert_eq!(t.source_schema(), measurement_schema(), "{}", t.name());
        }
        // Every declared source's schema agrees with its template.
        for t in [
            Template::Avg,
            Template::Top5 { fragments: 2 },
            Template::Cov { fragments: 2 },
        ] {
            let q = build(t);
            for s in &q.sources {
                assert_eq!(s.schema(), t.source_schema(), "{}", t.name());
            }
        }
        // The declared field layout matches what sources emit.
        let keyed = keyed_measurement_schema();
        assert_eq!(keyed.index_of("key"), Some(0));
        assert_eq!(keyed.field_type(1), Some(FieldType::F64));
        assert_eq!(measurement_schema().len(), 1);
    }

    #[test]
    fn source_ids_are_unique_across_queries() {
        let mut gen = IdGen::new();
        let q1 = Template::Top5 { fragments: 2 }.build(QueryId(0), &mut gen);
        let q2 = Template::Cov { fragments: 2 }.build(QueryId(1), &mut gen);
        let mut all: Vec<u32> = q1
            .sources
            .iter()
            .chain(q2.sources.iter())
            .map(|s| s.id.0)
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn top5_keys_pair_cpu_and_mem() {
        let q = build(Template::Top5 { fragments: 2 });
        // For each key there must be exactly one Cpu and one MemFree source.
        use std::collections::HashMap;
        let mut by_key: HashMap<i64, (u32, u32)> = HashMap::new();
        for s in &q.sources {
            let e = by_key.entry(s.key.unwrap()).or_insert((0, 0));
            match s.kind {
                SourceKind::Cpu => e.0 += 1,
                SourceKind::MemFree => e.1 += 1,
                SourceKind::Generic => {}
            }
        }
        assert_eq!(by_key.len(), 20);
        assert!(by_key.values().all(|&(c, m)| c == 1 && m == 1));
    }
}
