//! Query graphs and fragments (§3 "Query graph" / "Query deployment").
//!
//! A query is a DAG of operators partitioned into *fragments*: disjoint sets
//! of operators, each deployed on a different FSPS node. Fragments connect
//! to sources and to each other; one fragment's root operator emits the
//! query result stream.

use std::collections::HashSet;

use themis_core::prelude::*;
use themis_operators::prelude::*;

/// Tuple-flow edge between two operators inside one fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalEdge {
    /// Producing operator (local index).
    pub from: usize,
    /// Consuming operator (local index).
    pub to: usize,
    /// Input port of the consumer.
    pub port: usize,
}

/// Binds a data source to an operator input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceBinding {
    /// The source.
    pub source: SourceId,
    /// Receiving operator (local index).
    pub op: usize,
    /// Input port of the receiver.
    pub port: usize,
}

/// Binds the output of an upstream fragment to an operator input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpstreamBinding {
    /// Index of the upstream fragment within the query.
    pub fragment: usize,
    /// Receiving operator (local index).
    pub op: usize,
    /// Input port of the receiver.
    pub port: usize,
}

/// What kind of data a source emits; the workload generator maps kinds to
/// value distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Generic measurement around a configurable mean (aggregate workload).
    Generic,
    /// Available-CPU percentage readings (TOP-5 workload).
    Cpu,
    /// Free-memory KB readings (TOP-5 workload; filtered at 100 000 KB).
    MemFree,
}

/// The declared row schema of unkeyed measurement sources: `[value: f64]`.
pub fn measurement_schema() -> Schema {
    Schema::new([("value", FieldType::F64)])
}

/// The declared row schema of keyed sources: `[key: i64, value: f64]`
/// (the TOP-5 workload's node-id-tagged CPU and memory readings).
pub fn keyed_measurement_schema() -> Schema {
    Schema::new([("key", FieldType::I64), ("value", FieldType::F64)])
}

/// Dictionary-tag identity of a group-by source: the source stamps every
/// row with `label` (pre-interned as `code` in the query's shared
/// dictionary) so a downstream `GROUP BY` aggregates per source tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagSource {
    /// The tag string stamped on this source's rows.
    pub label: String,
    /// `label`'s code in `schema`'s shared [`TagInterner`].
    pub code: u32,
    /// The query-wide tag schema (`[<group column>: Tag, value: F64]`).
    /// Every source of the query holds a clone of the *same* schema, so
    /// all of their batches share one dictionary and the group-by kernel
    /// reads codes without re-interning.
    pub schema: Schema,
}

/// Declares one source of a query: its id, schema key and data kind.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// Globally unique source id.
    pub id: SourceId,
    /// Key value for keyed rows (`[key, value]`); `None` emits `[value]`.
    pub key: Option<i64>,
    /// Data kind.
    pub kind: SourceKind,
    /// Dictionary tag for group-by queries: when set, rows carry
    /// `[tag, value]` against the query's shared tag schema instead of a
    /// key layout. Mutually exclusive with `key`.
    pub tag: Option<TagSource>,
}

impl SourceSpec {
    /// An untagged source: `[key, value]` rows when `key` is set,
    /// `[value]` rows otherwise.
    pub fn plain(id: SourceId, key: Option<i64>, kind: SourceKind) -> Self {
        SourceSpec {
            id,
            key,
            kind,
            tag: None,
        }
    }

    /// The declared [`Schema`] of this source's rows. Source drivers build
    /// typed column batches against it, so every payload field travels as
    /// a contiguous native column from the source onward. Tagged sources
    /// return the query's shared tag schema (one dictionary per query).
    pub fn schema(&self) -> Schema {
        if let Some(tag) = &self.tag {
            return tag.schema.clone();
        }
        match self.key {
            Some(_) => keyed_measurement_schema(),
            None => measurement_schema(),
        }
    }
}

/// One query fragment: a local operator DAG plus its external bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentSpec {
    /// Operators of the fragment; the local index is the operator id.
    pub operators: Vec<OperatorSpec>,
    /// Intra-fragment edges.
    pub edges: Vec<LocalEdge>,
    /// Source inputs.
    pub sources: Vec<SourceBinding>,
    /// Upstream-fragment inputs.
    pub upstreams: Vec<UpstreamBinding>,
    /// The operator whose output leaves the fragment.
    pub root: usize,
}

impl FragmentSpec {
    /// Number of operators (Table 1 reports operators per fragment).
    pub fn n_operators(&self) -> usize {
        self.operators.len()
    }

    /// Topological order of the local operator DAG (Kahn's algorithm,
    /// smallest-index-first for determinism); `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.operators.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut ready: BinaryHeap<Reverse<usize>> =
            (0..n).filter(|&i| indeg[i] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(i)) = ready.pop() {
            order.push(i);
            for e in self.edges.iter().filter(|e| e.from == i) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    ready.push(Reverse(e.to));
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

/// A complete query: fragments, source declarations and the result fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The query id.
    pub id: QueryId,
    /// Query name (a Table-1 row for template presets, the declared name
    /// for spec-compiled queries), for reports.
    pub template: String,
    /// Fragments; index is the fragment's position within the query.
    pub fragments: Vec<FragmentSpec>,
    /// Fragment whose root operator emits the query result.
    pub result_fragment: usize,
    /// All sources read by the query.
    pub sources: Vec<SourceSpec>,
}

/// Validation failure for a query spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An edge/binding references a missing operator.
    BadOperatorRef {
        /// Offending fragment.
        fragment: usize,
    },
    /// A fragment's local DAG contains a cycle.
    CyclicFragment {
        /// Offending fragment.
        fragment: usize,
    },
    /// The inter-fragment graph contains a cycle.
    CyclicFragmentGraph,
    /// `result_fragment` out of range.
    BadResultFragment,
    /// An upstream binding references a missing fragment.
    BadUpstreamRef {
        /// Offending fragment.
        fragment: usize,
    },
    /// A source is bound in a fragment but not declared in the query.
    UndeclaredSource {
        /// Offending fragment.
        fragment: usize,
        /// The missing source.
        source: SourceId,
    },
    /// The query has no fragments.
    Empty,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadOperatorRef { fragment } => {
                write!(f, "fragment {fragment}: edge references missing operator")
            }
            QueryError::CyclicFragment { fragment } => {
                write!(f, "fragment {fragment}: operator DAG is cyclic")
            }
            QueryError::CyclicFragmentGraph => write!(f, "fragment graph is cyclic"),
            QueryError::BadResultFragment => write!(f, "result fragment out of range"),
            QueryError::BadUpstreamRef { fragment } => {
                write!(f, "fragment {fragment}: upstream binding out of range")
            }
            QueryError::UndeclaredSource { fragment, source } => {
                write!(f, "fragment {fragment}: source {source} not declared")
            }
            QueryError::Empty => write!(f, "query has no fragments"),
        }
    }
}

impl std::error::Error for QueryError {}

impl QuerySpec {
    /// Number of sources (`|S|` of Eq. 1).
    pub fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of fragments.
    pub fn n_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Total operators across fragments.
    pub fn n_operators(&self) -> usize {
        self.fragments.iter().map(FragmentSpec::n_operators).sum()
    }

    /// The fragment (if any) that consumes fragment `idx`'s output.
    pub fn downstream_of(&self, idx: usize) -> Option<usize> {
        self.fragments
            .iter()
            .position(|f| f.upstreams.iter().any(|u| u.fragment == idx))
    }

    /// Checks structural invariants.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.fragments.is_empty() {
            return Err(QueryError::Empty);
        }
        if self.result_fragment >= self.fragments.len() {
            return Err(QueryError::BadResultFragment);
        }
        let declared: HashSet<SourceId> = self.sources.iter().map(|s| s.id).collect();
        for (fi, frag) in self.fragments.iter().enumerate() {
            let n = frag.operators.len();
            let op_ok = frag.edges.iter().all(|e| e.from < n && e.to < n)
                && frag.sources.iter().all(|s| s.op < n)
                && frag.upstreams.iter().all(|u| u.op < n)
                && frag.root < n;
            if !op_ok {
                return Err(QueryError::BadOperatorRef { fragment: fi });
            }
            if frag.topo_order().is_none() {
                return Err(QueryError::CyclicFragment { fragment: fi });
            }
            for u in &frag.upstreams {
                if u.fragment >= self.fragments.len() || u.fragment == fi {
                    return Err(QueryError::BadUpstreamRef { fragment: fi });
                }
            }
            for s in &frag.sources {
                if !declared.contains(&s.source) {
                    return Err(QueryError::UndeclaredSource {
                        fragment: fi,
                        source: s.source,
                    });
                }
            }
        }
        // Inter-fragment acyclicity via DFS colouring.
        let n = self.fragments.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        fn dfs(i: usize, specs: &[FragmentSpec], state: &mut [u8]) -> bool {
            state[i] = 1;
            for u in &specs[i].upstreams {
                let st = state[u.fragment];
                if st == 1 || (st == 0 && !dfs(u.fragment, specs, state)) {
                    return false;
                }
            }
            state[i] = 2;
            true
        }
        for i in 0..n {
            if state[i] == 0 && !dfs(i, &self.fragments, &mut state) {
                return Err(QueryError::CyclicFragmentGraph);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_operators::logic::LogicSpec;
    use themis_operators::window::WindowSpec;

    fn identity_frag(n_ops: usize, root: usize) -> FragmentSpec {
        FragmentSpec {
            operators: (0..n_ops).map(|_| OperatorSpec::identity()).collect(),
            edges: (1..n_ops)
                .map(|i| LocalEdge {
                    from: i - 1,
                    to: i,
                    port: 0,
                })
                .collect(),
            sources: vec![SourceBinding {
                source: SourceId(0),
                op: 0,
                port: 0,
            }],
            upstreams: vec![],
            root,
        }
    }

    fn simple_query() -> QuerySpec {
        QuerySpec {
            id: QueryId(0),
            template: "test".to_string(),
            fragments: vec![identity_frag(3, 2)],
            result_fragment: 0,
            sources: vec![SourceSpec::plain(SourceId(0), None, SourceKind::Generic)],
        }
    }

    #[test]
    fn valid_query_passes() {
        assert_eq!(simple_query().validate(), Ok(()));
    }

    #[test]
    fn counts() {
        let q = simple_query();
        assert_eq!(q.n_sources(), 1);
        assert_eq!(q.n_fragments(), 1);
        assert_eq!(q.n_operators(), 3);
    }

    #[test]
    fn topo_order_linear_chain() {
        let f = identity_frag(4, 3);
        assert_eq!(f.topo_order(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn cyclic_fragment_rejected() {
        let mut q = simple_query();
        q.fragments[0].edges.push(LocalEdge {
            from: 2,
            to: 0,
            port: 0,
        });
        assert_eq!(
            q.validate(),
            Err(QueryError::CyclicFragment { fragment: 0 })
        );
    }

    #[test]
    fn bad_refs_rejected() {
        let mut q = simple_query();
        q.fragments[0].root = 9;
        assert_eq!(
            q.validate(),
            Err(QueryError::BadOperatorRef { fragment: 0 })
        );

        let mut q = simple_query();
        q.result_fragment = 5;
        assert_eq!(q.validate(), Err(QueryError::BadResultFragment));

        let mut q = simple_query();
        q.fragments[0].sources[0].source = SourceId(99);
        assert!(matches!(
            q.validate(),
            Err(QueryError::UndeclaredSource { .. })
        ));
    }

    #[test]
    fn upstream_cycle_rejected() {
        let mut q = simple_query();
        let mut f2 = identity_frag(2, 1);
        f2.sources.clear();
        f2.upstreams.push(UpstreamBinding {
            fragment: 0,
            op: 0,
            port: 0,
        });
        q.fragments.push(f2);
        q.fragments[0].upstreams.push(UpstreamBinding {
            fragment: 1,
            op: 0,
            port: 0,
        });
        assert_eq!(q.validate(), Err(QueryError::CyclicFragmentGraph));
    }

    #[test]
    fn self_upstream_rejected() {
        let mut q = simple_query();
        q.fragments[0].upstreams.push(UpstreamBinding {
            fragment: 0,
            op: 0,
            port: 0,
        });
        assert_eq!(
            q.validate(),
            Err(QueryError::BadUpstreamRef { fragment: 0 })
        );
    }

    #[test]
    fn downstream_lookup() {
        let mut q = simple_query();
        let mut f2 = identity_frag(2, 1);
        f2.sources.clear();
        f2.upstreams.push(UpstreamBinding {
            fragment: 0,
            op: 0,
            port: 0,
        });
        q.fragments.push(f2);
        assert_eq!(q.downstream_of(0), Some(1));
        assert_eq!(q.downstream_of(1), None);
    }

    #[test]
    fn diamond_topo_order() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let f = FragmentSpec {
            operators: (0..4).map(|_| OperatorSpec::identity()).collect(),
            edges: vec![
                LocalEdge {
                    from: 0,
                    to: 1,
                    port: 0,
                },
                LocalEdge {
                    from: 0,
                    to: 2,
                    port: 0,
                },
                LocalEdge {
                    from: 1,
                    to: 3,
                    port: 0,
                },
                LocalEdge {
                    from: 2,
                    to: 3,
                    port: 0,
                },
            ],
            sources: vec![],
            upstreams: vec![],
            root: 3,
        };
        let topo = f.topo_order().unwrap();
        let pos = |x: usize| topo.iter().position(|&i| i == x).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn windowed_spec_in_fragment() {
        // Sanity: fragments can carry non-identity specs.
        let f = FragmentSpec {
            operators: vec![OperatorSpec::new(
                WindowSpec::tumbling(TimeDelta::from_secs(1)),
                LogicSpec::Avg { field: 0 },
            )],
            edges: vec![],
            sources: vec![],
            upstreams: vec![],
            root: 0,
        };
        assert_eq!(f.n_operators(), 1);
        assert!(f.topo_order().is_some());
    }
}
