//! Per-tag group-by aggregation over dictionary-coded key columns.
//!
//! [`GroupAggregateLogic`] is the group-by frontend of the scale path:
//! it sums a value field per distinct tag of a [`FieldType::Tag`] key
//! column and emits `[tag, sum, count]` partials, ready for a
//! downstream merge (sum the sums and counts per tag) or a final
//! `sum / count` average. Typed panes run the
//! [`kernels::group_sum_count_f64`] kernel directly on the raw code
//! slice — flat `Vec`-indexed accumulators, no per-row hashing — and
//! the output batch shares the input column's interner, so the emitted
//! codes stay resolvable downstream.

use std::collections::HashMap;
use std::sync::Arc;

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};
use crate::kernels;

/// Per-tag `(sum, count)` group-by; emits `[tag, sum, count]` rows in
/// ascending code order.
#[derive(Debug)]
pub struct GroupAggregateLogic {
    key_field: usize,
    value_field: usize,
}

impl GroupAggregateLogic {
    /// Creates the logic.
    pub fn new(key_field: usize, value_field: usize) -> Self {
        GroupAggregateLogic {
            key_field,
            value_field,
        }
    }

    /// Scalar per-key reference fold shared by the row path (and pinned
    /// against the kernel by the property tests): key codes read through
    /// the numeric view (`Tag` yields its code, negatives clamp to 0 —
    /// the same clamp `Column::push_value` applies when writing a tag
    /// column).
    fn fold_rows(&self, panes: &[&TupleBatch]) -> Vec<(u32, f64, u64)> {
        let mut acc: HashMap<u32, (f64, u64)> = HashMap::new();
        for p in panes {
            for t in p.iter() {
                let code = t.get(self.key_field).map(|v| v.as_i64()).unwrap_or(0);
                let v = t.get(self.value_field).map(|v| v.as_f64()).unwrap_or(0.0);
                let e = acc.entry(code.max(0) as u32).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            }
        }
        let mut rows: Vec<(u32, f64, u64)> = acc.into_iter().map(|(c, (s, n))| (c, s, n)).collect();
        rows.sort_unstable_by_key(|&(c, _, _)| c);
        rows
    }
}

/// Output schema of one emission: `[tag, sum, count]`, with the tag
/// column bound to the input pane's dictionary when one is available.
fn out_schema(dict: Option<&Arc<TagInterner>>) -> Schema {
    let fields = [
        ("tag", FieldType::Tag),
        ("sum", FieldType::F64),
        ("count", FieldType::I64),
    ];
    match dict {
        Some(d) => Schema::with_interner(fields, Arc::clone(d)),
        None => Schema::new(fields),
    }
}

impl PaneLogic for GroupAggregateLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        self.fold_rows(panes)
            .into_iter()
            .map(|(c, s, n)| {
                (
                    None,
                    vec![Value::Tag(c), Value::F64(s), Value::I64(n as i64)],
                )
            })
            .collect()
    }

    fn apply_columnar(&mut self, panes: &[&TupleBatch], at: Timestamp) -> Option<TupleBatch> {
        // Kernel path only when every non-empty pane exposes native tag
        // key and f64 value columns sharing one dictionary; mixed panes
        // fall back to the scalar row path, whose numeric-view fold
        // handles arena rows and cross-dictionary codes alike.
        let mut dict: Option<&Arc<TagInterner>> = None;
        let mut acc = kernels::GroupSums::new();
        for p in panes {
            if p.rows() == 0 {
                continue;
            }
            let keys = p.tag_column(self.key_field)?;
            let vals = p.f64_column(self.value_field)?;
            match dict {
                Some(d) if !Arc::ptr_eq(d, keys.dict()) => return None,
                Some(_) => {}
                None => dict = Some(keys.dict()),
            }
            acc.accumulate(keys.codes(), vals, p.drops());
        }
        let rows = acc.into_sorted();
        let mut out = TupleBatch::with_schema_capacity(out_schema(dict), rows.len());
        for (c, s, n) in rows {
            out.push_row(
                at,
                Sic(0.0), // wrapper restamps per Eq. 3
                &[Value::Tag(c), Value::F64(s), Value::I64(n as i64)],
            );
        }
        Some(out)
    }

    fn name(&self) -> &'static str {
        "group-aggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged(rows: &[(&str, f64)]) -> TupleBatch {
        let schema = Schema::new([("tag", FieldType::Tag), ("value", FieldType::F64)]);
        let dict = schema.interner().unwrap().clone();
        let mut b = TupleBatch::with_schema_capacity(schema, rows.len());
        for &(tag, v) in rows {
            let code = dict.intern(tag);
            b.push_row(Timestamp(3), Sic(0.1), &[Value::Tag(code), Value::F64(v)]);
        }
        b
    }

    #[test]
    fn columnar_matches_scalar_rows() {
        let pane = tagged(&[("a", 1.0), ("b", 2.0), ("a", 3.0)]);
        let mut logic = GroupAggregateLogic::new(0, 1);
        let rows = logic.apply(&[&pane]);
        let cols = logic.apply_columnar(&[&pane], Timestamp(9)).unwrap();
        assert_eq!(cols.len(), rows.len());
        for (i, (_, r)) in rows.iter().enumerate() {
            assert_eq!(&cols.row(i).values.to_vec(), r);
        }
        // Aggregate emissions carry the pane stamp on the columnar path.
        assert_eq!(cols.row(0).ts, Timestamp(9));
        // The output column shares the input dictionary.
        let out_dict = cols.tag_column(0).unwrap().dict().clone();
        assert!(Arc::ptr_eq(&out_dict, pane.tag_column(0).unwrap().dict()));
        let code = cols.row(0).values.i64(0) as u32;
        assert_eq!(&*out_dict.resolve(code).unwrap(), "a");
    }

    #[test]
    fn columnar_skips_dropped_rows() {
        let mut pane = tagged(&[("a", 1.0), ("a", 2.0), ("b", 4.0)]);
        pane.drop_row(1);
        let out = GroupAggregateLogic::new(0, 1)
            .apply_columnar(&[&pane], Timestamp(0))
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.f64_column(1), Some(&[1.0, 4.0][..]));
        assert_eq!(out.i64_column(2), Some(&[1, 1][..]));
    }

    #[test]
    fn columnar_declines_mixed_dictionaries() {
        let a = tagged(&[("a", 1.0)]);
        let b = tagged(&[("b", 2.0)]);
        assert!(!a.tag_column(0).unwrap().dict().is_empty());
        let mut logic = GroupAggregateLogic::new(0, 1);
        assert!(logic.apply_columnar(&[&a, &b], Timestamp(0)).is_none());
        // Same dictionary across panes accumulates.
        let c = tagged(&[("a", 1.0), ("b", 2.0)]);
        let d = {
            let schema = c.schema().unwrap().clone();
            let dict = schema.interner().unwrap().clone();
            let mut b = TupleBatch::with_schema_capacity(schema, 1);
            b.push_row(
                Timestamp(0),
                Sic(0.1),
                &[Value::Tag(dict.intern("a")), Value::F64(5.0)],
            );
            b
        };
        let out = logic.apply_columnar(&[&c, &d], Timestamp(0)).unwrap();
        assert_eq!(out.f64_column(1), Some(&[6.0, 2.0][..]));
    }

    #[test]
    fn arena_panes_fall_back_to_rows() {
        let pane: TupleBatch = vec![
            Tuple::new(Timestamp(0), Sic(0.1), vec![Value::Tag(2), Value::F64(1.5)]),
            Tuple::new(Timestamp(0), Sic(0.1), vec![Value::Tag(2), Value::F64(2.5)]),
        ]
        .into_iter()
        .collect();
        let mut logic = GroupAggregateLogic::new(0, 1);
        assert!(logic.apply_columnar(&[&pane], Timestamp(0)).is_none());
        let rows = logic.apply(&[&pane]);
        assert_eq!(
            rows,
            vec![(None, vec![Value::Tag(2), Value::F64(4.0), Value::I64(2)])]
        );
    }
}
