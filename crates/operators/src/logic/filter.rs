//! Stateless row logic: identity, filter, project. All three are
//! row-preserving: output rows inherit the timestamp of the tuple they came
//! from, so downstream event-time windows keep grouping correctly.
//!
//! Identity and filter implement the columnar fast path
//! ([`PaneLogic::apply_columnar`]): identity concatenates pane columns
//! (contiguous copies, typed layout preserved) and filter evaluates its
//! predicate through the [`kernels::predicate_mask`] bitmap kernel,
//! gathering survivors column-by-column — so a typed batch stays typed
//! from the source all the way through its receiver chain.

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};
use crate::kernels;

/// Comparison operator for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `field > v`
    Gt,
    /// `field >= v`
    Ge,
    /// `field < v`
    Lt,
    /// `field <= v`
    Le,
    /// `field == v` (numeric equality)
    Eq,
}

/// A `field ⊙ constant` predicate over the numeric view of a field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Field index.
    pub field: usize,
    /// Comparison.
    pub op: CmpOp,
    /// Right-hand constant.
    pub value: f64,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(field: usize, op: CmpOp, value: f64) -> Self {
        Predicate { field, op, value }
    }

    /// Compares one numeric field value against the constant — the
    /// scalar core shared with the vectorized
    /// [`kernels::predicate_mask`].
    #[inline]
    pub fn matches(&self, v: f64) -> bool {
        match self.op {
            CmpOp::Gt => v > self.value,
            CmpOp::Ge => v >= self.value,
            CmpOp::Lt => v < self.value,
            CmpOp::Le => v <= self.value,
            CmpOp::Eq => v == self.value,
        }
    }

    /// Evaluates the predicate against one payload row (a missing field
    /// reads as 0).
    pub fn eval(&self, values: &[Value]) -> bool {
        self.matches(values.get(self.field).map(|v| v.as_f64()).unwrap_or(0.0))
    }

    /// Evaluates the predicate against a borrowed row view (a missing
    /// field reads as 0).
    #[inline]
    pub fn eval_row(&self, row: &RowValues<'_>) -> bool {
        self.matches(row.get(self.field).map(|v| v.as_f64()).unwrap_or(0.0))
    }
}

/// Pass-through logic used by source receivers, forwarders and output
/// operators: every input row is emitted unchanged.
#[derive(Debug, Default)]
pub struct IdentityLogic;

impl PaneLogic for IdentityLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .flat_map(|p| p.iter().map(|t| (Some(t.ts), t.values.to_vec())))
            .collect()
    }

    fn apply_columnar(&mut self, panes: &[&TupleBatch], _at: Timestamp) -> Option<TupleBatch> {
        // Concatenate pane columns: typed panes append column-to-column,
        // so a receiver's emission keeps its native layout.
        let mut out = TupleBatch::new();
        for p in panes {
            out.append_batch(p);
        }
        Some(out)
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Filter: emits the rows matching the predicate. Because the pane is the
/// atomic unit (Eq. 3), the pane's SIC mass redistributes over survivors —
/// filtering alone does not degrade the query's SIC unless *all* rows drop.
#[derive(Debug)]
pub struct FilterLogic {
    predicate: Predicate,
}

impl FilterLogic {
    /// Creates the filter.
    pub fn new(predicate: Predicate) -> Self {
        FilterLogic { predicate }
    }
}

impl PaneLogic for FilterLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .flat_map(|p| p.iter())
            .filter(|t| self.predicate.eval_row(&t.values))
            .map(|t| (Some(t.ts), t.values.to_vec()))
            .collect()
    }

    fn apply_columnar(&mut self, panes: &[&TupleBatch], _at: Timestamp) -> Option<TupleBatch> {
        // Typed fast path only when every non-empty pane exposes the
        // predicate field as a native f64 column; otherwise the scalar
        // row path handles the pane (missing fields read as 0 there).
        let mut out = TupleBatch::new();
        for p in panes {
            if p.rows() == 0 {
                continue;
            }
            let col = p.f64_column(self.predicate.field)?;
            let mask =
                kernels::predicate_mask(col, self.predicate.op, self.predicate.value, p.drops());
            out.append_gathered(p, mask.words());
        }
        Some(out)
    }

    fn name(&self) -> &'static str {
        "filter"
    }
}

/// Projection: keeps a subset of fields per row.
#[derive(Debug)]
pub struct ProjectLogic {
    fields: Vec<usize>,
}

impl ProjectLogic {
    /// Creates the projection.
    pub fn new(fields: Vec<usize>) -> Self {
        ProjectLogic { fields }
    }
}

impl PaneLogic for ProjectLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .flat_map(|p| p.iter())
            .map(|t| {
                let row = self
                    .fields
                    .iter()
                    .map(|&f| t.get(f).unwrap_or(Value::F64(0.0)))
                    .collect();
                (Some(t.ts), row)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Tuple {
        Tuple::measurement(Timestamp(7), Sic(0.1), v)
    }

    fn batch(vals: &[f64]) -> TupleBatch {
        vals.iter().map(|&v| t(v)).collect()
    }

    fn typed(vals: &[f64]) -> TupleBatch {
        let mut b = TupleBatch::with_schema(Schema::new([("value", FieldType::F64)]));
        for &v in vals {
            b.push_row(Timestamp(7), Sic(0.1), &[Value::F64(v)]);
        }
        b
    }

    #[test]
    fn predicate_ops() {
        let x = t(50.0);
        assert!(Predicate::new(0, CmpOp::Ge, 50.0).eval(&x.values));
        assert!(!Predicate::new(0, CmpOp::Gt, 50.0).eval(&x.values));
        assert!(Predicate::new(0, CmpOp::Le, 50.0).eval(&x.values));
        assert!(!Predicate::new(0, CmpOp::Lt, 50.0).eval(&x.values));
        assert!(Predicate::new(0, CmpOp::Eq, 50.0).eval(&x.values));
        // Missing field reads as 0.
        assert!(Predicate::new(7, CmpOp::Lt, 1.0).eval(&x.values));
        let b = batch(&[50.0]);
        assert!(Predicate::new(7, CmpOp::Lt, 1.0).eval_row(&b.row(0).values));
    }

    #[test]
    fn identity_passes_all_preserving_ts() {
        let tuples = batch(&[1.0, 2.0]);
        let mut id = IdentityLogic;
        let out = id.apply(&[&tuples]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, Some(Timestamp(7)));
        assert_eq!(out[0].1[0].as_f64(), 1.0);
    }

    #[test]
    fn identity_columnar_concatenates_typed_panes() {
        let a = typed(&[1.0, 2.0]);
        let b = typed(&[3.0]);
        let out = IdentityLogic
            .apply_columnar(&[&a, &b], Timestamp(0))
            .unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.schema().is_some(), "typed layout preserved");
        assert_eq!(out.f64_column(0), Some(&[1.0, 2.0, 3.0][..]));
        assert_eq!(out.row(0).ts, Timestamp(7), "row timestamps preserved");
    }

    #[test]
    fn filter_selects_matching() {
        let tuples = batch(&[10.0, 60.0, 55.0]);
        let mut f = FilterLogic::new(Predicate::new(0, CmpOp::Ge, 50.0));
        let out = f.apply(&[&tuples]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(ts, _)| ts.is_some()));
    }

    #[test]
    fn filter_columnar_matches_row_path() {
        let vals = [10.0, 60.0, 55.0, 49.9, 50.0];
        let pred = Predicate::new(0, CmpOp::Ge, 50.0);
        let rows = FilterLogic::new(pred).apply(&[&typed(&vals)]);
        let cols = FilterLogic::new(pred)
            .apply_columnar(&[&typed(&vals)], Timestamp(0))
            .unwrap();
        assert_eq!(cols.len(), rows.len());
        let col_vals: Vec<f64> = cols.iter().map(|r| r.f64(0)).collect();
        let row_vals: Vec<f64> = rows.iter().map(|(_, r)| r[0].as_f64()).collect();
        assert_eq!(col_vals, row_vals);
        assert!(cols.schema().is_some());
        // Arena panes decline the columnar path (no typed column).
        assert!(FilterLogic::new(pred)
            .apply_columnar(&[&batch(&vals)], Timestamp(0))
            .is_none());
        // Dropped rows never pass the filter.
        let mut shed = typed(&vals);
        shed.drop_row(1);
        let cols = FilterLogic::new(pred)
            .apply_columnar(&[&shed], Timestamp(0))
            .unwrap();
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn filter_can_drop_everything() {
        let tuples = batch(&[1.0]);
        let mut f = FilterLogic::new(Predicate::new(0, CmpOp::Gt, 100.0));
        assert!(f.apply(&[&tuples]).is_empty());
        let cols = FilterLogic::new(Predicate::new(0, CmpOp::Gt, 100.0))
            .apply_columnar(&[&typed(&[1.0])], Timestamp(0))
            .unwrap();
        assert!(cols.is_empty());
    }

    #[test]
    fn project_reorders_fields() {
        let tuple = Tuple::new(Timestamp(0), Sic(0.1), vec![Value::I64(7), Value::F64(3.5)]);
        let b = TupleBatch::from_tuples(vec![tuple]);
        let mut p = ProjectLogic::new(vec![1, 0]);
        let out = p.apply(&[&b]);
        assert_eq!(out[0].1, vec![Value::F64(3.5), Value::I64(7)]);
    }
}
