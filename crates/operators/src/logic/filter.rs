//! Stateless row logic: identity, filter, project. All three are
//! row-preserving: output rows inherit the timestamp of the tuple they came
//! from, so downstream event-time windows keep grouping correctly.

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};

/// Comparison operator for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `field > v`
    Gt,
    /// `field >= v`
    Ge,
    /// `field < v`
    Lt,
    /// `field <= v`
    Le,
    /// `field == v` (numeric equality)
    Eq,
}

/// A `field ⊙ constant` predicate over the numeric view of a field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Field index.
    pub field: usize,
    /// Comparison.
    pub op: CmpOp,
    /// Right-hand constant.
    pub value: f64,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(field: usize, op: CmpOp, value: f64) -> Self {
        Predicate { field, op, value }
    }

    /// Evaluates the predicate against one payload row (a missing field
    /// reads as 0).
    pub fn eval(&self, values: &[Value]) -> bool {
        let v = values.get(self.field).map(|v| v.as_f64()).unwrap_or(0.0);
        match self.op {
            CmpOp::Gt => v > self.value,
            CmpOp::Ge => v >= self.value,
            CmpOp::Lt => v < self.value,
            CmpOp::Le => v <= self.value,
            CmpOp::Eq => v == self.value,
        }
    }
}

/// Pass-through logic used by source receivers, forwarders and output
/// operators: every input row is emitted unchanged.
#[derive(Debug, Default)]
pub struct IdentityLogic;

impl PaneLogic for IdentityLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .flat_map(|p| p.iter().map(|t| (Some(t.ts), t.values.to_vec())))
            .collect()
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Filter: emits the rows matching the predicate. Because the pane is the
/// atomic unit (Eq. 3), the pane's SIC mass redistributes over survivors —
/// filtering alone does not degrade the query's SIC unless *all* rows drop.
#[derive(Debug)]
pub struct FilterLogic {
    predicate: Predicate,
}

impl FilterLogic {
    /// Creates the filter.
    pub fn new(predicate: Predicate) -> Self {
        FilterLogic { predicate }
    }
}

impl PaneLogic for FilterLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .flat_map(|p| p.iter())
            .filter(|t| self.predicate.eval(t.values))
            .map(|t| (Some(t.ts), t.values.to_vec()))
            .collect()
    }

    fn name(&self) -> &'static str {
        "filter"
    }
}

/// Projection: keeps a subset of fields per row.
#[derive(Debug)]
pub struct ProjectLogic {
    fields: Vec<usize>,
}

impl ProjectLogic {
    /// Creates the projection.
    pub fn new(fields: Vec<usize>) -> Self {
        ProjectLogic { fields }
    }
}

impl PaneLogic for ProjectLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .flat_map(|p| p.iter())
            .map(|t| {
                let row = self
                    .fields
                    .iter()
                    .map(|&f| t.get(f).unwrap_or(Value::F64(0.0)))
                    .collect();
                (Some(t.ts), row)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> Tuple {
        Tuple::measurement(Timestamp(7), Sic(0.1), v)
    }

    fn batch(vals: &[f64]) -> TupleBatch {
        vals.iter().map(|&v| t(v)).collect()
    }

    #[test]
    fn predicate_ops() {
        let x = t(50.0);
        assert!(Predicate::new(0, CmpOp::Ge, 50.0).eval(&x.values));
        assert!(!Predicate::new(0, CmpOp::Gt, 50.0).eval(&x.values));
        assert!(Predicate::new(0, CmpOp::Le, 50.0).eval(&x.values));
        assert!(!Predicate::new(0, CmpOp::Lt, 50.0).eval(&x.values));
        assert!(Predicate::new(0, CmpOp::Eq, 50.0).eval(&x.values));
        // Missing field reads as 0.
        assert!(Predicate::new(7, CmpOp::Lt, 1.0).eval(&x.values));
    }

    #[test]
    fn identity_passes_all_preserving_ts() {
        let tuples = batch(&[1.0, 2.0]);
        let mut id = IdentityLogic;
        let out = id.apply(&[&tuples]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, Some(Timestamp(7)));
        assert_eq!(out[0].1[0].as_f64(), 1.0);
    }

    #[test]
    fn filter_selects_matching() {
        let tuples = batch(&[10.0, 60.0, 55.0]);
        let mut f = FilterLogic::new(Predicate::new(0, CmpOp::Ge, 50.0));
        let out = f.apply(&[&tuples]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(ts, _)| ts.is_some()));
    }

    #[test]
    fn filter_can_drop_everything() {
        let tuples = batch(&[1.0]);
        let mut f = FilterLogic::new(Predicate::new(0, CmpOp::Gt, 100.0));
        assert!(f.apply(&[&tuples]).is_empty());
    }

    #[test]
    fn project_reorders_fields() {
        let tuple = Tuple::new(Timestamp(0), Sic(0.1), vec![Value::I64(7), Value::F64(3.5)]);
        let b = TupleBatch::from_tuples(vec![tuple]);
        let mut p = ProjectLogic::new(vec![1, 0]);
        let out = p.apply(&[&b]);
        assert_eq!(out[0].1, vec![Value::F64(3.5), Value::I64(7)]);
    }
}
