//! Top-k and group-by logic used by the TOP-5 workload of Table 1.

use std::collections::HashMap;

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};

/// Emits the `k` rows with the largest `value_field`, as `[id, value]`
/// pairs in descending value order. Duplicate ids keep their best value, so
/// the logic also merges partial top-k lists arriving from upstream
/// fragments (the incremental chain layout of §7).
#[derive(Debug)]
pub struct TopKLogic {
    k: usize,
    id_field: usize,
    value_field: usize,
}

impl TopKLogic {
    /// Creates the logic.
    pub fn new(k: usize, id_field: usize, value_field: usize) -> Self {
        TopKLogic {
            k: k.max(1),
            id_field,
            value_field,
        }
    }
}

impl PaneLogic for TopKLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let mut best: HashMap<i64, f64> = HashMap::new();
        for t in panes.iter().flat_map(|p| p.iter()) {
            let id = t.get(self.id_field).map(|v| v.as_i64()).unwrap_or(0);
            let v = t.get(self.value_field).map(|v| v.as_f64()).unwrap_or(0.0);
            best.entry(id)
                .and_modify(|cur| *cur = cur.max(v))
                .or_insert(v);
        }
        let mut rows: Vec<(i64, f64)> = best.into_iter().collect();
        // Descending by value, ascending id as a deterministic tie-break.
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(self.k);
        rows.into_iter()
            .map(|(id, v)| (None, vec![Value::I64(id), Value::F64(v)]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "top-k"
    }
}

/// Per-key maximum (a group-by aggregate); emits `[key, max]` rows in
/// ascending key order.
#[derive(Debug)]
pub struct GroupMaxLogic {
    key_field: usize,
    value_field: usize,
}

impl GroupMaxLogic {
    /// Creates the logic.
    pub fn new(key_field: usize, value_field: usize) -> Self {
        GroupMaxLogic {
            key_field,
            value_field,
        }
    }
}

impl PaneLogic for GroupMaxLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let mut best: HashMap<i64, f64> = HashMap::new();
        for t in panes.iter().flat_map(|p| p.iter()) {
            let key = t.get(self.key_field).map(|v| v.as_i64()).unwrap_or(0);
            let v = t.get(self.value_field).map(|v| v.as_f64()).unwrap_or(0.0);
            best.entry(key)
                .and_modify(|cur| *cur = cur.max(v))
                .or_insert(v);
        }
        let mut rows: Vec<(i64, f64)> = best.into_iter().collect();
        rows.sort_by_key(|&(k, _)| k);
        rows.into_iter()
            .map(|(k, v)| (None, vec![Value::I64(k), Value::F64(v)]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "group-max"
    }
}

/// Per-key average (a group-by aggregate); emits `[key, avg]` rows in
/// ascending key order. The TOP-5 workload uses it to average each node's
/// CPU and memory readings inside one window before joining.
#[derive(Debug)]
pub struct GroupAvgLogic {
    key_field: usize,
    value_field: usize,
}

impl GroupAvgLogic {
    /// Creates the logic.
    pub fn new(key_field: usize, value_field: usize) -> Self {
        GroupAvgLogic {
            key_field,
            value_field,
        }
    }
}

impl PaneLogic for GroupAvgLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let mut acc: HashMap<i64, (f64, u64)> = HashMap::new();
        for t in panes.iter().flat_map(|p| p.iter()) {
            let key = t.get(self.key_field).map(|v| v.as_i64()).unwrap_or(0);
            let v = t.get(self.value_field).map(|v| v.as_f64()).unwrap_or(0.0);
            let e = acc.entry(key).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        let mut rows: Vec<(i64, f64)> = acc
            .into_iter()
            .map(|(k, (sum, n))| (k, sum / n as f64))
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        rows.into_iter()
            .map(|(k, v)| (None, vec![Value::I64(k), Value::F64(v)]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "group-avg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: i64, v: f64) -> Tuple {
        Tuple::new(Timestamp(0), Sic(0.1), vec![Value::I64(id), Value::F64(v)])
    }

    fn batch(rows: &[(i64, f64)]) -> TupleBatch {
        rows.iter().map(|&(id, v)| row(id, v)).collect()
    }

    fn ids(out: &[OutRow]) -> Vec<i64> {
        out.iter().map(|(_, r)| r[0].as_i64()).collect()
    }

    #[test]
    fn topk_orders_descending() {
        let pane = batch(&[(1, 5.0), (2, 9.0), (3, 7.0), (4, 1.0)]);
        let out = TopKLogic::new(2, 0, 1).apply(&[&pane]);
        assert_eq!(ids(&out), vec![2, 3]);
    }

    #[test]
    fn topk_merges_duplicate_ids() {
        let pane = batch(&[(1, 5.0), (1, 8.0), (2, 6.0)]);
        let out = TopKLogic::new(5, 0, 1).apply(&[&pane]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1[0].as_i64(), 1);
        assert_eq!(out[0].1[1].as_f64(), 8.0);
    }

    #[test]
    fn topk_ties_break_on_id() {
        let pane = batch(&[(9, 5.0), (3, 5.0)]);
        let out = TopKLogic::new(2, 0, 1).apply(&[&pane]);
        assert_eq!(out[0].1[0].as_i64(), 3);
    }

    #[test]
    fn topk_handles_short_panes() {
        let pane = batch(&[(1, 5.0)]);
        let out = TopKLogic::new(5, 0, 1).apply(&[&pane]);
        assert_eq!(out.len(), 1);
        assert!(TopKLogic::new(5, 0, 1)
            .apply(&[&TupleBatch::new()])
            .is_empty());
    }

    #[test]
    fn group_max_groups() {
        let pane = batch(&[(1, 5.0), (1, 7.0), (2, 3.0)]);
        let out = GroupMaxLogic::new(0, 1).apply(&[&pane]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, vec![Value::I64(1), Value::F64(7.0)]);
        assert_eq!(out[1].1, vec![Value::I64(2), Value::F64(3.0)]);
    }

    #[test]
    fn group_avg_averages_per_key() {
        let pane = batch(&[(1, 4.0), (1, 8.0), (2, 3.0)]);
        let out = GroupAvgLogic::new(0, 1).apply(&[&pane]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, vec![Value::I64(1), Value::F64(6.0)]);
        assert_eq!(out[1].1, vec![Value::I64(2), Value::F64(3.0)]);
    }
}
