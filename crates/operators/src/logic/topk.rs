//! Top-k and group-by logic used by the TOP-5 workload of Table 1.
//!
//! All three logics fold rows into a per-key map; panes whose batches are
//! schema-typed with native `i64` key and `f64` value columns read the
//! raw slices (no per-field `Value` match), and the final top-k selection
//! runs through [`kernels::partial_top_k`] instead of a full sort.

use std::collections::HashMap;

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};
use crate::kernels;

/// Folds each live `(key, value)` pair of the pane into `each`, reading
/// native columns when the pane is typed and borrowed row views
/// otherwise (missing fields read as 0, the row-path `get` semantics).
fn fold_keyed(
    pane: &TupleBatch,
    key_field: usize,
    value_field: usize,
    mut each: impl FnMut(i64, f64),
) {
    match (pane.i64_column(key_field), pane.f64_column(value_field)) {
        (Some(keys), Some(vals)) => {
            let all_live = pane.drops().dropped() == 0;
            for i in 0..pane.rows() {
                if all_live || pane.is_live(i) {
                    each(keys[i], vals[i]);
                }
            }
        }
        _ => {
            for t in pane.iter() {
                let k = t.get(key_field).map(|v| v.as_i64()).unwrap_or(0);
                let v = t.get(value_field).map(|v| v.as_f64()).unwrap_or(0.0);
                each(k, v);
            }
        }
    }
}

/// Emits the `k` rows with the largest `value_field`, as `[id, value]`
/// pairs in descending value order. Duplicate ids keep their best value, so
/// the logic also merges partial top-k lists arriving from upstream
/// fragments (the incremental chain layout of §7).
#[derive(Debug)]
pub struct TopKLogic {
    k: usize,
    id_field: usize,
    value_field: usize,
}

impl TopKLogic {
    /// Creates the logic.
    pub fn new(k: usize, id_field: usize, value_field: usize) -> Self {
        TopKLogic {
            k: k.max(1),
            id_field,
            value_field,
        }
    }
}

impl PaneLogic for TopKLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let mut best: HashMap<i64, f64> = HashMap::new();
        for p in panes {
            fold_keyed(p, self.id_field, self.value_field, |id, v| {
                best.entry(id)
                    .and_modify(|cur| *cur = cur.max(v))
                    .or_insert(v);
            });
        }
        let mut rows: Vec<(i64, f64)> = best.into_iter().collect();
        // Partial select: descending by value, ascending id tie-break.
        kernels::partial_top_k(&mut rows, self.k);
        rows.into_iter()
            .map(|(id, v)| (None, vec![Value::I64(id), Value::F64(v)]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "top-k"
    }
}

/// Per-key maximum (a group-by aggregate); emits `[key, max]` rows in
/// ascending key order.
#[derive(Debug)]
pub struct GroupMaxLogic {
    key_field: usize,
    value_field: usize,
}

impl GroupMaxLogic {
    /// Creates the logic.
    pub fn new(key_field: usize, value_field: usize) -> Self {
        GroupMaxLogic {
            key_field,
            value_field,
        }
    }
}

impl PaneLogic for GroupMaxLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let mut best: HashMap<i64, f64> = HashMap::new();
        for p in panes {
            fold_keyed(p, self.key_field, self.value_field, |key, v| {
                best.entry(key)
                    .and_modify(|cur| *cur = cur.max(v))
                    .or_insert(v);
            });
        }
        let mut rows: Vec<(i64, f64)> = best.into_iter().collect();
        rows.sort_by_key(|&(k, _)| k);
        rows.into_iter()
            .map(|(k, v)| (None, vec![Value::I64(k), Value::F64(v)]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "group-max"
    }
}

/// Per-key average (a group-by aggregate); emits `[key, avg]` rows in
/// ascending key order. The TOP-5 workload uses it to average each node's
/// CPU and memory readings inside one window before joining.
#[derive(Debug)]
pub struct GroupAvgLogic {
    key_field: usize,
    value_field: usize,
}

impl GroupAvgLogic {
    /// Creates the logic.
    pub fn new(key_field: usize, value_field: usize) -> Self {
        GroupAvgLogic {
            key_field,
            value_field,
        }
    }
}

impl PaneLogic for GroupAvgLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let mut acc: HashMap<i64, (f64, u64)> = HashMap::new();
        for p in panes {
            fold_keyed(p, self.key_field, self.value_field, |key, v| {
                let e = acc.entry(key).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            });
        }
        let mut rows: Vec<(i64, f64)> = acc
            .into_iter()
            .map(|(k, (sum, n))| (k, sum / n as f64))
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        rows.into_iter()
            .map(|(k, v)| (None, vec![Value::I64(k), Value::F64(v)]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "group-avg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: i64, v: f64) -> Tuple {
        Tuple::new(Timestamp(0), Sic(0.1), vec![Value::I64(id), Value::F64(v)])
    }

    fn batch(rows: &[(i64, f64)]) -> TupleBatch {
        rows.iter().map(|&(id, v)| row(id, v)).collect()
    }

    fn typed(rows: &[(i64, f64)]) -> TupleBatch {
        let schema = Schema::new([("key", FieldType::I64), ("value", FieldType::F64)]);
        let mut b = TupleBatch::with_schema_capacity(schema, rows.len());
        for &(id, v) in rows {
            b.push_row(Timestamp(0), Sic(0.1), &[Value::I64(id), Value::F64(v)]);
        }
        b
    }

    fn ids(out: &[OutRow]) -> Vec<i64> {
        out.iter().map(|(_, r)| r[0].as_i64()).collect()
    }

    #[test]
    fn topk_orders_descending() {
        let data = [(1, 5.0), (2, 9.0), (3, 7.0), (4, 1.0)];
        for pane in [batch(&data), typed(&data)] {
            let out = TopKLogic::new(2, 0, 1).apply(&[&pane]);
            assert_eq!(ids(&out), vec![2, 3]);
        }
    }

    #[test]
    fn topk_merges_duplicate_ids() {
        let pane = batch(&[(1, 5.0), (1, 8.0), (2, 6.0)]);
        let out = TopKLogic::new(5, 0, 1).apply(&[&pane]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1[0].as_i64(), 1);
        assert_eq!(out[0].1[1].as_f64(), 8.0);
    }

    #[test]
    fn topk_ties_break_on_id() {
        let pane = batch(&[(9, 5.0), (3, 5.0)]);
        let out = TopKLogic::new(2, 0, 1).apply(&[&pane]);
        assert_eq!(out[0].1[0].as_i64(), 3);
    }

    #[test]
    fn topk_handles_short_panes() {
        let pane = batch(&[(1, 5.0)]);
        let out = TopKLogic::new(5, 0, 1).apply(&[&pane]);
        assert_eq!(out.len(), 1);
        assert!(TopKLogic::new(5, 0, 1)
            .apply(&[&TupleBatch::new()])
            .is_empty());
    }

    #[test]
    fn topk_skips_dropped_typed_rows() {
        let mut pane = typed(&[(1, 5.0), (2, 9.0), (3, 7.0)]);
        pane.drop_row(1);
        let out = TopKLogic::new(2, 0, 1).apply(&[&pane]);
        assert_eq!(ids(&out), vec![3, 1], "dropped winner excluded");
    }

    #[test]
    fn group_max_groups() {
        let data = [(1, 5.0), (1, 7.0), (2, 3.0)];
        for pane in [batch(&data), typed(&data)] {
            let out = GroupMaxLogic::new(0, 1).apply(&[&pane]);
            assert_eq!(out.len(), 2);
            assert_eq!(out[0].1, vec![Value::I64(1), Value::F64(7.0)]);
            assert_eq!(out[1].1, vec![Value::I64(2), Value::F64(3.0)]);
        }
    }

    #[test]
    fn group_avg_averages_per_key() {
        let data = [(1, 4.0), (1, 8.0), (2, 3.0)];
        for pane in [batch(&data), typed(&data)] {
            let out = GroupAvgLogic::new(0, 1).apply(&[&pane]);
            assert_eq!(out.len(), 2);
            assert_eq!(out[0].1, vec![Value::I64(1), Value::F64(6.0)]);
            assert_eq!(out[1].1, vec![Value::I64(2), Value::F64(3.0)]);
        }
    }
}
