//! Windowed aggregate logic: AVG, SUM, COUNT (with HAVING), MAX, MIN, plus
//! the partial/merge pair used by incremental multi-fragment trees
//! (the AVG-all workload of Table 1). Aggregates collapse the pane, so they
//! return no per-row timestamps — the operator wrapper stamps outputs with
//! the pane's window timestamp.
//!
//! Panes whose batches are schema-typed with a native `f64` column at the
//! aggregated field run the vectorized [`kernels`] (lane-split sums,
//! word-at-a-time drop handling); arena panes fall back to the scalar
//! [`TupleBatch::column_f64`] fold with identical semantics.

use themis_core::prelude::*;

use super::filter::Predicate;
use super::{OutRow, PaneLogic};
use crate::kernels;

fn is_empty(panes: &[&TupleBatch]) -> bool {
    panes.iter().all(|p| p.is_empty())
}

/// Sum + live count of `field` over one pane: the typed kernel when the
/// pane exposes a native `f64` column, the scalar column fold otherwise.
fn pane_sum_count(pane: &TupleBatch, field: usize) -> (f64, u64) {
    match pane.f64_column(field) {
        Some(col) => kernels::sum_count_f64(col, pane.drops()),
        None => {
            let (mut sum, mut n) = (0.0, 0u64);
            for v in pane.column_f64(field) {
                sum += v;
                n += 1;
            }
            (sum, n)
        }
    }
}

/// Sum + count of `field` across all panes of one atomic step.
fn sum_count(panes: &[&TupleBatch], field: usize) -> (f64, u64) {
    let (mut sum, mut n) = (0.0, 0u64);
    for p in panes {
        let (s, c) = pane_sum_count(p, field);
        sum += s;
        n += c;
    }
    (sum, n)
}

// The scalar max/min fallbacks fold from the ∓∞ identity exactly like
// the kernels, so both layouts agree bit-for-bit even on NaN entries
// (`f64::max`/`f64::min` ignore NaN; an all-NaN column yields ∓∞).

fn pane_max(pane: &TupleBatch, field: usize) -> Option<f64> {
    match pane.f64_column(field) {
        Some(col) => kernels::max_f64(col, pane.drops()),
        None => {
            let (mut m, mut any) = (f64::NEG_INFINITY, false);
            for v in pane.column_f64(field) {
                m = m.max(v);
                any = true;
            }
            any.then_some(m)
        }
    }
}

fn pane_min(pane: &TupleBatch, field: usize) -> Option<f64> {
    match pane.f64_column(field) {
        Some(col) => kernels::min_f64(col, pane.drops()),
        None => {
            let (mut m, mut any) = (f64::INFINITY, false);
            for v in pane.column_f64(field) {
                m = m.min(v);
                any = true;
            }
            any.then_some(m)
        }
    }
}

/// `Select Avg(t.v)` over a pane; emits `[avg]`.
#[derive(Debug)]
pub struct AvgLogic {
    field: usize,
}

impl AvgLogic {
    /// Creates the aggregate on `field`.
    pub fn new(field: usize) -> Self {
        AvgLogic { field }
    }
}

impl PaneLogic for AvgLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let (sum, n) = sum_count(panes, self.field);
        if n == 0 {
            return Vec::new();
        }
        vec![(None, vec![Value::F64(sum / n as f64)])]
    }

    fn name(&self) -> &'static str {
        "avg"
    }
}

/// Incremental partial average; emits `[sum, count]` so a downstream
/// [`MergeAvgLogic`] can combine fragments exactly.
#[derive(Debug)]
pub struct PartialAvgLogic {
    field: usize,
}

impl PartialAvgLogic {
    /// Creates the partial aggregate on `field`.
    pub fn new(field: usize) -> Self {
        PartialAvgLogic { field }
    }
}

impl PaneLogic for PartialAvgLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let (sum, n) = sum_count(panes, self.field);
        if n == 0 {
            return Vec::new();
        }
        vec![(None, vec![Value::F64(sum), Value::I64(n as i64)])]
    }

    fn name(&self) -> &'static str {
        "partial-avg"
    }
}

/// Merges `[sum, count]` partials into the exact global `[avg]`.
#[derive(Debug, Default)]
pub struct MergeAvgLogic;

impl PaneLogic for MergeAvgLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let (mut sum, mut n) = (0.0, 0i64);
        for t in panes.iter().flat_map(|p| p.iter()) {
            sum += t.get(0).map(|v| v.as_f64()).unwrap_or(0.0);
            n += t.get(1).map(|v| v.as_i64()).unwrap_or(0);
        }
        if n == 0 {
            return Vec::new();
        }
        vec![(None, vec![Value::F64(sum / n as f64)])]
    }

    fn name(&self) -> &'static str {
        "merge-avg"
    }
}

/// `Select Sum(t.v)`; emits `[sum]`.
#[derive(Debug)]
pub struct SumLogic {
    field: usize,
}

impl SumLogic {
    /// Creates the aggregate on `field`.
    pub fn new(field: usize) -> Self {
        SumLogic { field }
    }
}

impl PaneLogic for SumLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        if is_empty(panes) {
            return Vec::new();
        }
        let (sum, _) = sum_count(panes, self.field);
        vec![(None, vec![Value::F64(sum)])]
    }

    fn name(&self) -> &'static str {
        "sum"
    }
}

/// `Select Count(t.v) [Having pred]`; emits `[count]`. The optional
/// predicate implements Table 1's `Having t.v >= 50` COUNT query inside the
/// atomic pane, so the pane's SIC mass is retained by the count result.
#[derive(Debug)]
pub struct CountLogic {
    predicate: Option<Predicate>,
}

impl CountLogic {
    /// Creates the aggregate with an optional HAVING predicate.
    pub fn new(predicate: Option<Predicate>) -> Self {
        CountLogic { predicate }
    }

    fn pane_count(&self, pane: &TupleBatch) -> usize {
        match self.predicate {
            None => pane.len(),
            Some(p) => match pane.f64_column(p.field) {
                // Typed column: evaluate the HAVING predicate through the
                // word-packed mask kernel and popcount the survivors.
                Some(col) => {
                    kernels::mask_count(&kernels::predicate_mask(col, p.op, p.value, pane.drops()))
                }
                None => pane.iter().filter(|t| p.eval_row(&t.values)).count(),
            },
        }
    }
}

impl PaneLogic for CountLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        if is_empty(panes) {
            return Vec::new();
        }
        let n: usize = panes.iter().map(|p| self.pane_count(p)).sum();
        vec![(None, vec![Value::I64(n as i64)])]
    }

    fn name(&self) -> &'static str {
        "count"
    }
}

/// `Select Max(t.v)`; emits `[max]`.
#[derive(Debug)]
pub struct MaxLogic {
    field: usize,
}

impl MaxLogic {
    /// Creates the aggregate on `field`.
    pub fn new(field: usize) -> Self {
        MaxLogic { field }
    }
}

impl PaneLogic for MaxLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .filter_map(|p| pane_max(p, self.field))
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .map(|m| vec![(None, vec![Value::F64(m)])])
            .unwrap_or_default()
    }

    fn name(&self) -> &'static str {
        "max"
    }
}

/// `Select Min(t.v)`; emits `[min]`.
#[derive(Debug)]
pub struct MinLogic {
    field: usize,
}

impl MinLogic {
    /// Creates the aggregate on `field`.
    pub fn new(field: usize) -> Self {
        MinLogic { field }
    }
}

impl PaneLogic for MinLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        panes
            .iter()
            .filter_map(|p| pane_min(p, self.field))
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .map(|m| vec![(None, vec![Value::F64(m)])])
            .unwrap_or_default()
    }

    fn name(&self) -> &'static str {
        "min"
    }
}

#[cfg(test)]
mod tests {
    use super::super::filter::CmpOp;
    use super::*;

    fn pane(vals: &[f64]) -> TupleBatch {
        vals.iter()
            .map(|&v| Tuple::measurement(Timestamp(0), Sic(0.1), v))
            .collect()
    }

    fn typed_pane(vals: &[f64]) -> TupleBatch {
        let mut b = TupleBatch::with_schema(Schema::new([("value", FieldType::F64)]));
        for &v in vals {
            b.push_row(Timestamp(0), Sic(0.1), &[Value::F64(v)]);
        }
        b
    }

    fn rows(out: Vec<OutRow>) -> Vec<Row> {
        out.into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn avg_of_pane() {
        let p = pane(&[10.0, 20.0, 30.0]);
        let out = AvgLogic::new(0).apply(&[&p]);
        assert_eq!(out[0].0, None, "aggregates are stamped by the pane");
        assert_eq!(rows(out), vec![vec![Value::F64(20.0)]]);
    }

    #[test]
    fn avg_empty_emits_nothing() {
        assert!(AvgLogic::new(0).apply(&[&TupleBatch::new()]).is_empty());
    }

    #[test]
    fn typed_panes_agree_with_arena_panes() {
        let vals: Vec<f64> = (0..130).map(|i| (i as f64) * 0.5 - 20.0).collect();
        let mut arena = pane(&vals);
        let mut typed = typed_pane(&vals);
        // Drop the same rows on both representations.
        for i in [3usize, 100] {
            arena.drop_row(i);
            typed.drop_row(i);
        }
        for (mut a, mut b) in [
            (
                AvgLogic::new(0).apply(&[&arena]),
                AvgLogic::new(0).apply(&[&typed]),
            ),
            (
                SumLogic::new(0).apply(&[&arena]),
                SumLogic::new(0).apply(&[&typed]),
            ),
            (
                MaxLogic::new(0).apply(&[&arena]),
                MaxLogic::new(0).apply(&[&typed]),
            ),
            (
                MinLogic::new(0).apply(&[&arena]),
                MinLogic::new(0).apply(&[&typed]),
            ),
        ] {
            let (a, b) = (
                a.remove(0).1.remove(0).as_f64(),
                b.remove(0).1.remove(0).as_f64(),
            );
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn partial_then_merge_is_exact() {
        let p1 = pane(&[10.0, 20.0]);
        let p2 = pane(&[40.0]);
        let r1 = PartialAvgLogic::new(0).apply(&[&p1]);
        let r2 = PartialAvgLogic::new(0).apply(&[&p2]);
        let mut partials = TupleBatch::new();
        for (_, row) in [r1, r2].into_iter().flatten() {
            partials.push_row(Timestamp(0), Sic(0.1), &row);
        }
        let merged = MergeAvgLogic.apply(&[&partials]);
        let avg = merged[0].1[0].as_f64();
        assert!((avg - 70.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_avg_with_zero_count_emits_nothing() {
        assert!(MergeAvgLogic.apply(&[&TupleBatch::new()]).is_empty());
    }

    #[test]
    fn sum_logic() {
        let p = pane(&[1.5, 2.5]);
        assert_eq!(
            rows(SumLogic::new(0).apply(&[&p])),
            vec![vec![Value::F64(4.0)]]
        );
    }

    #[test]
    fn count_with_having() {
        for p in [
            pane(&[10.0, 55.0, 50.0, 99.0]),
            typed_pane(&[10.0, 55.0, 50.0, 99.0]),
        ] {
            let out = CountLogic::new(Some(Predicate::new(0, CmpOp::Ge, 50.0))).apply(&[&p]);
            assert_eq!(rows(out), vec![vec![Value::I64(3)]]);
            let all = CountLogic::new(None).apply(&[&p]);
            assert_eq!(rows(all), vec![vec![Value::I64(4)]]);
        }
    }

    #[test]
    fn count_having_zero_matches_still_emits() {
        // The pane was processed: the count result (0) is a valid result
        // carrying the pane's SIC mass.
        let p = pane(&[1.0]);
        let out = CountLogic::new(Some(Predicate::new(0, CmpOp::Ge, 50.0))).apply(&[&p]);
        assert_eq!(rows(out), vec![vec![Value::I64(0)]]);
    }

    #[test]
    fn max_min() {
        let p = pane(&[3.0, -1.0, 7.0]);
        assert_eq!(
            rows(MaxLogic::new(0).apply(&[&p])),
            vec![vec![Value::F64(7.0)]]
        );
        assert_eq!(
            rows(MinLogic::new(0).apply(&[&p])),
            vec![vec![Value::F64(-1.0)]]
        );
        assert!(MaxLogic::new(0).apply(&[&TupleBatch::new()]).is_empty());
    }

    #[test]
    fn aggregates_span_ports() {
        let p0 = pane(&[1.0]);
        let p1 = typed_pane(&[3.0]);
        let out = AvgLogic::new(0).apply(&[&p0, &p1]);
        assert_eq!(rows(out), vec![vec![Value::F64(2.0)]]);
    }

    #[test]
    fn dropped_rows_are_ignored() {
        for mut p in [
            pane(&[10.0, 1000.0, 30.0]),
            typed_pane(&[10.0, 1000.0, 30.0]),
        ] {
            p.drop_row(1);
            let out = AvgLogic::new(0).apply(&[&p]);
            assert_eq!(rows(out), vec![vec![Value::F64(20.0)]]);
        }
    }
}
