//! Windowed equi-join (the TOP-5 workload joins CPU and memory streams on
//! node id, Table 1).

use std::collections::HashMap;

use themis_core::batch::TupleRef;
use themis_core::prelude::*;

use super::{OutRow, PaneLogic};

/// Hash equi-join of the two input ports on integer key fields. For every
/// matching pair the output row is the left row concatenated with the right
/// row. The pane pair is processed atomically, so Eq. 3 spreads the combined
/// SIC mass of both panes over the join results. The build/probe sides read
/// borrowed row views straight out of the pane columns.
#[derive(Debug)]
pub struct JoinLogic {
    left_key: usize,
    right_key: usize,
}

impl JoinLogic {
    /// Creates the join.
    pub fn new(left_key: usize, right_key: usize) -> Self {
        JoinLogic {
            left_key,
            right_key,
        }
    }
}

impl PaneLogic for JoinLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        // A missing port cannot produce matches.
        let (Some(&left), Some(&right)) = (panes.first(), panes.get(1)) else {
            return Vec::new();
        };
        // Build side: the right pane, indexed by key.
        let mut index: HashMap<i64, Vec<TupleRef<'_>>> = HashMap::new();
        for t in right.iter() {
            let k = t.get(self.right_key).map(|v| v.as_i64()).unwrap_or(0);
            index.entry(k).or_default().push(t);
        }
        let mut out = Vec::new();
        for l in left.iter() {
            let k = l.get(self.left_key).map(|v| v.as_i64()).unwrap_or(0);
            if let Some(matches) = index.get(&k) {
                for r in matches {
                    let mut row = l.values.to_vec();
                    row.extend(r.values.iter());
                    out.push((None, row));
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: i64, v: f64) -> Tuple {
        Tuple::new(Timestamp(0), Sic(0.1), vec![Value::I64(id), Value::F64(v)])
    }

    fn batch(rows: &[(i64, f64)]) -> TupleBatch {
        rows.iter().map(|&(id, v)| row(id, v)).collect()
    }

    #[test]
    fn joins_matching_keys() {
        let left = batch(&[(1, 0.5), (2, 0.7)]);
        let right = batch(&[(2, 100.0), (3, 200.0)]);
        let out = JoinLogic::new(0, 0).apply(&[&left, &right]);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1,
            vec![
                Value::I64(2),
                Value::F64(0.7),
                Value::I64(2),
                Value::F64(100.0)
            ]
        );
    }

    #[test]
    fn join_produces_cross_product_per_key() {
        let left = batch(&[(1, 0.1), (1, 0.2)]);
        let right = batch(&[(1, 10.0), (1, 20.0)]);
        let out = JoinLogic::new(0, 0).apply(&[&left, &right]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn empty_sides_join_to_nothing() {
        let left = batch(&[(1, 0.1)]);
        let empty = TupleBatch::new();
        assert!(JoinLogic::new(0, 0).apply(&[&left, &empty]).is_empty());
        assert!(JoinLogic::new(0, 0).apply(&[&empty, &left]).is_empty());
        assert!(JoinLogic::new(0, 0).apply(&[]).is_empty());
    }
}
