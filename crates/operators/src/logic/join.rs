//! Windowed equi-join (the TOP-5 workload joins CPU and memory streams on
//! node id, Table 1).

use std::collections::HashMap;

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};

/// Hash equi-join of the two input ports on integer key fields. For every
/// matching pair the output row is the left row concatenated with the right
/// row. The pane pair is processed atomically, so Eq. 3 spreads the combined
/// SIC mass of both panes over the join results.
#[derive(Debug)]
pub struct JoinLogic {
    left_key: usize,
    right_key: usize,
}

impl JoinLogic {
    /// Creates the join.
    pub fn new(left_key: usize, right_key: usize) -> Self {
        JoinLogic {
            left_key,
            right_key,
        }
    }
}

impl PaneLogic for JoinLogic {
    fn apply(&mut self, panes: &[&[Tuple]]) -> Vec<OutRow> {
        let left = panes.first().copied().unwrap_or(&[]);
        let right = panes.get(1).copied().unwrap_or(&[]);
        // Build side: the smaller pane.
        let mut index: HashMap<i64, Vec<&Tuple>> = HashMap::new();
        for t in right {
            let k = t
                .values
                .get(self.right_key)
                .map(|v| v.as_i64())
                .unwrap_or(0);
            index.entry(k).or_default().push(t);
        }
        let mut out = Vec::new();
        for l in left {
            let k = l.values.get(self.left_key).map(|v| v.as_i64()).unwrap_or(0);
            if let Some(matches) = index.get(&k) {
                for r in matches {
                    let mut row = l.values.clone();
                    row.extend(r.values.iter().copied());
                    out.push((None, row));
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: i64, v: f64) -> Tuple {
        Tuple::new(Timestamp(0), Sic(0.1), vec![Value::I64(id), Value::F64(v)])
    }

    #[test]
    fn joins_matching_keys() {
        let left = vec![row(1, 0.5), row(2, 0.7)];
        let right = vec![row(2, 100.0), row(3, 200.0)];
        let out = JoinLogic::new(0, 0).apply(&[&left, &right]);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1,
            vec![
                Value::I64(2),
                Value::F64(0.7),
                Value::I64(2),
                Value::F64(100.0)
            ]
        );
    }

    #[test]
    fn join_produces_cross_product_per_key() {
        let left = vec![row(1, 0.1), row(1, 0.2)];
        let right = vec![row(1, 10.0), row(1, 20.0)];
        let out = JoinLogic::new(0, 0).apply(&[&left, &right]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn empty_sides_join_to_nothing() {
        let left = vec![row(1, 0.1)];
        assert!(JoinLogic::new(0, 0).apply(&[&left, &[][..]]).is_empty());
        assert!(JoinLogic::new(0, 0).apply(&[&[][..], &left]).is_empty());
        assert!(JoinLogic::new(0, 0).apply(&[]).is_empty());
    }
}
