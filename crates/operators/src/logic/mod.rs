//! Pane-atomic operator logic.
//!
//! THEMIS treats operators as black boxes (§4); here a [`PaneLogic`] maps the
//! atomic input groups of one pane (one group per input port) to output
//! rows. The surrounding [`crate::op::WindowedOperator`] handles windowing
//! and SIC propagation, so logic implementations never touch SIC values.
//!
//! [`LogicSpec`] is the declarative, cloneable description used by query
//! templates; [`LogicSpec::build`] instantiates fresh stateful logic.

mod aggregates;
mod cov;
mod filter;
mod group;
mod join;
mod topk;

pub use aggregates::{
    AvgLogic, CountLogic, MaxLogic, MergeAvgLogic, MinLogic, PartialAvgLogic, SumLogic,
};
pub use cov::CovLogic;
pub use filter::{CmpOp, FilterLogic, IdentityLogic, Predicate, ProjectLogic};
pub use group::GroupAggregateLogic;
pub use join::JoinLogic;
pub use topk::{GroupAvgLogic, GroupMaxLogic, TopKLogic};

use themis_core::prelude::*;

/// One output row of a pane computation. Row-preserving logic (identity,
/// filter, project) carries the originating tuple's timestamp so windows
/// downstream keep grouping by event time; aggregates return `None` and the
/// operator wrapper stamps the pane's window timestamp instead.
pub type OutRow = (Option<Timestamp>, Row);

/// Black-box operator logic: maps one pane's atomic input groups to output
/// rows. `panes[p]` holds the columnar tuple batch of input port `p`;
/// implementations read rows through borrowed [`TupleRef`] views, never
/// materialising owning tuples.
pub trait PaneLogic: Send {
    /// Computes the output rows of one atomic processing step.
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow>;

    /// Columnar fast path: computes the whole output *batch* of one
    /// atomic step (row timestamps already set; the operator wrapper
    /// overwrites SIC per Eq. 3), so typed input columns copy straight
    /// into typed output columns without materialising per-row
    /// `Vec<Value>`s. Row-preserving logic keeps input timestamps and
    /// ignores `at`; aggregate logic stamps `at` (the pane timestamp)
    /// onto its output rows — matching what the wrapper stamps on the
    /// row path. Returning `None` (the default) makes the wrapper fall
    /// back to [`PaneLogic::apply`]; implementations must return `None`
    /// whenever they cannot reproduce the row path's semantics for the
    /// given panes.
    fn apply_columnar(&mut self, panes: &[&TupleBatch], at: Timestamp) -> Option<TupleBatch> {
        let _ = (panes, at);
        None
    }

    /// Display name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Declarative description of operator logic, used by query templates.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicSpec {
    /// Pass tuples through unchanged (receivers, forwarders, output ops).
    Identity,
    /// Keep rows matching a predicate; the pane's SIC mass redistributes
    /// over the survivors per Eq. 3.
    Filter(Predicate),
    /// Project a subset of fields.
    Project(Vec<usize>),
    /// Average of a field over the pane (emits `[avg]`).
    Avg {
        /// Field index to average.
        field: usize,
    },
    /// Partial average for incremental trees (emits `[sum, count]`).
    PartialAvg {
        /// Field index to sum.
        field: usize,
    },
    /// Merges `[sum, count]` partials into a final `[avg]`.
    MergeAvg,
    /// Sum of a field (emits `[sum]`).
    Sum {
        /// Field index to sum.
        field: usize,
    },
    /// Count of rows matching an optional predicate (emits `[count]`).
    Count {
        /// Optional HAVING-style predicate.
        predicate: Option<Predicate>,
    },
    /// Maximum of a field (emits `[max]`).
    Max {
        /// Field index.
        field: usize,
    },
    /// Minimum of a field (emits `[min]`).
    Min {
        /// Field index.
        field: usize,
    },
    /// Top-k rows by value (emits k rows `[id, value]`).
    TopK {
        /// How many rows to keep.
        k: usize,
        /// Field holding the row identifier.
        id_field: usize,
        /// Field holding the ranking value.
        value_field: usize,
    },
    /// Per-key maximum (group-by; emits `[key, max]` rows).
    GroupMax {
        /// Field holding the grouping key.
        key_field: usize,
        /// Field holding the value.
        value_field: usize,
    },
    /// Per-key average (group-by; emits `[key, avg]` rows).
    GroupAvg {
        /// Field holding the grouping key.
        key_field: usize,
        /// Field holding the value.
        value_field: usize,
    },
    /// Per-tag sum/count over a dictionary-coded key column (emits
    /// `[tag, sum, count]` rows in ascending code order). The columnar
    /// path runs the [`crate::kernels::group_sum_count_f64`] kernel on
    /// the raw code slice.
    GroupAggregate {
        /// Field holding the dictionary-coded grouping tag.
        key_field: usize,
        /// Field holding the value.
        value_field: usize,
    },
    /// Sample covariance between port-0 and port-1 values
    /// (emits `[cov]`).
    Cov {
        /// Field index on both ports.
        field: usize,
    },
    /// Equi-join of port 0 and port 1 on key fields; emits concatenated
    /// rows.
    Join {
        /// Key field on port 0.
        left_key: usize,
        /// Key field on port 1.
        right_key: usize,
    },
}

impl LogicSpec {
    /// Instantiates fresh stateful logic for this spec.
    pub fn build(&self) -> Box<dyn PaneLogic> {
        match self {
            LogicSpec::Identity => Box::new(IdentityLogic),
            LogicSpec::Filter(p) => Box::new(FilterLogic::new(*p)),
            LogicSpec::Project(fields) => Box::new(ProjectLogic::new(fields.clone())),
            LogicSpec::Avg { field } => Box::new(AvgLogic::new(*field)),
            LogicSpec::PartialAvg { field } => Box::new(PartialAvgLogic::new(*field)),
            LogicSpec::MergeAvg => Box::new(MergeAvgLogic),
            LogicSpec::Sum { field } => Box::new(SumLogic::new(*field)),
            LogicSpec::Count { predicate } => Box::new(CountLogic::new(*predicate)),
            LogicSpec::Max { field } => Box::new(MaxLogic::new(*field)),
            LogicSpec::Min { field } => Box::new(MinLogic::new(*field)),
            LogicSpec::TopK {
                k,
                id_field,
                value_field,
            } => Box::new(TopKLogic::new(*k, *id_field, *value_field)),
            LogicSpec::GroupMax {
                key_field,
                value_field,
            } => Box::new(GroupMaxLogic::new(*key_field, *value_field)),
            LogicSpec::GroupAvg {
                key_field,
                value_field,
            } => Box::new(GroupAvgLogic::new(*key_field, *value_field)),
            LogicSpec::GroupAggregate {
                key_field,
                value_field,
            } => Box::new(GroupAggregateLogic::new(*key_field, *value_field)),
            LogicSpec::Cov { field } => Box::new(CovLogic::new(*field)),
            LogicSpec::Join {
                left_key,
                right_key,
            } => Box::new(JoinLogic::new(*left_key, *right_key)),
        }
    }

    /// Number of input ports the logic consumes.
    pub fn ports(&self) -> usize {
        match self {
            LogicSpec::Cov { .. } | LogicSpec::Join { .. } => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_and_report_ports() {
        let specs = [
            (LogicSpec::Identity, 1),
            (LogicSpec::Filter(Predicate::new(0, CmpOp::Ge, 50.0)), 1),
            (LogicSpec::Avg { field: 0 }, 1),
            (LogicSpec::Cov { field: 0 }, 2),
            (
                LogicSpec::Join {
                    left_key: 0,
                    right_key: 0,
                },
                2,
            ),
            (
                LogicSpec::TopK {
                    k: 5,
                    id_field: 0,
                    value_field: 1,
                },
                1,
            ),
        ];
        for (spec, ports) in specs {
            assert_eq!(spec.ports(), ports, "{spec:?}");
            let logic = spec.build();
            assert!(!logic.name().is_empty());
        }
    }
}
