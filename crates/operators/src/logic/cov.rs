//! Sample covariance over two input streams (the COV workload of Table 1:
//! "covariance of CPU usage of two nodes every sec").

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};
use crate::kernels;

/// Computes the sample covariance between the `field` values of port 0 and
/// port 1 within one pane, pairing tuples positionally (both sources sample
/// the same clock). Emits `[cov]`, or nothing when fewer than two pairs are
/// available.
///
/// The covariance runs as a single [`kernels::cov_sums`] pass
/// (`Σx, Σy, Σxy` with lane-split accumulators) over the panes' live
/// columns: typed panes without drops lend their native `f64` slices
/// zero-copy; shed or arena panes compact into a scratch vector first,
/// because positional pairing of *live* rows cannot apply the two drop
/// masks independently.
#[derive(Debug)]
pub struct CovLogic {
    field: usize,
}

impl CovLogic {
    /// Creates the logic on `field` of both ports.
    pub fn new(field: usize) -> Self {
        CovLogic { field }
    }
}

impl PaneLogic for CovLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let (Some(&px), Some(&py)) = (panes.first(), panes.get(1)) else {
            return Vec::new();
        };
        let xs = kernels::live_f64(px, self.field);
        let ys = kernels::live_f64(py, self.field);
        match kernels::cov_sums(&xs, &ys).sample_cov() {
            Some(cov) => vec![(None, vec![Value::F64(cov)])],
            None => Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "cov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pane(vals: &[f64]) -> TupleBatch {
        vals.iter()
            .map(|&v| Tuple::measurement(Timestamp(0), Sic(0.1), v))
            .collect()
    }

    fn typed_pane(vals: &[f64]) -> TupleBatch {
        let mut b = TupleBatch::with_schema(Schema::new([("value", FieldType::F64)]));
        for &v in vals {
            b.push_row(Timestamp(0), Sic(0.1), &[Value::F64(v)]);
        }
        b
    }

    #[test]
    fn covariance_of_linear_series() {
        let x = pane(&[1.0, 2.0, 3.0, 4.0]);
        let y = pane(&[2.0, 4.0, 6.0, 8.0]);
        let out = CovLogic::new(0).apply(&[&x, &y]);
        assert!((out[0].1[0].as_f64() - 10.0 / 3.0).abs() < 1e-9);
        // The typed zero-copy path computes the same value.
        let tx = typed_pane(&[1.0, 2.0, 3.0, 4.0]);
        let ty = typed_pane(&[2.0, 4.0, 6.0, 8.0]);
        let typed = CovLogic::new(0).apply(&[&tx, &ty]);
        assert_eq!(out[0].1, typed[0].1);
    }

    #[test]
    fn negative_covariance() {
        let x = pane(&[1.0, 2.0, 3.0]);
        let y = pane(&[3.0, 2.0, 1.0]);
        let out = CovLogic::new(0).apply(&[&x, &y]);
        assert!(out[0].1[0].as_f64() < 0.0);
    }

    #[test]
    fn uses_min_length() {
        let x = pane(&[1.0, 2.0, 3.0]);
        let y = pane(&[1.0, 2.0]);
        let out = CovLogic::new(0).apply(&[&x, &y]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn shed_rows_are_compacted_before_pairing() {
        let mut x = typed_pane(&[1.0, 99.0, 2.0, 3.0, 4.0]);
        x.drop_row(1);
        let y = typed_pane(&[2.0, 4.0, 6.0, 8.0]);
        let shed = CovLogic::new(0).apply(&[&x, &y]);
        let clean = CovLogic::new(0).apply(&[&typed_pane(&[1.0, 2.0, 3.0, 4.0]), &y]);
        assert_eq!(shed[0].1, clean[0].1, "live rows pair positionally");
    }

    #[test]
    fn too_few_pairs_emits_nothing() {
        let x = pane(&[1.0]);
        let y = pane(&[2.0]);
        assert!(CovLogic::new(0).apply(&[&x, &y]).is_empty());
        assert!(CovLogic::new(0).apply(&[]).is_empty());
    }
}
