//! Sample covariance over two input streams (the COV workload of Table 1:
//! "covariance of CPU usage of two nodes every sec").

use themis_core::prelude::*;

use super::{OutRow, PaneLogic};

/// Computes the sample covariance between the `field` values of port 0 and
/// port 1 within one pane, pairing tuples positionally (both sources sample
/// the same clock). Emits `[cov]`, or nothing when fewer than two pairs are
/// available.
#[derive(Debug)]
pub struct CovLogic {
    field: usize,
}

impl CovLogic {
    /// Creates the logic on `field` of both ports.
    pub fn new(field: usize) -> Self {
        CovLogic { field }
    }
}

impl PaneLogic for CovLogic {
    fn apply(&mut self, panes: &[&TupleBatch]) -> Vec<OutRow> {
        let (Some(&px), Some(&py)) = (panes.first(), panes.get(1)) else {
            return Vec::new();
        };
        let xs: Vec<f64> = px.column_f64(self.field).collect();
        let ys: Vec<f64> = py.column_f64(self.field).collect();
        let n = xs.len().min(ys.len());
        if n < 2 {
            return Vec::new();
        }
        let mx = xs[..n].iter().sum::<f64>() / n as f64;
        let my = ys[..n].iter().sum::<f64>() / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            acc += (xs[i] - mx) * (ys[i] - my);
        }
        vec![(None, vec![Value::F64(acc / (n as f64 - 1.0))])]
    }

    fn name(&self) -> &'static str {
        "cov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pane(vals: &[f64]) -> TupleBatch {
        vals.iter()
            .map(|&v| Tuple::measurement(Timestamp(0), Sic(0.1), v))
            .collect()
    }

    #[test]
    fn covariance_of_linear_series() {
        let x = pane(&[1.0, 2.0, 3.0, 4.0]);
        let y = pane(&[2.0, 4.0, 6.0, 8.0]);
        let out = CovLogic::new(0).apply(&[&x, &y]);
        assert!((out[0].1[0].as_f64() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_covariance() {
        let x = pane(&[1.0, 2.0, 3.0]);
        let y = pane(&[3.0, 2.0, 1.0]);
        let out = CovLogic::new(0).apply(&[&x, &y]);
        assert!(out[0].1[0].as_f64() < 0.0);
    }

    #[test]
    fn uses_min_length() {
        let x = pane(&[1.0, 2.0, 3.0]);
        let y = pane(&[1.0, 2.0]);
        let out = CovLogic::new(0).apply(&[&x, &y]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn too_few_pairs_emits_nothing() {
        let x = pane(&[1.0]);
        let y = pane(&[2.0]);
        assert!(CovLogic::new(0).apply(&[&x, &y]).is_empty());
        assert!(CovLogic::new(0).apply(&[]).is_empty());
    }
}
