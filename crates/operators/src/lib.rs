//! # themis-operators
//!
//! SIC-propagating streaming operators for THEMIS. Operators are black
//! boxes to the fairness machinery (§4 of the paper): each one consumes
//! *atomic input groups* defined by its window and emits derived tuples that
//! carry `sum(input SIC) / |outputs|` (Eq. 3).
//!
//! * [`window`] — pass-through, tumbling, sliding and count windows;
//! * [`logic`] — the black-box logic: aggregates, filter/project, top-k,
//!   group-by, join, covariance;
//! * [`kernels`] — auto-vectorizable aggregate kernels over the typed
//!   column slices of schema-declared batches (sum/count/min/max,
//!   covariance sums, predicate bitmaps, partial top-k), honoring the
//!   drop bitmap word-at-a-time;
//! * [`op`] — [`op::WindowedOperator`], the executable combination that
//!   handles SIC propagation.
//!
//! Operators move columnar [`TupleBatch`](themis_core::batch::TupleBatch)es:
//! window panes slice batch columns, logic reads borrowed row views, and
//! emissions are assembled as fresh column batches — no per-tuple
//! allocation anywhere on the path.
//!
//! ```
//! use themis_operators::prelude::*;
//! use themis_core::prelude::*;
//!
//! let spec = OperatorSpec::new(
//!     WindowSpec::tumbling(TimeDelta::from_secs(1)),
//!     LogicSpec::Avg { field: 0 },
//! );
//! let mut avg = spec.build();
//! avg.push(0, vec![Tuple::measurement(Timestamp(0), Sic(0.5), 10.0)], Timestamp(0));
//! // Windows close `grace` after their end (default 500 ms).
//! let out = avg.tick(Timestamp::from_millis(1500));
//! let result = out[0].batch().row(0);
//! assert_eq!(result.f64(0), 10.0);
//! assert_eq!(result.sic, Sic(0.5)); // Eq. 3
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernels;
pub mod logic;
pub mod op;
pub mod window;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::logic::{CmpOp, LogicSpec, PaneLogic, Predicate};
    pub use crate::op::{Emission, OperatorSpec, WindowedOperator};
    pub use crate::window::{Pane, WindowBuffer, WindowSpec};
}
