//! Auto-vectorizable aggregate kernels over typed column slices.
//!
//! Schema-typed batches ([`TupleBatch::f64_column`] /
//! [`TupleBatch::i64_column`]) expose their payload fields as plain
//! native slices, so the aggregate hot loops can run branch-free over
//! contiguous memory instead of matching a `Value` enum per element —
//! exactly the mechanism overhead THEMIS (§6.5) argues must stay
//! negligible for fair shedding to be worth enforcing.
//!
//! Every kernel honors the batch's [`DropBitmap`] **word-at-a-time**: a
//! zero drop word admits a whole 64-row block to the multi-lane
//! (SIMD-friendly) path, and only blocks with shed rows fall back to a
//! per-bit walk. The lane-split accumulators reassociate float sums, so
//! results can differ from a strict left-to-right fold by a few ulps —
//! the property tests in `crates/operators/tests/proptests.rs` pin the
//! scalar parity bound.
//!
//! Kernels:
//!
//! * [`sum_count_f64`] / [`max_f64`] / [`min_f64`] — the SUM / COUNT /
//!   AVG / MIN / MAX aggregate bank;
//! * [`group_sum_count_f64`] / [`GroupSums`] — per-key sum/count over a
//!   dictionary-coded tag column, with flat `Vec`-indexed accumulators
//!   while the code space stays dense and a hash-map spill above it;
//! * [`cov_sums`] / [`CovSums::sample_cov`] — one-pass covariance sums
//!   over two paired columns;
//! * [`predicate_mask`] / [`mask_count`] — a filter predicate evaluated
//!   into a word-packed keep bitmap (fed to
//!   [`TupleBatch::append_gathered`]);
//! * [`partial_top_k`] — partial selection of the `k` largest entries,
//!   replacing a full sort.

use std::collections::HashMap;

use themis_core::prelude::*;

use crate::logic::CmpOp;

/// Accumulator lanes of the vectorizable loops: enough independent adds
/// to fill a 512-bit vector unit (or two 256-bit ones) per iteration.
/// Must stay a power of two — [`reduce_lanes`] halves the array.
const LANES: usize = 8;
const _: () = assert!(LANES.is_power_of_two());

/// Combines the lane accumulators pairwise (deterministic for any
/// power-of-two `LANES`).
#[inline]
fn reduce_lanes(mut lanes: [f64; LANES], f: impl Fn(f64, f64) -> f64) -> f64 {
    let mut n = LANES;
    while n > 1 {
        n /= 2;
        for i in 0..n {
            lanes[i] = f(lanes[i], lanes[i + n]);
        }
    }
    lanes[0]
}

/// Sum of a dense (no drops) slice using `LANES` independent
/// accumulators, so the additions vectorize; lanes are combined pairwise
/// and the tail is added last.
fn sum_dense(vals: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut chunks = vals.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, v) in lanes.iter_mut().zip(c) {
            *l += v;
        }
    }
    let mut sum = reduce_lanes(lanes, |a, b| a + b);
    for v in chunks.remainder() {
        sum += v;
    }
    sum
}

fn max_dense(vals: &[f64]) -> f64 {
    let mut lanes = [f64::NEG_INFINITY; LANES];
    let mut chunks = vals.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, v) in lanes.iter_mut().zip(c) {
            *l = l.max(*v);
        }
    }
    let mut m = reduce_lanes(lanes, f64::max);
    for &v in chunks.remainder() {
        m = m.max(v);
    }
    m
}

fn min_dense(vals: &[f64]) -> f64 {
    let mut lanes = [f64::INFINITY; LANES];
    let mut chunks = vals.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, v) in lanes.iter_mut().zip(c) {
            *l = l.min(*v);
        }
    }
    let mut m = reduce_lanes(lanes, f64::min);
    for &v in chunks.remainder() {
        m = m.min(v);
    }
    m
}

/// The live mask of the 64-row block starting at `block * 64`: bit `b`
/// set means row `block * 64 + b` exists and is not dropped.
#[inline]
fn live_word(drops: &DropBitmap, block: usize, block_len: usize) -> u64 {
    let full = if block_len >= 64 {
        !0u64
    } else {
        (1u64 << block_len) - 1
    };
    !drops.word(block) & full
}

/// Runs `dense` over every fully-live 64-row block and `sparse` per live
/// row of partially-shed blocks — the shared word-at-a-time skeleton.
/// Accumulator state threads through `state` so both arms mutate it.
#[inline]
fn for_each_block<S>(
    vals: &[f64],
    drops: &DropBitmap,
    state: &mut S,
    dense: impl Fn(&mut S, &[f64]),
    sparse: impl Fn(&mut S, f64),
) {
    for (w, block) in vals.chunks(64).enumerate() {
        let full = if block.len() >= 64 {
            !0u64
        } else {
            (1u64 << block.len()) - 1
        };
        let mut live = live_word(drops, w, block.len());
        if live == full {
            dense(state, block);
        } else {
            while live != 0 {
                let b = live.trailing_zeros() as usize;
                sparse(state, block[b]);
                live &= live - 1;
            }
        }
    }
}

/// Sum and live count of one column. Fully-live batches take one
/// vectorized pass; shed batches skip dropped rows word-at-a-time.
pub fn sum_count_f64(vals: &[f64], drops: &DropBitmap) -> (f64, u64) {
    if drops.dropped() == 0 {
        return (sum_dense(vals), vals.len() as u64);
    }
    let mut acc = (0.0f64, 0u64);
    for_each_block(
        vals,
        drops,
        &mut acc,
        |(sum, n), block| {
            *sum += sum_dense(block);
            *n += block.len() as u64;
        },
        |(sum, n), v| {
            *sum += v;
            *n += 1;
        },
    );
    acc
}

/// Maximum over the live rows of one column (`None` when none are live).
/// NaN entries are ignored (`f64::max` semantics); an all-NaN column
/// yields the `-∞` fold identity, matching the scalar fallback exactly.
pub fn max_f64(vals: &[f64], drops: &DropBitmap) -> Option<f64> {
    if drops.dropped() == 0 {
        return (!vals.is_empty()).then(|| max_dense(vals));
    }
    let mut acc = (f64::NEG_INFINITY, 0u64);
    for_each_block(
        vals,
        drops,
        &mut acc,
        |(m, n), block| {
            *m = m.max(max_dense(block));
            *n += block.len() as u64;
        },
        |(m, n), v| {
            *m = m.max(v);
            *n += 1;
        },
    );
    (acc.1 > 0).then_some(acc.0)
}

/// Minimum over the live rows of one column (`None` when none are live).
/// NaN entries are ignored (`f64::min` semantics); an all-NaN column
/// yields the `∞` fold identity, matching the scalar fallback exactly.
pub fn min_f64(vals: &[f64], drops: &DropBitmap) -> Option<f64> {
    if drops.dropped() == 0 {
        return (!vals.is_empty()).then(|| min_dense(vals));
    }
    let mut acc = (f64::INFINITY, 0u64);
    for_each_block(
        vals,
        drops,
        &mut acc,
        |(m, n), block| {
            *m = m.min(min_dense(block));
            *n += block.len() as u64;
        },
        |(m, n), v| {
            *m = m.min(v);
            *n += 1;
        },
    );
    (acc.1 > 0).then_some(acc.0)
}

/// One-pass covariance partial sums over two positionally-paired columns
/// (truncated to the shorter one). Callers compact shed rows first —
/// covariance pairs *live* rows by position, so a drop mask cannot be
/// applied to the two columns independently.
///
/// The sums are accumulated **relative to the first pair** (the
/// anchors): covariance is shift-invariant, and anchoring removes the
/// large common offset that makes the textbook `Σxy − ΣxΣy/n` one-pass
/// formula catastrophically cancel on data like memory readings
/// (values ≈ 4·10⁵ with small variance).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CovSums {
    /// `Σ (x − x₀)` where `x₀` is the first pair's x (the anchor).
    pub sum_x: f64,
    /// `Σ (y − y₀)` where `y₀` is the first pair's y (the anchor).
    pub sum_y: f64,
    /// `Σ (x − x₀)·(y − y₀)`.
    pub sum_xy: f64,
    /// Number of pairs.
    pub n: u64,
}

impl CovSums {
    /// The sample covariance `(Σx'y' − Σx'Σy'/n) / (n−1)` over the
    /// anchored values (shift-invariance makes it equal the covariance
    /// of the raw pairs), or `None` with fewer than two pairs.
    pub fn sample_cov(&self) -> Option<f64> {
        (self.n >= 2).then(|| {
            let n = self.n as f64;
            (self.sum_xy - self.sum_x * self.sum_y / n) / (n - 1.0)
        })
    }
}

/// Accumulates [`CovSums`] over two paired slices with lane-split
/// accumulators (the three running sums vectorize together). Values are
/// anchored at the first pair, so the result stays accurate for columns
/// with a large common offset.
pub fn cov_sums(xs: &[f64], ys: &[f64]) -> CovSums {
    let n = xs.len().min(ys.len());
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let (ax, ay) = if n > 0 { (xs[0], ys[0]) } else { (0.0, 0.0) };
    let mut sx = [0.0f64; LANES];
    let mut sy = [0.0f64; LANES];
    let mut sxy = [0.0f64; LANES];
    let mut xc = xs.chunks_exact(LANES);
    let mut yc = ys.chunks_exact(LANES);
    for (x, y) in (&mut xc).zip(&mut yc) {
        for l in 0..LANES {
            let (dx, dy) = (x[l] - ax, y[l] - ay);
            sx[l] += dx;
            sy[l] += dy;
            sxy[l] += dx * dy;
        }
    }
    let mut out = CovSums {
        sum_x: reduce_lanes(sx, |a, b| a + b),
        sum_y: reduce_lanes(sy, |a, b| a + b),
        sum_xy: reduce_lanes(sxy, |a, b| a + b),
        n: n as u64,
    };
    for (x, y) in xc.remainder().iter().zip(yc.remainder()) {
        let (dx, dy) = (x - ax, y - ay);
        out.sum_x += dx;
        out.sum_y += dy;
        out.sum_xy += dx * dy;
    }
    out
}

/// Dictionary codes below this bound index a flat accumulator `Vec`
/// directly (one bounds check + one add per row); larger codes spill
/// into a hash map. Interners hand out codes densely from 0, so real
/// workloads stay entirely on the flat side — the spill only guards
/// against adversarial code spaces blowing up memory.
const GROUP_DENSE_CAP: usize = 1 << 16;

/// Process-wide count of [`GroupSums::accumulate`] calls. Purely
/// observational: integration tests and the `experiments queries` gate
/// use the delta across a run to prove a `GROUP BY` query actually
/// dispatched to the columnar grouped kernel at runtime.
static GROUP_KERNEL_INVOCATIONS: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);

/// Number of grouped sum/count kernel invocations since process start.
pub fn group_kernel_invocations() -> u64 {
    GROUP_KERNEL_INVOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Per-key `(sum, count)` accumulator over dictionary-coded keys.
/// Feed one or more `(codes, vals, drops)` column pairs through
/// [`GroupSums::accumulate`] (panes of one window, for instance), then
/// drain with [`GroupSums::into_sorted`].
#[derive(Debug, Default)]
pub struct GroupSums {
    /// Flat accumulators indexed by code, grown lazily up to
    /// [`GROUP_DENSE_CAP`]; untouched entries keep `n == 0`.
    dense: Vec<(f64, u64)>,
    /// Spill for codes at or above the dense cap.
    sparse: HashMap<u32, (f64, u64)>,
}

impl GroupSums {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        GroupSums::default()
    }

    #[inline]
    fn touch(&mut self, code: u32, v: f64) {
        let idx = code as usize;
        if idx < GROUP_DENSE_CAP {
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, (0.0, 0));
            }
            let e = &mut self.dense[idx];
            e.0 += v;
            e.1 += 1;
        } else {
            let e = self.sparse.entry(code).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
    }

    /// Folds one positionally-paired `(codes, vals)` column pair into the
    /// accumulator, honoring the drop bitmap word-at-a-time: a zero drop
    /// word admits a whole 64-row block to the unconditional inner loop,
    /// and only partially-shed blocks walk their live bits.
    pub fn accumulate(&mut self, codes: &[u32], vals: &[f64], drops: &DropBitmap) {
        GROUP_KERNEL_INVOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let n = codes.len().min(vals.len());
        let (codes, vals) = (&codes[..n], &vals[..n]);
        for (w, block) in vals.chunks(64).enumerate() {
            let full = if block.len() >= 64 {
                !0u64
            } else {
                (1u64 << block.len()) - 1
            };
            let base = w * 64;
            let mut live = live_word(drops, w, block.len());
            if live == full {
                for (b, &v) in block.iter().enumerate() {
                    self.touch(codes[base + b], v);
                }
            } else {
                while live != 0 {
                    let b = live.trailing_zeros() as usize;
                    self.touch(codes[base + b], block[b]);
                    live &= live - 1;
                }
            }
        }
    }

    /// Number of distinct keys touched so far.
    pub fn keys(&self) -> usize {
        self.dense.iter().filter(|e| e.1 > 0).count() + self.sparse.len()
    }

    /// Drains the accumulator into `(code, sum, count)` triples in
    /// ascending code order (deterministic regardless of which side —
    /// flat or spill — a key landed on).
    pub fn into_sorted(self) -> Vec<(u32, f64, u64)> {
        let mut out: Vec<(u32, f64, u64)> = self
            .dense
            .into_iter()
            .enumerate()
            .filter(|(_, (_, n))| *n > 0)
            .map(|(c, (s, n))| (c as u32, s, n))
            .collect();
        // Spilled codes all sit at or above the dense cap, so sorting the
        // spill and appending keeps the whole list ascending.
        let mut spill: Vec<(u32, f64, u64)> = self
            .sparse
            .into_iter()
            .map(|(c, (s, n))| (c, s, n))
            .collect();
        spill.sort_unstable_by_key(|&(c, _, _)| c);
        out.extend(spill);
        out
    }
}

/// Per-key sum and live count of one dictionary-coded column pair:
/// `(code, sum, count)` triples in ascending code order. The group-by
/// aggregate bank — one [`GroupSums`] pass with flat `Vec`-indexed
/// accumulators while codes stay below the dense cap.
pub fn group_sum_count_f64(
    codes: &[u32],
    vals: &[f64],
    drops: &DropBitmap,
) -> Vec<(u32, f64, u64)> {
    let mut acc = GroupSums::new();
    acc.accumulate(codes, vals, drops);
    acc.into_sorted()
}

/// Evaluates `vals[i] ⊙ rhs` into a word-packed keep mask (bit `i` set
/// when row `i` matches **and** is live), ready for
/// [`TupleBatch::append_gathered`]. The comparison is dispatched once, so
/// the per-row loop is a branchless compare-and-pack; each 64-row block
/// is built in a register and appended whole onto the shared
/// [`BitVec`] bitset.
pub fn predicate_mask(
    vals: &[f64],
    op: CmpOp,
    rhs: f64,
    drops: &DropBitmap,
) -> themis_core::bits::BitVec {
    #[inline]
    fn pack(
        vals: &[f64],
        drops: &DropBitmap,
        f: impl Fn(f64) -> bool,
    ) -> themis_core::bits::BitVec {
        let mut mask = themis_core::bits::BitVec::with_bits(vals.len());
        for (w, block) in vals.chunks(64).enumerate() {
            let mut m = 0u64;
            for (b, &v) in block.iter().enumerate() {
                m |= (f(v) as u64) << b;
            }
            mask.push_word(m & live_word(drops, w, block.len()), block.len());
        }
        mask
    }
    match op {
        CmpOp::Gt => pack(vals, drops, |v| v > rhs),
        CmpOp::Ge => pack(vals, drops, |v| v >= rhs),
        CmpOp::Lt => pack(vals, drops, |v| v < rhs),
        CmpOp::Le => pack(vals, drops, |v| v <= rhs),
        CmpOp::Eq => pack(vals, drops, |v| v == rhs),
    }
}

/// Number of set bits in a keep mask (the filter/COUNT result).
pub fn mask_count(mask: &themis_core::bits::BitVec) -> usize {
    mask.count_ones()
}

/// Keeps the `k` entries with the largest values (descending, ascending
/// id as the deterministic tie-break) — a partial selection
/// (`select_nth_unstable`) followed by a sort of the winners only, so
/// the cost is `O(n + k log k)` instead of a full `O(n log n)` sort.
pub fn partial_top_k(entries: &mut Vec<(i64, f64)>, k: usize) {
    let cmp = |a: &(i64, f64), b: &(i64, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    if k == 0 {
        entries.clear();
        return;
    }
    if entries.len() > k {
        entries.select_nth_unstable_by(k - 1, cmp);
        entries.truncate(k);
    }
    entries.sort_by(cmp);
}

/// The live values of one `f64` payload column, compacted: a borrowed
/// slice when the batch is typed with no shed rows (the zero-copy fast
/// path), an owned gather otherwise. Kernels that pair columns
/// positionally ([`cov_sums`]) consume this.
pub fn live_f64(batch: &TupleBatch, field: usize) -> std::borrow::Cow<'_, [f64]> {
    match batch.f64_column(field) {
        Some(col) if batch.drops().dropped() == 0 => std::borrow::Cow::Borrowed(col),
        _ => std::borrow::Cow::Owned(batch.column_f64(field).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drops_of(n: usize, dropped: &[usize]) -> DropBitmap {
        let mut bm = DropBitmap::with_rows(n);
        for &i in dropped {
            bm.drop_row(i);
        }
        bm
    }

    #[test]
    fn sum_count_dense_and_masked() {
        let vals: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let (sum, n) = sum_count_f64(&vals, &DropBitmap::new());
        assert_eq!(sum, 199.0 * 200.0 / 2.0);
        assert_eq!(n, 200);
        // Drop one row in the middle block and one in the tail.
        let drops = drops_of(200, &[70, 199]);
        let (sum, n) = sum_count_f64(&vals, &drops);
        assert_eq!(sum, 19900.0 - 70.0 - 199.0);
        assert_eq!(n, 198);
        // Fully dropped.
        let mut all = DropBitmap::with_rows(3);
        for i in 0..3 {
            all.drop_row(i);
        }
        assert_eq!(sum_count_f64(&[1.0, 2.0, 3.0], &all), (0.0, 0));
    }

    #[test]
    fn sum_matches_sequential_fold_closely() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7).sin() * 100.0).collect();
        let seq: f64 = vals.iter().sum();
        let (lanes, _) = sum_count_f64(&vals, &DropBitmap::new());
        assert!((seq - lanes).abs() <= 1e-9 * seq.abs().max(1.0));
    }

    #[test]
    fn max_min_match_scalar_folds_exactly() {
        let vals: Vec<f64> = (0..150).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        assert_eq!(
            max_f64(&vals, &DropBitmap::new()),
            vals.iter()
                .copied()
                .fold(None::<f64>, |a, v| Some(a.map_or(v, |a| a.max(v))))
        );
        assert_eq!(
            min_f64(&vals, &DropBitmap::new()),
            vals.iter()
                .copied()
                .fold(None::<f64>, |a, v| Some(a.map_or(v, |a| a.min(v))))
        );
        assert_eq!(max_f64(&[], &DropBitmap::new()), None);
        // Masked: the global max is dropped, the runner-up wins.
        let max_at = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let masked = max_f64(&vals, &drops_of(vals.len(), &[max_at])).unwrap();
        assert!(masked <= vals[max_at]);
        assert!(vals
            .iter()
            .enumerate()
            .any(|(i, &v)| i != max_at && v == masked));
    }

    #[test]
    fn group_sum_count_matches_scalar_reference() {
        let n = 500usize;
        let codes: Vec<u32> = (0..n).map(|i| ((i * 7) % 13) as u32).collect();
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let drops = drops_of(n, &[0, 63, 64, 130, 499]);
        let mut want: std::collections::HashMap<u32, (f64, u64)> = Default::default();
        for i in 0..n {
            if !drops.is_dropped(i) {
                let e = want.entry(codes[i]).or_insert((0.0, 0));
                e.0 += vals[i];
                e.1 += 1;
            }
        }
        let got = group_sum_count_f64(&codes, &vals, &drops);
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "ascending codes");
        for (c, s, cnt) in got {
            let &(ws, wn) = want.get(&c).unwrap();
            assert_eq!(cnt, wn);
            assert!((s - ws).abs() <= 1e-9 * ws.abs().max(1.0));
        }
    }

    #[test]
    fn group_sum_count_spills_large_codes() {
        let codes = [1u32, 70_000, 1, u32::MAX, 70_000];
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        let got = group_sum_count_f64(&codes, &vals, &DropBitmap::new());
        assert_eq!(got, vec![(1, 4.0, 2), (70_000, 7.0, 2), (u32::MAX, 4.0, 1)]);
    }

    #[test]
    fn group_sums_accumulates_across_panes() {
        let mut acc = GroupSums::new();
        acc.accumulate(&[0, 1], &[1.0, 2.0], &DropBitmap::new());
        acc.accumulate(&[1, 2], &[3.0, 4.0], &DropBitmap::new());
        assert_eq!(acc.keys(), 3);
        assert_eq!(
            acc.into_sorted(),
            vec![(0, 1.0, 1), (1, 5.0, 2), (2, 4.0, 1)]
        );
        // Fully dropped input contributes nothing; mismatched lengths
        // truncate to the shorter side.
        let mut all = DropBitmap::with_rows(2);
        all.drop_row(0);
        all.drop_row(1);
        let mut acc = GroupSums::new();
        acc.accumulate(&[0, 1], &[1.0, 2.0], &all);
        assert!(acc.into_sorted().is_empty());
        assert_eq!(
            group_sum_count_f64(&[5, 6, 7], &[1.0], &DropBitmap::new()),
            vec![(5, 1.0, 1)]
        );
    }

    #[test]
    fn cov_sums_linear_series() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let s = cov_sums(&xs, &ys);
        assert_eq!(s.n, 4);
        assert!((s.sample_cov().unwrap() - 10.0 / 3.0).abs() < 1e-12);
        // Truncates to the shorter column.
        assert_eq!(cov_sums(&xs, &ys[..2]).n, 2);
        assert_eq!(cov_sums(&xs[..1], &ys).sample_cov(), None);
        assert_eq!(cov_sums(&[], &[]).sample_cov(), None);
    }

    #[test]
    fn cov_sums_survives_large_common_offset() {
        // Memory-reading scale: values around 4e5 KB with tiny variance.
        // The anchored one-pass sums must not catastrophically cancel —
        // the covariance of (base + i, base + 2i) is exactly cov(i, 2i).
        let n = 4000usize;
        let base = 4.0e5;
        let xs: Vec<f64> = (0..n).map(|i| base + i as f64 * 0.25).collect();
        let ys: Vec<f64> = (0..n).map(|i| base + i as f64 * 0.5).collect();
        let small_xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let small_ys: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let expect = cov_sums(&small_xs, &small_ys).sample_cov().unwrap();
        let got = cov_sums(&xs, &ys).sample_cov().unwrap();
        assert!(
            (got - expect).abs() <= 1e-9 * expect.abs(),
            "offset cancellation: {got} vs {expect}"
        );
    }

    #[test]
    fn predicate_mask_packs_and_respects_drops() {
        let vals: Vec<f64> = (0..70).map(|i| i as f64).collect();
        let mask = predicate_mask(&vals, CmpOp::Ge, 50.0, &DropBitmap::new());
        assert_eq!(mask.len(), 70, "one mask bit per row");
        assert_eq!(mask_count(&mask), 20);
        assert_eq!(mask.word(0), !0u64 << 50);
        assert_eq!(mask.word(1), (1u64 << 6) - 1);
        // A dropped matching row is cleared from the mask.
        let mask = predicate_mask(&vals, CmpOp::Ge, 50.0, &drops_of(70, &[55]));
        assert_eq!(mask_count(&mask), 19);
        // Every operator agrees with Predicate's scalar semantics.
        use crate::logic::Predicate;
        for op in [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq] {
            let mask = predicate_mask(&vals, op, 33.0, &DropBitmap::new());
            let scalar = vals
                .iter()
                .filter(|&&v| Predicate::new(0, op, 33.0).matches(v))
                .count();
            assert_eq!(mask_count(&mask), scalar, "{op:?}");
        }
    }

    #[test]
    fn partial_top_k_matches_full_sort() {
        let mut entries: Vec<(i64, f64)> = (0..100)
            .map(|i| (i as i64, ((i * 17) % 23) as f64))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        sorted.truncate(5);
        partial_top_k(&mut entries, 5);
        assert_eq!(entries, sorted);
        // k >= len keeps (and orders) everything.
        let mut small = vec![(2i64, 1.0), (1, 9.0)];
        partial_top_k(&mut small, 10);
        assert_eq!(small, vec![(1, 9.0), (2, 1.0)]);
        let mut none = vec![(1i64, 1.0)];
        partial_top_k(&mut none, 0);
        assert!(none.is_empty());
    }

    #[test]
    fn live_f64_borrows_dense_typed_columns() {
        let schema = Schema::new([("v", FieldType::F64)]);
        let mut b = TupleBatch::with_schema(schema);
        for v in [1.0, 2.0, 3.0] {
            b.push_row(Timestamp(0), Sic(0.1), &[Value::F64(v)]);
        }
        assert!(matches!(live_f64(&b, 0), std::borrow::Cow::Borrowed(_)));
        b.drop_row(1);
        let compact = live_f64(&b, 0);
        assert!(matches!(compact, std::borrow::Cow::Owned(_)));
        assert_eq!(&*compact, &[1.0, 3.0]);
    }
}
