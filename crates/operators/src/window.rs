//! Windows that atomically emit tuples for operator processing.
//!
//! The paper's model (§3): "for each operator o ∈ O, there exists a time or
//! count window that atomically emits tuples for processing by o". The
//! window therefore defines the *atomic input group* (`T_in` of Eq. 3); the
//! operator distributes the group's SIC mass over its outputs.
//!
//! Panes are stored as columnar [`TupleBatch`]es, one per input port:
//! pushing a batch into a window *slices* its columns into the target
//! panes (contiguous copies of `Copy` values), instead of re-allocating a
//! `Vec<Tuple>` — and its per-tuple payload vectors — per pane as the row
//! path did.
//!
//! Two timing details matter for multi-fragment queries:
//!
//! * **Grace**: in a distributed deployment tuples reach a window after
//!   network latency and input-buffer queueing, so a time window only closes
//!   `grace` after its end. Query templates grow the grace along fragment
//!   chains so downstream windows wait for upstream partials.
//! * **Stamping**: a closed pane carries the timestamp that aggregate
//!   outputs are stamped with — one microsecond *before* the window end, so
//!   downstream windows of the same length assign derived results to the
//!   same window index instead of cascading one window of latency per hop.

use std::collections::BTreeMap;

use themis_core::prelude::*;

/// How an operator's input is grouped into atomic panes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    /// Every pushed batch is processed immediately as its own pane
    /// (per-batch operators: receivers, pass-through filters, forwarders).
    PassThrough,
    /// Tumbling time window: pane `k` covers `[k·size, (k+1)·size)` and
    /// closes `grace` after logical time passes its end.
    Tumbling {
        /// Window length.
        size: TimeDelta,
    },
    /// Sliding time window: panes of `size` every `slide`. A tuple belongs
    /// to `size/slide` panes; its SIC value is divided by that overlap so
    /// mass is conserved (§6 "we also provide a practical way to divide the
    /// SIC value of an input tuple across all its derived tuples per
    /// slide").
    Sliding {
        /// Window length.
        size: TimeDelta,
        /// Slide between pane starts.
        slide: TimeDelta,
    },
    /// Count window: a pane closes after `count` tuples (per port).
    Count {
        /// Tuples per pane.
        count: usize,
    },
}

impl WindowSpec {
    /// Tumbling window helper.
    pub fn tumbling(size: TimeDelta) -> Self {
        WindowSpec::Tumbling { size }
    }

    /// Sliding window helper; a slide of zero or larger than `size`
    /// degenerates to a tumbling window.
    pub fn sliding(size: TimeDelta, slide: TimeDelta) -> Self {
        if slide.is_zero() || slide >= size {
            WindowSpec::Tumbling { size }
        } else {
            WindowSpec::Sliding { size, slide }
        }
    }

    /// Number of panes a tuple participates in.
    pub fn overlap(&self) -> u64 {
        match self {
            WindowSpec::Sliding { size, slide } => size.div(*slide).max(1),
            _ => 1,
        }
    }

    /// True for time-based windows (the ones affected by grace).
    pub fn is_timed(&self) -> bool {
        matches!(
            self,
            WindowSpec::Tumbling { .. } | WindowSpec::Sliding { .. }
        )
    }
}

/// A closed pane ready for operator processing.
#[derive(Debug, Clone)]
pub struct Pane {
    /// Stamp for derived aggregate outputs: one microsecond before the
    /// window end for time windows, the latest input timestamp otherwise.
    pub at: Timestamp,
    /// The atomic tuple groups, one columnar batch per input port.
    pub inputs: Vec<TupleBatch>,
}

impl Pane {
    /// Total SIC mass across all ports (the `Σ SIC(T_in)` of Eq. 3).
    pub fn input_sic(&self) -> Sic {
        self.inputs.iter().map(TupleBatch::sic_total).sum()
    }

    /// Total tuples across all ports.
    pub fn input_len(&self) -> usize {
        self.inputs.iter().map(TupleBatch::len).sum()
    }

    fn max_ts(&self) -> Timestamp {
        self.inputs
            .iter()
            .map(TupleBatch::max_ts)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }
}

/// Multi-port pane buffer implementing [`WindowSpec`].
#[derive(Debug)]
pub struct WindowBuffer {
    spec: WindowSpec,
    ports: usize,
    grace: TimeDelta,
    /// Time windows: pane index -> per-port columnar batches.
    panes: BTreeMap<u64, Vec<TupleBatch>>,
    /// Count windows: per-port pending columns.
    pending: Vec<TupleBatch>,
    /// Pass-through: panes emitted directly on push.
    ready: Vec<Pane>,
    /// Recycles spent input batches after their rows are sliced into
    /// panes (time windows) or appended to pending columns (count
    /// windows); `None` drops them as before.
    pool: Option<BatchPool>,
}

impl WindowBuffer {
    /// Creates a buffer for `ports` input ports; time windows close `grace`
    /// after their end.
    pub fn new(spec: WindowSpec, ports: usize, grace: TimeDelta) -> Self {
        WindowBuffer {
            spec,
            ports: ports.max(1),
            grace,
            panes: BTreeMap::new(),
            pending: vec![TupleBatch::new(); ports.max(1)],
            ready: Vec::new(),
            pool: None,
        }
    }

    /// Attaches a [`BatchPool`]; spent input batches recycle into it
    /// instead of hitting the allocator.
    pub fn set_pool(&mut self, pool: BatchPool) {
        self.pool = Some(pool);
    }

    /// The attached pool, if any.
    pub fn pool(&self) -> Option<&BatchPool> {
        self.pool.as_ref()
    }

    /// The configured window.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Number of input ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Lateness grace applied to time windows.
    pub fn grace(&self) -> TimeDelta {
        self.grace
    }

    /// Buffered tuple count (for memory accounting).
    pub fn buffered(&self) -> usize {
        let in_panes: usize = self
            .panes
            .values()
            .map(|ps| ps.iter().map(TupleBatch::len).sum::<usize>())
            .sum();
        let in_pending: usize = self.pending.iter().map(TupleBatch::len).sum();
        in_panes + in_pending
    }

    /// Pushes a columnar batch into `port` at logical time `now`.
    pub fn push(&mut self, port: usize, batch: impl Into<TupleBatch>, now: Timestamp) {
        let batch = batch.into();
        let port = port.min(self.ports - 1);
        match self.spec {
            WindowSpec::PassThrough => {
                if !batch.is_empty() {
                    let mut inputs = vec![TupleBatch::new(); self.ports];
                    inputs[port] = batch;
                    let mut pane = Pane { at: now, inputs };
                    pane.at = pane.max_ts();
                    self.ready.push(pane);
                }
            }
            WindowSpec::Tumbling { size } => {
                let size_us = size.as_micros().max(1);
                let ports = self.ports;
                for r in batch.iter() {
                    let idx = r.ts.as_micros() / size_us;
                    // push_ref keeps typed batches typed: the pane adopts
                    // the batch's schema and copies column-to-column.
                    pane_port(&mut self.panes, ports, idx, port).push_ref(r);
                }
                self.recycle_spent(batch);
            }
            WindowSpec::Sliding { slide, .. } => {
                // A tuple at time τ belongs to panes whose span covers τ.
                // Pane p covers [p·slide, p·slide + size); SIC is divided by
                // the overlap to conserve mass (§6).
                let slide_us = slide.as_micros().max(1);
                let overlap = self.spec.overlap();
                let ports = self.ports;
                for r in batch.iter() {
                    let last = r.ts.as_micros() / slide_us;
                    let first = last.saturating_sub(overlap - 1);
                    // Divide by the number of panes the tuple actually
                    // joins: near the stream start there are fewer than
                    // `overlap` panes, and dividing by the full overlap
                    // would silently lose SIC mass.
                    let n_panes = last - first + 1;
                    let shared = Sic(r.sic.value() / n_panes as f64);
                    for idx in first..=last {
                        pane_port(&mut self.panes, ports, idx, port).push_ref_sic(r, shared);
                    }
                }
                self.recycle_spent(batch);
            }
            WindowSpec::Count { count } => {
                let count = count.max(1);
                self.pending[port].append_batch(&batch);
                self.recycle_spent(batch);
                while self.pending[port].len() >= count {
                    let full = self.pending[port].split_front(count);
                    let mut inputs = vec![TupleBatch::new(); self.ports];
                    inputs[port] = full;
                    let mut pane = Pane { at: now, inputs };
                    pane.at = pane.max_ts();
                    self.ready.push(pane);
                }
            }
        }
    }

    /// Returns a spent input batch to the pool (no-op without one; the
    /// pool itself ignores schema-less arena batches).
    fn recycle_spent(&self, batch: TupleBatch) {
        if let Some(pool) = &self.pool {
            pool.recycle(batch);
        }
    }

    fn pane_end(&self, idx: u64) -> u64 {
        match self.spec {
            WindowSpec::Tumbling { size } => (idx + 1) * size.as_micros().max(1),
            WindowSpec::Sliding { size, slide } => {
                idx * slide.as_micros().max(1) + size.as_micros().max(1)
            }
            _ => 0,
        }
    }

    /// Exports every buffered pane for checkpointing: one
    /// `(key, port, batch)` entry per non-empty per-port column store.
    /// The transient `ready` queue is not exported — pass-through and
    /// just-closed panes are consumed within the same tick, which is the
    /// bounded divergence the checkpoint accepts (AF-Stream style).
    pub fn export_state(&self) -> Vec<(PaneKey, usize, TupleBatch)> {
        let mut out = Vec::new();
        for (&idx, ports) in &self.panes {
            for (port, batch) in ports.iter().enumerate() {
                if !batch.is_empty() {
                    out.push((PaneKey::Time(idx), port, batch.clone()));
                }
            }
        }
        for (port, batch) in self.pending.iter().enumerate() {
            if !batch.is_empty() {
                out.push((PaneKey::Pending, port, batch.clone()));
            }
        }
        out
    }

    /// Restores one checkpointed pane, replacing whatever the buffer holds
    /// under the same key/port (restore targets a freshly-built buffer).
    pub fn import_state(&mut self, key: PaneKey, port: usize, batch: TupleBatch) {
        let port = port.min(self.ports - 1);
        match key {
            PaneKey::Time(idx) => *pane_port(&mut self.panes, self.ports, idx, port) = batch,
            PaneKey::Pending => self.pending[port] = batch,
        }
    }

    /// Closes every time pane whose end (plus grace) has passed `now` and
    /// returns them in order, together with any pass-through/count panes
    /// accumulated since the last call.
    pub fn close_up_to(&mut self, now: Timestamp) -> Vec<Pane> {
        let mut out = std::mem::take(&mut self.ready);
        if !self.spec.is_timed() {
            return out;
        }
        let deadline = now.as_micros().saturating_sub(self.grace.as_micros());
        let closed: Vec<u64> = self
            .panes
            .keys()
            .copied()
            .take_while(|&idx| self.pane_end(idx) <= deadline)
            .collect();
        for idx in closed {
            let inputs = self.panes.remove(&idx).expect("pane exists");
            if inputs.iter().all(TupleBatch::is_empty) {
                continue;
            }
            // Stamp 1 us before the end so downstream windows assign the
            // derived tuples to this same window index.
            let at = Timestamp(self.pane_end(idx).saturating_sub(1));
            out.push(Pane { at, inputs });
        }
        out
    }
}

/// The per-port column store of time pane `idx`, created on demand.
fn pane_port(
    panes: &mut BTreeMap<u64, Vec<TupleBatch>>,
    ports: usize,
    idx: u64,
    port: usize,
) -> &mut TupleBatch {
    &mut panes
        .entry(idx)
        .or_insert_with(|| vec![TupleBatch::new(); ports])[port]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64, sic: f64, v: f64) -> Tuple {
        Tuple::measurement(Timestamp::from_millis(ms), Sic(sic), v)
    }

    fn buf(spec: WindowSpec, ports: usize) -> WindowBuffer {
        WindowBuffer::new(spec, ports, TimeDelta::ZERO)
    }

    #[test]
    fn passthrough_emits_immediately() {
        let mut w = buf(WindowSpec::PassThrough, 1);
        w.push(0, vec![t(1, 0.1, 5.0)], Timestamp::from_millis(3));
        let panes = w.close_up_to(Timestamp::from_millis(3));
        assert_eq!(panes.len(), 1);
        assert_eq!(panes[0].input_len(), 1);
        // Stamped with the max input ts, not the push time.
        assert_eq!(panes[0].at, Timestamp::from_millis(1));
        assert!(w.close_up_to(Timestamp::from_millis(10)).is_empty());
    }

    #[test]
    fn tumbling_closes_on_time() {
        let size = TimeDelta::from_secs(1);
        let mut w = buf(WindowSpec::tumbling(size), 1);
        w.push(
            0,
            vec![t(100, 0.1, 1.0), t(900, 0.1, 2.0)],
            Timestamp::from_millis(900),
        );
        w.push(0, vec![t(1100, 0.1, 3.0)], Timestamp::from_millis(1100));
        assert!(w.close_up_to(Timestamp::from_millis(999)).is_empty());
        let panes = w.close_up_to(Timestamp::from_millis(1000));
        assert_eq!(panes.len(), 1);
        assert_eq!(panes[0].input_len(), 2);
        // Stamped 1 us before the window end.
        assert_eq!(panes[0].at, Timestamp(1_000_000 - 1));
        let panes = w.close_up_to(Timestamp::from_secs(2));
        assert_eq!(panes.len(), 1);
        assert_eq!(panes[0].inputs[0].row(0).f64(0), 3.0);
    }

    #[test]
    fn grace_delays_closing() {
        let mut w = WindowBuffer::new(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            1,
            TimeDelta::from_millis(500),
        );
        w.push(0, vec![t(500, 0.1, 1.0)], Timestamp::from_millis(500));
        assert!(w.close_up_to(Timestamp::from_millis(1000)).is_empty());
        assert!(w.close_up_to(Timestamp::from_millis(1499)).is_empty());
        // Late tuple arrives during the grace period and still counts.
        w.push(0, vec![t(990, 0.1, 2.0)], Timestamp::from_millis(1200));
        let panes = w.close_up_to(Timestamp::from_millis(1500));
        assert_eq!(panes.len(), 1);
        assert_eq!(panes[0].input_len(), 2);
    }

    #[test]
    fn tumbling_skips_empty_panes() {
        let mut w = buf(WindowSpec::tumbling(TimeDelta::from_secs(1)), 1);
        w.push(0, vec![t(100, 0.1, 1.0)], Timestamp::from_millis(100));
        w.push(0, vec![t(5100, 0.1, 2.0)], Timestamp::from_millis(5100));
        let panes = w.close_up_to(Timestamp::from_secs(10));
        assert_eq!(panes.len(), 2, "gap windows are not emitted");
    }

    #[test]
    fn sliding_divides_sic_across_overlap() {
        // 1 s window sliding by 250 ms: overlap 4.
        let spec = WindowSpec::sliding(TimeDelta::from_secs(1), TimeDelta::from_millis(250));
        assert_eq!(spec.overlap(), 4);
        let mut w = buf(spec, 1);
        w.push(0, vec![t(1000, 0.4, 1.0)], Timestamp::from_secs(1));
        // The tuple at t=1 s belongs to panes starting 250,500,750,1000 ms.
        let panes = w.close_up_to(Timestamp::from_millis(2100));
        assert_eq!(panes.len(), 4);
        let total: f64 = panes.iter().map(|p| p.input_sic().value()).sum();
        assert!((total - 0.4).abs() < 1e-12, "mass conserved: {total}");
        for p in &panes {
            assert!((p.inputs[0].row(0).sic.value() - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sliding_degenerates_to_tumbling() {
        let spec = WindowSpec::sliding(TimeDelta::from_secs(1), TimeDelta::from_secs(2));
        assert_eq!(spec, WindowSpec::tumbling(TimeDelta::from_secs(1)));
    }

    #[test]
    fn count_window_batches_per_port() {
        let mut w = buf(WindowSpec::Count { count: 3 }, 1);
        w.push(0, vec![t(1, 0.1, 1.0), t(2, 0.1, 2.0)], Timestamp(2));
        assert!(w.close_up_to(Timestamp(2)).is_empty());
        w.push(0, vec![t(3, 0.1, 3.0), t(4, 0.1, 4.0)], Timestamp(4));
        let panes = w.close_up_to(Timestamp(4));
        assert_eq!(panes.len(), 1);
        assert_eq!(panes[0].input_len(), 3);
        assert_eq!(w.buffered(), 1, "fourth tuple pending");
    }

    #[test]
    fn two_port_tumbling_aligns_panes() {
        let mut w = buf(WindowSpec::tumbling(TimeDelta::from_secs(1)), 2);
        w.push(0, vec![t(100, 0.1, 1.0)], Timestamp::from_millis(100));
        w.push(1, vec![t(200, 0.2, 2.0)], Timestamp::from_millis(200));
        let panes = w.close_up_to(Timestamp::from_secs(1));
        assert_eq!(panes.len(), 1);
        assert_eq!(panes[0].inputs[0].len(), 1);
        assert_eq!(panes[0].inputs[1].len(), 1);
        assert!((panes[0].input_sic().value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stamping_avoids_cascaded_window_latency() {
        // A chain of two identical tumbling windows: results of window 1
        // stamped at end-1us land in the *same* index of window 2, which can
        // close at the same logical instant.
        let size = TimeDelta::from_secs(1);
        let mut w1 = buf(WindowSpec::tumbling(size), 1);
        let mut w2 = buf(WindowSpec::tumbling(size), 1);
        w1.push(0, vec![t(300, 0.1, 1.0)], Timestamp::from_millis(300));
        let p1 = w1.close_up_to(Timestamp::from_secs(1));
        assert_eq!(p1.len(), 1);
        // Re-stamp as an aggregate output would be.
        let derived = Tuple::measurement(p1[0].at, Sic(0.1), 42.0);
        w2.push(0, vec![derived], Timestamp::from_secs(1));
        let p2 = w2.close_up_to(Timestamp::from_secs(1));
        assert_eq!(p2.len(), 1, "no extra window of latency");
    }

    #[test]
    fn buffered_accounting() {
        let mut w = buf(WindowSpec::tumbling(TimeDelta::from_secs(1)), 1);
        assert_eq!(w.buffered(), 0);
        w.push(0, vec![t(1, 0.1, 1.0), t(2, 0.1, 1.0)], Timestamp(2));
        assert_eq!(w.buffered(), 2);
        w.close_up_to(Timestamp::from_secs(1));
        assert_eq!(w.buffered(), 0);
    }

    #[test]
    fn pooled_buffer_recycles_spent_typed_batches() {
        let schema = Schema::new([("v", FieldType::F64)]);
        let mut batch = TupleBatch::with_schema_capacity(schema.clone(), 2);
        batch.push_row(Timestamp::from_millis(100), Sic(0.1), &[Value::F64(1.0)]);
        let pool = BatchPool::new();
        let mut w = buf(WindowSpec::tumbling(TimeDelta::from_secs(1)), 1);
        w.set_pool(pool.clone());
        w.push(0, batch, Timestamp::from_millis(100));
        assert_eq!(pool.idle(), 1, "spent input batch pooled");
        // The pane itself keeps the copied row.
        let panes = w.close_up_to(Timestamp::from_secs(1));
        assert_eq!(panes[0].input_len(), 1);
        // Arena batches pass through the recycle point without pooling.
        w.push(0, vec![t(1100, 0.1, 2.0)], Timestamp::from_millis(1100));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn dropped_rows_never_enter_panes() {
        let mut batch = TupleBatch::from_tuples(vec![t(100, 0.1, 1.0), t(200, 0.1, 2.0)]);
        batch.drop_row(0);
        let mut w = buf(WindowSpec::tumbling(TimeDelta::from_secs(1)), 1);
        w.push(0, batch, Timestamp::from_millis(200));
        let panes = w.close_up_to(Timestamp::from_secs(1));
        assert_eq!(panes.len(), 1);
        assert_eq!(panes[0].input_len(), 1);
        assert_eq!(panes[0].inputs[0].row(0).f64(0), 2.0);
    }
}
