//! The executable operator: window + black-box logic + Eq.-3 SIC
//! propagation.
//!
//! A [`WindowedOperator`] buffers pushed tuples in its [`WindowBuffer`];
//! whenever a pane closes, the pane's columnar tuple groups are handed
//! atomically to the [`PaneLogic`], and every output tuple receives
//! `sum(input SIC) / |outputs|` (Eq. 3). Row-preserving logic keeps the
//! originating tuples' timestamps; aggregate outputs are stamped with the
//! pane's window timestamp. Output rows are assembled directly into one
//! columnar [`Emission`] batch — the hot path never materialises owning
//! [`Tuple`]s.

use themis_core::prelude::*;

use crate::logic::{LogicSpec, PaneLogic};
use crate::window::{WindowBuffer, WindowSpec};

/// An atomic output group of one operator (becomes a batch downstream):
/// a pane timestamp plus a columnar batch of output tuples, each already
/// stamped with its Eq.-3 SIC share.
#[derive(Debug, Clone)]
pub struct Emission {
    /// Emission stamp (pane timestamp).
    pub at: Timestamp,
    batch: TupleBatch,
}

impl Emission {
    /// Wraps an output batch.
    pub fn new(at: Timestamp, batch: TupleBatch) -> Self {
        Emission { at, batch }
    }

    /// Total SIC mass carried by this emission.
    pub fn sic(&self) -> Sic {
        self.batch.sic_total()
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True when the emission carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The columnar output batch.
    pub fn batch(&self) -> &TupleBatch {
        &self.batch
    }

    /// Consumes the emission, returning the columnar batch (the zero-copy
    /// hand-off to the downstream fragment's input buffer).
    pub fn into_batch(self) -> TupleBatch {
        self.batch
    }

    /// Iterates the output rows as borrowed views.
    pub fn iter(&self) -> impl Iterator<Item = TupleRef<'_>> + Clone {
        self.batch.iter()
    }

    /// Materialises the output rows as owning tuples (report/test edge).
    pub fn tuples(&self) -> Vec<Tuple> {
        self.batch.to_tuples()
    }
}

/// Declarative operator description used by query graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSpec {
    /// Window that atomically groups the operator's input.
    pub window: WindowSpec,
    /// Black-box processing logic.
    pub logic: LogicSpec,
    /// Lateness grace for time windows; templates grow this along fragment
    /// chains so downstream windows wait for delayed upstream partials.
    pub grace: TimeDelta,
}

/// Default lateness grace: covers one shedding interval (250 ms) plus LAN
/// latency and processing time.
pub const DEFAULT_GRACE: TimeDelta = TimeDelta(500_000);

impl OperatorSpec {
    /// Creates a spec with the default grace.
    pub fn new(window: WindowSpec, logic: LogicSpec) -> Self {
        OperatorSpec {
            window,
            logic,
            grace: DEFAULT_GRACE,
        }
    }

    /// Creates a spec with an explicit grace.
    pub fn with_grace(window: WindowSpec, logic: LogicSpec, grace: TimeDelta) -> Self {
        OperatorSpec {
            window,
            logic,
            grace,
        }
    }

    /// A pass-through operator (receiver, forwarder, output).
    pub fn identity() -> Self {
        OperatorSpec::new(WindowSpec::PassThrough, LogicSpec::Identity)
    }

    /// Instantiates the executable operator.
    pub fn build(&self) -> WindowedOperator {
        WindowedOperator::new(
            self.window,
            self.logic.build(),
            self.logic.ports(),
            self.grace,
        )
    }

    /// Number of input ports.
    pub fn ports(&self) -> usize {
        self.logic.ports()
    }
}

/// An instantiated, stateful operator.
pub struct WindowedOperator {
    buffer: WindowBuffer,
    logic: Box<dyn PaneLogic>,
    processed_tuples: u64,
}

impl WindowedOperator {
    /// Wires a window to logic over `ports` input ports.
    pub fn new(
        window: WindowSpec,
        logic: Box<dyn PaneLogic>,
        ports: usize,
        grace: TimeDelta,
    ) -> Self {
        WindowedOperator {
            buffer: WindowBuffer::new(window, ports, grace),
            logic,
            processed_tuples: 0,
        }
    }

    /// Logic name, for diagnostics.
    pub fn name(&self) -> &'static str {
        self.logic.name()
    }

    /// Attaches a [`BatchPool`]: spent input batches (after their rows
    /// slice into panes) and processed pane batches (after the logic
    /// runs) recycle into it instead of round-tripping the allocator.
    pub fn set_pool(&mut self, pool: BatchPool) {
        self.buffer.set_pool(pool);
    }

    /// Feeds a batch into `port` without draining. Callers delivering to
    /// multi-port operators must feed *all* ports before calling
    /// [`WindowedOperator::tick`], otherwise a due pane could close with
    /// only part of its input (e.g. a join seeing one side only).
    pub fn feed(&mut self, port: usize, batch: impl Into<TupleBatch>, now: Timestamp) {
        self.buffer.push(port, batch, now);
    }

    /// Feeds a batch into `port` and drains immediately; returns emissions
    /// that become ready (pass-through and filled count windows). Only safe
    /// for single-port operators or when ports are fed in lock-step.
    pub fn push(
        &mut self,
        port: usize,
        batch: impl Into<TupleBatch>,
        now: Timestamp,
    ) -> Vec<Emission> {
        self.buffer.push(port, batch, now);
        self.drain(now)
    }

    /// Advances logical time, closing due panes.
    pub fn tick(&mut self, now: Timestamp) -> Vec<Emission> {
        self.drain(now)
    }

    /// Tuples processed by the logic so far (cost-model accounting).
    pub fn processed_tuples(&self) -> u64 {
        self.processed_tuples
    }

    /// Tuples currently buffered in open windows.
    pub fn buffered_tuples(&self) -> usize {
        self.buffer.buffered()
    }

    /// Exports the window buffer's panes for checkpointing
    /// ([`WindowBuffer::export_state`]).
    pub fn export_window(&self) -> Vec<(PaneKey, usize, TupleBatch)> {
        self.buffer.export_state()
    }

    /// Restores one checkpointed pane into the window buffer
    /// ([`WindowBuffer::import_state`]).
    pub fn import_window(&mut self, key: PaneKey, port: usize, batch: TupleBatch) {
        self.buffer.import_state(key, port, batch);
    }

    fn drain(&mut self, now: Timestamp) -> Vec<Emission> {
        let panes = self.buffer.close_up_to(now);
        let mut out = Vec::with_capacity(panes.len());
        for mut pane in panes {
            let input_sic = pane.input_sic();
            self.processed_tuples += pane.input_len() as u64;
            let emission = {
                let groups: Vec<&TupleBatch> = pane.inputs.iter().collect();
                self.process_pane(&groups, pane.at, input_sic)
            };
            // The pane's columns are spent; with a pool attached they go
            // back for the next emission/pane of the same schema.
            if let Some(pool) = self.buffer.pool() {
                for b in pane.inputs.drain(..) {
                    pool.recycle(b);
                }
            }
            out.extend(emission);
        }
        out
    }

    /// Runs the logic over one closed pane's atomic groups; `None` when
    /// the pane yields no derived tuples (its mass is lost — the paper's
    /// model).
    fn process_pane(
        &mut self,
        groups: &[&TupleBatch],
        at: Timestamp,
        input_sic: Sic,
    ) -> Option<Emission> {
        // Columnar fast path: row-preserving logic (identity, typed
        // filters) and kernel-backed aggregates (group-by) emit a
        // whole batch — typed input columns copy to typed output
        // columns, and only the Eq.-3 SIC restamping touches each
        // row. Aggregates stamp the pane timestamp themselves.
        if let Some(mut batch) = self.logic.apply_columnar(groups, at) {
            if batch.is_empty() {
                return None;
            }
            let share = Sic::derived_tuple(input_sic, batch.len());
            batch.set_uniform_sic(share);
            return Some(Emission::new(at, batch));
        }
        let rows = self.logic.apply(groups);
        if rows.is_empty() {
            return None;
        }
        let share = Sic::derived_tuple(input_sic, rows.len());
        let width = rows.first().map(|(_, r)| r.len()).unwrap_or(0);
        let mut batch = TupleBatch::with_capacity(width, rows.len());
        for (ts, values) in rows {
            batch.push_row(ts.unwrap_or(at), share, &values);
        }
        Some(Emission::new(at, batch))
    }
}

impl std::fmt::Debug for WindowedOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedOperator")
            .field("logic", &self.logic.name())
            .field("window", &self.buffer.spec())
            .field("buffered", &self.buffer.buffered())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{CmpOp, Predicate};

    fn t(ms: u64, sic: f64, v: f64) -> Tuple {
        Tuple::measurement(Timestamp::from_millis(ms), Sic(sic), v)
    }

    fn spec_no_grace(window: WindowSpec, logic: LogicSpec) -> OperatorSpec {
        OperatorSpec::with_grace(window, logic, TimeDelta::ZERO)
    }

    #[test]
    fn avg_operator_propagates_sic() {
        let spec = spec_no_grace(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Avg { field: 0 },
        );
        let mut op = spec.build();
        assert!(op
            .push(
                0,
                vec![t(100, 0.25, 10.0), t(600, 0.25, 30.0)],
                Timestamp::from_millis(600),
            )
            .is_empty());
        let out = op.tick(Timestamp::from_secs(1));
        assert_eq!(out.len(), 1);
        let e = &out[0];
        assert_eq!(e.len(), 1);
        let row = e.tuples().remove(0);
        assert_eq!(row.f64(0), 20.0);
        // Eq. 3: 0.5 total input SIC over 1 output.
        assert!((row.sic.value() - 0.5).abs() < 1e-12);
        // Aggregate output is stamped 1 us before the window end.
        assert_eq!(row.ts, Timestamp(999_999));
        assert_eq!(op.processed_tuples(), 2);
    }

    #[test]
    fn grace_defers_emission() {
        let spec = OperatorSpec::new(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Avg { field: 0 },
        );
        assert_eq!(spec.grace, DEFAULT_GRACE);
        let mut op = spec.build();
        op.push(0, vec![t(100, 0.1, 1.0)], Timestamp::from_millis(100));
        assert!(op.tick(Timestamp::from_secs(1)).is_empty());
        assert_eq!(op.tick(Timestamp::from_millis(1500)).len(), 1);
    }

    #[test]
    fn filter_redistributes_mass_over_survivors() {
        let spec = spec_no_grace(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Filter(Predicate::new(0, CmpOp::Ge, 50.0)),
        );
        let mut op = spec.build();
        op.push(
            0,
            vec![t(0, 0.1, 10.0), t(1, 0.1, 60.0), t(2, 0.1, 70.0)],
            Timestamp::from_millis(2),
        );
        let out = op.tick(Timestamp::from_secs(1));
        let e = &out[0];
        assert_eq!(e.len(), 2);
        // 0.3 input mass over 2 survivors: 0.15 each.
        for tu in e.iter() {
            assert!((tu.sic.value() - 0.15).abs() < 1e-12);
        }
        assert!((e.sic().value() - 0.3).abs() < 1e-12);
        // Row-preserving: original timestamps kept.
        assert_eq!(e.batch().row(0).ts, Timestamp::from_millis(1));
    }

    #[test]
    fn empty_output_loses_mass() {
        let spec = spec_no_grace(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Filter(Predicate::new(0, CmpOp::Ge, 1000.0)),
        );
        let mut op = spec.build();
        op.push(0, vec![t(0, 0.1, 10.0)], Timestamp(0));
        let out = op.tick(Timestamp::from_secs(2));
        assert!(out.is_empty(), "no emission when all rows filtered");
    }

    #[test]
    fn passthrough_emits_on_push() {
        let mut op = OperatorSpec::identity().build();
        let out = op.push(0, vec![t(5, 0.2, 1.0)], Timestamp::from_millis(9));
        assert_eq!(out.len(), 1);
        let row = out[0].batch().row(0);
        assert_eq!(row.sic, Sic(0.2));
        assert_eq!(row.f64(0), 1.0);
        // Identity keeps the tuple's own timestamp.
        assert_eq!(row.ts, Timestamp::from_millis(5));
    }

    #[test]
    fn pooled_operator_recycles_input_and_pane_batches() {
        let spec = spec_no_grace(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Avg { field: 0 },
        );
        let mut op = spec.build();
        let pool = BatchPool::new();
        op.set_pool(pool.clone());
        let schema = Schema::new([("v", FieldType::F64)]);
        let mut batch = TupleBatch::with_schema_capacity(schema, 2);
        batch.push_row(Timestamp::from_millis(100), Sic(0.25), &[Value::F64(10.0)]);
        batch.push_row(Timestamp::from_millis(600), Sic(0.25), &[Value::F64(30.0)]);
        op.push(0, batch, Timestamp::from_millis(600));
        // The spent input batch pooled at push time.
        assert_eq!(pool.idle(), 1);
        let out = op.tick(Timestamp::from_secs(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuples()[0].f64(0), 20.0);
        // The processed pane's typed column batch joined it at drain.
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().recycled, 2);
    }

    #[test]
    fn two_port_join_spreads_combined_mass() {
        let spec = spec_no_grace(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Join {
                left_key: 0,
                right_key: 0,
            },
        );
        let mut op = spec.build();
        let row = |id: i64, v: f64, sic: f64| {
            Tuple::new(
                Timestamp::from_millis(10),
                Sic(sic),
                vec![Value::I64(id), Value::F64(v)],
            )
        };
        op.push(
            0,
            vec![row(1, 0.9, 0.2), row(2, 0.5, 0.2)],
            Timestamp::from_millis(10),
        );
        op.push(1, vec![row(1, 128.0, 0.3)], Timestamp::from_millis(10));
        let out = op.tick(Timestamp::from_secs(1));
        assert_eq!(out.len(), 1);
        let e = &out[0];
        assert_eq!(e.len(), 1, "only id 1 matches");
        // Combined input mass 0.7 over one output row.
        assert!((e.batch().row(0).sic.value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn figure2_three_operator_query() {
        // Reproduces Figure 2 (no shedding): operators b and c feed a.
        // b: 4 source tuples (SIC 0.125) -> 2 derived (0.25 each).
        // c: 2 source tuples (SIC 0.25)  -> 2 derived (0.25 each).
        // a: 4 derived -> results carrying total qSIC = 1.
        let win = WindowSpec::tumbling(TimeDelta::from_secs(1));
        let mut b = WindowedOperator::new(
            WindowSpec::Count { count: 2 },
            LogicSpec::Avg { field: 0 }.build(),
            1,
            TimeDelta::ZERO,
        );
        let mut c = WindowedOperator::new(
            WindowSpec::Count { count: 1 },
            LogicSpec::Identity.build(),
            1,
            TimeDelta::ZERO,
        );
        let mut a =
            WindowedOperator::new(win, LogicSpec::Avg { field: 0 }.build(), 1, TimeDelta::ZERO);

        let now = Timestamp::from_millis(10);
        let b_in: Vec<Tuple> = (0..4).map(|i| t(10, 0.125, i as f64)).collect();
        let c_in: Vec<Tuple> = (0..2).map(|i| t(10, 0.25, i as f64)).collect();
        let mut b_out = TupleBatch::new();
        for e in b.push(0, b_in, now) {
            b_out.append_batch(e.batch());
        }
        let mut c_out = TupleBatch::new();
        for e in c.push(0, c_in, now) {
            c_out.append_batch(e.batch());
        }
        assert_eq!(b_out.len(), 2);
        assert!(b_out.iter().all(|t| (t.sic.value() - 0.25).abs() < 1e-12));
        assert_eq!(c_out.len(), 2);

        a.push(0, b_out, now);
        a.push(0, c_out, now);
        let results = a.tick(Timestamp::from_secs(1));
        let total: f64 = results.iter().map(|e| e.sic().value()).sum();
        assert!((total - 1.0).abs() < 1e-12, "qSIC = {total}");
    }
}
