//! Property-based tests: Eq.-3 SIC propagation invariants over arbitrary
//! tuple streams and operator configurations.

use proptest::prelude::*;

use themis_core::prelude::*;
use themis_operators::prelude::*;

/// Strategy: a batch of tuples within one 1-second window, each with a
/// small positive SIC and a keyed payload.
fn arb_window_tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec((0u64..999, 1e-6f64..0.01, 0i64..8, -100.0f64..100.0), 1..60).prop_map(
        |rows| {
            rows.into_iter()
                .map(|(ms, sic, key, v)| {
                    Tuple::new(
                        Timestamp::from_millis(ms),
                        Sic(sic),
                        vec![Value::I64(key), Value::F64(v)],
                    )
                })
                .collect()
        },
    )
}

fn total_sic(tuples: &[Tuple]) -> f64 {
    tuples.iter().map(|t| t.sic.value()).sum()
}

fn run_op(logic: LogicSpec, tuples: Vec<Tuple>) -> Vec<Emission> {
    let mut op = OperatorSpec::with_grace(
        WindowSpec::tumbling(TimeDelta::from_secs(1)),
        logic,
        TimeDelta::ZERO,
    )
    .build();
    op.feed(0, tuples, Timestamp::from_millis(999));
    op.tick(Timestamp::from_secs(1))
}

proptest! {
    /// Aggregates that always emit at least one row conserve the pane's
    /// full SIC mass (Eq. 3).
    #[test]
    fn aggregates_conserve_mass(tuples in arb_window_tuples()) {
        let input = total_sic(&tuples);
        for logic in [
            LogicSpec::Avg { field: 1 },
            LogicSpec::Sum { field: 1 },
            LogicSpec::Count { predicate: None },
            LogicSpec::Max { field: 1 },
            LogicSpec::Min { field: 1 },
            LogicSpec::TopK { k: 5, id_field: 0, value_field: 1 },
            LogicSpec::GroupAvg { key_field: 0, value_field: 1 },
            LogicSpec::GroupMax { key_field: 0, value_field: 1 },
            LogicSpec::Identity,
        ] {
            let out = run_op(logic.clone(), tuples.clone());
            let output: f64 = out.iter().map(|e| e.sic().value()).sum();
            prop_assert!(
                (output - input).abs() < 1e-9 * input.max(1.0),
                "{logic:?}: {input} in, {output} out"
            );
        }
    }

    /// A filter either conserves the pane's mass (when at least one row
    /// survives) or loses it entirely (when none do) — never anything in
    /// between.
    #[test]
    fn filter_mass_is_all_or_surviving(tuples in arb_window_tuples(), threshold in -100.0f64..100.0) {
        let input = total_sic(&tuples);
        let survivors = tuples
            .iter()
            .filter(|t| t.f64(1) >= threshold)
            .count();
        let out = run_op(
            LogicSpec::Filter(Predicate::new(1, CmpOp::Ge, threshold)),
            tuples.clone(),
        );
        let output: f64 = out.iter().map(|e| e.sic().value()).sum();
        if survivors == 0 {
            prop_assert_eq!(output, 0.0);
        } else {
            prop_assert!((output - input).abs() < 1e-9 * input.max(1.0));
            let rows: usize = out.iter().map(Emission::len).sum();
            prop_assert_eq!(rows, survivors);
        }
    }

    /// Sliding windows split each tuple's SIC across its panes without
    /// creating or destroying mass.
    #[test]
    fn sliding_window_conserves_mass(
        tuples in arb_window_tuples(),
        slide_ms in prop::sample::select(vec![250u64, 500]),
    ) {
        let input = total_sic(&tuples);
        let mut buf = WindowBuffer::new(
            WindowSpec::sliding(TimeDelta::from_secs(1), TimeDelta::from_millis(slide_ms)),
            1,
            TimeDelta::ZERO,
        );
        buf.push(0, tuples, Timestamp::from_millis(999));
        // Close everything well past the last pane.
        let panes = buf.close_up_to(Timestamp::from_secs(10));
        let output: f64 = panes.iter().map(|p| p.input_sic().value()).sum();
        prop_assert!(
            (output - input).abs() < 1e-9 * input.max(1.0),
            "{input} in vs {output} out across {} panes",
            panes.len()
        );
    }

    /// A join's output mass never exceeds its combined input mass, and
    /// equals it when every row finds a match.
    #[test]
    fn join_mass_bounded_by_inputs(
        left in arb_window_tuples(),
        right in arb_window_tuples(),
    ) {
        let input = total_sic(&left) + total_sic(&right);
        let mut op = OperatorSpec::with_grace(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Join { left_key: 0, right_key: 0 },
            TimeDelta::ZERO,
        )
        .build();
        op.feed(0, left.clone(), Timestamp::from_millis(999));
        op.feed(1, right.clone(), Timestamp::from_millis(999));
        let out = op.tick(Timestamp::from_secs(1));
        let output: f64 = out.iter().map(|e| e.sic().value()).sum();
        prop_assert!(output <= input + 1e-9, "join created mass: {output} > {input}");
        // With keys 0..8 on both sides of non-trivial panes, a match is
        // almost certain — if one exists, full mass must be carried.
        if !out.is_empty() {
            prop_assert!((output - input).abs() < 1e-9 * input.max(1.0));
        }
    }

    /// Count windows emit fixed-size panes and conserve mass for the
    /// tuples they release.
    #[test]
    fn count_window_pane_sizes(tuples in arb_window_tuples(), count in 1usize..10) {
        let n = tuples.len();
        let mut buf = WindowBuffer::new(WindowSpec::Count { count }, 1, TimeDelta::ZERO);
        buf.push(0, tuples, Timestamp::from_millis(999));
        let panes = buf.close_up_to(Timestamp::from_secs(1));
        prop_assert_eq!(panes.len(), n / count);
        for p in &panes {
            prop_assert_eq!(p.input_len(), count);
        }
        prop_assert_eq!(buf.buffered(), n % count);
    }

    /// Operator output timestamps never exceed the pane stamp, so derived
    /// tuples always fall into the window that produced them (no cascaded
    /// window latency).
    #[test]
    fn aggregate_outputs_stamped_within_window(tuples in arb_window_tuples()) {
        let out = run_op(LogicSpec::Avg { field: 1 }, tuples);
        for e in &out {
            for t in e.iter() {
                prop_assert!(t.ts.as_micros() < 1_000_000, "stamp {} >= window end", t.ts);
            }
        }
    }
}
