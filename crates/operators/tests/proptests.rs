//! Property-based tests: Eq.-3 SIC propagation invariants over arbitrary
//! tuple streams and operator configurations, plus typed-kernel /
//! scalar-fold parity over random schemas, drop patterns and all six
//! shedding policies.

use proptest::prelude::*;

use themis_core::prelude::*;
use themis_operators::kernels;
use themis_operators::logic::{FilterLogic, GroupAggregateLogic};
use themis_operators::prelude::*;

/// Strategy: a batch of tuples within one 1-second window, each with a
/// small positive SIC and a keyed payload.
fn arb_window_tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec((0u64..999, 1e-6f64..0.01, 0i64..8, -100.0f64..100.0), 1..60).prop_map(
        |rows| {
            rows.into_iter()
                .map(|(ms, sic, key, v)| {
                    Tuple::new(
                        Timestamp::from_millis(ms),
                        Sic(sic),
                        vec![Value::I64(key), Value::F64(v)],
                    )
                })
                .collect()
        },
    )
}

fn total_sic(tuples: &[Tuple]) -> f64 {
    tuples.iter().map(|t| t.sic.value()).sum()
}

fn run_op(logic: LogicSpec, tuples: Vec<Tuple>) -> Vec<Emission> {
    let mut op = OperatorSpec::with_grace(
        WindowSpec::tumbling(TimeDelta::from_secs(1)),
        logic,
        TimeDelta::ZERO,
    )
    .build();
    op.feed(0, tuples, Timestamp::from_millis(999));
    op.tick(Timestamp::from_secs(1))
}

proptest! {
    /// Aggregates that always emit at least one row conserve the pane's
    /// full SIC mass (Eq. 3).
    #[test]
    fn aggregates_conserve_mass(tuples in arb_window_tuples()) {
        let input = total_sic(&tuples);
        for logic in [
            LogicSpec::Avg { field: 1 },
            LogicSpec::Sum { field: 1 },
            LogicSpec::Count { predicate: None },
            LogicSpec::Max { field: 1 },
            LogicSpec::Min { field: 1 },
            LogicSpec::TopK { k: 5, id_field: 0, value_field: 1 },
            LogicSpec::GroupAvg { key_field: 0, value_field: 1 },
            LogicSpec::GroupMax { key_field: 0, value_field: 1 },
            LogicSpec::Identity,
        ] {
            let out = run_op(logic.clone(), tuples.clone());
            let output: f64 = out.iter().map(|e| e.sic().value()).sum();
            prop_assert!(
                (output - input).abs() < 1e-9 * input.max(1.0),
                "{logic:?}: {input} in, {output} out"
            );
        }
    }

    /// A filter either conserves the pane's mass (when at least one row
    /// survives) or loses it entirely (when none do) — never anything in
    /// between.
    #[test]
    fn filter_mass_is_all_or_surviving(tuples in arb_window_tuples(), threshold in -100.0f64..100.0) {
        let input = total_sic(&tuples);
        let survivors = tuples
            .iter()
            .filter(|t| t.f64(1) >= threshold)
            .count();
        let out = run_op(
            LogicSpec::Filter(Predicate::new(1, CmpOp::Ge, threshold)),
            tuples.clone(),
        );
        let output: f64 = out.iter().map(|e| e.sic().value()).sum();
        if survivors == 0 {
            prop_assert_eq!(output, 0.0);
        } else {
            prop_assert!((output - input).abs() < 1e-9 * input.max(1.0));
            let rows: usize = out.iter().map(Emission::len).sum();
            prop_assert_eq!(rows, survivors);
        }
    }

    /// Sliding windows split each tuple's SIC across its panes without
    /// creating or destroying mass.
    #[test]
    fn sliding_window_conserves_mass(
        tuples in arb_window_tuples(),
        slide_ms in prop::sample::select(vec![250u64, 500]),
    ) {
        let input = total_sic(&tuples);
        let mut buf = WindowBuffer::new(
            WindowSpec::sliding(TimeDelta::from_secs(1), TimeDelta::from_millis(slide_ms)),
            1,
            TimeDelta::ZERO,
        );
        buf.push(0, tuples, Timestamp::from_millis(999));
        // Close everything well past the last pane.
        let panes = buf.close_up_to(Timestamp::from_secs(10));
        let output: f64 = panes.iter().map(|p| p.input_sic().value()).sum();
        prop_assert!(
            (output - input).abs() < 1e-9 * input.max(1.0),
            "{input} in vs {output} out across {} panes",
            panes.len()
        );
    }

    /// A join's output mass never exceeds its combined input mass, and
    /// equals it when every row finds a match.
    #[test]
    fn join_mass_bounded_by_inputs(
        left in arb_window_tuples(),
        right in arb_window_tuples(),
    ) {
        let input = total_sic(&left) + total_sic(&right);
        let mut op = OperatorSpec::with_grace(
            WindowSpec::tumbling(TimeDelta::from_secs(1)),
            LogicSpec::Join { left_key: 0, right_key: 0 },
            TimeDelta::ZERO,
        )
        .build();
        op.feed(0, left.clone(), Timestamp::from_millis(999));
        op.feed(1, right.clone(), Timestamp::from_millis(999));
        let out = op.tick(Timestamp::from_secs(1));
        let output: f64 = out.iter().map(|e| e.sic().value()).sum();
        prop_assert!(output <= input + 1e-9, "join created mass: {output} > {input}");
        // With keys 0..8 on both sides of non-trivial panes, a match is
        // almost certain — if one exists, full mass must be carried.
        if !out.is_empty() {
            prop_assert!((output - input).abs() < 1e-9 * input.max(1.0));
        }
    }

    /// Count windows emit fixed-size panes and conserve mass for the
    /// tuples they release.
    #[test]
    fn count_window_pane_sizes(tuples in arb_window_tuples(), count in 1usize..10) {
        let n = tuples.len();
        let mut buf = WindowBuffer::new(WindowSpec::Count { count }, 1, TimeDelta::ZERO);
        buf.push(0, tuples, Timestamp::from_millis(999));
        let panes = buf.close_up_to(Timestamp::from_secs(1));
        prop_assert_eq!(panes.len(), n / count);
        for p in &panes {
            prop_assert_eq!(p.input_len(), count);
        }
        prop_assert_eq!(buf.buffered(), n % count);
    }

    /// Operator output timestamps never exceed the pane stamp, so derived
    /// tuples always fall into the window that produced them (no cascaded
    /// window latency).
    #[test]
    fn aggregate_outputs_stamped_within_window(tuples in arb_window_tuples()) {
        let out = run_op(LogicSpec::Avg { field: 1 }, tuples);
        for e in &out {
            for t in e.iter() {
                prop_assert!(t.ts.as_micros() < 1_000_000, "stamp {} >= window end", t.ts);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Typed-kernel parity: for random schemas and batches, every typed
// kernel result matches the scalar `Value`-path fold — bit-for-bit for
// order-independent kernels (min/max/count/filter/top-k/group-by), and
// within a tiny reassociation bound for the lane-split float sums
// (sum/avg/cov) — across drop patterns produced by all six shedding
// policies plus direct row-level drops.
// ---------------------------------------------------------------------

/// The row shape of the parity cases: `[id: i64, v: f64, flag: bool]`.
fn parity_schema() -> Schema {
    Schema::new([
        ("id", FieldType::I64),
        ("v", FieldType::F64),
        ("flag", FieldType::Bool),
    ])
}

type ParityRow = (u64, i64, f64, bool);

fn arb_parity_rows() -> impl Strategy<Value = Vec<ParityRow>> {
    prop::collection::vec((0u64..999, 0i64..8, -100.0f64..100.0, 0u8..2), 1..150).prop_map(|rows| {
        rows.into_iter()
            .map(|(ms, id, v, flag)| (ms, id, v, flag == 1))
            .collect()
    })
}

/// Builds the same logical rows as an arena batch and a typed batch.
fn parity_batches(rows: &[ParityRow]) -> (TupleBatch, TupleBatch) {
    let mut arena = TupleBatch::with_capacity(3, rows.len());
    let mut typed = TupleBatch::with_schema_capacity(parity_schema(), rows.len());
    for &(ms, id, v, flag) in rows {
        let row = [Value::I64(id), Value::F64(v), Value::Bool(flag)];
        let ts = Timestamp::from_millis(ms);
        arena.push_row(ts, Sic(0.001), &row);
        typed.push_row(ts, Sic(0.001), &row);
    }
    (arena, typed)
}

/// Runs each policy over the rows chunked into shed-candidate batches and
/// returns the row-level drop sets the decisions induce (plus a direct
/// row-level pattern so partially-shed 64-row words are exercised too).
fn policy_drop_patterns(n_rows: usize, chunk: usize, cap: usize) -> Vec<Vec<usize>> {
    let chunk = chunk.max(1);
    let mut patterns = Vec::new();
    // Candidate snapshot: every `chunk` rows form one batch of one of two
    // queries, each batch worth its row count in tuples and uniform SIC.
    let starts: Vec<usize> = (0..n_rows).step_by(chunk).collect();
    let mut states: Vec<QueryBufferState> = (0..2)
        .map(|q| QueryBufferState {
            query: QueryId(q),
            base_sic: Sic::ZERO,
            batches: Vec::new(),
        })
        .collect();
    for (bi, &start) in starts.iter().enumerate() {
        let len = chunk.min(n_rows - start);
        states[bi % 2].batches.push(CandidateBatch {
            buffer_index: bi,
            sic: Sic(0.001 * len as f64),
            tuples: len,
            created: Timestamp(bi as u64),
        });
    }
    for policy in PolicyKind::ALL {
        let decision = policy.build(42).select_to_keep(cap, &states);
        let shed = decision.shed_bitmap(starts.len());
        let mut dropped = Vec::new();
        for (bi, &start) in starts.iter().enumerate() {
            if shed.is_dropped(bi) {
                let len = chunk.min(n_rows - start);
                dropped.extend(start..start + len);
            }
        }
        patterns.push(dropped);
    }
    // Direct row-level drops: every 3rd row, leaving partial words live.
    patterns.push((0..n_rows).step_by(3).collect());
    patterns
}

/// `a` and `b` agree up to float reassociation of the lane-split sums.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-8 + 1e-9 * a.abs().max(b.abs())
}

fn single_f64(out: &[(Option<Timestamp>, Row)]) -> Option<f64> {
    out.first().map(|(_, r)| r[0].as_f64())
}

proptest! {
    /// Every typed kernel agrees with the scalar `Value`-path fold on the
    /// same rows under the same drops, for all six shedding policies.
    #[test]
    fn typed_kernels_match_scalar_value_path(
        rows in arb_parity_rows(),
        chunk in 1usize..12,
        cap_pct in 10usize..100,
    ) {
        let (arena_base, typed_base) = parity_batches(&rows);
        let cap = (rows.len() * cap_pct / 100).max(1);
        for dropped in policy_drop_patterns(rows.len(), chunk, cap) {
            let (mut arena, mut typed) = (arena_base.clone(), typed_base.clone());
            for &i in &dropped {
                arena.drop_row(i);
                typed.drop_row(i);
            }
            prop_assert_eq!(arena.len(), typed.len());

            // Scalar references, folded sequentially through the arena.
            let scalar_sum: f64 = arena.column_f64(1).sum();
            let scalar_n = arena.len() as u64;
            let scalar_max = arena
                .column_f64(1)
                .fold(None, |a: Option<f64>, v| Some(a.map_or(v, |a| a.max(v))));
            let scalar_min = arena
                .column_f64(1)
                .fold(None, |a: Option<f64>, v| Some(a.map_or(v, |a| a.min(v))));

            // Kernels on the typed columns.
            let col = typed.f64_column(1).expect("typed v column");
            let (k_sum, k_n) = kernels::sum_count_f64(col, typed.drops());
            prop_assert_eq!(k_n, scalar_n, "live count");
            prop_assert!(close(k_sum, scalar_sum), "sum {k_sum} vs {scalar_sum}");
            prop_assert_eq!(kernels::max_f64(col, typed.drops()), scalar_max, "max");
            prop_assert_eq!(kernels::min_f64(col, typed.drops()), scalar_min, "min");

            // Aggregate logic: typed pane (kernel path) vs arena pane
            // (scalar fallback path).
            for field_logic in [
                LogicSpec::Avg { field: 1 },
                LogicSpec::Sum { field: 1 },
            ] {
                let a = single_f64(&field_logic.build().apply(&[&arena]));
                let t = single_f64(&field_logic.build().apply(&[&typed]));
                match (a, t) {
                    (Some(a), Some(t)) => prop_assert!(close(a, t), "{field_logic:?}: {a} vs {t}"),
                    (a, t) => prop_assert_eq!(a, t, "{:?}", field_logic),
                }
            }
            for field_logic in [
                LogicSpec::Max { field: 1 },
                LogicSpec::Min { field: 1 },
            ] {
                // Order-independent: bit-for-bit.
                let a = single_f64(&field_logic.build().apply(&[&arena]));
                let t = single_f64(&field_logic.build().apply(&[&typed]));
                prop_assert_eq!(a, t, "{:?}", field_logic);
            }

            // COUNT with HAVING: mask kernel vs row-walk, bit-for-bit.
            let pred = Predicate::new(1, CmpOp::Ge, 0.0);
            let count = LogicSpec::Count { predicate: Some(pred) };
            prop_assert_eq!(
                count.build().apply(&[&arena]),
                count.build().apply(&[&typed]),
                "count(having)"
            );

            // FILTER: the columnar gather (mask kernel) vs the row path.
            let mut filter = FilterLogic::new(pred);
            let row_out = filter.apply(&[&arena]);
            let col_out = FilterLogic::new(pred)
                .apply_columnar(&[&typed], Timestamp(0))
                .expect("typed filter path");
            prop_assert_eq!(col_out.len(), row_out.len(), "filter survivors");
            for (i, (ts, row)) in row_out.iter().enumerate() {
                let got = col_out.row(i);
                prop_assert_eq!(Some(got.ts), *ts);
                prop_assert_eq!(&got.values.to_vec(), row, "filter row {i}");
            }

            // TOP-K and group-bys: typed column folds vs row views,
            // bit-for-bit (same fold order on both layouts).
            for keyed in [
                LogicSpec::TopK { k: 3, id_field: 0, value_field: 1 },
                LogicSpec::GroupMax { key_field: 0, value_field: 1 },
                LogicSpec::GroupAvg { key_field: 0, value_field: 1 },
            ] {
                prop_assert_eq!(
                    keyed.build().apply(&[&arena]),
                    keyed.build().apply(&[&typed]),
                    "{:?}",
                    keyed
                );
            }

            // COV across two ports: the kernel's one-pass sums vs a
            // sequential scalar fold over the arena's live values.
            let half = arena_base.rows() / 2;
            if half >= 2 {
                let xs: Vec<f64> = arena.column_f64(1).take(half).collect();
                let ys: Vec<f64> = arena.column_f64(2).take(half).collect();
                let n = xs.len().min(ys.len());
                if n >= 2 {
                    let (mut sx, mut sy, mut sxy) = (0.0, 0.0, 0.0);
                    for i in 0..n {
                        sx += xs[i];
                        sy += ys[i];
                        sxy += xs[i] * ys[i];
                    }
                    let scalar_cov = (sxy - sx * sy / n as f64) / (n as f64 - 1.0);
                    let k = kernels::cov_sums(&xs, &ys).sample_cov().unwrap();
                    prop_assert!(close(k, scalar_cov), "cov {k} vs {scalar_cov}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Group-by kernel parity: `group_sum_count_f64` against a scalar
// per-key reference, over random schemas (tag field position varies),
// key cardinalities, and the same six-policy drop patterns.
// ---------------------------------------------------------------------

type GroupRow = (u64, usize, f64);

fn arb_group_rows() -> impl Strategy<Value = (Vec<GroupRow>, usize, bool)> {
    (
        prop::collection::vec((0u64..999, 0usize..1000, -100.0f64..100.0), 1..150),
        1usize..40,
        0u8..2,
    )
        .prop_map(|(rows, card, lead)| (rows, card, lead == 1))
}

/// Builds the same logical tagged rows as an arena batch and a typed
/// batch. `lead` prepends an extra i64 field, so the tag/value fields sit
/// at different indices across runs (the "random schemas" axis).
fn group_parity_batches(
    rows: &[GroupRow],
    card: usize,
    lead: bool,
) -> (TupleBatch, TupleBatch, usize, usize) {
    let (key_field, value_field) = if lead { (1, 2) } else { (0, 1) };
    let fields: Vec<(&str, FieldType)> = if lead {
        vec![
            ("id", FieldType::I64),
            ("tag", FieldType::Tag),
            ("v", FieldType::F64),
        ]
    } else {
        vec![("tag", FieldType::Tag), ("v", FieldType::F64)]
    };
    let schema = Schema::new(fields);
    let dict = schema.interner().expect("tag schema").clone();
    let codes: Vec<u32> = (0..card)
        .map(|k| dict.intern(&format!("key-{k}")))
        .collect();
    let mut arena = TupleBatch::with_capacity(schema.len(), rows.len());
    let mut typed = TupleBatch::with_schema_capacity(schema, rows.len());
    for &(ms, key, v) in rows {
        let code = codes[key % card];
        let mut row = Vec::with_capacity(3);
        if lead {
            row.push(Value::I64(key as i64));
        }
        row.push(Value::Tag(code));
        row.push(Value::F64(v));
        let ts = Timestamp::from_millis(ms);
        arena.push_row(ts, Sic(0.001), &row);
        typed.push_row(ts, Sic(0.001), &row);
    }
    (arena, typed, key_field, value_field)
}

proptest! {
    /// The group-by kernel agrees with a scalar per-key fold on the same
    /// rows under the same drops, for all six shedding policies — and the
    /// `GroupAggregate` logic's columnar path matches its row path.
    #[test]
    fn group_kernel_matches_scalar_reference(
        input in arb_group_rows(),
        chunk in 1usize..12,
        cap_pct in 10usize..100,
    ) {
        let (rows, card, lead) = input;
        let (arena_base, typed_base, key_field, value_field) =
            group_parity_batches(&rows, card, lead);
        let cap = (rows.len() * cap_pct / 100).max(1);
        for dropped in policy_drop_patterns(rows.len(), chunk, cap) {
            let (mut arena, mut typed) = (arena_base.clone(), typed_base.clone());
            for &i in &dropped {
                arena.drop_row(i);
                typed.drop_row(i);
            }

            // Kernel on the raw code/value slices vs a sequential scalar
            // per-key fold over the live arena rows. Both add per key in
            // row order, so the float sums match bit-for-bit.
            let codes = typed.tag_column(key_field).expect("tag column").codes();
            let vals = typed.f64_column(value_field).expect("value column");
            let got = kernels::group_sum_count_f64(codes, vals, typed.drops());
            let mut want: std::collections::HashMap<u32, (f64, u64)> = Default::default();
            for t in arena.iter() {
                let code = t.get(key_field).map(|v| v.as_i64()).unwrap_or(0).max(0) as u32;
                let v = t.get(value_field).map(|v| v.as_f64()).unwrap_or(0.0);
                let e = want.entry(code).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            }
            prop_assert_eq!(got.len(), want.len(), "distinct keys");
            prop_assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "ascending codes");
            for &(c, s, n) in &got {
                let &(ws, wn) = want.get(&c).expect("key in reference");
                prop_assert_eq!(n, wn, "count for code {}", c);
                prop_assert_eq!(s, ws, "sum for code {}", c);
            }

            // Logic parity: arena row path vs typed row path vs typed
            // columnar (kernel) path.
            let mut logic = GroupAggregateLogic::new(key_field, value_field);
            let row_out = logic.apply(&[&arena]);
            prop_assert_eq!(&row_out, &logic.apply(&[&typed]), "row-path layouts");
            let col_out = logic
                .apply_columnar(&[&typed], Timestamp(0))
                .expect("typed group path");
            prop_assert_eq!(col_out.len(), row_out.len(), "group rows");
            for (i, (_, row)) in row_out.iter().enumerate() {
                prop_assert_eq!(&col_out.row(i).values.to_vec(), row, "group row {}", i);
            }
        }
    }
}
