//! The multi-threaded THEMIS prototype: a bounded pool of shard threads
//! hosting all FSPS nodes, a source pump, and a coordinator loop
//! disseminating result SIC values.
//!
//! Where the simulator models time, the engine *is* real: ticks fire on the
//! wall clock, the cost model measures actual processing time, and the
//! shedder's execution time is measured per invocation (the §7.6 overhead
//! numbers come from here and from the Criterion benches).
//!
//! [`run_engine`] spawns `shards + 1` OS threads regardless of node count
//! (the shard pool plus the source pump; the coordinator runs on the
//! calling thread), so 1000+-node scenarios fit one process. The `scale`
//! experiment budgets `shards + 3` for the whole process: pool + pump +
//! coordinator/main + its own thread-count sampler.

use std::collections::{BinaryHeap, HashMap};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};

use themis_core::prelude::*;
use themis_workloads::prelude::*;

use crate::messages::{EngineMsg, NodeReport, ResultEvent, RoutedBatch, ShardMsg};
use crate::node_state::NodeConfig;
use crate::shard::{run_shard, shard_of, ShardNode, ShardRouting};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Shedding policy — the workspace-wide registry
    /// ([`themis_core::shedder::PolicyKind`]) shared with the simulator,
    /// so every variant the simulator knows also runs on real threads.
    pub policy: PolicyKind,
    /// Artificial per-tuple processing cost, so modest source rates create
    /// genuine overload (`ZERO` disables; nodes are then extremely fast).
    pub synthetic_cost: TimeDelta,
    /// Size of the shard pool hosting the node states. `None` (the
    /// default) uses the machine's available parallelism; the pool is
    /// never larger than the scenario's node count.
    pub shards: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: PolicyKind::BalanceSic,
            synthetic_cost: TimeDelta::ZERO,
            shards: None,
        }
    }
}

/// The default shard-pool size: the machine's available parallelism.
pub fn default_shards() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Output of an engine run.
#[derive(Debug)]
pub struct EngineReport {
    /// Per-node counters.
    pub nodes: Vec<NodeReport>,
    /// Mean sampled result SIC per query.
    pub per_query_sic: Vec<(QueryId, f64)>,
    /// Fairness over the per-query SIC values.
    pub fairness: FairnessSummary,
    /// Result emissions observed per query.
    pub result_counts: HashMap<QueryId, usize>,
    /// Coordinator updates sent.
    pub coordinator_messages: u64,
    /// Shedding policy used.
    pub policy: &'static str,
    /// Shard threads the node states ran on.
    pub shards: usize,
}

impl EngineReport {
    /// Mean shedder execution time per invocation across nodes (µs).
    pub fn mean_shed_time_us(&self) -> f64 {
        let (ns, n): (u64, u64) = self.nodes.iter().fold((0, 0), |(a, b), r| {
            (a + r.shed_time_ns, b + r.shed_decisions)
        });
        if n == 0 {
            0.0
        } else {
            ns as f64 / n as f64 / 1_000.0
        }
    }

    /// Fraction of arrived tuples shed.
    pub fn shed_fraction(&self) -> f64 {
        let arrived: u64 = self.nodes.iter().map(|n| n.arrived_tuples).sum();
        let shed: u64 = self.nodes.iter().map(|n| n.shed_tuples).sum();
        if arrived == 0 {
            0.0
        } else {
            shed as f64 / arrived as f64
        }
    }
}

/// Entry in the source pump's schedule heap.
struct Due {
    at: Timestamp,
    driver: usize,
}
impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.driver == other.driver
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.driver).cmp(&(self.at, self.driver))
    }
}

/// Runs the scenario on a bounded shard pool for `warmup + duration` wall
/// time and reports per-query SIC fairness plus node counters.
pub fn run_engine(scenario: &Scenario, config: EngineConfig) -> EngineReport {
    let epoch = Instant::now();
    let interval = Duration::from_micros(scenario.shedding_interval.as_micros());
    let deadline = epoch + Duration::from_micros((scenario.warmup + scenario.duration).as_micros());
    let warmup_end = epoch + Duration::from_micros(scenario.warmup.as_micros());

    // Channels: one per shard; each node's sender is a clone of its
    // owning shard's channel, so senders stay addressable by node index.
    let n_shards = config
        .shards
        .unwrap_or_else(default_shards)
        .clamp(1, scenario.n_nodes.max(1));
    let mut shard_txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(n_shards);
    let mut shard_rxs = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let (tx, rx) = unbounded();
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }
    let node_txs: Vec<Sender<ShardMsg>> = (0..scenario.n_nodes)
        .map(|n| shard_txs[shard_of(n, n_shards)].clone())
        .collect();
    let (results_tx, results_rx) = unbounded::<ResultEvent>();

    // Routing tables.
    let mut downstream: HashMap<(QueryId, usize), (usize, usize)> = HashMap::new();
    let mut source_route: HashMap<SourceId, usize> = HashMap::new();
    let mut source_frag: HashMap<SourceId, (QueryId, usize)> = HashMap::new();
    let mut per_node_fragments: Vec<Vec<(QueryId, usize)>> = vec![Vec::new(); scenario.n_nodes];
    for q in &scenario.queries {
        for (fi, frag) in q.fragments.iter().enumerate() {
            let node = scenario
                .deployment
                .node_of(q.id, fi)
                .expect("validated deployment")
                .index();
            per_node_fragments[node].push((q.id, fi));
            for b in &frag.sources {
                source_route.insert(b.source, node);
                source_frag.insert(b.source, (q.id, fi));
            }
            if fi != q.result_fragment {
                if let Some(down) = q.downstream_of(fi) {
                    let dnode = scenario
                        .deployment
                        .node_of(q.id, down)
                        .expect("validated deployment")
                        .index();
                    downstream.insert((q.id, fi), (dnode, down));
                }
            }
        }
    }

    // Partition nodes onto shards (round-robin) and spawn the pool.
    let mut per_shard: Vec<Vec<ShardNode>> = (0..n_shards).map(|_| Vec::new()).collect();
    for n in 0..scenario.n_nodes {
        let shedder = config.policy.build(scenario.seed ^ (0xE0_0000 + n as u64));
        let initial_capacity = if config.synthetic_cost.is_zero() {
            usize::MAX / 2
        } else {
            ((scenario.shedding_interval.as_micros() / config.synthetic_cost.as_micros().max(1))
                as usize)
                .max(1)
        };
        per_shard[shard_of(n, n_shards)].push(ShardNode {
            node: n,
            config: NodeConfig {
                id: NodeId(n as u32),
                interval: scenario.shedding_interval,
                stw: scenario.stw,
                shedder,
                synthetic_cost: config.synthetic_cost,
                initial_capacity,
            },
            fragments: per_node_fragments[n].clone(),
        });
    }
    let mut handles = Vec::new();
    for (nodes, rx) in per_shard.into_iter().zip(shard_rxs) {
        let routing = ShardRouting {
            downstream: downstream.clone(),
            node_txs: node_txs.clone(),
            results_tx: results_tx.clone(),
        };
        let queries = scenario.queries.clone();
        handles.push(thread::spawn(move || {
            run_shard(nodes, queries, routing, rx, epoch)
        }));
    }
    drop(results_tx);

    // Source pump thread.
    let pump_txs = node_txs.clone();
    let pump_scenario = scenario.clone();
    let pump_routes = source_route.clone();
    let pump_frags = source_frag.clone();
    let pump_deadline = deadline;
    let pump = thread::spawn(move || {
        let mut drivers: Vec<SourceDriver> = Vec::new();
        for q in &pump_scenario.queries {
            for s in &q.sources {
                let profile = pump_scenario.profiles[&s.id];
                drivers.push(SourceDriver::new(
                    q.id,
                    s,
                    profile,
                    pump_scenario.seed ^ (s.id.0 as u64).wrapping_mul(0x9E37_79B9),
                ));
            }
        }
        let mut heap: BinaryHeap<Due> = drivers
            .iter()
            .enumerate()
            .map(|(i, d)| Due {
                at: d.next_time(),
                driver: i,
            })
            .collect();
        while let Some(due) = heap.pop() {
            let fire_at = epoch + Duration::from_micros(due.at.as_micros());
            if fire_at > pump_deadline {
                break;
            }
            if let Some(wait) = fire_at.checked_duration_since(Instant::now()) {
                thread::sleep(wait);
            }
            let d = &mut drivers[due.driver];
            let src = d.source;
            let query = d.query;
            let batch = d.emit();
            if let (Some(&node), Some(&(q, fi))) = (pump_routes.get(&src), pump_frags.get(&src)) {
                debug_assert_eq!(q, query);
                let _ = pump_txs[node].send(ShardMsg {
                    node,
                    msg: EngineMsg::Batch(RoutedBatch {
                        query,
                        fragment: fi,
                        ingress: themis_query::prelude::Ingress::Source(src),
                        batch,
                    }),
                });
            }
            heap.push(Due {
                at: d.next_time(),
                driver: due.driver,
            });
        }
    });

    // Coordinator loop on this thread.
    let mut tracker = ResultSicTracker::new(scenario.stw);
    let mut coordinators: Vec<QueryCoordinator> = scenario
        .queries
        .iter()
        .map(|q| {
            QueryCoordinator::new(
                q.id,
                scenario.deployment.hosts_of(q.id),
                scenario.shedding_interval,
            )
        })
        .collect();
    let mut samples: HashMap<QueryId, Vec<f64>> = scenario
        .queries
        .iter()
        .map(|q| (q.id, Vec::new()))
        .collect();
    let mut result_counts: HashMap<QueryId, usize> = HashMap::new();
    let mut coordinator_messages = 0u64;
    let mut next_tick = Instant::now() + interval;
    loop {
        let now_wall = Instant::now();
        if now_wall >= deadline {
            break;
        }
        // Drain pending results.
        while let Ok(ev) = results_rx.try_recv() {
            let now = Timestamp(epoch.elapsed().as_micros() as u64);
            tracker.record(now, ev.query, ev.sic);
            *result_counts.entry(ev.query).or_insert(0) += 1;
        }
        if now_wall >= next_tick {
            next_tick += interval;
            let now = Timestamp(epoch.elapsed().as_micros() as u64);
            for c in coordinators.iter_mut() {
                let sic = tracker.query_sic(now, c.query());
                c.on_result_sic(sic);
                for update in c.tick(now) {
                    coordinator_messages += 1;
                    let node = update.node.index();
                    let _ = node_txs[node].send(ShardMsg {
                        node,
                        msg: EngineMsg::Sic(update),
                    });
                }
            }
            if now_wall >= warmup_end {
                for (q, series) in samples.iter_mut() {
                    series.push(tracker.query_sic(now, *q).value());
                }
            }
        }
        thread::sleep(Duration::from_millis(5));
    }

    // Shutdown: one message per shard stops all of its nodes.
    for tx in &shard_txs {
        let _ = tx.send(ShardMsg {
            node: 0,
            msg: EngineMsg::Shutdown,
        });
    }
    let _ = pump.join();
    let mut nodes: Vec<NodeReport> = vec![NodeReport::default(); scenario.n_nodes];
    for h in handles {
        for (node, report) in h.join().expect("shard panicked") {
            nodes[node] = report;
        }
    }

    let mut per_query_sic: Vec<(QueryId, f64)> = samples
        .into_iter()
        .map(|(q, series)| {
            let mean = if series.is_empty() {
                0.0
            } else {
                series.iter().sum::<f64>() / series.len() as f64
            };
            (q, mean)
        })
        .collect();
    per_query_sic.sort_by_key(|&(q, _)| q);
    let sics: Vec<Sic> = per_query_sic.iter().map(|&(_, s)| Sic(s)).collect();
    EngineReport {
        nodes,
        fairness: FairnessSummary::from_sics(&sics),
        per_query_sic,
        result_counts,
        coordinator_messages,
        policy: config.policy.name(),
        shards: n_shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_query::prelude::Template;

    fn scenario(n_queries: usize, rate: u32, seed: u64) -> Scenario {
        ScenarioBuilder::new("engine-test", seed)
            .nodes(2)
            .capacity_tps(1_000_000)
            .duration(TimeDelta::from_millis(2500))
            .warmup(TimeDelta::from_millis(1500))
            .stw_window(TimeDelta::from_secs(2))
            .add_queries(
                Template::Avg,
                n_queries,
                SourceProfile {
                    tuples_per_sec: rate,
                    batches_per_sec: 5,
                    burst: Burstiness::Steady,
                    dataset: Dataset::Uniform,
                },
            )
            .build()
            .unwrap()
    }

    #[test]
    fn underloaded_engine_runs_clean() {
        let report = run_engine(&scenario(4, 100, 1), EngineConfig::default());
        assert_eq!(report.per_query_sic.len(), 4);
        // Every node ticked its detector.
        assert!(report.nodes.iter().all(|n| n.ticks > 0));
        // No shedding without synthetic cost.
        assert_eq!(report.shed_fraction(), 0.0);
        // Results flowed for every query.
        assert_eq!(report.result_counts.len(), 4);
        assert!(report.coordinator_messages > 0);
        // SIC should be positive (timing jitter keeps it below perfect).
        for &(q, s) in &report.per_query_sic {
            assert!(s > 0.3, "query {q} sic {s}");
        }
    }

    #[test]
    fn synthetic_cost_induces_shedding() {
        // Per node: 2 queries x 400 t/s = 800 t/s demand vs 1/(2 ms) =
        // 500 t/s capacity.
        let cfg = EngineConfig {
            policy: PolicyKind::BalanceSic,
            synthetic_cost: TimeDelta::from_micros(2000),
            ..Default::default()
        };
        let report = run_engine(&scenario(4, 400, 2), cfg);
        assert!(
            report.shed_fraction() > 0.1,
            "shed {}",
            report.shed_fraction()
        );
        assert!(report.mean_shed_time_us() > 0.0);
    }

    #[test]
    fn bounded_pool_hosts_many_nodes_on_two_shards() {
        let scn = ScenarioBuilder::new("engine-shards", 5)
            .nodes(32)
            .capacity_tps(1_000_000)
            .duration(TimeDelta::from_millis(1200))
            .warmup(TimeDelta::from_millis(600))
            .stw_window(TimeDelta::from_secs(1))
            .add_queries(
                Template::Avg,
                32,
                SourceProfile {
                    tuples_per_sec: 50,
                    batches_per_sec: 5,
                    burst: Burstiness::Steady,
                    dataset: Dataset::Uniform,
                },
            )
            .build()
            .unwrap();
        let cfg = EngineConfig {
            shards: Some(2),
            ..Default::default()
        };
        let report = run_engine(&scn, cfg);
        assert_eq!(report.shards, 2);
        assert_eq!(report.nodes.len(), 32);
        // All 32 nodes ran their detectors on two threads.
        assert!(report.nodes.iter().all(|n| n.ticks > 0));
        assert!(!report.result_counts.is_empty());
    }

    #[test]
    fn shard_pool_never_exceeds_node_count() {
        let report = run_engine(
            &scenario(4, 100, 6),
            EngineConfig {
                shards: Some(64),
                ..Default::default()
            },
        );
        // The scenario has 2 nodes; the pool is clamped.
        assert_eq!(report.shards, 2);
    }
}
