//! The multi-threaded THEMIS prototype: a bounded pool of shard threads
//! hosting all FSPS nodes, a source pump, and a coordinator loop
//! disseminating result SIC values.
//!
//! Where the simulator models time, the engine *is* real: ticks fire on the
//! wall clock, the cost model measures actual processing time, and the
//! shedder's execution time is measured per invocation (the §7.6 overhead
//! numbers come from here and from the Criterion benches).
//!
//! The engine is a long-lived [`Engine`] value with **runtime query
//! churn**: [`Engine::attach_query`] places a new query's fragments onto
//! the least-loaded nodes and installs them on the running shards (an
//! [`EngineMsg::Attach`] per fragment plus live source drivers in the
//! pump), and [`Engine::detach_query`] reverses it — sources stop, shard
//! buffers purge, and nodes left hosting nothing are torn down so their
//! shedding deadlines never fire again. [`run_engine`] is the one-shot
//! wrapper: start, run for `warmup + duration`, finish.
//!
//! [`Engine::start`] spawns `shards + 1` OS threads regardless of node
//! count (the shard pool plus the source pump; the coordinator runs on the
//! calling thread via [`Engine::run_for`]), so 1000+-node scenarios fit
//! one process. The `scale` experiment budgets `shards + 3` for the whole
//! process: pool + pump + coordinator/main + its own thread-count sampler.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use themis_net::listener::{IngestEvent, IngestServer};

use themis_core::prelude::*;
use themis_query::prelude::{QuerySpec, Template, ValidatedQuery};
use themis_workloads::prelude::*;

use crate::messages::{AttachFragment, EngineMsg, NodeReport, ResultEvent, RoutedBatch, ShardMsg};
use crate::node_state::NodeConfig;
use crate::shard::{run_shard, shard_of, ShardDurability, ShardRouting};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Shedding policy — a handle from the workspace-wide
    /// `ShedderRegistry` shared with the simulator, so every registered
    /// policy (builtin or external) also runs on real threads. Builtins
    /// convert from [`PolicyKind`] via `Into`; registered names resolve
    /// through [`themis_core::shedder::lookup_policy`].
    pub policy: Policy,
    /// Artificial per-tuple processing cost, so modest source rates create
    /// genuine overload (`ZERO` disables; nodes are then extremely fast).
    pub synthetic_cost: TimeDelta,
    /// Size of the shard pool hosting the node states. `None` (the
    /// default) uses the machine's available parallelism; the pool is
    /// never larger than the scenario's node count.
    pub shards: Option<usize>,
    /// Pin each node's shedding threshold to the scenario's declared
    /// `node_capacity_tps` (converted to tuples per interval) instead of
    /// the online cost-model estimate. This is the simulator's capacity
    /// semantics on real threads: overload — and therefore shedding —
    /// happens at declared rates without burning wall time in the
    /// synthetic-cost spin, which is what lets churn/fairness experiments
    /// run genuinely overloaded 512+-node scenarios on a small machine.
    pub enforce_capacity: bool,
    /// Record a per-query SIC time series (sampled every shedding
    /// interval after warm-up) into [`EngineReport::sic_series`] — the
    /// engine analogue of the simulator's `record_series`.
    pub record_series: bool,
    /// Checkpoint cadence of the durability layer: each shard writes a
    /// checkpoint of every hosted node (SIC table plus open window panes)
    /// at this period, then truncates its WAL tail. `None` (the default)
    /// disables durability entirely — no directory is touched. Takes
    /// effect only together with [`EngineConfig::durability_dir`].
    pub checkpoint_every: Option<Duration>,
    /// Root directory of the write-ahead log: each shard owns a
    /// `shard-<i>/` namespace underneath holding its checkpoints and WAL
    /// tail. Required for [`EngineConfig::checkpoint_every`] to take
    /// effect.
    pub durability_dir: Option<PathBuf>,
    /// AF-Stream-style divergence bound: a shard checkpoints *early* when
    /// any hosted node has accumulated more than this much absolute SIC
    /// drift since its last checkpoint, bounding how much approximation
    /// state a crash can lose. `0.0` (the default) disables the early
    /// trigger; the periodic cadence still applies.
    pub sic_divergence_bound: f64,
    /// Fault injection: kill one shard mid-run and restart it later,
    /// exercising the crash/restore path under live load (the `recovery`
    /// experiment gate). `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Bind address of the TCP ingest listener (e.g. `127.0.0.1:0` for
    /// an ephemeral port — read the real one back with
    /// [`Engine::ingest_addr`]). `None` (the default) opens no socket.
    /// With a listener bound, remote source processes feed the engine
    /// wire batches that enter the exact same shard channels the
    /// in-process pump uses.
    pub ingest_listen: Option<String>,
    /// Run without the in-process source pump: installed queries attach
    /// their fragments as usual but no local source drivers are
    /// registered — every batch is expected over the ingest listener.
    /// The federated experiments set this in the engine process.
    pub remote_sources: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: Policy::default(),
            synthetic_cost: TimeDelta::ZERO,
            shards: None,
            enforce_capacity: false,
            record_series: false,
            checkpoint_every: None,
            durability_dir: None,
            sic_divergence_bound: 0.0,
            fault_plan: None,
            ingest_listen: None,
            remote_sources: false,
        }
    }
}

/// A scheduled shard failure: kill `shard` at `kill_after` into the run,
/// restart it at `restart_after` (both measured from [`Engine::start`]).
/// [`Engine::run_for`] drives the plan on the coordinator thread: the kill
/// drops every node state the shard hosts; the restart re-attaches those
/// nodes' fragments from the retained query specs (fresh shedder
/// instances, same placement), then replays the shard's checkpoint and
/// WAL tail via [`EngineMsg::Recover`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Shard index to kill (clamped to the pool size at start).
    pub shard: usize,
    /// How long after engine start the shard dies.
    pub kill_after: Duration,
    /// How long after engine start the shard is restarted and restored.
    /// Must exceed `kill_after` to have any effect.
    pub restart_after: Duration,
}

/// A non-fatal engine failure surfaced in [`EngineReport::errors`]: a
/// shard worker thread lost to a panic, or an ingest connection from a
/// remote source process that failed mid-run. Either way the engine
/// keeps serving what survives — an error degrades the run, it does not
/// poison it.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// A shard worker thread died to a panic.
    Shard {
        /// The shard whose worker thread failed.
        shard: usize,
        /// The shedding policy the engine was running.
        policy: String,
        /// What happened (the panic payload, when it was a string).
        detail: String,
    },
    /// An ingest connection failed: socket drop without a bye (the peer
    /// process died), corrupt bytes on the wire, or a protocol
    /// violation.
    Ingest {
        /// The peer, by its handshake name or socket address.
        peer: String,
        /// What went wrong, actionable.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Shard {
                shard,
                policy,
                detail,
            } => write!(f, "shard {shard} failed under policy {policy}: {detail}"),
            EngineError::Ingest { peer, detail } => {
                write!(f, "ingest connection from {peer} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// What the ingest listener's handler accumulates for the final report:
/// remote peers' bye accounting plus every connection failure.
#[derive(Default)]
struct IngestStats {
    remote_sent_batches: u64,
    remote_shed_batches: u64,
    /// `(peer, detail)` per failed connection.
    errors: Vec<(String, String)>,
}

/// Coordinator-side progress of the configured [`FaultPlan`].
struct FaultState {
    plan: FaultPlan,
    kill_at: Instant,
    restart_at: Instant,
    killed: bool,
    restarted: bool,
}

/// The default shard-pool size: the machine's available parallelism.
pub fn default_shards() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Output of an engine run.
#[derive(Debug)]
pub struct EngineReport {
    /// Per-node counters (index = global node; nodes that never hosted a
    /// fragment report zeros).
    pub nodes: Vec<NodeReport>,
    /// Mean sampled result SIC per query (over the query's active,
    /// settled life).
    pub per_query_sic: Vec<(QueryId, f64)>,
    /// Fairness over the per-query SIC values.
    pub fairness: FairnessSummary,
    /// Result emissions observed per query.
    pub result_counts: HashMap<QueryId, usize>,
    /// Coordinator updates sent.
    pub coordinator_messages: u64,
    /// Shedding policy used.
    pub policy: String,
    /// Shard threads the node states ran on.
    pub shards: usize,
    /// Per-query SIC time series (empty unless
    /// [`EngineConfig::record_series`]): `(logical time, SIC)` samples,
    /// one per coordinator tick after warm-up, covering each query's
    /// attached lifetime.
    pub sic_series: HashMap<QueryId, Vec<(Timestamp, f64)>>,
    /// Non-fatal failures observed during the run: shard threads lost to
    /// panics and failed ingest connections. Empty on a clean run. The
    /// report's node counters still cover every surviving shard — a lost
    /// shard (or source process) degrades the run, it does not poison it.
    pub errors: Vec<EngineError>,
    /// Batches decoded from remote source processes by the ingest
    /// listener (zero without [`EngineConfig::ingest_listen`]).
    pub remote_batches: u64,
    /// Batches remote peers reported *writing* in their byes — what the
    /// sources actually put on the wire.
    pub remote_sent_batches: u64,
    /// Batches remote peers reported shedding oldest-first from their
    /// full send queues — the link-level loss the transport chose over
    /// blocking the source pump.
    pub remote_shed_batches: u64,
}

impl EngineReport {
    /// Mean shedder execution time per invocation across nodes (µs).
    pub fn mean_shed_time_us(&self) -> f64 {
        let (ns, n): (u64, u64) = self.nodes.iter().fold((0, 0), |(a, b), r| {
            (a + r.shed_time_ns, b + r.shed_decisions)
        });
        if n == 0 {
            0.0
        } else {
            ns as f64 / n as f64 / 1_000.0
        }
    }

    /// Fraction of arrived tuples shed.
    pub fn shed_fraction(&self) -> f64 {
        let arrived: u64 = self.nodes.iter().map(|n| n.arrived_tuples).sum();
        let shed: u64 = self.nodes.iter().map(|n| n.shed_tuples).sum();
        if arrived == 0 {
            0.0
        } else {
            shed as f64 / arrived as f64
        }
    }
}

/// Installs one live source driver in the pump.
struct SourceInstall {
    query: QueryId,
    spec: themis_query::prelude::SourceSpec,
    profile: SourceProfile,
    seed: u64,
    /// Node hosting the fragment this source feeds.
    node: usize,
    /// That fragment's index.
    fragment: usize,
}

/// Control messages for the source pump thread.
enum PumpMsg {
    /// Start driving these sources (a query attached).
    Add(Vec<SourceInstall>),
    /// Stop every driver of this query (it detached).
    Remove(QueryId),
    /// Shut the pump down.
    Stop,
}

/// Entry in the source pump's schedule heap, tagged with the slot's
/// install generation so entries of removed drivers are discarded on pop
/// (and the slot can be reused by a later attach).
struct Due {
    at: Timestamp,
    slot: usize,
    generation: u64,
}
impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.slot == other.slot && self.generation == other.generation
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.slot, other.generation).cmp(&(self.at, self.slot, self.generation))
    }
}

/// One running driver in the pump, plus its routing.
struct PumpDriver {
    driver: SourceDriver,
    node: usize,
    query: QueryId,
    fragment: usize,
}

/// A pump slot: a reusable home for one driver. Removing a query frees
/// its slots (and bumps their generation, invalidating the pending
/// schedule entries), so sustained attach/detach churn does not grow the
/// slot vector without bound.
struct PumpSlot {
    driver: Option<PumpDriver>,
    generation: u64,
}

/// Carry-stash entries kept across remove/re-add cycles; beyond this the
/// stash is cleared wholesale (each entry is one `f64`, so the cap only
/// matters under unbounded churn of never-returning sources).
const CARRY_STASH_CAP: usize = 1 << 16;

/// The source pump: drives every live source's emission schedule on one
/// thread, with runtime add/remove for query churn. Emitted batches are
/// acquired from `pool` (the engine-wide recycle loop: nodes return
/// spent columns, the pump reuses them for the next emission).
fn run_pump(
    rx: Receiver<PumpMsg>,
    node_txs: Vec<Sender<ShardMsg>>,
    epoch: Instant,
    pool: BatchPool,
) {
    const IDLE: Duration = Duration::from_millis(50);
    let mut slots: Vec<PumpSlot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut heap: BinaryHeap<Due> = BinaryHeap::new();
    // Fractional-tuple balances of removed drivers, keyed by source id: a
    // re-added source resumes its carry instead of restarting at zero, so
    // remove/re-add churn does not bias its realised long-run rate.
    let mut carry_stash: HashMap<SourceId, f64> = HashMap::new();
    // Per-loop emission cap: a saturated pump (every heap entry
    // perpetually due) must still poll the control channel, or Stop and
    // Remove starve while catch-up emission storms the shard queues.
    const MAX_SWEEP: usize = 4096;
    loop {
        // Emit everything due, up to the sweep cap.
        let mut swept = 0;
        while let Some(d) = heap.peek() {
            if swept >= MAX_SWEEP {
                break;
            }
            let fire_at = epoch + Duration::from_micros(d.at.as_micros());
            if fire_at
                .checked_duration_since(Instant::now())
                .is_some_and(|w| !w.is_zero())
            {
                break;
            }
            let due = heap.pop().expect("peeked");
            let slot = &mut slots[due.slot];
            if slot.generation != due.generation {
                continue; // removed (or reused): abandon the stale entry
            }
            swept += 1;
            let pd = slot.driver.as_mut().expect("live generation has a driver");
            // Re-anchor drivers that fell a whole beat behind instead of
            // emitting their backlog at maximum rate.
            pd.driver
                .fast_forward(Timestamp(epoch.elapsed().as_micros() as u64));
            let batch = pd.driver.emit();
            // Quiet-pattern batches can be empty; nothing to send then.
            if !batch.is_empty() {
                let _ = node_txs[pd.node].send(ShardMsg {
                    node: pd.node,
                    msg: EngineMsg::Batch(RoutedBatch {
                        query: pd.query,
                        fragment: pd.fragment,
                        ingress: themis_query::prelude::Ingress::Source(pd.driver.source),
                        batch,
                    }),
                });
            }
            heap.push(Due {
                at: pd.driver.next_time(),
                slot: due.slot,
                generation: due.generation,
            });
        }
        let timeout = if swept >= MAX_SWEEP {
            // The sweep was truncated: drain any pending control
            // messages immediately before resuming emission.
            Duration::ZERO
        } else {
            heap.peek()
                .map(|d| {
                    (epoch + Duration::from_micros(d.at.as_micros()))
                        .saturating_duration_since(Instant::now())
                })
                .unwrap_or(IDLE)
        };
        match rx.recv_timeout(timeout) {
            Ok(PumpMsg::Add(installs)) => {
                let now_ts = Timestamp(epoch.elapsed().as_micros() as u64);
                for ins in installs {
                    let mut driver = SourceDriver::new(ins.query, &ins.spec, ins.profile, ins.seed);
                    driver.set_pool(pool.clone());
                    if let Some(carry) = carry_stash.remove(&driver.source) {
                        driver.set_carry(carry);
                    }
                    // Sources of queries attached mid-run start emitting
                    // now (plus their de-phasing offset), not at t=0.
                    driver.start_at(now_ts);
                    let at = driver.next_time();
                    let pd = PumpDriver {
                        driver,
                        node: ins.node,
                        query: ins.query,
                        fragment: ins.fragment,
                    };
                    let idx = match free.pop() {
                        Some(idx) => {
                            slots[idx].driver = Some(pd);
                            idx
                        }
                        None => {
                            slots.push(PumpSlot {
                                driver: Some(pd),
                                generation: 0,
                            });
                            slots.len() - 1
                        }
                    };
                    heap.push(Due {
                        at,
                        slot: idx,
                        generation: slots[idx].generation,
                    });
                }
            }
            Ok(PumpMsg::Remove(query)) => {
                for (idx, slot) in slots.iter_mut().enumerate() {
                    if slot.driver.as_ref().is_some_and(|pd| pd.query == query) {
                        if let Some(pd) = slot.driver.take() {
                            if carry_stash.len() >= CARRY_STASH_CAP {
                                carry_stash.clear();
                            }
                            carry_stash.insert(pd.driver.source, pd.driver.carry());
                        }
                        slot.generation += 1;
                        free.push(idx);
                    }
                }
            }
            Ok(PumpMsg::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Per-query sampling state on the coordinator side.
struct QueryTracking {
    /// Collected SIC samples (means come from these).
    samples: Vec<f64>,
    /// Sampling starts here: end of warm-up for initial queries, one STW
    /// after arrival for runtime-attached ones — matching the simulator's
    /// "active, settled life" accounting.
    settle_at: Instant,
}

/// A live THEMIS engine: shard pool + source pump running, coordinator
/// driven by [`Engine::run_for`] on the calling thread, queries arriving
/// and departing at runtime.
///
/// ```no_run
/// use std::time::Duration;
/// use themis_engine::prelude::*;
/// use themis_query::prelude::Template;
/// use themis_workloads::prelude::*;
///
/// let scenario = ScenarioBuilder::new("churn", 1)
///     .nodes(4)
///     .add_queries(Template::Avg, 4, SourceProfile::emulab(Dataset::Uniform))
///     .build()
///     .unwrap();
/// let mut engine = Engine::start(&scenario, EngineConfig::default());
/// engine.run_for(Duration::from_secs(1));
/// let id = engine.attach_query(Template::Avg, SourceProfile::emulab(Dataset::Uniform));
/// engine.run_for(Duration::from_secs(1));
/// engine.detach_query(id);
/// engine.run_for(Duration::from_secs(1));
/// let report = engine.finish();
/// assert!(report.result_counts.len() >= 4);
/// ```
pub struct Engine {
    config: EngineConfig,
    epoch: Instant,
    epoch_sys: std::time::SystemTime,
    n_shards: usize,
    n_nodes: usize,
    seed: u64,
    stw: StwConfig,
    shedding_interval: TimeDelta,
    interval: Duration,
    warmup_end: Instant,
    node_capacity_tps: Vec<u32>,
    shard_txs: Vec<Sender<ShardMsg>>,
    node_txs: Vec<Sender<ShardMsg>>,
    results_rx: Receiver<ResultEvent>,
    shard_handles: Vec<JoinHandle<Vec<(usize, NodeReport)>>>,
    pump_tx: Sender<PumpMsg>,
    pump_handle: JoinHandle<()>,
    // Coordinator state (driven by run_for on the calling thread).
    tracker: ResultSicTracker,
    coordinators: Vec<QueryCoordinator>,
    tracking: HashMap<QueryId, QueryTracking>,
    sic_series: HashMap<QueryId, Vec<(Timestamp, f64)>>,
    result_counts: HashMap<QueryId, usize>,
    coordinator_messages: u64,
    next_tick: Instant,
    // Placement state for runtime attaches.
    active: HashSet<QueryId>,
    placements: HashMap<QueryId, Vec<usize>>,
    /// Retained specs of attached queries, so a fault-plan restart can
    /// rebuild and re-attach the dead shard's fragments.
    specs: HashMap<QueryId, Arc<QuerySpec>>,
    /// Progress of the configured fault plan (driven by `run_for`).
    fault: Option<FaultState>,
    node_load: Vec<usize>,
    query_ids: IdGen,
    source_ids: IdGen,
    /// Engine-wide batch pool: the pump acquires emission batches from
    /// it, nodes recycle spent columns back (windows, shed batches).
    pool: BatchPool,
    /// The TCP ingest listener plus its accounting, when
    /// [`EngineConfig::ingest_listen`] bound one.
    ingest: Option<(IngestServer, Arc<Mutex<IngestStats>>)>,
    /// Whether `run_for` pushes per-query SIC samples. Normally true for
    /// the engine's whole life; a federated bench pauses it for the
    /// drain tail after remote pumps finish, so the windowed SIC decay
    /// of an intentionally idle wire does not dilute the measured mean.
    sampling: bool,
}

impl Engine {
    /// Spawns the shard pool and source pump and installs the scenario's
    /// queries (every deployment takes the same attach path runtime churn
    /// uses). Scenario `lifetimes` are ignored here — drive arrivals and
    /// departures explicitly with [`Engine::attach_query`] /
    /// [`Engine::detach_query`] between [`Engine::run_for`] slices.
    pub fn start(scenario: &Scenario, config: EngineConfig) -> Engine {
        let epoch = Instant::now();
        let epoch_sys = std::time::SystemTime::now();
        let n_shards = config
            .shards
            .unwrap_or_else(default_shards)
            .clamp(1, scenario.n_nodes.max(1));

        // Channels: one per shard; each node's sender is a clone of its
        // owning shard's channel, so senders stay addressable by node index.
        let mut shard_txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(n_shards);
        let mut shard_rxs = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = unbounded();
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let node_txs: Vec<Sender<ShardMsg>> = (0..scenario.n_nodes)
            .map(|n| shard_txs[shard_of(n, n_shards)].clone())
            .collect();
        let (results_tx, results_rx) = unbounded::<ResultEvent>();

        // Threads carry names so `/proc/self/task/*/stat` sampling (the
        // scale-e2e profiler) can attribute CPU per role.
        let mut shard_handles = Vec::new();
        for (i, rx) in shard_rxs.into_iter().enumerate() {
            let routing = ShardRouting {
                node_txs: node_txs.clone(),
                results_tx: results_tx.clone(),
            };
            let durability = match (config.checkpoint_every, &config.durability_dir) {
                (Some(every), Some(dir)) => Some(ShardDurability {
                    dir: dir.clone(),
                    shard: i,
                    every,
                    sic_bound: config.sic_divergence_bound,
                }),
                _ => None,
            };
            let handle = thread::Builder::new()
                .name(format!("shard-{i}"))
                .spawn(move || run_shard(routing, rx, epoch, durability))
                .expect("spawn shard thread");
            shard_handles.push(handle);
        }
        drop(results_tx);

        let pool = BatchPool::new();
        let (pump_tx, pump_rx) = unbounded::<PumpMsg>();
        let pump_txs = node_txs.clone();
        let pump_pool = pool.clone();
        let pump_handle = thread::Builder::new()
            .name("source-pump".into())
            .spawn(move || run_pump(pump_rx, pump_txs, epoch, pump_pool))
            .expect("spawn pump thread");

        // Ingest listener: remote source processes feed the exact same
        // shard channels the in-process pump does — a wire batch and a
        // pump batch are indistinguishable past this point.
        let ingest = config.ingest_listen.as_ref().map(|listen| {
            let stats = Arc::new(Mutex::new(IngestStats::default()));
            let txs = node_txs.clone();
            let handler_stats = stats.clone();
            let server = IngestServer::bind(
                listen,
                Arc::new(move |ev| match ev {
                    IngestEvent::Batch(wb) => {
                        let node = wb.node as usize;
                        if node >= txs.len() {
                            handler_stats.lock().unwrap().errors.push((
                                wb.source.to_string(),
                                format!(
                                    "batch routed to unknown node {node} (engine hosts {})",
                                    txs.len()
                                ),
                            ));
                            return;
                        }
                        let batch =
                            Batch::from_source_data(wb.query, wb.source, wb.created, wb.batch);
                        let _ = txs[node].send(ShardMsg {
                            node,
                            msg: EngineMsg::Batch(RoutedBatch {
                                query: wb.query,
                                fragment: wb.fragment as usize,
                                ingress: themis_query::prelude::Ingress::Source(wb.source),
                                batch,
                            }),
                        });
                    }
                    IngestEvent::Closed {
                        sent_batches,
                        shed_batches,
                        ..
                    } => {
                        let mut s = handler_stats.lock().unwrap();
                        s.remote_sent_batches += sent_batches;
                        s.remote_shed_batches += shed_batches;
                    }
                    IngestEvent::Error { peer, detail } => {
                        handler_stats.lock().unwrap().errors.push((peer, detail));
                    }
                }),
            )
            .unwrap_or_else(|e| panic!("bind ingest listener on {listen}: {e}"));
            (server, stats)
        });

        let interval = Duration::from_micros(scenario.shedding_interval.as_micros());
        let max_query = scenario
            .queries
            .iter()
            .map(|q| q.id.0 + 1)
            .max()
            .unwrap_or(0);
        let max_source = scenario
            .queries
            .iter()
            .flat_map(|q| q.sources.iter().map(|s| s.id.0 + 1))
            .max()
            .unwrap_or(0);
        let fault = config.fault_plan.clone().map(|mut plan| {
            plan.shard = plan.shard.min(n_shards - 1);
            FaultState {
                kill_at: epoch + plan.kill_after,
                restart_at: epoch + plan.restart_after,
                plan,
                killed: false,
                restarted: false,
            }
        });
        let mut engine = Engine {
            config,
            epoch,
            epoch_sys,
            n_shards,
            n_nodes: scenario.n_nodes,
            seed: scenario.seed,
            stw: scenario.stw,
            shedding_interval: scenario.shedding_interval,
            interval,
            warmup_end: epoch + Duration::from_micros(scenario.warmup.as_micros()),
            node_capacity_tps: scenario.node_capacity_tps.clone(),
            shard_txs,
            node_txs,
            results_rx,
            shard_handles,
            pump_tx,
            pump_handle,
            tracker: ResultSicTracker::new(scenario.stw),
            coordinators: Vec::new(),
            tracking: HashMap::new(),
            sic_series: HashMap::new(),
            result_counts: HashMap::new(),
            coordinator_messages: 0,
            next_tick: Instant::now() + interval,
            active: HashSet::new(),
            placements: HashMap::new(),
            specs: HashMap::new(),
            fault,
            node_load: vec![0; scenario.n_nodes],
            query_ids: IdGen::starting_at(max_query),
            source_ids: IdGen::starting_at(max_source),
            pool,
            ingest,
            sampling: true,
        };

        // Install the scenario's queries at their validated placement;
        // their sampling settles at the end of warm-up.
        let warmup_end = engine.warmup_end;
        for q in &scenario.queries {
            let nodes: Vec<usize> = (0..q.n_fragments())
                .map(|fi| {
                    scenario
                        .deployment
                        .node_of(q.id, fi)
                        .expect("validated deployment")
                        .index()
                })
                .collect();
            let profiles: Vec<SourceProfile> =
                q.sources.iter().map(|s| scenario.profiles[&s.id]).collect();
            engine.install(Arc::new(q.clone()), nodes, &profiles, warmup_end);
        }
        engine
    }

    /// The logical clock: microseconds since the engine epoch.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.epoch.elapsed().as_micros() as u64)
    }

    /// The engine epoch as a wall-clock instant (microseconds since the
    /// Unix epoch). Remote source pumps anchor their emission timeline
    /// to this value so their schedules share the engine's slide-aligned
    /// clock — the STW rate estimators that stamp per-tuple SIC are
    /// sensitive to arrival phase relative to slide boundaries, so a
    /// federation that started its timeline even tens of milliseconds
    /// off the engine epoch would bias every SIC estimate.
    pub fn epoch_unix_us(&self) -> u64 {
        self.epoch_sys
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// The bound address of the ingest listener (real port even when
    /// configured with port 0), or `None` without one.
    pub fn ingest_addr(&self) -> Option<std::net::SocketAddr> {
        self.ingest.as_ref().map(|(server, _)| server.local_addr())
    }

    /// Queries currently attached.
    pub fn active_queries(&self) -> usize {
        self.active.len()
    }

    /// Shard threads in the pool.
    pub fn shards(&self) -> usize {
        self.n_shards
    }

    /// The engine-wide batch pool (its [`BatchPool::stats`] show how much
    /// of the batch traffic recycled instead of allocating).
    pub fn batch_pool(&self) -> &BatchPool {
        &self.pool
    }

    /// Builds the configuration a (re-)installed node starts from. Called
    /// on first attach and again on fault-plan restart — the shedder
    /// instance inside is always fresh (its learned state is not durable;
    /// window panes and SIC tables come back from the log instead).
    fn node_config(&self, node: usize) -> NodeConfig {
        let initial_capacity = if self.config.synthetic_cost.is_zero() {
            usize::MAX / 2
        } else {
            ((self.shedding_interval.as_micros() / self.config.synthetic_cost.as_micros().max(1))
                as usize)
                .max(1)
        };
        let fixed_capacity = self.config.enforce_capacity.then(|| {
            ((self.node_capacity_tps[node] as u64 * self.shedding_interval.as_micros() / 1_000_000)
                as usize)
                .max(1)
        });
        NodeConfig {
            id: NodeId(node as u32),
            interval: self.shedding_interval,
            stw: self.stw,
            shedder: self
                .config
                .policy
                .build(self.seed ^ (0xE0_0000 + node as u64)),
            synthetic_cost: self.config.synthetic_cost,
            initial_capacity,
            fixed_capacity,
            pool: Some(self.pool.clone()),
        }
    }

    /// Installs `query` with fragment `fi` on `nodes[fi]`, wires its
    /// sources into the pump and registers its coordinator. `profiles`
    /// lists one profile per query source, in declaration order.
    fn install(
        &mut self,
        query: Arc<QuerySpec>,
        nodes: Vec<usize>,
        profiles: &[SourceProfile],
        settle_at: Instant,
    ) {
        for (fi, &node) in nodes.iter().enumerate() {
            let downstream = if fi == query.result_fragment {
                None
            } else {
                query.downstream_of(fi).map(|d| (nodes[d], d))
            };
            let config = self.node_config(node);
            let _ = self.node_txs[node].send(ShardMsg {
                node,
                msg: EngineMsg::Attach(Box::new(AttachFragment {
                    node,
                    config,
                    query: query.clone(),
                    fragment: fi,
                    downstream,
                })),
            });
            self.node_load[node] += 1;
        }
        // Sources: each fragment's bindings say which node its sources
        // feed; the pump drives them on their emission schedule.
        let mut installs = Vec::new();
        for (fi, &node) in nodes.iter().enumerate() {
            for b in &query.fragments[fi].sources {
                let si = query
                    .sources
                    .iter()
                    .position(|s| s.id == b.source)
                    .expect("bound source declared");
                installs.push(SourceInstall {
                    query: query.id,
                    spec: query.sources[si].clone(),
                    // One profile per declared source — a mismatch is a
                    // caller bug and should fail loudly, not silently
                    // reuse another source's profile.
                    profile: profiles[si],
                    seed: self.seed ^ (b.source.0 as u64).wrapping_mul(0x9E37_79B9),
                    node,
                    fragment: fi,
                });
            }
        }
        // With remote sources the drivers live in other processes; the
        // fragments above still attach, only the local pump stays idle.
        if !self.config.remote_sources {
            let _ = self.pump_tx.send(PumpMsg::Add(installs));
        }
        self.coordinators.push(QueryCoordinator::new(
            query.id,
            nodes.iter().map(|&n| NodeId(n as u32)).collect(),
            self.shedding_interval,
        ));
        self.tracking.insert(
            query.id,
            QueryTracking {
                samples: Vec::new(),
                settle_at,
            },
        );
        self.active.insert(query.id);
        self.placements.insert(query.id, nodes);
        self.specs.insert(query.id, query);
    }

    /// Attaches a fresh query built from `template` at runtime: fragments
    /// go to the least-loaded distinct nodes, all of its sources emit
    /// with `profile`. Returns the new query's id. Its SIC samples start
    /// one STW after arrival (the settle period), like the simulator's
    /// churn accounting.
    ///
    /// # Panics
    ///
    /// Panics when the template needs more fragments than the engine has
    /// nodes (fragments of one query must land on distinct nodes).
    pub fn attach_query(&mut self, template: Template, profile: SourceProfile) -> QueryId {
        let id: QueryId = self.query_ids.next();
        let query = template.build(id, &mut self.source_ids);
        self.attach_built(query, profile)
    }

    /// Attaches a compiled declarative query at runtime (the spec-layer
    /// analogue of [`Engine::attach_query`]): the [`ValidatedQuery`] is
    /// compiled against this engine's id generators, its fragments go to
    /// the least-loaded distinct nodes, and all of its sources emit with
    /// `profile`.
    ///
    /// # Panics
    ///
    /// Panics when the query needs more fragments than the engine has
    /// nodes (fragments of one query must land on distinct nodes).
    pub fn attach_spec(&mut self, spec: &ValidatedQuery, profile: SourceProfile) -> QueryId {
        let id: QueryId = self.query_ids.next();
        let query = spec.compile(id, &mut self.source_ids).into_spec();
        self.attach_built(query, profile)
    }

    /// Shared attach path: places an already-built query graph onto the
    /// least-loaded distinct nodes and installs it.
    fn attach_built(&mut self, query: QuerySpec, profile: SourceProfile) -> QueryId {
        let id = query.id;
        assert!(
            query.n_fragments() <= self.n_nodes,
            "query needs {} distinct nodes, engine has {}",
            query.n_fragments(),
            self.n_nodes
        );
        let mut order: Vec<usize> = (0..self.n_nodes).collect();
        order.sort_by_key(|&n| (self.node_load[n], n));
        let nodes: Vec<usize> = order[..query.n_fragments()].to_vec();
        let profiles = vec![profile; query.sources.len()];
        let settle_at = Instant::now() + Duration::from_micros(self.stw.window.as_micros());
        self.install(Arc::new(query), nodes, &profiles, settle_at);
        id
    }

    /// Attaches `count` queries from `template` (see
    /// [`Engine::attach_query`]).
    pub fn attach_queries(
        &mut self,
        template: Template,
        count: usize,
        profile: SourceProfile,
    ) -> Vec<QueryId> {
        (0..count)
            .map(|_| self.attach_query(template, profile))
            .collect()
    }

    /// Detaches `query` at runtime: its sources stop emitting, every
    /// hosting node purges its fragments and buffered batches, nodes left
    /// empty are torn down (their shedding deadlines are abandoned), and
    /// its coordinator stops disseminating. Samples collected so far are
    /// kept for the final report. Returns `false` when the query is not
    /// attached.
    pub fn detach_query(&mut self, query: QueryId) -> bool {
        if !self.active.remove(&query) {
            return false;
        }
        let _ = self.pump_tx.send(PumpMsg::Remove(query));
        for node in self.placements.remove(&query).unwrap_or_default() {
            let _ = self.node_txs[node].send(ShardMsg {
                node,
                msg: EngineMsg::Detach { query },
            });
            self.node_load[node] = self.node_load[node].saturating_sub(1);
        }
        self.coordinators.retain(|c| c.query() != query);
        self.specs.remove(&query);
        true
    }

    /// Fires the configured [`FaultPlan`]: sends the crash at
    /// `kill_after`, and at `restart_after` re-attaches every fragment
    /// the dead shard hosted and replays its durable log.
    fn drive_fault_plan(&mut self) {
        let Some(mut fault) = self.fault.take() else {
            return;
        };
        let now = Instant::now();
        if !fault.killed && now >= fault.kill_at {
            fault.killed = true;
            let _ = self.shard_txs[fault.plan.shard].send(ShardMsg {
                node: 0,
                msg: EngineMsg::Crash,
            });
        }
        if fault.killed && !fault.restarted && now >= fault.restart_at {
            fault.restarted = true;
            self.restart_shard(fault.plan.shard);
        }
        self.fault = Some(fault);
    }

    /// Restarts a crashed shard: re-attaches every fragment placed on its
    /// nodes (the same attach path `install` took, with fresh shedder
    /// instances), then sends [`EngineMsg::Recover`] so the shard overlays
    /// its latest checkpoint and replays its WAL tail. Without a
    /// configured durability directory the shard restarts cold.
    fn restart_shard(&mut self, shard: usize) {
        let placements: Vec<(QueryId, Vec<usize>)> = self
            .placements
            .iter()
            .map(|(&q, nodes)| (q, nodes.clone()))
            .collect();
        for (qid, nodes) in placements {
            let Some(query) = self.specs.get(&qid).cloned() else {
                continue;
            };
            for (fi, &node) in nodes.iter().enumerate() {
                if shard_of(node, self.n_shards) != shard {
                    continue;
                }
                let downstream = if fi == query.result_fragment {
                    None
                } else {
                    query.downstream_of(fi).map(|d| (nodes[d], d))
                };
                let config = self.node_config(node);
                let _ = self.node_txs[node].send(ShardMsg {
                    node,
                    msg: EngineMsg::Attach(Box::new(AttachFragment {
                        node,
                        config,
                        query: query.clone(),
                        fragment: fi,
                        downstream,
                    })),
                });
            }
        }
        if let Some(dir) = self.config.durability_dir.clone() {
            let _ = self.shard_txs[shard].send(ShardMsg {
                node: 0,
                msg: EngineMsg::Recover { dir, shard },
            });
        }
    }

    /// Replays the durable log under `dir` into every shard: each
    /// overlays its latest checkpoint and replays its WAL tail,
    /// tolerating a torn final record (the crash may have interrupted an
    /// append). Fragments must already be attached — on a fresh engine,
    /// [`Engine::start`] has installed the scenario's queries before this
    /// is called, so the restored panes and SIC tables land in live
    /// runtimes.
    pub fn restore_from(&mut self, dir: &Path) {
        for shard in 0..self.n_shards {
            let _ = self.shard_txs[shard].send(ShardMsg {
                node: 0,
                msg: EngineMsg::Recover {
                    dir: dir.to_path_buf(),
                    shard,
                },
            });
        }
    }

    /// Stops pushing per-query SIC samples for the rest of the engine's
    /// life; the coordinator loop, shards and ingest keep running. A
    /// federated bench calls this before its drain tail — the wall-clock
    /// slack it grants remote pumps to finish and say bye — so the
    /// windowed SIC decay of an intentionally idle wire does not dilute
    /// the measured mean the parity gate compares.
    pub fn pause_sampling(&mut self) {
        self.sampling = false;
    }

    /// Drives the coordinator loop on the calling thread for `wall` time:
    /// drains result emissions into the SIC tracker, fires coordinator
    /// dissemination every shedding interval, and samples per-query SIC
    /// values (after warm-up and per-query settling).
    pub fn run_for(&mut self, wall: Duration) {
        let deadline = Instant::now() + wall;
        loop {
            let now_wall = Instant::now();
            if now_wall >= deadline {
                break;
            }
            // Drain pending results.
            while let Ok(ev) = self.results_rx.try_recv() {
                let now = self.now();
                self.tracker.record(now, ev.query, ev.sic);
                *self.result_counts.entry(ev.query).or_insert(0) += 1;
            }
            self.drive_fault_plan();
            if now_wall >= self.next_tick {
                self.next_tick += self.interval;
                if self.next_tick <= now_wall {
                    // A long gap between run_for slices: skip to the next
                    // future tick instead of storming catch-up ticks.
                    self.next_tick = now_wall + self.interval;
                }
                let now = self.now();
                for c in self.coordinators.iter_mut() {
                    let sic = self.tracker.query_sic(now, c.query());
                    c.on_result_sic(sic);
                    for update in c.tick(now) {
                        self.coordinator_messages += 1;
                        let node = update.node.index();
                        let _ = self.node_txs[node].send(ShardMsg {
                            node,
                            msg: EngineMsg::Sic(update),
                        });
                    }
                }
                if self.sampling && now_wall >= self.warmup_end {
                    for (&q, t) in self.tracking.iter_mut() {
                        if !self.active.contains(&q) {
                            continue;
                        }
                        let sic = self.tracker.query_sic(now, q).value();
                        if now_wall >= t.settle_at {
                            t.samples.push(sic);
                        }
                        if self.config.record_series {
                            self.sic_series.entry(q).or_default().push((now, sic));
                        }
                    }
                }
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Shuts the pump and shard pool down and assembles the report.
    pub fn finish(self) -> EngineReport {
        // Ingest first: stop reading sockets before the shards shut
        // down, and fold the listener's accounting into the report.
        let (remote_batches, remote_sent_batches, remote_shed_batches, ingest_errors) =
            match self.ingest {
                Some((server, stats)) => {
                    let received = server.batches_received();
                    server.shutdown();
                    let stats = std::mem::take(&mut *stats.lock().unwrap());
                    (
                        received,
                        stats.remote_sent_batches,
                        stats.remote_shed_batches,
                        stats.errors,
                    )
                }
                None => (0, 0, 0, Vec::new()),
            };
        let _ = self.pump_tx.send(PumpMsg::Stop);
        // Shutdown: one message per shard stops all of its nodes.
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg {
                node: 0,
                msg: EngineMsg::Shutdown,
            });
        }
        let _ = self.pump_handle.join();
        let policy_name = self.config.policy.name().to_string();
        let mut nodes: Vec<NodeReport> = vec![NodeReport::default(); self.n_nodes];
        let mut errors: Vec<EngineError> = Vec::new();
        for (shard, h) in self.shard_handles.into_iter().enumerate() {
            match h.join() {
                Ok(reports) => {
                    for (node, report) in reports {
                        nodes[node].absorb(&report);
                    }
                }
                // A shard thread died to a panic: name it and its policy
                // instead of propagating — the surviving shards above
                // still drained cleanly and their counters stand.
                Err(payload) => {
                    let detail = payload
                        .downcast_ref::<&'static str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "shard thread panicked".to_string());
                    errors.push(EngineError::Shard {
                        shard,
                        policy: policy_name.clone(),
                        detail,
                    });
                }
            }
        }

        let mut per_query_sic: Vec<(QueryId, f64)> = self
            .tracking
            .into_iter()
            .map(|(q, t)| {
                let mean = if t.samples.is_empty() {
                    0.0
                } else {
                    t.samples.iter().sum::<f64>() / t.samples.len() as f64
                };
                (q, mean)
            })
            .collect();
        errors.extend(
            ingest_errors
                .into_iter()
                .map(|(peer, detail)| EngineError::Ingest { peer, detail }),
        );
        per_query_sic.sort_by_key(|&(q, _)| q);
        let sics: Vec<Sic> = per_query_sic.iter().map(|&(_, s)| Sic(s)).collect();
        EngineReport {
            nodes,
            fairness: FairnessSummary::from_sics(&sics),
            per_query_sic,
            result_counts: self.result_counts,
            coordinator_messages: self.coordinator_messages,
            policy: policy_name,
            shards: self.n_shards,
            sic_series: self.sic_series,
            errors,
            remote_batches,
            remote_sent_batches,
            remote_shed_batches,
        }
    }
}

/// Runs the scenario on a bounded shard pool for `warmup + duration` wall
/// time and reports per-query SIC fairness plus node counters — the
/// one-shot wrapper over [`Engine`].
pub fn run_engine(scenario: &Scenario, config: EngineConfig) -> EngineReport {
    let mut engine = Engine::start(scenario, config);
    engine.run_for(Duration::from_micros(
        (scenario.warmup + scenario.duration).as_micros(),
    ));
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_query::prelude::Template;

    fn scenario(n_queries: usize, rate: u32, seed: u64) -> Scenario {
        ScenarioBuilder::new("engine-test", seed)
            .nodes(2)
            .capacity_tps(1_000_000)
            .duration(TimeDelta::from_millis(2500))
            .warmup(TimeDelta::from_millis(1500))
            .stw_window(TimeDelta::from_secs(2))
            .add_queries(
                Template::Avg,
                n_queries,
                SourceProfile::steady(rate, 5, Dataset::Uniform),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn underloaded_engine_runs_clean() {
        let report = run_engine(&scenario(4, 100, 1), EngineConfig::default());
        assert_eq!(report.per_query_sic.len(), 4);
        // Every node ticked its detector.
        assert!(report.nodes.iter().all(|n| n.ticks > 0));
        // No shedding without synthetic cost.
        assert_eq!(report.shed_fraction(), 0.0);
        // Results flowed for every query.
        assert_eq!(report.result_counts.len(), 4);
        assert!(report.coordinator_messages > 0);
        // SIC should be positive (timing jitter keeps it below perfect).
        for &(q, s) in &report.per_query_sic {
            assert!(s > 0.3, "query {q} sic {s}");
        }
    }

    #[test]
    fn synthetic_cost_induces_shedding() {
        // Per node: 2 queries x 400 t/s = 800 t/s demand vs 1/(2 ms) =
        // 500 t/s capacity.
        let cfg = EngineConfig {
            policy: PolicyKind::BalanceSic.into(),
            synthetic_cost: TimeDelta::from_micros(2000),
            ..Default::default()
        };
        let report = run_engine(&scenario(4, 400, 2), cfg);
        assert!(
            report.shed_fraction() > 0.1,
            "shed {}",
            report.shed_fraction()
        );
        assert!(report.mean_shed_time_us() > 0.0);
    }

    #[test]
    fn enforced_capacity_sheds_without_spin() {
        // 2 nodes x 2 queries x 400 t/s demand against a declared
        // 300 t/s node capacity: ~2.7x overload, no synthetic cost.
        let scn = ScenarioBuilder::new("enforce", 9)
            .nodes(2)
            .capacity_tps(300)
            .duration(TimeDelta::from_millis(2500))
            .warmup(TimeDelta::from_millis(1500))
            .stw_window(TimeDelta::from_secs(2))
            .add_queries(
                Template::Avg,
                4,
                SourceProfile::steady(400, 5, Dataset::Uniform),
            )
            .build()
            .unwrap();
        let report = run_engine(
            &scn,
            EngineConfig {
                enforce_capacity: true,
                ..Default::default()
            },
        );
        assert!(
            report.shed_fraction() > 0.3,
            "declared capacity ignored: shed {}",
            report.shed_fraction()
        );
    }

    #[test]
    fn bounded_pool_hosts_many_nodes_on_two_shards() {
        let scn = ScenarioBuilder::new("engine-shards", 5)
            .nodes(32)
            .capacity_tps(1_000_000)
            .duration(TimeDelta::from_millis(1200))
            .warmup(TimeDelta::from_millis(600))
            .stw_window(TimeDelta::from_secs(1))
            .add_queries(
                Template::Avg,
                32,
                SourceProfile::steady(50, 5, Dataset::Uniform),
            )
            .build()
            .unwrap();
        let cfg = EngineConfig {
            shards: Some(2),
            ..Default::default()
        };
        let report = run_engine(&scn, cfg);
        assert_eq!(report.shards, 2);
        assert_eq!(report.nodes.len(), 32);
        // All 32 nodes ran their detectors on two threads.
        assert!(report.nodes.iter().all(|n| n.ticks > 0));
        assert!(!report.result_counts.is_empty());
    }

    #[test]
    fn shard_pool_never_exceeds_node_count() {
        let report = run_engine(
            &scenario(4, 100, 6),
            EngineConfig {
                shards: Some(64),
                ..Default::default()
            },
        );
        // The scenario has 2 nodes; the pool is clamped.
        assert_eq!(report.shards, 2);
    }

    /// Receives the next non-empty data batch routed by the pump.
    fn recv_batch_len(rx: &Receiver<ShardMsg>) -> usize {
        loop {
            let msg = rx.recv_timeout(Duration::from_secs(5)).expect("pump batch");
            if let EngineMsg::Batch(rb) = msg.msg {
                if !rb.batch.is_empty() {
                    return rb.batch.len();
                }
            }
        }
    }

    /// Regression: removing a pump slot used to discard the driver's
    /// fractional-tuple carry, so every remove/re-add cycle of a source
    /// whose rate does not divide its cadence rounded the lost fraction
    /// down — a systematic under-delivery under churn. The pump now
    /// stashes the carry by source id and restores it on re-add.
    #[test]
    fn pump_preserves_fractional_carry_across_remove_and_readd() {
        let (pump_tx, pump_rx) = unbounded::<PumpMsg>();
        let (tx, rx) = unbounded::<ShardMsg>();
        let epoch = Instant::now();
        let pool = BatchPool::new();
        let handle = thread::spawn(move || run_pump(pump_rx, vec![tx], epoch, pool));
        let install = || SourceInstall {
            query: QueryId(0),
            spec: themis_query::prelude::SourceSpec::plain(
                SourceId(0),
                None,
                themis_query::prelude::SourceKind::Cpu,
            ),
            // 5 t/s in 2 batches/s: 2.5 tuples per batch — emission
            // sizes alternate 2, 3 deterministically via the carry.
            profile: SourceProfile::steady(5, 2, Dataset::Uniform),
            seed: 8,
            node: 0,
            fragment: 0,
        };
        pump_tx.send(PumpMsg::Add(vec![install()])).unwrap();
        assert_eq!(recv_batch_len(&rx), 2, "first emission floors 2.5");
        // Remove the query and immediately re-add the same source; the
        // 0.5-tuple balance must survive the slot teardown.
        pump_tx.send(PumpMsg::Remove(QueryId(0))).unwrap();
        pump_tx.send(PumpMsg::Add(vec![install()])).unwrap();
        assert_eq!(recv_batch_len(&rx), 3, "restored carry rounds up");
        pump_tx.send(PumpMsg::Stop).unwrap();
        handle.join().unwrap();
    }

    /// The engine-wide recycle loop closes: sources acquire from the pool
    /// the same batches nodes return after processing them.
    #[test]
    fn engine_batches_recycle_through_the_pool() {
        let mut engine = Engine::start(&scenario(2, 100, 3), EngineConfig::default());
        engine.run_for(Duration::from_millis(1500));
        let stats = engine.batch_pool().stats();
        assert!(stats.recycled > 0, "nothing recycled: {stats:?}");
        assert!(stats.reused > 0, "nothing reused: {stats:?}");
        engine.finish();
    }

    #[test]
    fn attach_and_detach_churn_queries_at_runtime() {
        let scn = ScenarioBuilder::new("engine-churn", 7)
            .nodes(4)
            .capacity_tps(1_000_000)
            .duration(TimeDelta::from_millis(2000))
            .warmup(TimeDelta::from_millis(500))
            .stw_window(TimeDelta::from_secs(1))
            .add_queries(
                Template::Avg,
                2,
                SourceProfile::steady(100, 5, Dataset::Uniform),
            )
            .build()
            .unwrap();
        let mut engine = Engine::start(
            &scn,
            EngineConfig {
                record_series: true,
                ..Default::default()
            },
        );
        assert_eq!(engine.active_queries(), 2);
        engine.run_for(Duration::from_millis(800));
        // Two arrivals: fresh ids, placed on the two empty nodes.
        let ids = engine.attach_queries(
            Template::Avg,
            2,
            SourceProfile::steady(100, 5, Dataset::Uniform),
        );
        assert_eq!(ids, vec![QueryId(2), QueryId(3)]);
        assert_eq!(engine.active_queries(), 4);
        engine.run_for(Duration::from_millis(1800));
        // One departure.
        assert!(engine.detach_query(ids[0]));
        assert!(!engine.detach_query(ids[0]), "double detach is a no-op");
        assert_eq!(engine.active_queries(), 3);
        engine.run_for(Duration::from_millis(700));
        let report = engine.finish();
        // The attached queries produced results and samples.
        assert!(report.result_counts.contains_key(&ids[0]));
        assert!(report.result_counts.contains_key(&ids[1]));
        let sic_attached = report
            .per_query_sic
            .iter()
            .find(|&&(q, _)| q == ids[1])
            .map(|&(_, s)| s)
            .unwrap();
        assert!(sic_attached > 0.2, "attached query starved: {sic_attached}");
        // Series cover residents and the churn cohort.
        assert!(report.sic_series.len() >= 3);
        // The detached query's node hosted nothing else, so it was torn
        // down mid-run: its tick count sits well below a full-run node's.
        let resident_ticks = report.nodes[0].ticks.max(report.nodes[1].ticks);
        let churn_ticks = report.nodes[2].ticks.min(report.nodes[3].ticks);
        assert!(churn_ticks > 0, "churn nodes ticked while attached");
        assert!(
            churn_ticks < resident_ticks,
            "detached node kept ticking: {churn_ticks} vs {resident_ticks}"
        );
    }

    /// An overloaded scenario on 2 nodes (4 queries x 400 t/s against a
    /// declared 300 t/s per node), used by the durability tests. Batches
    /// arrive 20x per second so individual batches (20 tuples) stay well
    /// below the per-interval capacity — shedding is batch-granular, and
    /// results must keep flowing while overloaded.
    fn overload_scenario(name: &str, seed: u64) -> Scenario {
        ScenarioBuilder::new(name, seed)
            .nodes(2)
            .capacity_tps(300)
            .duration(TimeDelta::from_millis(2500))
            .warmup(TimeDelta::from_millis(500))
            .stw_window(TimeDelta::from_secs(2))
            .add_queries(
                Template::Avg,
                4,
                SourceProfile::steady(400, 20, Dataset::Uniform),
            )
            .build()
            .unwrap()
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("themis-engine-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Regression: a shard thread lost to a panicking shedder used to
    /// poison the whole report (`finish` propagated the panic). It now
    /// surfaces an [`EngineError`] naming the shard and policy while the
    /// surviving shards drain and report normally.
    #[test]
    fn shard_panic_surfaces_engine_error_and_survivors_drain() {
        struct PanickyShedder;
        impl Shedder for PanickyShedder {
            fn select_to_keep(&mut self, _: usize, _: &[QueryBufferState]) -> ShedDecision {
                panic!("injected shedder fault")
            }
            fn name(&self) -> &'static str {
                "panicky"
            }
        }
        // Node 0's shedder panics on its first overload invocation; node 1
        // runs plain FIFO. With 2 shards, node 0's shard dies and node 1's
        // survives.
        let seed = 77_u64;
        let panic_seed = seed ^ 0xE0_0000;
        let fifo: Policy = PolicyKind::Fifo.into();
        let policy = Policy::new(
            "panic-on-node0",
            Arc::new(move |s| {
                if s == panic_seed {
                    Box::new(PanickyShedder) as Box<dyn Shedder>
                } else {
                    fifo.build(s)
                }
            }),
        );
        let report = run_engine(
            &overload_scenario("engine-panic", seed),
            EngineConfig {
                policy,
                enforce_capacity: true,
                shards: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(report.errors.len(), 1, "errors: {:?}", report.errors);
        match &report.errors[0] {
            EngineError::Shard {
                shard,
                policy,
                detail,
            } => {
                assert_eq!(*shard, 0);
                assert_eq!(policy, "panic-on-node0");
                assert!(detail.contains("injected shedder fault"));
            }
            other => panic!("expected a shard error, got {other}"),
        }
        // The surviving shard's node kept ticking and reported.
        assert!(report.nodes[1].ticks > 0, "survivor did not drain");
    }

    /// End-to-end fault injection: kill a shard mid-overload, restart it,
    /// and restore its SIC tables and window panes from checkpoint + WAL
    /// tail. The run finishes clean and leaves a readable durable log.
    #[test]
    fn fault_plan_kills_and_recovers_a_shard_with_durability() {
        let dir = test_dir("recovery");
        let cfg = EngineConfig {
            policy: PolicyKind::BalanceSic.into(),
            enforce_capacity: true,
            shards: Some(2),
            checkpoint_every: Some(Duration::from_millis(200)),
            durability_dir: Some(dir.clone()),
            sic_divergence_bound: 0.5,
            fault_plan: Some(FaultPlan {
                shard: 0,
                kill_after: Duration::from_millis(1200),
                restart_after: Duration::from_millis(1700),
            }),
            ..Default::default()
        };
        let mut engine = Engine::start(&overload_scenario("engine-recovery", 11), cfg);
        engine.run_for(Duration::from_millis(3000));
        let report = engine.finish();
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        // The killed shard's node was re-attached and kept ticking.
        assert!(report.nodes[0].ticks > 0);
        // Every query produced results across the crash.
        assert_eq!(report.result_counts.len(), 4);
        // The shard left a durable log we can read back.
        let restore = themis_core::wal::restore_shard(&dir, 0)
            .expect("readable log")
            .expect("shard logged state");
        assert!(
            !restore.snapshots.is_empty() || !restore.deltas.is_empty(),
            "durable log is empty"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// [`Engine::restore_from`] replays a previous run's durable state
    /// into a freshly started engine (same scenario, so the re-attached
    /// fragments match the logged panes).
    #[test]
    fn restore_from_replays_durable_state_into_a_fresh_engine() {
        let dir = test_dir("restore");
        let cfg = EngineConfig {
            policy: PolicyKind::BalanceSic.into(),
            enforce_capacity: true,
            shards: Some(2),
            checkpoint_every: Some(Duration::from_millis(200)),
            durability_dir: Some(dir.clone()),
            ..Default::default()
        };
        let scn = overload_scenario("engine-restore", 13);
        let mut first = Engine::start(&scn, cfg.clone());
        first.run_for(Duration::from_millis(1500));
        first.finish();

        let mut second = Engine::start(&scn, cfg);
        second.restore_from(&dir);
        second.run_for(Duration::from_millis(800));
        let report = second.finish();
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        assert!(report.nodes.iter().all(|n| n.ticks > 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
