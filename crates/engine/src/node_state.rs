//! Per-node state of the prototype engine: a heap-allocated incarnation of
//! the THEMIS node of Figure 5 (input buffer, overload detector, online
//! cost model, tuple shedder, operator execution).
//!
//! The seed engine kept all of this on the stack of a dedicated OS thread
//! per node; extracting it into [`NodeState`] lets one shard thread
//! interleave thousands of nodes (see [`crate::shard`]). Since the churn
//! refactor, nodes are *dynamic*: fragments install via
//! [`NodeState::attach_fragment`] and depart via
//! [`NodeState::detach_query`] (which also purges the departing query's
//! buffered batches), so queries arrive and leave a running engine.
//!
//! The shedding tick carries two correctness fixes over the seed worker:
//!
//! 1. **No starvation** — the tick fires whenever its deadline has passed,
//!    even while messages are still queued. The old drain loop `continue`d
//!    on every received message, so a sustained input flood kept
//!    `recv_timeout` returning `Ok` and postponed the detector/shedder
//!    indefinitely — exactly the overload situation the tick exists for.
//! 2. **No drift storm** — a tick that overruns its period reschedules to
//!    the next *future* deadline instead of accumulating a backlog of past
//!    deadlines. The old `next_tick += interval` produced a burst of
//!    zero-timeout back-to-back ticks after an overrun, each observing a
//!    near-empty buffer and corrupting the cost model's per-tuple EWMA
//!    with tiny windows. Skipped periods are counted in
//!    [`NodeReport::late_ticks`], and the cost model additionally weighs
//!    observations by actual window length
//!    ([`CostModel::observe_windowed`]).

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use themis_core::prelude::*;
use themis_query::prelude::*;

use crate::messages::{NodeReport, RoutedBatch};
use crate::shard::ShardRouting;

/// Per-node static configuration.
pub struct NodeConfig {
    /// Node id.
    pub id: NodeId,
    /// Shedding interval (wall time).
    pub interval: TimeDelta,
    /// STW configuration.
    pub stw: StwConfig,
    /// Tuple shedder.
    pub shedder: Box<dyn Shedder>,
    /// Artificial per-tuple processing cost (spin), so that modest source
    /// rates overload the node reproducibly. `TimeDelta::ZERO` disables it.
    pub synthetic_cost: TimeDelta,
    /// Initial capacity estimate (tuples per interval) used before the
    /// cost model has observations.
    pub initial_capacity: usize,
    /// Fixed shedding threshold (tuples per interval). `Some` pins the
    /// detector to a declared node capacity — the engine analogue of the
    /// simulator's `node_capacity_tps` — instead of the online cost-model
    /// estimate; experiments at 1000+-node scale use it to create genuine
    /// overload without burning wall time in the synthetic-cost spin.
    pub fixed_capacity: Option<usize>,
    /// Shared batch pool: shed batches and the node's operator windows
    /// recycle their spent columns into it (and the source pump acquires
    /// from it), so steady-state ingest stops round-tripping the
    /// allocator. `None` disables recycling.
    pub pool: Option<BatchPool>,
}

/// One query fragment hosted by a node, plus where its emissions go.
struct HostedFragment {
    runtime: FragmentRuntime,
    /// Downstream `(node, fragment)` of the same query; `None` emits
    /// query results.
    downstream: Option<(usize, usize)>,
}

/// The full mutable state of one engine node, owned by a shard thread.
pub struct NodeState {
    /// Global node index (for routing and report scatter).
    pub node: usize,
    runtimes: BTreeMap<(QueryId, usize), HostedFragment>,
    assigners: HashMap<QueryId, SourceSicAssigner>,
    buffer: Vec<RoutedBatch>,
    sic_table: SicTable,
    cost_model: CostModel,
    detector: OverloadDetector,
    shedder: Box<dyn Shedder>,
    synthetic_cost: TimeDelta,
    fixed_capacity: Option<usize>,
    stw: StwConfig,
    interval: Duration,
    interval_delta: TimeDelta,
    next_tick: Instant,
    last_tick: Instant,
    report: NodeReport,
    pool: Option<BatchPool>,
    /// Sum of absolute SIC-table movement since the last checkpoint — the
    /// AF-Stream divergence measure that triggers early checkpoints.
    sic_drift: f64,
}

impl NodeState {
    /// Builds the (fragment-less) state for global node `node`, with its
    /// first shedding deadline at `first_tick`. Fragments install through
    /// [`NodeState::attach_fragment`].
    pub fn new(config: NodeConfig, node: usize, first_tick: Instant) -> Self {
        // Clamped to 1 us: a zero interval would pin the deadline in the
        // past forever (`deadline + ZERO * periods == deadline`), keeping
        // this node the heap minimum and starving its shard-mates' ticks.
        let interval = Duration::from_micros(config.interval.as_micros().max(1));
        NodeState {
            node,
            runtimes: BTreeMap::new(),
            assigners: HashMap::new(),
            buffer: Vec::new(),
            sic_table: SicTable::new(),
            cost_model: CostModel::default(),
            detector: OverloadDetector::new(config.interval, config.initial_capacity),
            shedder: config.shedder,
            synthetic_cost: config.synthetic_cost,
            fixed_capacity: config.fixed_capacity,
            stw: config.stw,
            interval,
            interval_delta: config.interval,
            next_tick: first_tick,
            last_tick: first_tick.checked_sub(interval).unwrap_or(first_tick),
            report: NodeReport::default(),
            pool: config.pool,
            sic_drift: 0.0,
        }
    }

    /// Installs one fragment of `query` on this node, routing its
    /// emissions to `downstream` (`None` = the query-result sink).
    /// Re-attaching an already-hosted fragment resets its runtime.
    pub fn attach_fragment(
        &mut self,
        query: &QuerySpec,
        fragment: usize,
        downstream: Option<(usize, usize)>,
    ) {
        let mut runtime = FragmentRuntime::new(&query.fragments[fragment]);
        if let Some(pool) = &self.pool {
            runtime.set_pool(pool);
        }
        self.runtimes.insert(
            (query.id, fragment),
            HostedFragment {
                runtime,
                downstream,
            },
        );
        let stw = self.stw;
        let n_sources = query.n_sources();
        self.assigners
            .entry(query.id)
            .or_insert_with(|| SourceSicAssigner::new(stw, n_sources));
    }

    /// Removes every fragment of `query` from this node, purging its
    /// buffered batches, SIC assigner and coordinator-table entry.
    /// Returns the number of fragments still hosted afterwards (0 means
    /// the shard should tear the node down).
    pub fn detach_query(&mut self, query: QueryId) -> usize {
        self.runtimes.retain(|&(q, _), _| q != query);
        self.assigners.remove(&query);
        self.sic_table.remove(query);
        self.buffer.retain(|rb| rb.query != query);
        self.runtimes.len()
    }

    /// Number of fragments hosted.
    pub fn n_fragments(&self) -> usize {
        self.runtimes.len()
    }

    /// The node's next shedding deadline.
    pub fn next_tick(&self) -> Instant {
        self.next_tick
    }

    /// True when the shedding deadline has passed and the tick must fire
    /// before any further message draining.
    pub fn tick_due(&self, now: Instant) -> bool {
        now >= self.next_tick
    }

    /// Counters accumulated so far.
    pub fn report(&self) -> &NodeReport {
        &self.report
    }

    /// Consumes the state, yielding the node's counters.
    pub fn into_report(self) -> NodeReport {
        self.report
    }

    /// Enqueues an incoming data batch, stamping source batches with SIC.
    pub fn enqueue(&mut self, mut rb: RoutedBatch, now: Timestamp) {
        self.report.arrived_tuples += rb.batch.len() as u64;
        if rb.batch.source().is_some() {
            if let Some(a) = self.assigners.get_mut(&rb.query) {
                a.stamp(now, &mut rb.batch);
            }
        }
        self.buffer.push(rb);
    }

    /// Applies a coordinator SIC update, accumulating the absolute table
    /// movement into the divergence measure ([`NodeState::sic_drift`]).
    pub fn apply_sic(&mut self, update: &SicUpdate) {
        self.report.sic_updates += 1;
        let old = self.sic_table.get(update.query);
        self.sic_table.apply(update);
        self.sic_drift += (update.sic.value() - old.value()).abs();
    }

    /// Absolute SIC-table movement since the last checkpoint. A shard
    /// checkpoints early when any node's drift exceeds the configured
    /// divergence bound (AF-Stream-style bounded divergence).
    pub fn sic_drift(&self) -> f64 {
        self.sic_drift
    }

    /// Directly overwrites one SIC-table entry (WAL-tail replay during
    /// restore — the delta carries the absolute value).
    pub fn set_sic(&mut self, query: QueryId, sic: Sic) {
        self.sic_table.set(query, sic);
    }

    /// Captures the node's recoverable state — SIC table plus every
    /// buffered window pane — and resets the divergence accumulator.
    pub fn checkpoint(&mut self) -> NodeSnapshot {
        self.sic_drift = 0.0;
        let mut sic: Vec<(QueryId, Sic)> = self.sic_table.entries().collect();
        sic.sort_by_key(|&(q, _)| q);
        let mut panes = Vec::new();
        for (&(query, fragment), hf) in self.runtimes.iter() {
            for (op, key, port, batch) in hf.runtime.snapshot_windows() {
                panes.push(PaneRecord {
                    query,
                    fragment,
                    op,
                    port,
                    key,
                    batch,
                });
            }
        }
        NodeSnapshot {
            node: self.node,
            sic,
            panes,
        }
    }

    /// Overlays a checkpointed snapshot onto this node: SIC entries
    /// overwrite the table, panes land in their operators' window buffers.
    /// Panes of fragments no longer hosted here are skipped — the bounded
    /// divergence a reconfigured restore accepts.
    pub fn restore(&mut self, snap: &NodeSnapshot) {
        for &(query, sic) in &snap.sic {
            self.sic_table.set(query, sic);
        }
        for pane in &snap.panes {
            if let Some(hf) = self.runtimes.get_mut(&(pane.query, pane.fragment)) {
                hf.runtime
                    .restore_window(pane.op, pane.key, pane.port, pane.batch.clone());
            }
        }
    }

    /// Fires one shedding tick at wall time `now`: overload detection,
    /// shedding when the backlog exceeds capacity, fragment execution, and
    /// cost-model feedback — then reschedules the deadline past `now`.
    pub fn tick(&mut self, now: Instant, epoch: Instant, routing: &ShardRouting) {
        self.report.ticks += 1;
        let window = TimeDelta::from_micros(
            now.saturating_duration_since(self.last_tick).as_micros() as u64,
        );
        self.last_tick = now;
        self.reschedule(now);

        let now_ts = Timestamp(epoch.elapsed().as_micros() as u64);
        let c = self
            .fixed_capacity
            .unwrap_or_else(|| self.detector.threshold(&self.cost_model));
        let buffered: usize = self.buffer.iter().map(|rb| rb.batch.len()).sum();

        // The decision is applied as a bitmap over buffer slots: shed
        // batches are bit-marked, kept batches move their columns onward.
        let shed = if buffered > c {
            self.report.shed_invocations += 1;
            let states = snapshot(&self.buffer, &self.sic_table);
            let shed_start = Instant::now();
            let decision = self.shedder.select_to_keep(c, &states);
            self.report.shed_time_ns += shed_start.elapsed().as_nanos() as u64;
            self.report.shed_decisions += 1;
            self.report.kept_tuples += decision.kept_tuples as u64;
            self.report.shed_tuples += decision.shed_tuples as u64;
            self.report.shed_batches += decision.shed_batches as u64;
            decision.shed_bitmap(self.buffer.len())
        } else {
            self.report.kept_tuples += buffered as u64;
            DropBitmap::new()
        };

        let busy_start = Instant::now();
        let mut kept_tuples = 0u64;
        let drained = std::mem::take(&mut self.buffer);
        for (idx, rb) in drained.into_iter().enumerate() {
            if shed.is_dropped(idx) {
                // A shed batch's columns are as reusable as processed
                // ones — under sustained overload this is the busiest
                // recycle point of all.
                if let Some(pool) = &self.pool {
                    pool.recycle(rb.batch.into_data());
                }
                continue;
            }
            kept_tuples += rb.batch.len() as u64;
            if !self.synthetic_cost.is_zero() {
                spin_for(self.synthetic_cost.as_micros() * rb.batch.len() as u64);
            }
            if let Some(hf) = self.runtimes.get_mut(&(rb.query, rb.fragment)) {
                let (q, f) = (rb.query, rb.fragment);
                let emissions = hf.runtime.ingest(rb.ingress, rb.batch.into_data(), now_ts);
                routing.route(q, f, hf.downstream, emissions);
            }
        }
        for (&(q, f), hf) in self.runtimes.iter_mut() {
            let emissions = hf.runtime.tick(now_ts);
            routing.route(q, f, hf.downstream, emissions);
        }
        let busy = TimeDelta::from_micros(busy_start.elapsed().as_micros() as u64);
        self.cost_model
            .observe_windowed(busy, kept_tuples, window, self.interval_delta);
    }

    /// Advances the deadline one period, skipping any periods `now` has
    /// already overrun so the next tick is strictly in the future (the
    /// drift fix — no burst of zero-timeout catch-up ticks).
    fn reschedule(&mut self, now: Instant) {
        let deadline = self.next_tick;
        self.next_tick = deadline + self.interval;
        if self.next_tick <= now {
            self.report.late_ticks += 1;
            let behind = now.duration_since(deadline).as_nanos();
            let periods = (behind / self.interval.as_nanos().max(1))
                .saturating_add(1)
                .min(u32::MAX as u128) as u32;
            self.next_tick = deadline + self.interval * periods;
        }
    }
}

/// Groups the buffered batches by query and projects each query's base SIC
/// (coordinator-reported SIC minus what is sitting in this buffer) for the
/// shedder.
pub(crate) fn snapshot(buffer: &[RoutedBatch], sic_table: &SicTable) -> Vec<QueryBufferState> {
    let mut by_query: HashMap<QueryId, Vec<CandidateBatch>> = HashMap::new();
    for (idx, rb) in buffer.iter().enumerate() {
        by_query.entry(rb.query).or_default().push(CandidateBatch {
            buffer_index: idx,
            sic: rb.batch.sic(),
            tuples: rb.batch.len(),
            created: rb.batch.created(),
        });
    }
    let mut states: Vec<QueryBufferState> = by_query
        .into_iter()
        .map(|(query, batches)| {
            let buffered: Sic = batches.iter().map(|b| b.sic).sum();
            let reported = sic_table.get(query);
            QueryBufferState {
                query,
                base_sic: Sic((reported.value() - buffered.value()).max(0.0)),
                batches,
            }
        })
        .collect();
    states.sort_by_key(|s| s.query);
    states
}

/// Busy-spins for roughly `micros` microseconds (sleeping is too coarse at
/// this granularity).
fn spin_for(micros: u64) {
    let start = Instant::now();
    let target = Duration::from_micros(micros);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_query::prelude::Template;

    fn config(interval_ms: u64) -> NodeConfig {
        NodeConfig {
            id: NodeId(0),
            interval: TimeDelta::from_millis(interval_ms),
            stw: StwConfig::PAPER_DEFAULT,
            shedder: PolicyKind::BalanceSic.build(7),
            synthetic_cost: TimeDelta::ZERO,
            initial_capacity: 100,
            fixed_capacity: None,
            pool: None,
        }
    }

    fn state(interval_ms: u64, first_tick: Instant) -> NodeState {
        let mut ids = IdGen::new();
        let query = Template::Avg.build(QueryId(0), &mut ids);
        let mut s = NodeState::new(config(interval_ms), 0, first_tick);
        s.attach_fragment(&query, 0, None);
        s
    }

    #[test]
    fn deadline_advances_one_period_when_on_time() {
        let base = Instant::now() + Duration::from_secs(60);
        let mut s = state(50, base);
        assert!(s.tick_due(base));
        s.reschedule(base);
        assert_eq!(s.next_tick(), base + Duration::from_millis(50));
        assert_eq!(s.report().late_ticks, 0);
    }

    #[test]
    fn overrun_skips_missed_periods_to_future_deadline() {
        let base = Instant::now() + Duration::from_secs(60);
        let mut s = state(50, base);
        // The tick fires 5.7 intervals after its deadline (an overrunning
        // predecessor or a message flood held it up).
        let now = base + Duration::from_micros(5_700 * 50);
        s.reschedule(now);
        // Seed behaviour was `next_tick += interval`, leaving 5 deadlines
        // in the past — a storm of zero-timeout ticks. Fixed: the next
        // deadline is the first schedule point strictly after `now`.
        assert!(s.next_tick() > now, "deadline left in the past");
        assert_eq!(s.next_tick(), base + Duration::from_millis(6 * 50));
        assert!(!s.tick_due(now), "immediate re-tick would storm");
        assert_eq!(s.report().late_ticks, 1);
    }

    #[test]
    fn exact_multiple_overrun_still_lands_in_future() {
        let base = Instant::now() + Duration::from_secs(60);
        let mut s = state(50, base);
        let now = base + Duration::from_millis(3 * 50);
        s.reschedule(now);
        assert_eq!(s.next_tick(), base + Duration::from_millis(4 * 50));
        assert_eq!(s.report().late_ticks, 1);
    }

    #[test]
    fn lateness_under_one_period_is_not_late() {
        let base = Instant::now() + Duration::from_secs(60);
        let mut s = state(50, base);
        s.reschedule(base + Duration::from_millis(20));
        assert_eq!(s.next_tick(), base + Duration::from_millis(50));
        assert_eq!(s.report().late_ticks, 0);
    }

    #[test]
    fn enqueue_counts_arrivals() {
        let base = Instant::now();
        let mut s = state(50, base);
        let tuples = vec![
            Tuple::measurement(Timestamp(0), Sic(0.1), 1.0),
            Tuple::measurement(Timestamp(0), Sic(0.1), 2.0),
        ];
        s.enqueue(
            RoutedBatch {
                query: QueryId(0),
                fragment: 0,
                ingress: Ingress::Source(SourceId(0)),
                batch: Batch::new(QueryId(0), Timestamp(0), tuples),
            },
            Timestamp(0),
        );
        assert_eq!(s.report().arrived_tuples, 2);
    }

    #[test]
    fn detach_purges_fragments_buffer_and_assigner() {
        let mut ids = IdGen::new();
        let q0 = Template::Avg.build(QueryId(0), &mut ids);
        let q1 = Template::Avg.build(QueryId(1), &mut ids);
        let base = Instant::now();
        let mut s = NodeState::new(config(50), 0, base);
        s.attach_fragment(&q0, 0, None);
        s.attach_fragment(&q1, 0, None);
        assert_eq!(s.n_fragments(), 2);
        for (q, src) in [(&q0, q0.sources[0].id), (&q1, q1.sources[0].id)] {
            s.enqueue(
                RoutedBatch {
                    query: q.id,
                    fragment: 0,
                    ingress: Ingress::Source(src),
                    batch: Batch::new(
                        q.id,
                        Timestamp(0),
                        vec![Tuple::measurement(Timestamp(0), Sic(0.1), 1.0)],
                    ),
                },
                Timestamp(0),
            );
        }
        assert_eq!(s.buffer.len(), 2);
        let remaining = s.detach_query(q0.id);
        assert_eq!(remaining, 1);
        assert_eq!(s.n_fragments(), 1);
        assert_eq!(s.buffer.len(), 1, "q0's buffered batch purged");
        assert_eq!(s.buffer[0].query, q1.id);
        assert!(!s.assigners.contains_key(&q0.id));
        // Detaching the last query empties the node.
        assert_eq!(s.detach_query(q1.id), 0);
    }

    #[test]
    fn fixed_capacity_pins_the_threshold() {
        let mut ids = IdGen::new();
        let query = Template::Avg.build(QueryId(0), &mut ids);
        let base = Instant::now();
        let mut cfg = config(50);
        cfg.fixed_capacity = Some(3);
        let mut s = NodeState::new(cfg, 0, base);
        s.attach_fragment(&query, 0, None);
        let src = query.sources[0].id;
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| Tuple::measurement(Timestamp(0), Sic(0.01), i as f64))
            .collect();
        s.enqueue(
            RoutedBatch {
                query: query.id,
                fragment: 0,
                ingress: Ingress::Source(src),
                batch: Batch::from_source(query.id, src, Timestamp(0), tuples),
            },
            Timestamp(0),
        );
        let (tx, _rx) = crossbeam::channel::unbounded();
        let (results_tx, _results_rx) = crossbeam::channel::unbounded();
        let routing = ShardRouting {
            node_txs: vec![tx],
            results_tx,
        };
        s.tick(base, base, &routing);
        // 10 buffered > 3 fixed capacity, despite the cost model having
        // no reason to shed (zero synthetic cost).
        assert_eq!(s.report().shed_invocations, 1);
        assert!(s.report().shed_tuples >= 7);
    }

    #[test]
    fn spin_roughly_waits() {
        let t0 = Instant::now();
        spin_for(200);
        let us = t0.elapsed().as_micros();
        assert!(us >= 200, "spun only {us}us");
    }

    #[test]
    fn snapshot_projects_base_sic() {
        let tuples = vec![Tuple::measurement(Timestamp(0), Sic(0.2), 1.0)];
        let rb = RoutedBatch {
            query: QueryId(1),
            fragment: 0,
            ingress: Ingress::Source(SourceId(0)),
            batch: Batch::new(QueryId(1), Timestamp(0), tuples),
        };
        let mut table = SicTable::new();
        table.set(QueryId(1), Sic(0.5));
        let states = snapshot(&[rb], &table);
        assert_eq!(states.len(), 1);
        assert!((states[0].base_sic.value() - 0.3).abs() < 1e-12);
    }
}
