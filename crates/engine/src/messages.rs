//! Messages and reports exchanged inside the prototype engine.

use std::sync::Arc;

use themis_core::prelude::*;
use themis_query::prelude::{Ingress, QuerySpec};

use crate::node_state::NodeConfig;

/// A batch plus routing info (same shape as the simulator's).
#[derive(Debug, Clone)]
pub struct RoutedBatch {
    /// Owning query.
    pub query: QueryId,
    /// Destination fragment.
    pub fragment: usize,
    /// Entry point into the fragment.
    pub ingress: Ingress,
    /// Payload.
    pub batch: Batch,
}

/// Installs one fragment of a query on a node — the unit of runtime query
/// churn. The first attach addressed to a node *installs* the node's state
/// on its shard (using `config`); later attaches only add fragments.
pub struct AttachFragment {
    /// Global node index hosting the fragment.
    pub node: usize,
    /// Node configuration, consumed only when the node is not yet
    /// installed on its shard (the shedder instance inside is per-node).
    pub config: NodeConfig,
    /// The owning query (shared, immutable across shards).
    pub query: Arc<QuerySpec>,
    /// Fragment index within the query.
    pub fragment: usize,
    /// Where this fragment's emissions go: a downstream `(node, fragment)`
    /// of the same query, or `None` for the query-result sink.
    pub downstream: Option<(usize, usize)>,
}

/// Messages delivered to engine nodes.
pub enum EngineMsg {
    /// A data batch.
    Batch(RoutedBatch),
    /// A coordinator SIC update.
    Sic(SicUpdate),
    /// Install a query fragment on the addressed node (runtime query
    /// arrival; installs the node itself if absent).
    Attach(Box<AttachFragment>),
    /// Remove every fragment of `query` from the addressed node (runtime
    /// query departure). A node left hosting nothing is torn down: its
    /// counters freeze and its shedding deadline is abandoned, so it
    /// never ticks again.
    Detach {
        /// The departing query.
        query: QueryId,
    },
    /// Simulate a crash of the receiving shard: every node's state is
    /// dropped on the floor (reports are preserved for final accounting)
    /// and durability writes stop — a dead process writes nothing — until
    /// [`EngineMsg::Recover`] arrives. The thread and its channel stay up,
    /// so in-flight traffic drains exactly like messages addressed to a
    /// torn-down node.
    Crash,
    /// Restore the shard from its durable log under `dir` (fault-injection
    /// restart, or engine-wide [`crate::engine::Engine::restore_from`]). Arrives
    /// after the crashed nodes' fragments have been re-attached; overlays
    /// checkpointed SIC tables and window panes, then replays the WAL
    /// tail. Re-enables durability writes.
    Recover {
        /// Durability root directory (the shard reads `dir/shard-<i>/`).
        dir: std::path::PathBuf,
        /// The shard's own index under `dir`.
        shard: usize,
    },
    /// Stop the receiving shard (all of its nodes).
    Shutdown,
}

/// Envelope delivered to a shard thread: the destination node plus the
/// payload. Every sender addressing node `n` holds a clone of the owning
/// shard's channel, so one shard multiplexes messages for all of its nodes.
pub struct ShardMsg {
    /// Global node index the payload is for (ignored for
    /// [`EngineMsg::Shutdown`], which stops the whole shard).
    pub node: usize,
    /// Payload.
    pub msg: EngineMsg,
}

/// A query-result emission observed by the coordinator thread.
#[derive(Debug, Clone)]
pub struct ResultEvent {
    /// The emitting query.
    pub query: QueryId,
    /// Emission timestamp (logical).
    pub at: Timestamp,
    /// SIC mass of the emission.
    pub sic: Sic,
    /// Result rows.
    pub rows: Vec<Row>,
}

/// Counters accumulated by one node worker.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Tuples arrived (pre-shedding).
    pub arrived_tuples: u64,
    /// Tuples admitted.
    pub kept_tuples: u64,
    /// Tuples shed.
    pub shed_tuples: u64,
    /// Batches shed.
    pub shed_batches: u64,
    /// Shedder invocations under overload.
    pub shed_invocations: u64,
    /// Total wall time spent inside `select_to_keep`, nanoseconds.
    pub shed_time_ns: u64,
    /// Number of timed shedder calls.
    pub shed_decisions: u64,
    /// Coordinator updates received.
    pub sic_updates: u64,
    /// Shedding ticks fired (detector invocations).
    pub ticks: u64,
    /// Ticks that fired at least one full interval past their deadline
    /// (starved by message pressure or delayed by an overrunning
    /// predecessor); the skipped periods are dropped, not replayed.
    pub late_ticks: u64,
}

impl NodeReport {
    /// Mean shedder execution time per invocation, in microseconds
    /// (the §7.6 overhead metric).
    pub fn mean_shed_time_us(&self) -> f64 {
        if self.shed_decisions == 0 {
            0.0
        } else {
            self.shed_time_ns as f64 / self.shed_decisions as f64 / 1_000.0
        }
    }

    /// Adds another report's counters onto this one — used when a node is
    /// torn down and later re-installed on its shard (churn), so the final
    /// per-node report covers every incarnation.
    pub fn absorb(&mut self, other: &NodeReport) {
        self.arrived_tuples += other.arrived_tuples;
        self.kept_tuples += other.kept_tuples;
        self.shed_tuples += other.shed_tuples;
        self.shed_batches += other.shed_batches;
        self.shed_invocations += other.shed_invocations;
        self.shed_time_ns += other.shed_time_ns;
        self.shed_decisions += other.shed_decisions;
        self.sic_updates += other.sic_updates;
        self.ticks += other.ticks;
        self.late_ticks += other.late_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_shed_time() {
        let mut r = NodeReport::default();
        assert_eq!(r.mean_shed_time_us(), 0.0);
        r.shed_time_ns = 3_000_000;
        r.shed_decisions = 3;
        assert_eq!(r.mean_shed_time_us(), 1000.0);
    }
}
