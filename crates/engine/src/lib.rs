//! # themis-engine
//!
//! The multi-threaded THEMIS prototype (Figure 5 of the paper): per-node
//! worker threads with input buffers, a wall-clock overload detector and
//! cost model, the BALANCE-SIC tuple shedder, a source pump and a
//! coordinator loop disseminating result SIC values.
//!
//! The engine complements the deterministic simulator: it demonstrates the
//! system on real threads and channels and provides the measured shedder
//! execution times reported in the §7.6 overhead experiment.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod messages;
pub mod worker;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::engine::{run_engine, EngineConfig, EngineReport};
    pub use crate::messages::{EngineMsg, NodeReport, ResultEvent, RoutedBatch};
    pub use themis_core::shedder::PolicyKind;
}
