//! # themis-engine
//!
//! The multi-threaded THEMIS prototype (Figure 5 of the paper), sharded:
//! a bounded pool of shard threads ([`shard`]) hosts every FSPS node's
//! state ([`node_state`]) — input buffer, wall-clock overload detector,
//! online cost model, tuple shedder, fragment runtimes — alongside a
//! source pump and a coordinator loop disseminating result SIC values.
//!
//! Each shard multiplexes message draining, per-node shedding deadlines
//! (a min-heap of `(Instant, node)` entries) and fragment execution on
//! one OS thread, so 1000+-node scenarios run in a single process with
//! `shards + 2` threads (pool + source pump + the coordinator on the
//! calling thread). Ticks fire whenever their deadline has
//! passed — a message flood cannot starve the overload detector — and an
//! overrunning tick skips its missed periods instead of storming.
//!
//! Queries **churn at runtime**: [`engine::Engine::attach_query`] installs
//! a fresh query's fragments on the least-loaded running nodes (shards
//! install node states on demand) and
//! [`engine::Engine::detach_query`] removes them again, tearing down
//! nodes left hosting nothing so their shedding deadlines never fire
//! again — the engine analogue of the simulator's query
//! arrival/departure dynamics.
//!
//! The engine complements the deterministic simulator: it demonstrates the
//! system on real threads and channels and provides the measured shedder
//! execution times reported in the §7.6 overhead experiment.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod messages;
pub mod node_state;
pub mod shard;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::engine::{
        default_shards, run_engine, Engine, EngineConfig, EngineError, EngineReport, FaultPlan,
    };
    pub use crate::messages::{
        AttachFragment, EngineMsg, NodeReport, ResultEvent, RoutedBatch, ShardMsg,
    };
    pub use crate::node_state::{NodeConfig, NodeState};
    pub use crate::shard::{run_shard, shard_assignment, shard_of, ShardDurability, ShardRouting};
    pub use themis_core::shedder::PolicyKind;
}
