//! The per-node worker thread of the prototype engine: a wall-clock
//! incarnation of the THEMIS node of Figure 5 (input buffer, overload
//! detector, online cost model, tuple shedder, operator execution).

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};

use themis_core::prelude::*;
use themis_query::prelude::*;

use crate::messages::{EngineMsg, NodeReport, ResultEvent, RoutedBatch};

/// Per-node static configuration.
pub struct WorkerConfig {
    /// Node id.
    pub id: NodeId,
    /// Shedding interval (wall time).
    pub interval: TimeDelta,
    /// STW configuration.
    pub stw: StwConfig,
    /// Tuple shedder.
    pub shedder: Box<dyn Shedder>,
    /// Artificial per-tuple processing cost (spin), so that modest source
    /// rates overload the node reproducibly. `TimeDelta::ZERO` disables it.
    pub synthetic_cost: TimeDelta,
    /// Initial capacity estimate (tuples per interval) used before the
    /// cost model has observations.
    pub initial_capacity: usize,
}

/// What a worker needs to route fragment outputs.
pub struct WorkerRouting {
    /// `(query, fragment)` -> downstream `(node index, fragment)`; absent
    /// means the fragment emits query results.
    pub downstream: HashMap<(QueryId, usize), (usize, usize)>,
    /// Senders to every node (index = node).
    pub node_txs: Vec<Sender<EngineMsg>>,
    /// Sink for query results.
    pub results_tx: Sender<ResultEvent>,
}

/// Runs the node loop until an [`EngineMsg::Shutdown`] arrives; returns the
/// node's counters.
pub fn run_worker(
    config: WorkerConfig,
    queries: Vec<QuerySpec>,
    fragments: Vec<(QueryId, usize)>,
    routing: WorkerRouting,
    rx: Receiver<EngineMsg>,
    epoch: Instant,
) -> NodeReport {
    let mut runtimes: BTreeMap<(QueryId, usize), FragmentRuntime> = BTreeMap::new();
    let mut assigners: HashMap<QueryId, SourceSicAssigner> = HashMap::new();
    let by_id: HashMap<QueryId, &QuerySpec> = queries.iter().map(|q| (q.id, q)).collect();
    for (q, fi) in &fragments {
        let spec = by_id[q];
        runtimes.insert((*q, *fi), FragmentRuntime::new(&spec.fragments[*fi]));
        assigners
            .entry(*q)
            .or_insert_with(|| SourceSicAssigner::new(config.stw, spec.n_sources()));
    }

    let mut buffer: Vec<RoutedBatch> = Vec::new();
    let mut sic_table = SicTable::new();
    let mut cost_model = CostModel::default();
    let detector = OverloadDetector::new(config.interval, config.initial_capacity);
    let mut shedder = config.shedder;
    let mut report = NodeReport::default();

    let now_ts = |epoch: Instant| Timestamp(epoch.elapsed().as_micros() as u64);
    let interval = std::time::Duration::from_micros(config.interval.as_micros());
    let mut next_tick = Instant::now() + interval;

    loop {
        // Drain messages until the tick deadline.
        let timeout = next_tick.saturating_duration_since(Instant::now());
        match rx.recv_timeout(timeout) {
            Ok(EngineMsg::Batch(mut rb)) => {
                report.arrived_tuples += rb.batch.len() as u64;
                if rb.batch.source().is_some() {
                    if let Some(a) = assigners.get_mut(&rb.query) {
                        a.stamp(now_ts(epoch), &mut rb.batch);
                    }
                }
                buffer.push(rb);
                continue;
            }
            Ok(EngineMsg::Sic(update)) => {
                report.sic_updates += 1;
                sic_table.apply(&update);
                continue;
            }
            Ok(EngineMsg::Shutdown) => break,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }

        // --- Tick: detector -> shedder -> processing. ---
        next_tick += interval;
        let now = now_ts(epoch);
        let c = detector.threshold(&cost_model);
        let buffered: usize = buffer.iter().map(|rb| rb.batch.len()).sum();

        let keep: Vec<usize> = if buffered > c {
            report.shed_invocations += 1;
            let states = snapshot(&buffer, &sic_table);
            let shed_start = Instant::now();
            let decision = shedder.select_to_keep(c, &states);
            report.shed_time_ns += shed_start.elapsed().as_nanos() as u64;
            report.shed_decisions += 1;
            report.kept_tuples += decision.kept_tuples as u64;
            report.shed_tuples += decision.shed_tuples as u64;
            report.shed_batches += decision.shed_batches as u64;
            let mut keep = decision.keep;
            keep.sort_unstable();
            keep
        } else {
            report.kept_tuples += buffered as u64;
            (0..buffer.len()).collect()
        };

        let busy_start = Instant::now();
        let mut kept_tuples = 0u64;
        let drained = std::mem::take(&mut buffer);
        let mut keep_iter = keep.into_iter().peekable();
        for (idx, rb) in drained.into_iter().enumerate() {
            if keep_iter.peek() == Some(&idx) {
                keep_iter.next();
            } else {
                continue;
            }
            kept_tuples += rb.batch.len() as u64;
            if !config.synthetic_cost.is_zero() {
                spin_for(config.synthetic_cost.as_micros() * rb.batch.len() as u64);
            }
            if let Some(rt) = runtimes.get_mut(&(rb.query, rb.fragment)) {
                let (q, f) = (rb.query, rb.fragment);
                let emissions = rt.ingest(rb.ingress, rb.batch.into_tuples(), now);
                route(&routing, q, f, emissions);
            }
        }
        for (&(q, f), rt) in runtimes.iter_mut() {
            let emissions = rt.tick(now);
            route(&routing, q, f, emissions);
        }
        let busy = TimeDelta::from_micros(busy_start.elapsed().as_micros() as u64);
        cost_model.observe(busy, kept_tuples);
    }
    report
}

fn route(
    routing: &WorkerRouting,
    query: QueryId,
    fragment: usize,
    emissions: Vec<themis_operators::op::Emission>,
) {
    for e in emissions {
        match routing.downstream.get(&(query, fragment)) {
            Some(&(node, df)) => {
                let rb = RoutedBatch {
                    query,
                    fragment: df,
                    ingress: Ingress::Upstream(fragment),
                    batch: Batch::new(query, e.at, e.tuples),
                };
                // A full channel or closed peer means shutdown is racing;
                // dropping the batch is equivalent to shedding it.
                let _ = routing.node_txs[node].send(EngineMsg::Batch(rb));
            }
            None => {
                let _ = routing.results_tx.send(ResultEvent {
                    query,
                    at: e.at,
                    sic: e.sic(),
                    rows: e.tuples.into_iter().map(|t| t.values).collect(),
                });
            }
        }
    }
}

fn snapshot(buffer: &[RoutedBatch], sic_table: &SicTable) -> Vec<QueryBufferState> {
    let mut by_query: HashMap<QueryId, Vec<CandidateBatch>> = HashMap::new();
    for (idx, rb) in buffer.iter().enumerate() {
        by_query.entry(rb.query).or_default().push(CandidateBatch {
            buffer_index: idx,
            sic: rb.batch.sic(),
            tuples: rb.batch.len(),
            created: rb.batch.created(),
        });
    }
    let mut states: Vec<QueryBufferState> = by_query
        .into_iter()
        .map(|(query, batches)| {
            let buffered: Sic = batches.iter().map(|b| b.sic).sum();
            let reported = sic_table.get(query);
            QueryBufferState {
                query,
                base_sic: Sic((reported.value() - buffered.value()).max(0.0)),
                batches,
            }
        })
        .collect();
    states.sort_by_key(|s| s.query);
    states
}

/// Busy-spins for roughly `micros` microseconds (sleeping is too coarse at
/// this granularity).
fn spin_for(micros: u64) {
    let start = Instant::now();
    let target = std::time::Duration::from_micros(micros);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_roughly_waits() {
        let t0 = Instant::now();
        spin_for(200);
        let us = t0.elapsed().as_micros();
        assert!(us >= 200, "spun only {us}us");
    }

    #[test]
    fn snapshot_projects_base_sic() {
        let tuples = vec![Tuple::measurement(Timestamp(0), Sic(0.2), 1.0)];
        let rb = RoutedBatch {
            query: QueryId(1),
            fragment: 0,
            ingress: Ingress::Source(SourceId(0)),
            batch: Batch::new(QueryId(1), Timestamp(0), tuples),
        };
        let mut table = SicTable::new();
        table.set(QueryId(1), Sic(0.5));
        let states = snapshot(&[rb], &table);
        assert_eq!(states.len(), 1);
        assert!((states[0].base_sic.value() - 0.3).abs() < 1e-12);
    }
}
