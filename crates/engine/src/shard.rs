//! Shard threads: a bounded pool of OS threads, each owning a slice of
//! node states and multiplexing message draining, per-node shedding
//! deadlines (a `BinaryHeap` of `(Instant, node)` entries) and fragment
//! execution.
//!
//! Where the seed engine spawned one OS thread per FSPS node — capping
//! experiments at a few dozen nodes — a shard interleaves thousands of
//! [`NodeState`]s on one thread. The event loop fires every due deadline
//! *before* each channel drain, so a sustained input flood can never
//! starve the overload detector (the seed worker's drain loop `continue`d
//! on every message and postponed the tick indefinitely under exactly the
//! overload it was meant to detect).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use themis_core::prelude::*;
use themis_operators::op::Emission;
use themis_query::prelude::*;

use crate::messages::{EngineMsg, NodeReport, ResultEvent, RoutedBatch, ShardMsg};
use crate::node_state::{NodeConfig, NodeState};

/// How long an idle shard (no nodes, or all deadlines far out) sleeps per
/// loop iteration while waiting for messages.
const IDLE_TIMEOUT: Duration = Duration::from_millis(50);

/// What a shard needs to route fragment outputs.
pub struct ShardRouting {
    /// `(query, fragment)` -> downstream `(node index, fragment)`; absent
    /// means the fragment emits query results.
    pub downstream: HashMap<(QueryId, usize), (usize, usize)>,
    /// Senders addressing every node (index = global node; each entry is a
    /// clone of the owning shard's channel).
    pub node_txs: Vec<Sender<ShardMsg>>,
    /// Sink for query results.
    pub results_tx: Sender<ResultEvent>,
}

impl ShardRouting {
    /// Forwards fragment emissions downstream or to the results sink.
    pub fn route(&self, query: QueryId, fragment: usize, emissions: Vec<Emission>) {
        for e in emissions {
            match self.downstream.get(&(query, fragment)) {
                Some(&(node, df)) => {
                    let at = e.at;
                    let rb = RoutedBatch {
                        query,
                        fragment: df,
                        ingress: Ingress::Upstream(fragment),
                        // Wrap the emission's columns directly — no
                        // per-tuple re-materialisation between fragments.
                        batch: Batch::from_data(query, at, e.into_batch()),
                    };
                    // A closed peer means shutdown is racing; dropping the
                    // batch is equivalent to shedding it.
                    let _ = self.node_txs[node].send(ShardMsg {
                        node,
                        msg: EngineMsg::Batch(rb),
                    });
                }
                None => {
                    let _ = self.results_tx.send(ResultEvent {
                        query,
                        at: e.at,
                        sic: e.sic(),
                        // Result rows materialise at the reporting edge.
                        rows: e.batch().to_rows(),
                    });
                }
            }
        }
    }
}

/// One node assigned to a shard.
pub struct ShardNode {
    /// Global node index.
    pub node: usize,
    /// Per-node configuration.
    pub config: NodeConfig,
    /// Fragments hosted by the node.
    pub fragments: Vec<(QueryId, usize)>,
}

/// The shard of `n_shards` that owns global node `node` (round-robin).
pub fn shard_of(node: usize, n_shards: usize) -> usize {
    node % n_shards.max(1)
}

/// Round-robin node→shard assignment for `n_nodes` nodes.
pub fn shard_assignment(n_nodes: usize, n_shards: usize) -> Vec<usize> {
    (0..n_nodes).map(|n| shard_of(n, n_shards)).collect()
}

/// Entry in a shard's deadline heap (min-heap by `(at, node)`).
struct Deadline {
    at: Instant,
    local: usize,
}
impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.local == other.local
    }
}
impl Eq for Deadline {}
impl PartialOrd for Deadline {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deadline {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.local).cmp(&(self.at, self.local))
    }
}

/// Runs a shard's event loop until an [`EngineMsg::Shutdown`] arrives (or
/// every sender is gone); returns `(global node, counters)` per node.
///
/// First deadlines are staggered across the shard's nodes so thousands of
/// co-located nodes do not all tick at the same instant.
pub fn run_shard(
    nodes: Vec<ShardNode>,
    queries: Vec<QuerySpec>,
    routing: ShardRouting,
    rx: Receiver<ShardMsg>,
    epoch: Instant,
) -> Vec<(usize, NodeReport)> {
    let start = Instant::now();
    let n_local = nodes.len().max(1);
    let mut local_of: HashMap<usize, usize> = HashMap::with_capacity(nodes.len());
    let mut states: Vec<NodeState> = Vec::with_capacity(nodes.len());
    let mut heap: BinaryHeap<Deadline> = BinaryHeap::with_capacity(nodes.len());
    for (i, sn) in nodes.into_iter().enumerate() {
        let interval = Duration::from_micros(sn.config.interval.as_micros());
        // Stagger: node i's first tick lands i/n of an interval into the
        // schedule, spreading tick work evenly across the period.
        let first_tick = start + interval + interval.mul_f64(i as f64 / n_local as f64);
        let state = NodeState::new(sn.config, sn.node, &queries, &sn.fragments, first_tick);
        local_of.insert(sn.node, i);
        heap.push(Deadline {
            at: state.next_tick(),
            local: i,
        });
        states.push(state);
    }

    loop {
        // Fire every due tick before draining more messages: the deadline,
        // not channel pressure, decides when the detector runs. Firings
        // are capped at the shard's node count per pass so degenerate
        // intervals (shorter than the tick's own work) cannot livelock
        // the loop and starve the channel — with due deadlines still
        // pending, the recv_timeout below is zero and acts as a poll.
        // Rescheduling always lands strictly after `now` (NodeState clamps
        // the interval to >= 1 us), so within a pass due nodes fire in
        // deadline order and no node re-fires ahead of a due shard-mate.
        let mut now = Instant::now();
        let mut fired = 0;
        while let Some(d) = heap.peek() {
            if d.at > now || fired >= states.len() {
                break;
            }
            let local = heap.pop().expect("peeked").local;
            states[local].tick(now, epoch, &routing);
            heap.push(Deadline {
                at: states[local].next_tick(),
                local,
            });
            fired += 1;
            now = Instant::now();
        }
        let timeout = heap
            .peek()
            .map(|d| d.at.saturating_duration_since(now))
            .unwrap_or(IDLE_TIMEOUT);
        match rx.recv_timeout(timeout) {
            Ok(ShardMsg {
                msg: EngineMsg::Shutdown,
                ..
            }) => break,
            Ok(ShardMsg { node, msg }) => {
                if let Some(&local) = local_of.get(&node) {
                    match msg {
                        EngineMsg::Batch(rb) => {
                            let ts = Timestamp(epoch.elapsed().as_micros() as u64);
                            states[local].enqueue(rb, ts);
                        }
                        EngineMsg::Sic(update) => states[local].apply_sic(&update),
                        EngineMsg::Shutdown => unreachable!("matched above"),
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    states
        .into_iter()
        .map(|s| (s.node, s.into_report()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_lands_on_exactly_one_shard() {
        for (n_nodes, n_shards) in [(1usize, 1usize), (7, 3), (1024, 8), (5, 16)] {
            let assignment = shard_assignment(n_nodes, n_shards);
            assert_eq!(assignment.len(), n_nodes);
            // Each node has exactly one shard, and it is in range.
            assert!(assignment.iter().all(|&s| s < n_shards));
            // Round-robin balance: shard sizes differ by at most one.
            let mut counts = vec![0usize; n_shards];
            for &s in &assignment {
                counts[s] += 1;
            }
            let used: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
            let max = *used.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max - min <= 1, "{n_nodes}x{n_shards}: {counts:?}");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(shard_of(5, 0), 0);
    }

    fn flood_harness(
        interval_ms: u64,
        synthetic_cost: TimeDelta,
        initial_capacity: usize,
        batches: usize,
        tuples_per_batch: usize,
        linger_ms: u64,
    ) -> NodeReport {
        let mut ids = IdGen::new();
        let query = Template::Avg.build(QueryId(0), &mut ids);
        let src = query.sources[0].id;
        let (tx, rx) = crossbeam::channel::unbounded::<ShardMsg>();
        let (results_tx, _results_rx) = crossbeam::channel::unbounded();
        let routing = ShardRouting {
            downstream: HashMap::new(),
            node_txs: vec![tx.clone()],
            results_tx,
        };
        let node = ShardNode {
            node: 0,
            config: NodeConfig {
                id: NodeId(0),
                interval: TimeDelta::from_millis(interval_ms),
                stw: StwConfig::PAPER_DEFAULT,
                shedder: PolicyKind::BalanceSic.build(11),
                synthetic_cost,
                initial_capacity,
            },
            fragments: vec![(query.id, 0)],
        };
        // Pre-load the whole flood *and* the shutdown before the shard
        // starts: the channel is never empty until the shard has drained
        // every batch, which is exactly the situation that starved the
        // seed worker's tick (recv_timeout returned Ok on every poll).
        for i in 0..batches {
            let tuples: Vec<Tuple> = (0..tuples_per_batch)
                .map(|j| Tuple::measurement(Timestamp(i as u64), Sic(0.001), j as f64))
                .collect();
            tx.send(ShardMsg {
                node: 0,
                msg: EngineMsg::Batch(RoutedBatch {
                    query: query.id,
                    fragment: 0,
                    ingress: Ingress::Source(src),
                    batch: Batch::from_source(query.id, src, Timestamp(i as u64), tuples),
                }),
            })
            .unwrap();
        }
        // linger_ms == 0: the shutdown is queued behind the flood, so the
        // channel never empties while the shard runs. Otherwise the shard
        // is left running for `linger_ms` past the flood before stopping.
        if linger_ms == 0 {
            tx.send(ShardMsg {
                node: 0,
                msg: EngineMsg::Shutdown,
            })
            .unwrap();
        }
        let epoch = Instant::now();
        let queries = vec![query];
        let handle = std::thread::spawn(move || run_shard(vec![node], queries, routing, rx, epoch));
        if linger_ms > 0 {
            std::thread::sleep(Duration::from_millis(linger_ms));
            tx.send(ShardMsg {
                node: 0,
                msg: EngineMsg::Shutdown,
            })
            .unwrap();
        }
        let mut reports = handle.join().expect("shard panicked");
        assert_eq!(reports.len(), 1);
        reports.pop().unwrap().1
    }

    /// Regression (tick starvation): the seed worker `continue`d on every
    /// received message, so a queue that never emptied postponed the
    /// detector/shedder tick indefinitely — it would drain this entire
    /// flood, hit `Shutdown`, and exit with zero ticks and zero sheds.
    /// The shard loop fires the tick whenever its deadline has passed,
    /// messages pending or not.
    #[test]
    fn flooded_shard_still_sheds() {
        // ~60k batches of 5 tuples take well over one 5 ms interval to
        // drain, so deadlines pass while the queue is still non-empty.
        let report = flood_harness(5, TimeDelta::ZERO, 100, 60_000, 5, 0);
        assert_eq!(report.arrived_tuples, 300_000);
        assert!(report.ticks >= 1, "starved: no tick fired mid-flood");
        assert!(
            report.shed_invocations >= 1,
            "first due tick saw {} buffered tuples over capacity 100 but never shed",
            report.arrived_tuples,
        );
        assert!(report.shed_tuples > 0);
    }

    /// Regression (tick drift/storm): a tick that overruns its period must
    /// not leave a backlog of past deadlines. The seed worker's
    /// `next_tick += interval` scheduled a burst of zero-timeout ticks
    /// after the overrun; fixed, the tick count stays bounded by wall
    /// time / interval and the skipped periods are counted as late.
    #[test]
    fn overrunning_tick_does_not_storm() {
        // 400 batches x 20 tuples; capacity 500 kept x 200 us spin
        // = a ~100 ms tick against a 20 ms interval: 5 periods overrun.
        let t0 = Instant::now();
        let report = flood_harness(20, TimeDelta::from_micros(200), 500, 400, 20, 300);
        let elapsed_ms = t0.elapsed().as_millis() as u64;
        assert!(report.late_ticks >= 1, "overrun not recorded: {report:?}");
        assert!(report.shed_invocations >= 1);
        let max_ticks = elapsed_ms / 20 + 2;
        assert!(
            report.ticks <= max_ticks,
            "tick storm: {} ticks in {elapsed_ms} ms at a 20 ms interval",
            report.ticks,
        );
    }

    /// A degenerate zero shedding interval must not livelock the shard
    /// loop: due-tick firings are capped per pass, so the channel still
    /// drains and `Shutdown` is honored.
    #[test]
    fn zero_interval_still_terminates() {
        let report = flood_harness(0, TimeDelta::ZERO, 100, 100, 1, 0);
        assert_eq!(report.arrived_tuples, 100);
        assert!(report.ticks >= 1);
    }

    /// A zero-interval node sharing a shard must not monopolize the
    /// deadline heap: its rescheduled deadline lands strictly in the
    /// future (the interval is clamped to 1 us), so shard-mates with
    /// ordinary intervals still reach their ticks.
    #[test]
    fn zero_interval_node_does_not_starve_shard_mates() {
        let mut ids = IdGen::new();
        let q0 = Template::Avg.build(QueryId(0), &mut ids);
        let q1 = Template::Avg.build(QueryId(1), &mut ids);
        let (tx, rx) = crossbeam::channel::unbounded::<ShardMsg>();
        let (results_tx, _results_rx) = crossbeam::channel::unbounded();
        let routing = ShardRouting {
            downstream: HashMap::new(),
            node_txs: vec![tx.clone(), tx.clone()],
            results_tx,
        };
        let node = |n: usize, interval_ms: u64, query: &QuerySpec| ShardNode {
            node: n,
            config: NodeConfig {
                id: NodeId(n as u32),
                interval: TimeDelta::from_millis(interval_ms),
                stw: StwConfig::PAPER_DEFAULT,
                shedder: PolicyKind::BalanceSic.build(13),
                synthetic_cost: TimeDelta::ZERO,
                initial_capacity: 100,
            },
            fragments: vec![(query.id, 0)],
        };
        let nodes = vec![node(0, 0, &q0), node(1, 5, &q1)];
        let epoch = Instant::now();
        let queries = vec![q0, q1];
        let handle = std::thread::spawn(move || run_shard(nodes, queries, routing, rx, epoch));
        std::thread::sleep(Duration::from_millis(60));
        tx.send(ShardMsg {
            node: 0,
            msg: EngineMsg::Shutdown,
        })
        .unwrap();
        let reports = handle.join().expect("shard panicked");
        let by_node: HashMap<usize, &NodeReport> = reports.iter().map(|(n, r)| (*n, r)).collect();
        assert!(by_node[&0].ticks >= 1);
        assert!(
            by_node[&1].ticks >= 2,
            "5 ms node starved by zero-interval shard-mate: {} ticks in 60 ms",
            by_node[&1].ticks
        );
    }

    #[test]
    fn deadlines_fire_in_order() {
        let base = Instant::now();
        let mut heap: BinaryHeap<Deadline> = BinaryHeap::new();
        // Push out of order, with a tie at 30 ms.
        for (ms, local) in [(30u64, 2usize), (10, 0), (30, 1), (20, 3)] {
            heap.push(Deadline {
                at: base + Duration::from_millis(ms),
                local,
            });
        }
        let fired: Vec<(u64, usize)> = std::iter::from_fn(|| heap.pop())
            .map(|d| (d.at.duration_since(base).as_millis() as u64, d.local))
            .collect();
        assert_eq!(fired, vec![(10, 0), (20, 3), (30, 1), (30, 2)]);
    }
}
