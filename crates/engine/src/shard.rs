//! Shard threads: a bounded pool of OS threads, each owning a slice of
//! node states and multiplexing message draining, per-node shedding
//! deadlines (a `BinaryHeap` of `(Instant, node)` entries) and fragment
//! execution.
//!
//! Where the seed engine spawned one OS thread per FSPS node — capping
//! experiments at a few dozen nodes — a shard interleaves thousands of
//! [`NodeState`]s on one thread. The event loop fires every due deadline
//! *before* each channel drain, so a sustained input flood can never
//! starve the overload detector (the seed worker's drain loop `continue`d
//! on every message and postponed the tick indefinitely under exactly the
//! overload it was meant to detect).
//!
//! Shards start **empty**: nodes install on first
//! [`EngineMsg::Attach`] and tear down when an [`EngineMsg::Detach`]
//! removes their last fragment — the runtime query-churn path. Teardown
//! freezes the node's counters and abandons its deadline-heap entry
//! (entries are generation-tagged, so a stale deadline popped after a
//! teardown or re-install is discarded instead of ticking — no heap
//! leak: a detached node never ticks again).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use themis_core::prelude::*;
use themis_core::wal;
use themis_operators::op::Emission;
use themis_query::prelude::*;

use crate::messages::{AttachFragment, EngineMsg, NodeReport, ResultEvent, RoutedBatch, ShardMsg};
use crate::node_state::NodeState;

/// How long an idle shard (no nodes, or all deadlines far out) sleeps per
/// loop iteration while waiting for messages.
const IDLE_TIMEOUT: Duration = Duration::from_millis(50);

/// First-tick stagger slots: the `i`-th node installed on a shard fires
/// its first tick `(i % SLOTS) / SLOTS` of an interval into the schedule,
/// so thousands of co-located nodes do not all tick at the same instant.
const STAGGER_SLOTS: u64 = 32;

/// What a shard needs to route fragment outputs. Fragment-level routing
/// (which downstream node a fragment feeds) travels with the fragment
/// itself (installed by [`EngineMsg::Attach`]), so attaching a query at
/// runtime needs no shard-wide routing updates.
pub struct ShardRouting {
    /// Senders addressing every node (index = global node; each entry is a
    /// clone of the owning shard's channel).
    pub node_txs: Vec<Sender<ShardMsg>>,
    /// Sink for query results.
    pub results_tx: Sender<ResultEvent>,
}

impl ShardRouting {
    /// Forwards fragment emissions to `downstream` (or to the results
    /// sink when `None`).
    pub fn route(
        &self,
        query: QueryId,
        fragment: usize,
        downstream: Option<(usize, usize)>,
        emissions: Vec<Emission>,
    ) {
        for e in emissions {
            match downstream {
                Some((node, df)) => {
                    let at = e.at;
                    let rb = RoutedBatch {
                        query,
                        fragment: df,
                        ingress: Ingress::Upstream(fragment),
                        // Wrap the emission's columns directly — no
                        // per-tuple re-materialisation between fragments.
                        batch: Batch::from_data(query, at, e.into_batch()),
                    };
                    // A closed peer means shutdown is racing; dropping the
                    // batch is equivalent to shedding it.
                    let _ = self.node_txs[node].send(ShardMsg {
                        node,
                        msg: EngineMsg::Batch(rb),
                    });
                }
                None => {
                    let _ = self.results_tx.send(ResultEvent {
                        query,
                        at: e.at,
                        sic: e.sic(),
                        // Result rows materialise at the reporting edge.
                        rows: e.batch().to_rows(),
                    });
                }
            }
        }
    }
}

/// Durability configuration handed to a shard thread: where to log, how
/// often to checkpoint, and the AF-Stream-style divergence bound that
/// forces an early checkpoint.
#[derive(Debug, Clone)]
pub struct ShardDurability {
    /// Durability root; this shard writes under `dir/shard-<i>/`.
    pub dir: PathBuf,
    /// This shard's index under `dir`.
    pub shard: usize,
    /// Periodic checkpoint cadence.
    pub every: Duration,
    /// Checkpoint early when any node's uncheckpointed absolute SIC
    /// movement exceeds this bound (`<= 0` disables the early trigger).
    pub sic_bound: f64,
}

/// The shard of `n_shards` that owns global node `node` (round-robin).
pub fn shard_of(node: usize, n_shards: usize) -> usize {
    node % n_shards.max(1)
}

/// Round-robin node→shard assignment for `n_nodes` nodes.
pub fn shard_assignment(n_nodes: usize, n_shards: usize) -> Vec<usize> {
    (0..n_nodes).map(|n| shard_of(n, n_shards)).collect()
}

/// Entry in a shard's deadline heap (min-heap by `(at, node)`), tagged
/// with the node's install generation so entries of torn-down or
/// re-installed nodes are discarded on pop.
struct Deadline {
    at: Instant,
    node: usize,
    generation: u64,
}
impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.node == other.node && self.generation == other.generation
    }
}
impl Eq for Deadline {}
impl PartialOrd for Deadline {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deadline {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first. The
        // generation is a final tiebreak so Ord agrees with PartialEq
        // (a stale entry and its re-install successor can share an
        // instant).
        (other.at, other.node, other.generation).cmp(&(self.at, self.node, self.generation))
    }
}

/// Runs a shard's event loop until an [`EngineMsg::Shutdown`] arrives (or
/// every sender is gone); returns `(global node, counters)` per node that
/// was ever installed (one merged report per node across re-installs).
///
/// The shard starts with no nodes; [`EngineMsg::Attach`] installs them
/// (the engine pre-loads the initial scenario's attaches before spawning
/// the thread, so "static" deployments take this same path).
pub fn run_shard(
    routing: ShardRouting,
    rx: Receiver<ShardMsg>,
    epoch: Instant,
    durability: Option<ShardDurability>,
) -> Vec<(usize, NodeReport)> {
    let mut states: HashMap<usize, NodeState> = HashMap::new();
    let mut generations: HashMap<usize, u64> = HashMap::new();
    let mut heap: BinaryHeap<Deadline> = BinaryHeap::new();
    let mut finished: HashMap<usize, NodeReport> = HashMap::new();
    let mut installed_seq: u64 = 0;
    let mut log: Option<wal::ShardLog> = None;
    let mut next_checkpoint = durability.as_ref().map(|d| Instant::now() + d.every);
    // Set by EngineMsg::Crash: a dead process writes nothing, so both
    // checkpointing and delta appends stop until Recover — otherwise the
    // post-crash empty shard would immediately write an empty checkpoint
    // and truncate the very tail recovery needs.
    let mut crashed = false;

    loop {
        // Fire every due tick before draining more messages: the deadline,
        // not channel pressure, decides when the detector runs. Firings
        // are capped at the shard's node count per pass so degenerate
        // intervals (shorter than the tick's own work) cannot livelock
        // the loop and starve the channel — with due deadlines still
        // pending, the recv_timeout below is zero and acts as a poll.
        // Rescheduling always lands strictly after `now` (NodeState clamps
        // the interval to >= 1 us), so within a pass due nodes fire in
        // deadline order and no node re-fires ahead of a due shard-mate.
        let mut now = Instant::now();
        let mut fired = 0;
        let cap = states.len().max(1);
        while let Some(d) = heap.peek() {
            if d.at > now || fired >= cap {
                break;
            }
            let d = heap.pop().expect("peeked");
            // Stale entry (node torn down or re-installed): discard — the
            // lazy-deletion arm of the churn path.
            let live = generations.get(&d.node) == Some(&d.generation);
            let Some(state) = (live).then(|| states.get_mut(&d.node)).flatten() else {
                continue;
            };
            state.tick(now, epoch, &routing);
            heap.push(Deadline {
                at: state.next_tick(),
                node: d.node,
                generation: d.generation,
            });
            fired += 1;
            now = Instant::now();
        }
        // Checkpoint on cadence, or early when any node's uncheckpointed
        // SIC drift exceeds the divergence bound (AF-Stream: bound the
        // deviation instead of logging everything).
        if let Some(d) = &durability {
            if !crashed && !states.is_empty() {
                let due = next_checkpoint.is_some_and(|t| now >= t);
                let diverged =
                    d.sic_bound > 0.0 && states.values().any(|s| s.sic_drift() > d.sic_bound);
                if due || diverged {
                    let snapshots: Vec<wal::NodeSnapshot> =
                        states.values_mut().map(NodeState::checkpoint).collect();
                    if log.is_none() {
                        log = open_log(d);
                    }
                    if let Some(l) = &mut log {
                        if let Err(e) = l.checkpoint(&snapshots) {
                            eprintln!("shard {}: checkpoint failed: {e}", d.shard);
                        }
                    }
                    next_checkpoint = Some(now + d.every);
                }
            }
        }
        let timeout = heap
            .peek()
            .map(|d| d.at.saturating_duration_since(now))
            .unwrap_or(IDLE_TIMEOUT);
        match rx.recv_timeout(timeout) {
            Ok(ShardMsg {
                msg: EngineMsg::Shutdown,
                ..
            }) => break,
            Ok(ShardMsg {
                msg: EngineMsg::Attach(attach),
                node,
            }) => {
                debug_assert_eq!(node, attach.node, "attach addressed to its node");
                let AttachFragment {
                    node,
                    config,
                    query,
                    fragment,
                    downstream,
                } = *attach;
                let state = states.entry(node).or_insert_with(|| {
                    let interval = Duration::from_micros(config.interval.as_micros().max(1));
                    let slot = installed_seq % STAGGER_SLOTS;
                    installed_seq += 1;
                    let first_tick = Instant::now()
                        + interval
                        + interval.mul_f64(slot as f64 / STAGGER_SLOTS as f64);
                    let state = NodeState::new(config, node, first_tick);
                    let generation = generations.get(&node).copied().unwrap_or(0) + 1;
                    generations.insert(node, generation);
                    heap.push(Deadline {
                        at: state.next_tick(),
                        node,
                        generation,
                    });
                    state
                });
                state.attach_fragment(&query, fragment, downstream);
            }
            Ok(ShardMsg {
                msg: EngineMsg::Crash,
                ..
            }) => {
                // Simulated process death: every node's live state is
                // gone (counters survive for final accounting, as for a
                // torn-down node) and no durability write happens again
                // until Recover. Pending deadlines are invalidated by the
                // generation bump; in-flight traffic to the dead nodes is
                // silently discarded by the states guard below.
                crashed = true;
                log = None;
                heap.clear();
                for (node, state) in states.drain() {
                    finished
                        .entry(node)
                        .or_default()
                        .absorb(&state.into_report());
                    *generations.entry(node).or_insert(0) += 1;
                }
            }
            Ok(ShardMsg {
                msg: EngineMsg::Recover { dir, shard },
                ..
            }) => {
                // Arrives after the engine re-attached the dead nodes'
                // fragments: overlay the checkpointed state, replay the
                // delta tail (absolute values; last write wins), and
                // resume durability writes.
                crashed = false;
                match wal::restore_shard(&dir, shard) {
                    Ok(Some(restore)) => {
                        for snap in &restore.snapshots {
                            if let Some(state) = states.get_mut(&snap.node) {
                                state.restore(snap);
                            }
                        }
                        for delta in &restore.deltas {
                            if let Some(state) = states.get_mut(&delta.node) {
                                state.set_sic(delta.query, delta.sic);
                            }
                        }
                    }
                    Ok(None) => {}
                    Err(e) => eprintln!("shard {shard}: restore failed: {e}"),
                }
                if let Some(d) = &durability {
                    next_checkpoint = Some(Instant::now() + d.every);
                }
            }
            Ok(ShardMsg {
                msg: EngineMsg::Detach { query },
                node,
            }) => {
                let empty = states
                    .get_mut(&node)
                    .map(|s| s.detach_query(query) == 0)
                    .unwrap_or(false);
                if empty {
                    // Teardown: freeze the counters, forget the state; the
                    // generation bump invalidates the pending deadline.
                    if let Some(state) = states.remove(&node) {
                        finished
                            .entry(node)
                            .or_default()
                            .absorb(&state.into_report());
                    }
                    *generations.entry(node).or_insert(0) += 1;
                }
            }
            Ok(ShardMsg { node, msg }) => {
                if let Some(state) = states.get_mut(&node) {
                    match msg {
                        EngineMsg::Batch(rb) => {
                            let ts = Timestamp(epoch.elapsed().as_micros() as u64);
                            state.enqueue(rb, ts);
                        }
                        EngineMsg::Sic(update) => {
                            state.apply_sic(&update);
                            if !crashed {
                                if let Some(d) = &durability {
                                    if log.is_none() {
                                        log = open_log(d);
                                    }
                                    if let Some(l) = &mut log {
                                        if let Err(e) = l.append(&wal::SicDelta {
                                            node,
                                            query: update.query,
                                            sic: update.sic,
                                        }) {
                                            eprintln!("shard {}: wal append failed: {e}", d.shard);
                                        }
                                    }
                                }
                            }
                        }
                        EngineMsg::Attach(_)
                        | EngineMsg::Detach { .. }
                        | EngineMsg::Crash
                        | EngineMsg::Recover { .. }
                        | EngineMsg::Shutdown => {
                            unreachable!("matched above")
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    for (node, state) in states {
        finished
            .entry(node)
            .or_default()
            .absorb(&state.into_report());
    }
    finished.into_iter().collect()
}

/// Opens a shard's durable log, demoting failures to a warning — an
/// undurable engine keeps serving traffic.
fn open_log(d: &ShardDurability) -> Option<wal::ShardLog> {
    match wal::ShardLog::create(&d.dir, d.shard) {
        Ok(log) => Some(log),
        Err(e) => {
            eprintln!("shard {}: cannot open wal: {e}", d.shard);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_state::NodeConfig;
    use std::sync::Arc;

    #[test]
    fn every_node_lands_on_exactly_one_shard() {
        for (n_nodes, n_shards) in [(1usize, 1usize), (7, 3), (1024, 8), (5, 16)] {
            let assignment = shard_assignment(n_nodes, n_shards);
            assert_eq!(assignment.len(), n_nodes);
            // Each node has exactly one shard, and it is in range.
            assert!(assignment.iter().all(|&s| s < n_shards));
            // Round-robin balance: shard sizes differ by at most one.
            let mut counts = vec![0usize; n_shards];
            for &s in &assignment {
                counts[s] += 1;
            }
            let used: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
            let max = *used.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max - min <= 1, "{n_nodes}x{n_shards}: {counts:?}");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(shard_of(5, 0), 0);
    }

    fn node_config(
        interval_ms: u64,
        synthetic_cost: TimeDelta,
        initial_capacity: usize,
    ) -> NodeConfig {
        NodeConfig {
            id: NodeId(0),
            interval: TimeDelta::from_millis(interval_ms),
            stw: StwConfig::PAPER_DEFAULT,
            shedder: PolicyKind::BalanceSic.build(11),
            synthetic_cost,
            initial_capacity,
            fixed_capacity: None,
            pool: None,
        }
    }

    fn attach_msg(node: usize, config: NodeConfig, query: &Arc<QuerySpec>) -> ShardMsg {
        ShardMsg {
            node,
            msg: EngineMsg::Attach(Box::new(AttachFragment {
                node,
                config,
                query: query.clone(),
                fragment: 0,
                downstream: None,
            })),
        }
    }

    fn flood_harness(
        interval_ms: u64,
        synthetic_cost: TimeDelta,
        initial_capacity: usize,
        batches: usize,
        tuples_per_batch: usize,
        linger_ms: u64,
    ) -> NodeReport {
        let mut ids = IdGen::new();
        let query = Arc::new(Template::Avg.build(QueryId(0), &mut ids));
        let src = query.sources[0].id;
        let (tx, rx) = crossbeam::channel::unbounded::<ShardMsg>();
        let (results_tx, _results_rx) = crossbeam::channel::unbounded();
        let routing = ShardRouting {
            node_txs: vec![tx.clone()],
            results_tx,
        };
        // The node installs through the same Attach path the engine uses,
        // pre-loaded ahead of the flood.
        tx.send(attach_msg(
            0,
            node_config(interval_ms, synthetic_cost, initial_capacity),
            &query,
        ))
        .unwrap();
        // Pre-load the whole flood *and* the shutdown before the shard
        // starts: the channel is never empty until the shard has drained
        // every batch, which is exactly the situation that starved the
        // seed worker's tick (recv_timeout returned Ok on every poll).
        for i in 0..batches {
            let tuples: Vec<Tuple> = (0..tuples_per_batch)
                .map(|j| Tuple::measurement(Timestamp(i as u64), Sic(0.001), j as f64))
                .collect();
            tx.send(ShardMsg {
                node: 0,
                msg: EngineMsg::Batch(RoutedBatch {
                    query: query.id,
                    fragment: 0,
                    ingress: Ingress::Source(src),
                    batch: Batch::from_source(query.id, src, Timestamp(i as u64), tuples),
                }),
            })
            .unwrap();
        }
        // linger_ms == 0: the shutdown is queued behind the flood, so the
        // channel never empties while the shard runs. Otherwise the shard
        // is left running for `linger_ms` past the flood before stopping.
        if linger_ms == 0 {
            tx.send(ShardMsg {
                node: 0,
                msg: EngineMsg::Shutdown,
            })
            .unwrap();
        }
        let epoch = Instant::now();
        let handle = std::thread::spawn(move || run_shard(routing, rx, epoch, None));
        if linger_ms > 0 {
            std::thread::sleep(Duration::from_millis(linger_ms));
            tx.send(ShardMsg {
                node: 0,
                msg: EngineMsg::Shutdown,
            })
            .unwrap();
        }
        let mut reports = handle.join().expect("shard panicked");
        assert_eq!(reports.len(), 1);
        reports.pop().unwrap().1
    }

    /// Regression (tick starvation): the seed worker `continue`d on every
    /// received message, so a queue that never emptied postponed the
    /// detector/shedder tick indefinitely — it would drain this entire
    /// flood, hit `Shutdown`, and exit with zero ticks and zero sheds.
    /// The shard loop fires the tick whenever its deadline has passed,
    /// messages pending or not.
    #[test]
    fn flooded_shard_still_sheds() {
        // ~60k batches of 5 tuples take well over one 5 ms interval to
        // drain, so deadlines pass while the queue is still non-empty.
        let report = flood_harness(5, TimeDelta::ZERO, 100, 60_000, 5, 0);
        assert_eq!(report.arrived_tuples, 300_000);
        assert!(report.ticks >= 1, "starved: no tick fired mid-flood");
        assert!(
            report.shed_invocations >= 1,
            "first due tick saw {} buffered tuples over capacity 100 but never shed",
            report.arrived_tuples,
        );
        assert!(report.shed_tuples > 0);
    }

    /// Regression (tick drift/storm): a tick that overruns its period must
    /// not leave a backlog of past deadlines. The seed worker's
    /// `next_tick += interval` scheduled a burst of zero-timeout ticks
    /// after the overrun; fixed, the tick count stays bounded by wall
    /// time / interval and the skipped periods are counted as late.
    #[test]
    fn overrunning_tick_does_not_storm() {
        // 400 batches x 20 tuples; capacity 500 kept x 200 us spin
        // = a ~100 ms tick against a 20 ms interval: 5 periods overrun.
        let t0 = Instant::now();
        let report = flood_harness(20, TimeDelta::from_micros(200), 500, 400, 20, 300);
        let elapsed_ms = t0.elapsed().as_millis() as u64;
        assert!(report.late_ticks >= 1, "overrun not recorded: {report:?}");
        assert!(report.shed_invocations >= 1);
        let max_ticks = elapsed_ms / 20 + 2;
        assert!(
            report.ticks <= max_ticks,
            "tick storm: {} ticks in {elapsed_ms} ms at a 20 ms interval",
            report.ticks,
        );
    }

    /// A degenerate zero shedding interval must not livelock the shard
    /// loop: due-tick firings are capped per pass, so the channel still
    /// drains and `Shutdown` is honored.
    #[test]
    fn zero_interval_still_terminates() {
        let report = flood_harness(0, TimeDelta::ZERO, 100, 100, 1, 0);
        assert_eq!(report.arrived_tuples, 100);
        assert!(report.ticks >= 1);
    }

    /// A zero-interval node sharing a shard must not monopolize the
    /// deadline heap: its rescheduled deadline lands strictly in the
    /// future (the interval is clamped to 1 us), so shard-mates with
    /// ordinary intervals still reach their ticks.
    #[test]
    fn zero_interval_node_does_not_starve_shard_mates() {
        let mut ids = IdGen::new();
        let q0 = Arc::new(Template::Avg.build(QueryId(0), &mut ids));
        let q1 = Arc::new(Template::Avg.build(QueryId(1), &mut ids));
        let (tx, rx) = crossbeam::channel::unbounded::<ShardMsg>();
        let (results_tx, _results_rx) = crossbeam::channel::unbounded();
        let routing = ShardRouting {
            node_txs: vec![tx.clone(), tx.clone()],
            results_tx,
        };
        tx.send(attach_msg(0, node_config(0, TimeDelta::ZERO, 100), &q0))
            .unwrap();
        tx.send(attach_msg(1, node_config(5, TimeDelta::ZERO, 100), &q1))
            .unwrap();
        let epoch = Instant::now();
        let handle = std::thread::spawn(move || run_shard(routing, rx, epoch, None));
        std::thread::sleep(Duration::from_millis(60));
        tx.send(ShardMsg {
            node: 0,
            msg: EngineMsg::Shutdown,
        })
        .unwrap();
        let reports = handle.join().expect("shard panicked");
        let by_node: HashMap<usize, &NodeReport> = reports.iter().map(|(n, r)| (*n, r)).collect();
        assert!(by_node[&0].ticks >= 1);
        assert!(
            by_node[&1].ticks >= 2,
            "5 ms node starved by zero-interval shard-mate: {} ticks in 60 ms",
            by_node[&1].ticks
        );
    }

    /// Churn on one shard: a detached node's state is torn down, its
    /// report freezes, and its abandoned deadline never ticks it again;
    /// a later re-attach starts a fresh incarnation whose counters merge
    /// into the same per-node report.
    #[test]
    fn detach_tears_down_and_reattach_merges() {
        let mut ids = IdGen::new();
        let q0 = Arc::new(Template::Avg.build(QueryId(0), &mut ids));
        let q1 = Arc::new(Template::Avg.build(QueryId(1), &mut ids));
        let (tx, rx) = crossbeam::channel::unbounded::<ShardMsg>();
        let (results_tx, _results_rx) = crossbeam::channel::unbounded();
        let routing = ShardRouting {
            node_txs: vec![tx.clone(), tx.clone()],
            results_tx,
        };
        // Node 0 hosts the resident query; node 1 hosts the churn query.
        tx.send(attach_msg(0, node_config(5, TimeDelta::ZERO, 100), &q0))
            .unwrap();
        tx.send(attach_msg(1, node_config(5, TimeDelta::ZERO, 100), &q1))
            .unwrap();
        let epoch = Instant::now();
        let handle = std::thread::spawn(move || run_shard(routing, rx, epoch, None));
        std::thread::sleep(Duration::from_millis(40));
        // The churn query departs; node 1 empties and is torn down.
        tx.send(ShardMsg {
            node: 1,
            msg: EngineMsg::Detach { query: q1.id },
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(80));
        // Re-attach on the same node index: a fresh incarnation.
        tx.send(attach_msg(1, node_config(5, TimeDelta::ZERO, 100), &q1))
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        tx.send(ShardMsg {
            node: 0,
            msg: EngineMsg::Shutdown,
        })
        .unwrap();
        let reports = handle.join().expect("shard panicked");
        let by_node: HashMap<usize, NodeReport> = reports.into_iter().collect();
        let resident = &by_node[&0];
        let churned = &by_node[&1];
        assert!(resident.ticks >= 20, "resident ticked throughout");
        // Node 1 was live for ~80 of ~160 ms; had its deadline leaked it
        // would have kept ticking through the 80 ms gap too. Allow slack
        // for scheduling, but the gap must be visible.
        assert!(
            churned.ticks <= resident.ticks * 3 / 4,
            "torn-down node kept ticking: {} vs resident {}",
            churned.ticks,
            resident.ticks
        );
        assert!(churned.ticks >= 2, "both incarnations ticked");
    }

    #[test]
    fn deadlines_fire_in_order() {
        let base = Instant::now();
        let mut heap: BinaryHeap<Deadline> = BinaryHeap::new();
        // Push out of order, with a tie at 30 ms.
        for (ms, node) in [(30u64, 2usize), (10, 0), (30, 1), (20, 3)] {
            heap.push(Deadline {
                at: base + Duration::from_millis(ms),
                node,
                generation: 1,
            });
        }
        let fired: Vec<(u64, usize)> = std::iter::from_fn(|| heap.pop())
            .map(|d| (d.at.duration_since(base).as_millis() as u64, d.node))
            .collect();
        assert_eq!(fired, vec![(10, 0), (20, 3), (30, 1), (30, 2)]);
    }
}
