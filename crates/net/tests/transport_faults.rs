//! Transport fault injection: the outbound side must degrade, never
//! hang. A refused connect exhausts its bounded retries and reports an
//! actionable error naming the address and attempt count; a send queue
//! backed up behind a peer that never reads sheds oldest-first and keeps
//! accepting batches at full speed instead of deadlocking the pump.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use themis_core::prelude::*;
use themis_net::prelude::*;

/// A loopback port with nothing listening on it: bind, note, release.
/// (Another process could grab it between drop and dial, but ephemeral
/// ports are assigned round-robin, so in practice the dial is refused.)
fn vacant_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind probe listener");
    let addr = listener.local_addr().expect("probe addr").to_string();
    drop(listener);
    addr
}

fn tiny_cfg() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_millis(250),
        connect_retries: 3,
        retry_backoff: Duration::from_millis(1),
        send_queue: 4,
    }
}

/// A deliberately bulky batch so a handful of frames out-run the kernel
/// socket buffers of an unread loopback connection.
fn bulky_batch() -> TupleBatch {
    let rows = 4096;
    let mut b = TupleBatch::with_capacity(2, rows);
    for i in 0..rows as u64 {
        b.push_row(
            Timestamp(i),
            Sic(1.0e-3),
            &[Value::I64(i as i64), Value::F64(i as f64)],
        );
    }
    b
}

fn wire_batch(created: u64) -> WireBatch {
    WireBatch {
        node: 0,
        query: QueryId(0),
        fragment: 0,
        source: SourceId(0),
        created: Timestamp(created),
        batch: bulky_batch(),
    }
}

#[test]
fn refused_connect_retries_then_reports_address_and_attempts() {
    let addr = vacant_addr();
    let cfg = tiny_cfg();
    let err = connect_with_retry(&addr, &cfg).expect_err("nothing is listening");
    match &err {
        NetError::ConnectFailed {
            addr: reported,
            attempts,
            detail,
        } => {
            assert_eq!(reported, &addr);
            assert_eq!(*attempts, cfg.connect_retries);
            assert!(!detail.is_empty(), "last o/s error must be carried");
        }
        other => panic!("expected ConnectFailed, got {other}"),
    }
    let text = err.to_string();
    assert!(text.contains(&addr), "error must name the address: {text}");
    assert!(
        text.contains("3 attempts"),
        "error must count attempts: {text}"
    );
}

#[test]
fn retry_bridges_a_peer_that_binds_late() {
    let addr = vacant_addr();
    let addr_for_listener = addr.clone();
    // The listener appears only after the first attempts have failed —
    // exactly the "engine still starting up" race the retry loop exists
    // to absorb.
    let listener = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let listener = TcpListener::bind(addr_for_listener).expect("late bind");
        listener.accept().map(|(s, _)| s)
    });
    let cfg = NetConfig {
        connect_timeout: Duration::from_millis(250),
        connect_retries: 40,
        retry_backoff: Duration::from_millis(25),
        send_queue: 4,
    };
    let stream = connect_with_retry(&addr, &cfg).expect("retry outlives the late bind");
    drop(stream);
    listener
        .join()
        .expect("listener thread")
        .expect("accepted the retried connect");
}

#[test]
fn full_queue_sheds_oldest_and_never_blocks_the_sender() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let cfg = tiny_cfg();
    let sender = PeerSender::connect(&addr, "fault-pump", &cfg).expect("connect");
    // Accept the connection but never read a byte: the kernel buffers
    // fill, the writer thread stalls mid-frame, and the queue backs up.
    let (stalled, _) = listener.accept().expect("accept");

    let total = 64u64;
    let started = Instant::now();
    for i in 0..total {
        sender.send_batch(&wire_batch(i));
    }
    let elapsed = started.elapsed();

    // Enqueueing is pure queue work — even with every slot shedding it
    // must come nowhere near socket timescales. The generous bound only
    // guards against the regression that matters: blocking on the peer.
    assert!(
        elapsed < Duration::from_secs(10),
        "send loop took {elapsed:?}; the queue must never block on the socket"
    );
    let shed = sender.shed_count();
    let sent = sender.sent_count();
    assert!(
        shed > 0,
        "an unread peer must force oldest-first shedding (sent {sent} of {total})"
    );
    // Realised rate degrades instead of lying: every batch is accounted
    // sent, shed, or still queued — nothing is silently lost or doubled.
    assert!(
        sent + shed <= total,
        "accounting overflow: sent {sent} + shed {shed} > {total}"
    );

    // Kill the read side: the writer's next write fails, it abandons the
    // backlog, and close() must come back with the socket error instead
    // of waiting forever for a drain that can never happen.
    drop(stalled);
    drop(listener);
    match sender.close() {
        // The writer may have already pushed the final frames into the
        // kernel buffer before the reset landed.
        Ok(stats) => assert!(stats.shed_batches > 0),
        Err(e) => assert!(
            matches!(e, NetError::Io(_)),
            "dead link must surface as an i/o error, got {e}"
        ),
    }
}
