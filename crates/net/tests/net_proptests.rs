//! Property-based tests over the wire codec: encode→decode is lossless
//! for every message kind and both batch layouts (arena batches with raw
//! tag codes, typed batches with interned tag dictionaries, drop
//! bitmaps, NaN-carrying SIC values), and every corruption of the byte
//! stream — truncation at any offset, any flipped byte — maps to an
//! actionable [`NetError::Corrupt`] naming the damaged offset, never a
//! panic. The structure mirrors `wal_proptests.rs` deliberately: the
//! wire frame IS the WAL frame, so the failure taxonomy must match.

use proptest::prelude::*;
use themis_core::prelude::*;
use themis_net::prelude::*;

/// `[len: u32][crc: u32]` — keep in sync with `wal::FRAME_HEADER_BYTES`.
const HEADER: usize = 8;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// An arena-layout batch: rows carry `Value` cells of every variant
/// (including raw tag codes, which arena batches ship without a
/// dictionary), with an arbitrary drop bitmap.
fn arb_arena_batch() -> impl Strategy<Value = TupleBatch> {
    prop::collection::vec(
        (
            (0u64..1_000_000, 0.0f64..1.0), // ts, sic
            (
                i64::MIN..i64::MAX, // I64 cell
                -1.0e12f64..1.0e12, // F64 cell
                0u8..2,             // Bool cell
                0u32..1_000,        // raw tag code cell
            ),
            0u8..2, // dropped?
        ),
        0..24,
    )
    .prop_map(|rows| {
        let mut b = TupleBatch::with_capacity(4, rows.len());
        for &((ts, sic), (n, x, ok, code), _) in &rows {
            b.push_row(
                Timestamp(ts),
                Sic(sic),
                &[
                    Value::I64(n),
                    Value::F64(x),
                    Value::Bool(ok == 1),
                    Value::Tag(code),
                ],
            );
        }
        for (i, &(.., dropped)) in rows.iter().enumerate() {
            if dropped == 1 {
                b.drop_row(i);
            }
        }
        b
    })
}

/// A typed batch over a schema exercising all four column types, tags
/// drawn from a six-entry dictionary that is interned in full (so some
/// dictionary entries may go unreferenced by any row and must still
/// survive the wire for later batches on the same connection).
fn arb_typed_batch() -> impl Strategy<Value = TupleBatch> {
    prop::collection::vec(
        (
            (0u64..1_000_000, 0.0f64..1.0), // ts, sic
            (
                0usize..6,          // tag pool index
                -1.0e12f64..1.0e12, // F64 cell
                i64::MIN..i64::MAX, // I64 cell
                0u8..2,             // Bool cell
            ),
            0u8..2, // dropped?
        ),
        0..24,
    )
    .prop_map(|rows| {
        let schema = Schema::new([
            ("tag", FieldType::Tag),
            ("x", FieldType::F64),
            ("n", FieldType::I64),
            ("ok", FieldType::Bool),
        ]);
        let dict = schema
            .interner()
            .expect("tag schema has an interner")
            .clone();
        let codes: Vec<u32> = (0..6).map(|k| dict.intern(&format!("tag-{k}"))).collect();
        let mut b = TupleBatch::with_schema_capacity(schema, rows.len());
        for &((ts, sic), (k, x, n, ok), _) in &rows {
            b.push_row(
                Timestamp(ts),
                Sic(sic),
                &[
                    Value::Tag(codes[k]),
                    Value::F64(x),
                    Value::I64(n),
                    Value::Bool(ok == 1),
                ],
            );
        }
        for (i, &(.., dropped)) in rows.iter().enumerate() {
            if dropped == 1 {
                b.drop_row(i);
            }
        }
        b
    })
}

/// A routed batch frame: arbitrary routing header over either layout.
fn arb_wire_batch() -> impl Strategy<Value = WireBatch> {
    (
        (0u32..16, 0u32..8, 0u32..4, 0u32..64, 0u64..u64::MAX),
        (0u8..2, arb_arena_batch(), arb_typed_batch()),
    )
        .prop_map(
            |((node, q, fragment, source, created), (layout, arena, typed))| WireBatch {
                node,
                query: QueryId(q),
                fragment,
                source: SourceId(source),
                created: Timestamp(created),
                batch: if layout == 0 { arena } else { typed },
            },
        )
}

/// A whole session: hello, a run of batches, bye — the exact frame
/// sequence a source pump writes.
fn arb_session() -> impl Strategy<Value = Vec<NetMsg>> {
    (
        prop::collection::vec(0u8..128, 0..12), // peer-name bytes (ascii subset)
        prop::collection::vec(arb_wire_batch(), 0..4),
        (0u64..u64::MAX, 0u64..u64::MAX),
    )
        .prop_map(|(peer, batches, (sent, shed))| {
            let peer: String = peer
                .into_iter()
                .map(|b| char::from(b'a' + b % 26))
                .collect();
            let mut msgs = vec![NetMsg::Hello {
                version: PROTOCOL_VERSION,
                peer,
            }];
            msgs.extend(batches.into_iter().map(NetMsg::Batch));
            msgs.push(NetMsg::Bye {
                sent_batches: sent,
                shed_batches: shed,
            });
            msgs
        })
}

// ---------------------------------------------------------------------------
// Semantic equality
// ---------------------------------------------------------------------------
//
// Decoded typed batches carry a freshly re-interned dictionary, so
// `Schema` equality (pointer-identical interners) can never hold across
// the wire, and codes may be remapped when batches share a connection's
// schema cache. Equality is therefore field by field: tags by resolved
// string, SIC by exact bit pattern.

fn batch_mismatch(a: &TupleBatch, b: &TupleBatch) -> Option<String> {
    if a.rows() != b.rows() {
        return Some(format!("rows {} vs {}", a.rows(), b.rows()));
    }
    if a.width() != b.width() {
        return Some(format!("width {} vs {}", a.width(), b.width()));
    }
    let fields = |t: &TupleBatch| -> Vec<(String, FieldType)> {
        t.schema()
            .map(|s| s.fields().map(|(n, ty)| (n.to_string(), ty)).collect())
            .unwrap_or_default()
    };
    if fields(a) != fields(b) {
        return Some(format!("schema {:?} vs {:?}", fields(a), fields(b)));
    }
    for i in 0..a.rows() {
        if a.is_live(i) != b.is_live(i) {
            return Some(format!(
                "row {i} liveness {} vs {}",
                a.is_live(i),
                b.is_live(i)
            ));
        }
        let (ta, tb) = (a.row(i).to_tuple(), b.row(i).to_tuple());
        if ta.ts != tb.ts {
            return Some(format!("row {i} ts {:?} vs {:?}", ta.ts, tb.ts));
        }
        if ta.sic.value().to_bits() != tb.sic.value().to_bits() {
            return Some(format!("row {i} sic bits {:?} vs {:?}", ta.sic, tb.sic));
        }
        for (f, (va, vb)) in ta.values.iter().zip(&tb.values).enumerate() {
            let same = match (va, vb) {
                (Value::Tag(ca), Value::Tag(cb)) => match (a.schema(), b.schema()) {
                    // Typed tags compare by resolved string; arena tags
                    // carry bare codes and must survive verbatim.
                    (Some(sa), Some(sb)) => {
                        let ra = sa.interner().and_then(|d| d.resolve(*ca));
                        let rb = sb.interner().and_then(|d| d.resolve(*cb));
                        ra == rb
                    }
                    _ => ca == cb,
                },
                _ => va == vb,
            };
            if !same {
                return Some(format!("row {i} field {f}: {va:?} vs {vb:?}"));
            }
        }
    }
    None
}

fn msg_mismatch(a: &NetMsg, b: &NetMsg) -> Option<String> {
    match (a, b) {
        (
            NetMsg::Hello {
                version: va,
                peer: pa,
            },
            NetMsg::Hello {
                version: vb,
                peer: pb,
            },
        ) => {
            if va != vb || pa != pb {
                return Some(format!("hello ({va}, {pa:?}) vs ({vb}, {pb:?})"));
            }
            None
        }
        (NetMsg::Batch(x), NetMsg::Batch(y)) => {
            if (x.node, x.query, x.fragment, x.source, x.created)
                != (y.node, y.query, y.fragment, y.source, y.created)
            {
                return Some("batch routing header mismatch".into());
            }
            batch_mismatch(&x.batch, &y.batch).map(|why| format!("batch payload: {why}"))
        }
        (
            NetMsg::Bye {
                sent_batches: sa,
                shed_batches: ha,
            },
            NetMsg::Bye {
                sent_batches: sb,
                shed_batches: hb,
            },
        ) => {
            if sa != sb || ha != hb {
                return Some(format!("bye ({sa}, {ha}) vs ({sb}, {hb})"));
            }
            None
        }
        _ => Some("message kind mismatch".into()),
    }
}

/// The byte ranges of each frame in an encoded stream, recovered by
/// walking the length prefixes.
fn frame_bounds(buf: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + HEADER + len;
        bounds.push((pos, end));
        pos = end;
    }
    bounds
}

fn encode_all(msgs: &[NetMsg]) -> Vec<u8> {
    let mut buf = Vec::new();
    for m in msgs {
        encode_msg(m, &mut buf);
    }
    buf
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    /// Encode→decode round-trips a whole session semantically: routing
    /// headers verbatim, both batch layouts (all column types, tag
    /// dictionaries, drop bitmaps) field-identical, SIC bit-identical —
    /// both through the one-shot stream decoder and through an
    /// incremental [`Decoder`] fed the stream in arbitrary chunks.
    #[test]
    fn codec_round_trips_whole_sessions(
        msgs in arb_session(),
        chunk in 1usize..4096,
    ) {
        let buf = encode_all(&msgs);

        let back = decode_frames(&buf).expect("valid stream decodes");
        prop_assert_eq!(back.len(), msgs.len());
        for (i, (orig, got)) in msgs.iter().zip(&back).enumerate() {
            let why = msg_mismatch(orig, got);
            prop_assert!(why.is_none(), "message {i}: {}", why.unwrap());
        }

        // The incremental decoder must agree no matter how the bytes
        // arrive off the socket.
        let mut dec = Decoder::new();
        let mut pending: Vec<u8> = Vec::new();
        let mut streamed = Vec::new();
        for piece in buf.chunks(chunk) {
            pending.extend_from_slice(piece);
            while let Some((msg, used)) = dec.next(&pending).expect("valid stream") {
                streamed.push(msg);
                pending.drain(..used);
            }
        }
        prop_assert!(pending.is_empty(), "{} undecoded bytes", pending.len());
        prop_assert_eq!(dec.consumed(), buf.len() as u64);
        prop_assert_eq!(streamed.len(), msgs.len());
        for (i, (orig, got)) in msgs.iter().zip(&streamed).enumerate() {
            let why = msg_mismatch(orig, got);
            prop_assert!(why.is_none(), "streamed message {i}: {}", why.unwrap());
        }
    }

    /// Truncating a captured stream at any byte never panics: a cut on a
    /// frame boundary decodes the complete prefix, a mid-frame cut is a
    /// [`NetError::Corrupt`] naming the start of the torn frame. (A live
    /// [`Decoder`] instead reports `Ok(None)` — "read more" — which the
    /// listener escalates only when the socket closes; this property
    /// covers the strict whole-stream view.)
    #[test]
    fn truncation_at_any_offset_is_detected(
        msgs in arb_session(),
        cut in 0usize..1 << 20,
    ) {
        let buf = encode_all(&msgs);
        let bounds = frame_bounds(&buf);
        let cut = cut % (buf.len() + 1); // inclusive of the intact stream
        let truncated = &buf[..cut];
        let whole = bounds.iter().filter(|&&(_, end)| end <= cut).count();
        let at_boundary = cut == 0 || bounds.iter().any(|&(_, end)| end == cut);

        let strict = decode_frames(truncated);
        if at_boundary {
            let prefix = strict.expect("boundary cut decodes the prefix");
            prop_assert_eq!(prefix.len(), whole);
            for (orig, got) in msgs.iter().zip(&prefix) {
                prop_assert!(msg_mismatch(orig, got).is_none());
            }
        } else {
            let frame_start = bounds
                .iter()
                .find(|&&(start, end)| start < cut && cut < end)
                .map(|&(start, _)| start as u64)
                .expect("mid-frame cut sits inside some frame");
            let err = strict.expect_err("mid-frame cut must fail strict decode");
            prop_assert!(
                matches!(err, NetError::Corrupt { offset, .. } if offset == frame_start),
                "{err} (expected offset {frame_start})"
            );
            prop_assert!(err.to_string().contains("truncated frame"), "{err}");
        }
    }

    /// Flipping any checksum byte of any frame is a hard, actionable
    /// error naming that frame's offset.
    #[test]
    fn flipped_checksum_byte_is_a_hard_error(
        msgs in arb_session(),
        frame in 0usize..1 << 20,
        byte in 0usize..4,
        mask in 1u16..256,
    ) {
        let mut buf = encode_all(&msgs);
        let bounds = frame_bounds(&buf);
        let (start, _) = bounds[frame % bounds.len()];
        buf[start + 4 + byte] ^= mask as u8; // the CRC field sits after the length

        let err = decode_frames(&buf).expect_err("bad checksum must fail");
        prop_assert!(
            matches!(err, NetError::Corrupt { offset, .. } if offset == start as u64),
            "{err} (expected offset {start})"
        );
        prop_assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    /// Flipping any single byte anywhere in the stream never panics, and
    /// always surfaces as a located, described corruption error: a body
    /// or CRC flip fails the checksum, a length flip reads as an
    /// implausible or truncated frame. CRC-32 detects every single-byte
    /// error, so a flipped wire byte can never decode silently.
    #[test]
    fn flipping_any_byte_is_located_corruption(
        msgs in arb_session(),
        pos in 0usize..1 << 20,
        mask in 1u16..256,
    ) {
        let mut buf = encode_all(&msgs);
        let pos = pos % buf.len();
        buf[pos] ^= mask as u8;

        let err = decode_frames(&buf).expect_err("flipped byte must fail decode");
        prop_assert!(
            matches!(&err, NetError::Corrupt { detail, .. } if !detail.is_empty()),
            "{err}"
        );
        prop_assert!(err.to_string().contains("wire corrupt at byte"), "{err}");
    }
}
