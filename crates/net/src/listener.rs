//! Inbound transport: the engine-side ingest listener.
//!
//! One accept thread plus one reader thread per source process. Decoded
//! messages are handed to a caller-supplied handler; every connection
//! failure — socket drop, decode error, version skew — becomes an
//! [`IngestEvent::Error`] naming the peer, never a panic, so the engine
//! keeps serving the surviving sources when one process dies mid-run.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::codec::{Decoder, NetError, NetMsg, WireBatch, PROTOCOL_VERSION};

/// What the ingest listener reports to its handler.
#[derive(Debug)]
pub enum IngestEvent {
    /// A decoded, routed batch from some source process.
    Batch(WireBatch),
    /// A peer finished cleanly: its final send-side accounting.
    Closed {
        /// Peer name from its handshake (or its socket address).
        peer: String,
        /// Batch frames the peer wrote to the socket.
        sent_batches: u64,
        /// Batch frames the peer shed from its full send queue.
        shed_batches: u64,
    },
    /// A connection failed: socket drop without a bye, corrupt bytes,
    /// or a protocol violation. The listener keeps serving other peers.
    Error {
        /// Peer name (handshake) or socket address.
        peer: String,
        /// What went wrong, actionable.
        detail: String,
    },
}

type Handler = Arc<dyn Fn(IngestEvent) + Send + Sync>;

/// A bound TCP ingest listener feeding decoded events to a handler.
pub struct IngestServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    batches: Arc<AtomicU64>,
    accept_handle: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl IngestServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`IngestServer::local_addr`]) and starts accepting.
    pub fn bind(addr: &str, handler: Handler) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let batches = Arc::new(AtomicU64::new(0));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let stop = stop.clone();
            let batches = batches.clone();
            let conns = conns.clone();
            thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || accept_loop(listener, handler, stop, batches, conns))
                .expect("spawn net acceptor")
        };
        Ok(IngestServer {
            addr: local,
            stop,
            batches,
            accept_handle: Some(accept_handle),
            conns,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Batches decoded and handed to the handler so far.
    pub fn batches_received(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Stops accepting, winds down every reader thread and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: Handler,
    stop: Arc<AtomicBool>,
    batches: Arc<AtomicU64>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn = 0usize;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer_addr)) => {
                let handler = handler.clone();
                let stop = stop.clone();
                let batches = batches.clone();
                let id = next_conn;
                next_conn += 1;
                let handle = thread::Builder::new()
                    .name(format!("net-ingest-{id}"))
                    .spawn(move || serve_conn(stream, peer_addr, handler, stop, batches))
                    .expect("spawn net reader");
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_conn(
    stream: TcpStream,
    peer_addr: SocketAddr,
    handler: Handler,
    stop: Arc<AtomicBool>,
    batches: Arc<AtomicU64>,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    // Short read timeouts keep the reader responsive to shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut peer = peer_addr.to_string();
    let mut dec = Decoder::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 64 * 1024];
    let mut saw_bye = false;
    loop {
        if stop.load(Ordering::Relaxed) {
            // Engine shutdown while the peer is still connected: not a
            // peer failure, just stop reading.
            return;
        }
        let n = match stream.read(&mut tmp) {
            Ok(0) => {
                if !saw_bye {
                    handler(IngestEvent::Error {
                        peer,
                        detail: format!(
                            "connection closed without bye at stream byte {}",
                            dec.consumed() + buf.len() as u64
                        ),
                    });
                }
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => {
                handler(IngestEvent::Error {
                    peer,
                    detail: format!("socket read failed: {e}"),
                });
                return;
            }
        };
        buf.extend_from_slice(&tmp[..n]);
        loop {
            match dec.next(&buf) {
                Ok(Some((msg, used))) => {
                    buf.drain(..used);
                    match msg {
                        NetMsg::Hello {
                            version,
                            peer: name,
                        } => {
                            if version != PROTOCOL_VERSION {
                                handler(IngestEvent::Error {
                                    peer: name,
                                    detail: format!(
                                        "protocol version skew: peer speaks {version}, \
                                         this engine speaks {PROTOCOL_VERSION}"
                                    ),
                                });
                                return;
                            }
                            peer = name;
                        }
                        NetMsg::Batch(wb) => {
                            batches.fetch_add(1, Ordering::Relaxed);
                            handler(IngestEvent::Batch(wb));
                        }
                        NetMsg::Bye {
                            sent_batches,
                            shed_batches,
                        } => {
                            saw_bye = true;
                            handler(IngestEvent::Closed {
                                peer: peer.clone(),
                                sent_batches,
                                shed_batches,
                            });
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    handler(IngestEvent::Error {
                        peer,
                        detail: e.to_string(),
                    });
                    return;
                }
            }
        }
        if saw_bye {
            // The bye is the peer's last frame; don't wait for its FIN.
            return;
        }
    }
}
