//! Wire codec: the WAL's framing discipline applied to a socket.
//!
//! Every message is one frame, `[len: u32 LE][crc: u32 LE][kind: u8]
//! [payload]`, exactly like a WAL record: `len` counts the kind byte
//! plus payload, `crc` is the same CRC-32 (IEEE) over those bytes. A
//! batch payload is the WAL batch layout verbatim
//! ([`themis_core::wal::encode_batch_bytes`]), prefixed by its routing
//! header. Decode errors are always actionable [`NetError::Corrupt`]
//! values naming the absolute stream offset — never panics — so a
//! flipped byte on the wire reads like a corrupt WAL file, not a crash.

use std::collections::HashMap;
use std::fmt;

use themis_core::prelude::{QueryId, SourceId, Timestamp, TupleBatch};
use themis_core::wal::{
    crc32, decode_batch_bytes, encode_batch_bytes, SchemaCache, WalError, FRAME_HEADER_BYTES,
};

/// Wire protocol version carried in every [`NetMsg::Hello`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame body. A length prefix beyond this is treated
/// as corruption immediately: a streaming reader must not wait for (or
/// allocate) gigabytes because one length byte flipped in flight.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const MSG_HELLO: u8 = 1;
const MSG_BATCH: u8 = 2;
const MSG_BYE: u8 = 3;

/// Errors of the wire layer.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed bytes at an absolute stream offset.
    Corrupt {
        /// Byte offset since the start of the stream.
        offset: u64,
        /// What was wrong there.
        detail: String,
    },
    /// Connecting to a peer failed after the configured bounded retries.
    ConnectFailed {
        /// The address dialled.
        addr: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The last underlying error.
        detail: String,
    },
    /// A well-formed frame that violates the protocol (e.g. version skew).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network i/o error: {e}"),
            NetError::Corrupt { offset, detail } => {
                write!(f, "wire corrupt at byte {offset}: {detail}")
            }
            NetError::ConnectFailed {
                addr,
                attempts,
                detail,
            } => write!(
                f,
                "connect to {addr} failed after {attempts} attempts: {detail}"
            ),
            NetError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WalError> for NetError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Io(e) => NetError::Io(e),
            WalError::Corrupt { offset, detail } => NetError::Corrupt { offset, detail },
        }
    }
}

fn corrupt(offset: u64, detail: impl Into<String>) -> NetError {
    NetError::Corrupt {
        offset,
        detail: detail.into(),
    }
}

/// A batch in flight: the routing header the pump would have attached
/// in-process, plus the columnar payload.
#[derive(Debug, Clone)]
pub struct WireBatch {
    /// Global node index hosting the destination fragment.
    pub node: u32,
    /// Owning query.
    pub query: QueryId,
    /// Destination fragment within the query.
    pub fragment: u32,
    /// The emitting source.
    pub source: SourceId,
    /// Emission timestamp (logical, source-process clock).
    pub created: Timestamp,
    /// The columnar payload, WAL batch layout on the wire.
    pub batch: TupleBatch,
}

/// One wire message.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// First frame on every connection: version handshake plus a peer
    /// name used in engine-side error reports.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// Human-readable peer identity (e.g. `source-pump-2`).
        peer: String,
    },
    /// A routed tuple batch.
    Batch(WireBatch),
    /// Clean shutdown: the peer's final send-side accounting, so the
    /// engine can surface remote shed counts in its report.
    Bye {
        /// Batch frames the peer actually wrote to the socket.
        sent_batches: u64,
        /// Batch frames the peer shed oldest-first from a full queue.
        shed_batches: u64,
    },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends one framed message to `out` (same backfilled-header scheme as
/// the WAL's `encode_record`).
pub fn encode_msg(msg: &NetMsg, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    match msg {
        NetMsg::Hello { version, peer } => {
            out.push(MSG_HELLO);
            put_u32(out, *version);
            put_str(out, peer);
        }
        NetMsg::Batch(wb) => {
            out.push(MSG_BATCH);
            put_u32(out, wb.node);
            put_u32(out, wb.query.0);
            put_u32(out, wb.fragment);
            put_u32(out, wb.source.0);
            put_u64(out, wb.created.0);
            encode_batch_bytes(out, &wb.batch);
        }
        NetMsg::Bye {
            sent_batches,
            shed_batches,
        } => {
            out.push(MSG_BYE);
            put_u64(out, *sent_batches);
            put_u64(out, *shed_batches);
        }
    }
    let body = start + FRAME_HEADER_BYTES;
    let len = (out.len() - body) as u32;
    let crc = crc32(&out[body..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Bounds-checked little-endian reader over one frame body (the net-side
/// twin of the WAL's private reader). `base` is the body's absolute
/// stream offset, so errors name real positions.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Reader { buf, pos: 0, base }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], NetError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt(
                self.offset(),
                format!(
                    "truncated {what}: need {n} bytes, {} left in frame",
                    self.buf.len() - self.pos
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, NetError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, NetError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self, what: &str) -> Result<String, NetError> {
        let n = self.u32(what)? as usize;
        if self.buf.len() - self.pos < n {
            return Err(corrupt(
                self.offset(),
                format!(
                    "implausible {what} length {n}: {} bytes left in frame",
                    self.buf.len() - self.pos
                ),
            ));
        }
        let at = self.offset();
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(at, format!("{what} is not valid utf-8")))
    }

    fn done(&self, what: &str) -> Result<(), NetError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(
                self.offset(),
                format!(
                    "{} trailing bytes after {what} frame",
                    self.buf.len() - self.pos
                ),
            ));
        }
        Ok(())
    }

    fn rest(&mut self) -> (&'a [u8], u64) {
        let at = self.offset();
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        (s, at)
    }
}

/// Incremental frame decoder for one connection. Feeds on the front of a
/// receive buffer; tracks the absolute stream offset so every error
/// names the byte the damage is at, and keeps one [`SchemaCache`] so all
/// batches a peer ships for the same query share a schema and tag
/// dictionary (codes are remapped through re-interning, exactly like a
/// WAL restore).
pub struct Decoder {
    schemas: SchemaCache,
    consumed: u64,
}

impl Decoder {
    /// A decoder positioned at stream offset zero.
    pub fn new() -> Self {
        Decoder {
            schemas: HashMap::new(),
            consumed: 0,
        }
    }

    /// Absolute offset of the first unconsumed byte.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Tries to decode one message from the front of `buf` (which must
    /// start at stream offset [`Decoder::consumed`]). Returns the
    /// message plus the frame's byte length for the caller to drain;
    /// `Ok(None)` means the frame is still incomplete — read more.
    pub fn next(&mut self, buf: &[u8]) -> Result<Option<(NetMsg, usize)>, NetError> {
        if buf.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let at = self.consumed;
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if len == 0 {
            return Err(corrupt(at, "empty frame"));
        }
        if len > MAX_FRAME_BYTES {
            return Err(corrupt(
                at,
                format!("implausible frame length {len} (max {MAX_FRAME_BYTES})"),
            ));
        }
        if buf.len() - FRAME_HEADER_BYTES < len {
            return Ok(None);
        }
        let body = &buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
        let computed = crc32(body);
        if computed != stored_crc {
            return Err(corrupt(
                at,
                format!("checksum mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"),
            ));
        }
        let base = at + FRAME_HEADER_BYTES as u64;
        let mut r = Reader::new(&body[1..], base + 1);
        let msg = match body[0] {
            MSG_HELLO => {
                let version = r.u32("hello version")?;
                let peer = r.str("hello peer name")?;
                r.done("hello")?;
                NetMsg::Hello { version, peer }
            }
            MSG_BATCH => {
                let node = r.u32("batch node")?;
                let query = QueryId(r.u32("batch query")?);
                let fragment = r.u32("batch fragment")?;
                let source = SourceId(r.u32("batch source")?);
                let created = Timestamp(r.u64("batch timestamp")?);
                let (bytes, bytes_at) = r.rest();
                let batch = decode_batch_bytes(bytes, bytes_at, query, &mut self.schemas)?;
                NetMsg::Batch(WireBatch {
                    node,
                    query,
                    fragment,
                    source,
                    created,
                    batch,
                })
            }
            MSG_BYE => {
                let sent_batches = r.u64("bye sent count")?;
                let shed_batches = r.u64("bye shed count")?;
                r.done("bye")?;
                NetMsg::Bye {
                    sent_batches,
                    shed_batches,
                }
            }
            other => return Err(corrupt(base, format!("unknown message kind {other}"))),
        };
        let frame = FRAME_HEADER_BYTES + len;
        self.consumed += frame as u64;
        Ok(Some((msg, frame)))
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

/// Strictly decodes a complete captured stream: any anomaly — a frame
/// truncated anywhere, a checksum mismatch, a malformed body — is a
/// [`NetError::Corrupt`] naming the offending offset. The property-test
/// entry point (sockets use [`Decoder`] incrementally instead).
pub fn decode_frames(buf: &[u8]) -> Result<Vec<NetMsg>, NetError> {
    let mut dec = Decoder::new();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        match dec.next(&buf[pos..])? {
            Some((msg, used)) => {
                out.push(msg);
                pos += used;
            }
            None => {
                let remaining = buf.len() - pos;
                if remaining < FRAME_HEADER_BYTES {
                    return Err(corrupt(
                        pos as u64,
                        format!("truncated frame header: {remaining} bytes"),
                    ));
                }
                let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
                return Err(corrupt(
                    pos as u64,
                    format!(
                        "truncated frame body: header declares {len} bytes, {} present",
                        remaining - FRAME_HEADER_BYTES
                    ),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::prelude::{Sic, Value};

    fn batch() -> TupleBatch {
        let mut b = TupleBatch::with_capacity(2, 3);
        for i in 0..3u64 {
            b.push_row(
                Timestamp(i * 10),
                Sic(0.5),
                &[Value::I64(i as i64), Value::F64(i as f64 * 1.5)],
            );
        }
        b.drop_row(1);
        b
    }

    #[test]
    fn round_trips_a_session() {
        let msgs = vec![
            NetMsg::Hello {
                version: PROTOCOL_VERSION,
                peer: "pump-0".into(),
            },
            NetMsg::Batch(WireBatch {
                node: 3,
                query: QueryId(7),
                fragment: 1,
                source: SourceId(9),
                created: Timestamp(12345),
                batch: batch(),
            }),
            NetMsg::Bye {
                sent_batches: 41,
                shed_batches: 1,
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode_msg(m, &mut buf);
        }
        let back = decode_frames(&buf).unwrap();
        assert_eq!(back.len(), 3);
        match &back[0] {
            NetMsg::Hello { version, peer } => {
                assert_eq!(*version, PROTOCOL_VERSION);
                assert_eq!(peer, "pump-0");
            }
            other => panic!("expected hello, got {other:?}"),
        }
        match &back[1] {
            NetMsg::Batch(wb) => {
                assert_eq!(wb.node, 3);
                assert_eq!(wb.query, QueryId(7));
                assert_eq!(wb.source, SourceId(9));
                assert_eq!(wb.batch.rows(), 3);
                assert!(!wb.batch.is_live(1));
            }
            other => panic!("expected batch, got {other:?}"),
        }
        match &back[2] {
            NetMsg::Bye {
                sent_batches,
                shed_batches,
            } => {
                assert_eq!(*sent_batches, 41);
                assert_eq!(*shed_batches, 1);
            }
            other => panic!("expected bye, got {other:?}"),
        }
    }

    #[test]
    fn incremental_decode_waits_for_whole_frames() {
        let mut buf = Vec::new();
        encode_msg(
            &NetMsg::Bye {
                sent_batches: 1,
                shed_batches: 0,
            },
            &mut buf,
        );
        let mut dec = Decoder::new();
        for cut in 0..buf.len() {
            assert!(dec.next(&buf[..cut]).unwrap().is_none(), "cut at {cut}");
        }
        let (msg, used) = dec.next(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert!(matches!(msg, NetMsg::Bye { .. }));
        assert_eq!(dec.consumed(), buf.len() as u64);
    }

    #[test]
    fn implausible_length_is_corrupt_not_a_wait() {
        let mut buf = Vec::new();
        encode_msg(
            &NetMsg::Bye {
                sent_batches: 0,
                shed_batches: 0,
            },
            &mut buf,
        );
        buf[3] = 0xff; // drive the length prefix past MAX_FRAME_BYTES
        let err = decode_frames(&buf).unwrap_err();
        match err {
            NetError::Corrupt { offset, detail } => {
                assert_eq!(offset, 0);
                assert!(detail.contains("implausible frame length"), "{detail}");
            }
            other => panic!("expected corrupt, got {other}"),
        }
    }
}
