//! Federation transport for THEMIS (PR 10).
//!
//! The paper's setting is *federated* stream processing: autonomous
//! sites exchange streams over real links. This crate supplies the
//! wire layer that turns the in-process prototype into communicating
//! processes:
//!
//! - [`codec`] — a length-prefixed, CRC-checked frame codec for tuple
//!   batches that reuses the WAL's columnar batch layout byte-for-byte
//!   (typed + arena payloads, drop bitmaps, tag dictionaries shipped as
//!   code-ordered snapshots re-interned per connection).
//! - [`transport`] — outbound side: bounded-retry connects with backoff
//!   and per-peer send queues that **shed oldest-first instead of
//!   blocking** when full. Shedding at the socket mirrors shedding at
//!   the node: dropped tuples never need redelivery (AF-Stream's
//!   bounded-loss observation), so an overloaded link degrades the
//!   realised rate instead of back-pressuring the source into a stall.
//! - [`listener`] — inbound side: the engine's ingest listener, one
//!   reader thread per source process, decoded batches handed to a
//!   callback and connection failures surfaced as events rather than
//!   panics.

pub mod codec;
pub mod listener;
pub mod transport;

/// Convenient single import: `use themis_net::prelude::*;`.
pub mod prelude {
    pub use crate::codec::{
        decode_frames, encode_msg, Decoder, NetError, NetMsg, WireBatch, PROTOCOL_VERSION,
    };
    pub use crate::listener::{IngestEvent, IngestServer};
    pub use crate::transport::{connect_with_retry, FragmentRouter, NetConfig, PeerSender};
}
