//! Outbound transport: bounded-retry connects and per-peer send queues
//! that shed oldest-first instead of blocking.
//!
//! The send queue is the admission side of the paper's overload story
//! applied to a link: when the socket cannot drain fast enough, the
//! queue drops the *oldest* queued batch (stale data is worth the least
//! to a sliding window) and counts it, so the realised rate degrades
//! smoothly and the source pump never stalls behind a slow peer.
//! Shedding here is safe precisely because shed tuples never need
//! redelivery — the engine's own shedder would have been free to drop
//! them anyway.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::codec::{encode_msg, NetError, NetMsg, WireBatch, PROTOCOL_VERSION};

/// Transport tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Total connect attempts before [`NetError::ConnectFailed`].
    pub connect_retries: u32,
    /// Base backoff between attempts (linear: attempt `k` sleeps
    /// `k * retry_backoff` first).
    pub retry_backoff: Duration,
    /// Per-peer send-queue capacity, in frames; an enqueue beyond this
    /// sheds the oldest queued batch instead of blocking.
    pub send_queue: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout: Duration::from_secs(1),
            connect_retries: 5,
            retry_backoff: Duration::from_millis(50),
            send_queue: 256,
        }
    }
}

/// Dials `addr` with the config's bounded retry schedule. Exhausting the
/// attempts yields an actionable [`NetError::ConnectFailed`] naming the
/// address, the attempt count and the last underlying error.
pub fn connect_with_retry(addr: &str, cfg: &NetConfig) -> Result<TcpStream, NetError> {
    let attempts = cfg.connect_retries.max(1);
    let mut last = String::from("no socket address resolved");
    for attempt in 0..attempts {
        if attempt > 0 {
            thread::sleep(cfg.retry_backoff * attempt);
        }
        // Re-resolve each attempt: the peer may only just be binding.
        match addr.to_socket_addrs() {
            Ok(mut addrs) => match addrs.next() {
                Some(sa) => match TcpStream::connect_timeout(&sa, cfg.connect_timeout) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        return Ok(stream);
                    }
                    Err(e) => last = e.to_string(),
                },
                None => last = String::from("no socket address resolved"),
            },
            Err(e) => last = e.to_string(),
        }
    }
    Err(NetError::ConnectFailed {
        addr: addr.to_string(),
        attempts,
        detail: last,
    })
}

struct SendQueue {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// Final send-side accounting returned by [`PeerSender::close`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SendStats {
    /// Batch frames actually written to the socket.
    pub sent_batches: u64,
    /// Batch frames shed oldest-first from a full queue.
    pub shed_batches: u64,
}

/// One outbound peer connection: a writer thread draining a bounded
/// frame queue. [`PeerSender::send_batch`] never blocks — a full queue
/// sheds its oldest batch and counts it.
pub struct PeerSender {
    queue: Arc<(Mutex<SendQueue>, Condvar)>,
    capacity: usize,
    shed: Arc<AtomicU64>,
    sent: Arc<AtomicU64>,
    failed: Arc<AtomicBool>,
    handle: Option<JoinHandle<Result<(), NetError>>>,
}

impl PeerSender {
    /// Connects to `addr` (bounded retry per `cfg`), writes the
    /// version handshake synchronously, and starts the writer thread.
    /// `peer` names this process in the engine's reports.
    pub fn connect(addr: &str, peer: &str, cfg: &NetConfig) -> Result<Self, NetError> {
        let mut stream = connect_with_retry(addr, cfg)?;
        // The handshake is written before the queue exists, so it can
        // never be a shedding victim.
        let mut hello = Vec::new();
        encode_msg(
            &NetMsg::Hello {
                version: PROTOCOL_VERSION,
                peer: peer.to_string(),
            },
            &mut hello,
        );
        stream.write_all(&hello)?;
        let queue = Arc::new((
            Mutex::new(SendQueue {
                frames: VecDeque::new(),
                closed: false,
            }),
            Condvar::new(),
        ));
        let shed = Arc::new(AtomicU64::new(0));
        let sent = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicBool::new(false));
        let handle = {
            let queue = queue.clone();
            let sent = sent.clone();
            let failed = failed.clone();
            thread::Builder::new()
                .name(format!("net-send-{peer}"))
                .spawn(move || writer_loop(stream, &queue, &sent, &failed))
                .expect("spawn net sender")
        };
        Ok(PeerSender {
            queue,
            capacity: cfg.send_queue.max(1),
            shed,
            sent,
            failed,
            handle: Some(handle),
        })
    }

    /// Enqueues one batch, shedding the oldest queued batch first when
    /// the queue is full. Never blocks on the socket.
    pub fn send_batch(&self, wb: &WireBatch) {
        let mut frame = Vec::new();
        encode_msg(&NetMsg::Batch(wb.clone()), &mut frame);
        let (lock, cv) = &*self.queue;
        let mut q = lock.lock().unwrap();
        if q.closed {
            return;
        }
        // Only batches ever sit in the queue before close (the
        // handshake was written synchronously, the bye is enqueued
        // after the queue drained), so the front is always sheddable.
        if q.frames.len() >= self.capacity {
            q.frames.pop_front();
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
        q.frames.push_back(frame);
        cv.notify_all();
    }

    /// Batches shed from the full queue so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Batches written to the socket so far.
    pub fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Whether the writer thread hit a socket error (subsequent sends
    /// are silently discarded; [`PeerSender::close`] returns the error).
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// Drains the queue, sends the final [`NetMsg::Bye`] carrying exact
    /// sent/shed counts, and joins the writer. Returns the accounting,
    /// or the writer's socket error if the connection died.
    pub fn close(mut self) -> Result<SendStats, NetError> {
        let (lock, cv) = &*self.queue;
        let stats = {
            // Wait for the backlog to drain so the counters in the bye
            // are final. A failed writer abandons its backlog.
            let mut q = lock.lock().unwrap();
            while !q.frames.is_empty() && !self.failed.load(Ordering::Relaxed) {
                q = cv.wait(q).unwrap();
            }
            // Snapshot before enqueueing the bye: the writer counts every
            // frame it writes, and the bye itself is not a batch.
            let stats = SendStats {
                sent_batches: self.sent.load(Ordering::Relaxed),
                shed_batches: self.shed.load(Ordering::Relaxed),
            };
            let mut bye = Vec::new();
            encode_msg(
                &NetMsg::Bye {
                    sent_batches: stats.sent_batches,
                    shed_batches: stats.shed_batches,
                },
                &mut bye,
            );
            q.frames.push_back(bye);
            q.closed = true;
            cv.notify_all();
            stats
        };
        let result = self
            .handle
            .take()
            .expect("writer joined once")
            .join()
            .unwrap_or_else(|_| Err(NetError::Protocol("net writer thread panicked".into())));
        result.map(|()| stats)
    }
}

impl Drop for PeerSender {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (lock, cv) = &*self.queue;
            {
                let mut q = lock.lock().unwrap();
                q.closed = true;
                cv.notify_all();
            }
            let _ = handle.join();
        }
    }
}

fn writer_loop(
    mut stream: TcpStream,
    queue: &Arc<(Mutex<SendQueue>, Condvar)>,
    sent: &Arc<AtomicU64>,
    failed: &Arc<AtomicBool>,
) -> Result<(), NetError> {
    let (lock, cv) = &**queue;
    loop {
        let frame = {
            let mut q = lock.lock().unwrap();
            loop {
                if let Some(frame) = q.frames.pop_front() {
                    break frame;
                }
                if q.closed {
                    return Ok(());
                }
                q = cv.wait(q).unwrap();
            }
        };
        if let Err(e) = stream.write_all(&frame) {
            failed.store(true, Ordering::Relaxed);
            // Unblock a closer waiting for the queue to drain; leftover
            // frames are abandoned — a dead link delivers nothing.
            let mut q = lock.lock().unwrap();
            q.frames.clear();
            cv.notify_all();
            drop(q);
            return Err(NetError::Io(e));
        }
        sent.fetch_add(1, Ordering::Relaxed);
        cv.notify_all();
    }
}

/// Routes batches to the peer hosting their destination node. With one
/// engine process this is a single connection; the mapping (`node mod
/// peers`) is the hook real multi-engine deployments would replace with
/// a placement-driven table.
pub struct FragmentRouter {
    peers: Vec<PeerSender>,
}

impl FragmentRouter {
    /// Connects one [`PeerSender`] per ingest address.
    pub fn connect(addrs: &[String], peer: &str, cfg: &NetConfig) -> Result<Self, NetError> {
        let mut peers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            peers.push(PeerSender::connect(addr, peer, cfg)?);
        }
        Ok(FragmentRouter { peers })
    }

    /// Sends `wb` to the peer responsible for its destination node.
    pub fn send_batch(&self, wb: &WireBatch) {
        let peer = &self.peers[wb.node as usize % self.peers.len()];
        peer.send_batch(wb);
    }

    /// Total batches shed across all peers so far.
    pub fn shed_count(&self) -> u64 {
        self.peers.iter().map(|p| p.shed_count()).sum()
    }

    /// Closes every peer; sums their accounting, returning the first
    /// error after all have been closed.
    pub fn close(self) -> Result<SendStats, NetError> {
        let mut total = SendStats::default();
        let mut first_err = None;
        for peer in self.peers {
            match peer.close() {
                Ok(s) => {
                    total.sent_batches += s.sent_batches;
                    total.shed_batches += s.shed_batches;
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }
}
