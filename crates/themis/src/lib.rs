//! # themis
//!
//! Facade crate for the THEMIS reproduction — *THEMIS: Fairness in
//! Federated Stream Processing under Overload* (Kalyvianaki, Fiscato,
//! Salonidis & Pietzuch, SIGMOD 2016).
//!
//! Re-exports the component crates:
//!
//! * [`core`] — SIC metric, BALANCE-SIC shedder (Algorithm 1), fairness
//!   metrics, cost model, coordinator;
//! * [`operators`] — SIC-propagating windowed operators;
//! * [`query`] — query graphs, fragments, Table-1 templates, placement;
//! * [`workloads`] — datasets, source models, scenario builder;
//! * [`sim`] — deterministic discrete-event FSPS simulator;
//! * [`engine`] — multi-threaded prototype engine (sharded worker pool);
//! * [`baselines`] — §7.5 related-work baselines (FIT LP, log utility).
//!
//! ```
//! use themis::prelude::*;
//!
//! // Build an overloaded two-node federation and run it.
//! let scenario = ScenarioBuilder::new("readme", 7)
//!     .nodes(2)
//!     .capacity_tps(150)
//!     .duration(TimeDelta::from_secs(10))
//!     .warmup(TimeDelta::from_secs(6))
//!     .stw_window(TimeDelta::from_secs(4))
//!     .add_queries(
//!         Template::Cov { fragments: 2 },
//!         6,
//!         SourceProfile::steady(40, 4, Dataset::Uniform),
//!     )
//!     .build()
//!     .unwrap();
//! let report = run_scenario(scenario, SimConfig::default());
//! assert!(report.jain() > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use themis_baselines as baselines;
pub use themis_core as core;
pub use themis_engine as engine;
pub use themis_operators as operators;
pub use themis_query as query;
pub use themis_sim as sim;
pub use themis_workloads as workloads;

/// Everything most applications need.
///
/// The engine's `RoutedBatch` is re-exported under an alias because the
/// simulator exports a type of the same name.
pub mod prelude {
    pub use themis_baselines::prelude::*;
    pub use themis_core::prelude::*;
    pub use themis_engine::prelude::{
        default_shards, run_engine, Engine, EngineConfig, EngineMsg, EngineReport, NodeReport,
        ResultEvent, RoutedBatch as EngineRoutedBatch, ShardMsg,
    };
    pub use themis_operators::prelude::*;
    pub use themis_query::prelude::*;
    pub use themis_sim::prelude::*;
    pub use themis_workloads::prelude::*;
}
