//! Property-based tests over the programmable rate patterns: every
//! [`RatePattern`] realises its declared long-run mean rate under seeded
//! [`SourceDriver`] runs, and pattern state is exactly reproducible for a
//! fixed seed.

use proptest::prelude::*;

use themis_core::prelude::*;
use themis_query::prelude::{SourceKind, SourceSpec};
use themis_workloads::prelude::*;

fn spec() -> SourceSpec {
    SourceSpec::plain(SourceId(1), None, SourceKind::Generic)
}

/// Strategy: any rate pattern with parameters in sane evaluation ranges.
/// Periods divide the 60 s measurement horizon so periodic patterns are
/// measured over whole cycles. Trace patterns register their (deduped)
/// factor sequence in the process-global registry; adversarial ticks are
/// multiples of 250 ms, so every driver interval used below divides them.
fn arb_pattern() -> impl Strategy<Value = RatePattern> {
    (
        0usize..6,
        (0.1f64..0.3, 2u32..8),
        prop::sample::select(vec![1u64, 2, 3, 4, 5, 6]),
        (0.0f64..1.2, 1.5f64..4.0),
        0.15f64..0.85,
    )
        .prop_map(
            |(kind, (fraction, factor), period_s, (trough, peak), duty)| match kind {
                0 => RatePattern::Steady,
                1 => RatePattern::Bursty { fraction, factor },
                2 => RatePattern::Diurnal {
                    period: TimeDelta::from_secs(period_s),
                    trough,
                    peak,
                    shape: if duty < 0.5 {
                        CycleShape::Sine
                    } else {
                        CycleShape::Square { duty }
                    },
                },
                3 => RatePattern::FlashCrowd {
                    every: TimeDelta::from_secs(period_s.max(2)),
                    width: TimeDelta::from_millis(500),
                    magnitude: peak,
                },
                4 => {
                    // A short 1 s-beat trace whose cycle (2-6 beats)
                    // divides the 60 s horizon.
                    let len = (period_s as usize).clamp(2, 6);
                    let factors: Vec<f64> = (0..len)
                        .map(|i| trough + (peak - trough) * i as f64 / (len - 1) as f64)
                        .collect();
                    let trace =
                        TraceData::from_factors("proptest", TimeDelta::from_secs(1), factors)
                            .unwrap()
                            .register();
                    RatePattern::Trace { trace }
                }
                _ => RatePattern::Adversarial {
                    tick: TimeDelta::from_millis(250 * period_s),
                },
            },
        )
}

/// Tuples emitted per second, measured over `horizon` of driver virtual
/// time (the driver's clock is logical — no wall time passes).
fn measured_rate(profile: SourceProfile, seed: u64, horizon_secs: u64) -> f64 {
    let mut driver = SourceDriver::new(QueryId(0), &spec(), profile, seed);
    let horizon = Timestamp::from_secs(horizon_secs);
    let mut total = 0usize;
    while driver.next_time() < horizon {
        total += driver.emit().len();
    }
    total as f64 / horizon_secs as f64
}

proptest! {
    /// Every pattern's realised long-run rate matches the declared
    /// `mean_rate_tps()` within a per-pattern tolerance (stochastic
    /// patterns measure over a longer horizon).
    #[test]
    fn patterns_hit_their_declared_mean_rate(pattern in arb_pattern(), seed in 1u64..5000) {
        // 20 batches/s: a fine emission grid, so square-edged patterns
        // (Square duty cycles, flash spikes) quantise to within a few
        // percent even at 1 s periods.
        let profile = SourceProfile::steady(40, 20, Dataset::Uniform).with_pattern(pattern);
        let declared = profile.mean_rate_tps();
        // Bursty periods are independent coin flips: use a long horizon
        // and a wider band. The rest are deterministic up to batch-grid
        // discretisation.
        let (horizon, tolerance) = match pattern {
            RatePattern::Steady => (60, 0.02),
            RatePattern::Bursty { .. } => (600, 0.20),
            RatePattern::Diurnal { .. } => (60, 0.10),
            RatePattern::FlashCrowd { .. } => (60, 0.10),
            RatePattern::Trace { .. } => (60, 0.05),
            RatePattern::Adversarial { .. } => (60, 0.02),
        };
        let measured = measured_rate(profile, seed, horizon);
        prop_assert!(
            (measured - declared).abs() <= tolerance * declared.max(1.0),
            "pattern {pattern:?}: measured {measured:.2} t/s vs declared {declared:.2} t/s"
        );
    }

    /// Per-source multipliers compose linearly with any pattern, in both
    /// the declared mean and the realised rate.
    #[test]
    fn multiplier_scales_any_pattern(pattern in arb_pattern(), mult in 0.5f64..3.0, seed in 1u64..5000) {
        let base = SourceProfile::steady(40, 20, Dataset::Uniform).with_pattern(pattern);
        let scaled = base.with_multiplier(mult);
        prop_assert!((scaled.mean_rate_tps() - mult * base.mean_rate_tps()).abs() < 1e-9);
        let horizon = if matches!(pattern, RatePattern::Bursty { .. }) { 600 } else { 60 };
        let measured = measured_rate(scaled, seed, horizon);
        prop_assert!(
            (measured - scaled.mean_rate_tps()).abs() <= 0.20 * scaled.mean_rate_tps().max(1.0),
            "multiplied pattern {pattern:?} x{mult:.2}: measured {measured:.2} vs declared {:.2}",
            scaled.mean_rate_tps()
        );
    }

    /// Replay determinism: a fixed seed reproduces the exact batch
    /// sequence — sizes compared batch by batch (and full payload
    /// equality on top), for every pattern.
    #[test]
    fn fixed_seed_replays_exactly(pattern in arb_pattern(), seed in 1u64..5000) {
        let profile = SourceProfile::steady(40, 4, Dataset::Mixed).with_pattern(pattern);
        let mut a = SourceDriver::new(QueryId(0), &spec(), profile, seed);
        let mut b = SourceDriver::new(QueryId(0), &spec(), profile, seed);
        for i in 0..240 {
            let (ba, bb) = (a.emit(), b.emit());
            prop_assert_eq!(ba.len(), bb.len(), "batch {} size diverged", i);
            prop_assert_eq!(ba, bb, "batch {} payload diverged", i);
        }
    }

    /// The flash-crowd spike trace is itself deterministic and well
    /// formed: spikes stay inside their epoch, keep their width, and the
    /// same seed reproduces the same trace.
    #[test]
    fn flash_trace_is_seeded_and_well_formed(
        every_s in prop::sample::select(vec![2u64, 3, 4, 5, 8]),
        width_ms in 200u64..1500,
        seed in 1u64..5000,
    ) {
        let pattern = RatePattern::FlashCrowd {
            every: TimeDelta::from_secs(every_s),
            width: TimeDelta::from_millis(width_ms),
            magnitude: 5.0,
        };
        let horizon = TimeDelta::from_secs(40);
        let trace = pattern.flash_trace(seed, horizon);
        prop_assert_eq!(trace.len() as u64, 40_u64.div_ceil(every_s), "one spike per epoch");
        let width = TimeDelta::from_millis(width_ms.min(every_s * 1000));
        for (i, &(start, end)) in trace.iter().enumerate() {
            let epoch_start = Timestamp::from_secs(i as u64 * every_s);
            let epoch_end = Timestamp::from_secs((i as u64 + 1) * every_s);
            prop_assert!(start >= epoch_start && end <= epoch_end, "spike {i} leaves its epoch");
            prop_assert_eq!(end - start, width, "spike {} width", i);
        }
        prop_assert_eq!(trace, pattern.flash_trace(seed, horizon), "same seed, same trace");
    }

    /// Trace replay realises the trace's declared `mean_factor()` over
    /// whole cycles, for arbitrary factor sequences.
    #[test]
    fn trace_replay_realises_the_declared_mean(
        factors in prop::collection::vec(0.1f64..4.0, 2..8),
        beat_ms in prop::sample::select(vec![250u64, 500, 1000]),
        seed in 1u64..5000,
    ) {
        let data = TraceData::from_factors(
            "proptest-mean", TimeDelta::from_millis(beat_ms), factors,
        ).unwrap();
        let declared_factor = data.mean_factor();
        let cycle = data.cycle();
        let trace = data.register();
        let pattern = RatePattern::Trace { trace };
        prop_assert!((pattern.mean_factor() - declared_factor).abs() < 1e-12);
        let profile = SourceProfile::steady(40, 20, Dataset::Uniform).with_pattern(pattern);
        // Measure over a whole number of cycles (≥ 30 s worth).
        let cycles = 30_000_000_u64.div_ceil(cycle.as_micros());
        let horizon_secs = cycles * cycle.as_micros() / 1_000_000;
        let measured = measured_rate(profile, seed, horizon_secs.max(1));
        let declared = profile.mean_rate_tps();
        prop_assert!(
            (measured - declared).abs() <= 0.05 * declared.max(1.0),
            "trace factors {:?}: measured {measured:.2} t/s vs declared {declared:.2} t/s",
            trace.data().factors()
        );
    }

    /// Same file + same seed → bit-identical replay: parsing the same
    /// CSV text twice yields the same registered trace, and two drivers
    /// over it emit identical batch sequences.
    #[test]
    fn same_file_same_seed_replays_bit_identically(
        factors in prop::collection::vec(0.1f64..4.0, 2..8),
        seed in 1u64..5000,
    ) {
        let csv: String = std::iter::once("time_s,factor".to_string())
            .chain(factors.iter().enumerate().map(|(i, f)| format!("{i}.0,{f}")))
            .collect::<Vec<_>>()
            .join("\n");
        let ta = TraceData::parse_csv("replay", &csv).unwrap().register();
        let tb = TraceData::parse_csv("replay", &csv).unwrap().register();
        prop_assert_eq!(ta, tb, "identical content interns to one registry entry");
        let profile = SourceProfile::steady(40, 4, Dataset::Mixed)
            .with_pattern(RatePattern::Trace { trace: ta });
        let mut a = SourceDriver::new(QueryId(0), &spec(), profile, seed);
        let mut b = SourceDriver::new(QueryId(0), &spec(), profile, seed);
        for i in 0..120 {
            let (ba, bb) = (a.emit(), b.emit());
            prop_assert_eq!(ba.len(), bb.len(), "batch {} size diverged", i);
            prop_assert_eq!(ba, bb, "batch {} payload diverged", i);
        }
    }
}
