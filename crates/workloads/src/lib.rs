//! # themis-workloads
//!
//! Workload generation for the THEMIS evaluation (§7): the five dataset
//! distributions of Figures 6/7 ([`datasets`]), Table-2 source models
//! under programmable rate patterns — steady, paper-bursty, diurnal
//! cycles, flash-crowd replays, arrival-trace replay ([`traces`]),
//! correlated shared loads, a tick-gaming adversarial source,
//! heterogeneous per-source multipliers ([`sources`], [`testbed`]) — and
//! the scenario builder that assembles queries, placement and capacities
//! into a simulator-ready [`scenario::Scenario`].
//!
//! ```
//! use themis_core::prelude::*;
//! use themis_query::prelude::*;
//! use themis_workloads::prelude::*;
//!
//! let scenario = ScenarioBuilder::new("quick", 42)
//!     .nodes(2)
//!     .capacity_tps(1000)
//!     .add_queries(
//!         Template::Cov { fragments: 2 },
//!         8,
//!         SourceProfile::emulab(Dataset::Uniform),
//!     )
//!     .build()
//!     .unwrap();
//! assert!(scenario.overload_factor() > 1.0); // permanently overloaded
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod remote;
pub mod scenario;
pub mod sources;
pub mod testbed;
pub mod traces;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::datasets::{Dataset, ValueGen};
    pub use crate::remote::{run_remote_sources, RemotePumpStats};
    pub use crate::scenario::{Scenario, ScenarioBuilder};
    pub use crate::sources::{CycleShape, RatePattern, SharedLoad, SourceDriver, SourceProfile};
    pub use crate::testbed::{Testbed, EMULAB, LOCAL, WAN};
    pub use crate::traces::{load_trace, TraceData, TraceError, TraceId};
}
