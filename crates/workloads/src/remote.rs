//! Remote source pump: drives a partition of a scenario's sources from a
//! *separate process* and ships their batches to an engine's ingest
//! listener over TCP.
//!
//! Determinism is the whole point: the partition enumerates sources in
//! the exact order the engine's own installer does (queries in scenario
//! order, fragments in order, bindings in order) and seeds each driver
//! with the same formula, so N source processes collectively emit the
//! very tuple streams the in-process pump would have — the federated
//! parity gate compares like with like. Both sides rebuild the scenario
//! from the same parameters; nothing about placement or seeding crosses
//! the wire.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread;
use std::time::{Duration, Instant};

use themis_core::prelude::Timestamp;
use themis_net::codec::{NetError, WireBatch};
use themis_net::transport::FragmentRouter;

use crate::datasets::Dataset;
use crate::scenario::{Scenario, ScenarioBuilder};
use crate::sources::{SourceDriver, SourceProfile};

pub use themis_net::codec::NetError as RemoteError;
pub use themis_net::transport::NetConfig;

/// Parameters of the canonical federated scenario. The engine process,
/// every source-pump process and the in-process control arm all call
/// [`build_federated_scenario`] with the *same* values, which is what
/// guarantees identical query ids, placements and source seeds across
/// process boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederatedParams {
    /// Scenario seed (drives placement and every source RNG).
    pub seed: u64,
    /// FSPS nodes.
    pub nodes: usize,
    /// Single-fragment `Avg` queries, placed round-robin.
    pub queries: usize,
    /// Per-source steady rate, tuples/second.
    pub rate_tps: u32,
    /// Emissions per second per source.
    pub batches_per_sec: u32,
    /// Declared per-node capacity, tuples/second (enforced in the
    /// engine, so overload is deterministic).
    pub capacity_tps: u32,
    /// SIC tracker window, milliseconds.
    pub stw_ms: u64,
    /// Warm-up before sampling, milliseconds.
    pub warmup_ms: u64,
    /// Measured duration, milliseconds.
    pub duration_ms: u64,
}

impl Default for FederatedParams {
    fn default() -> Self {
        FederatedParams {
            seed: 20160626,
            nodes: 4,
            queries: 12,
            rate_tps: 300,
            batches_per_sec: 30,
            capacity_tps: 600,
            stw_ms: 1500,
            warmup_ms: 2000,
            duration_ms: 4000,
        }
    }
}

/// Aggregation window of the federated scenario's queries. Much shorter
/// than the Table-1 second so each query lands several result records
/// per STW: the parity gate compares windowed result-SIC sums, and with
/// only one record per window a millisecond of transport skew could
/// swing a sample by a whole record. At 250 ms the comparison averages
/// over ~6 records per window and transport phase noise stays well
/// inside the gate's 2% tolerance.
pub const FEDERATED_WINDOW_MS: u64 = 250;

/// Builds the canonical federated scenario: `queries` steady short-window
/// `AVG` queries over `nodes` nodes at 1.5× default overload, uniform
/// data.
pub fn build_federated_scenario(p: &FederatedParams) -> Scenario {
    use themis_core::prelude::TimeDelta;
    use themis_query::prelude::{AggFunc, QueryDef, StreamDef};
    let query = QueryDef::aggregate(AggFunc::Avg, "value")
        .from_stream(StreamDef::new("src", 1))
        .named("AVG-fed")
        .window(TimeDelta::from_millis(FEDERATED_WINDOW_MS))
        .validate()
        .expect("federated query is valid by construction");
    ScenarioBuilder::new("federated", p.seed)
        .nodes(p.nodes)
        .capacity_tps(p.capacity_tps)
        .stw_window(TimeDelta::from_millis(p.stw_ms))
        .warmup(TimeDelta::from_millis(p.warmup_ms))
        .duration(TimeDelta::from_millis(p.duration_ms))
        .add_query_defs(
            &query,
            p.queries,
            SourceProfile::steady(p.rate_tps, p.batches_per_sec, Dataset::Uniform),
        )
        .build()
        .expect("valid federated scenario")
}

/// Parses the `--key=value` flags of a source-pump process and runs the
/// remote pump to completion. Shared by the standalone `source-pump`
/// binary and the hidden child mode of the bench `experiments` binary,
/// so a forked child behaves identically whichever binary hosts it.
///
/// Required: `--addr=HOST:PORT`, `--run-ms=N`. Optional: `--part=`,
/// `--parts=`, `--peer=`, `--start-unix-us=` (a shared wall-clock
/// timeline anchor, microseconds since the Unix epoch — see
/// [`run_remote_sources`]'s `start_at`), and every [`FederatedParams`]
/// field as `--seed= --nodes= --queries= --rate= --batches=
/// --capacity= --stw-ms= --warmup-ms= --duration-ms=`.
pub fn pump_main(args: &[String]) -> Result<RemotePumpStats, String> {
    let mut addr: Option<String> = None;
    let mut run_ms: Option<u64> = None;
    let mut part = 0usize;
    let mut parts = 1usize;
    let mut peer: Option<String> = None;
    let mut start_unix_us: Option<u64> = None;
    let mut p = FederatedParams::default();
    for arg in args {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k, v),
            None => return Err(format!("malformed pump flag {arg} (expected --key=value)")),
        };
        let uint = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("flag {key} needs an unsigned integer, got {value}"))
        };
        match key {
            "--addr" => addr = Some(value.to_string()),
            "--peer" => peer = Some(value.to_string()),
            "--run-ms" => run_ms = Some(uint()?),
            "--part" => part = uint()? as usize,
            "--parts" => parts = (uint()? as usize).max(1),
            "--start-unix-us" => start_unix_us = Some(uint()?),
            "--seed" => p.seed = uint()?,
            "--nodes" => p.nodes = uint()? as usize,
            "--queries" => p.queries = uint()? as usize,
            "--rate" => p.rate_tps = uint()? as u32,
            "--batches" => p.batches_per_sec = uint()? as u32,
            "--capacity" => p.capacity_tps = uint()? as u32,
            "--stw-ms" => p.stw_ms = uint()?,
            "--warmup-ms" => p.warmup_ms = uint()?,
            "--duration-ms" => p.duration_ms = uint()?,
            other => return Err(format!("unknown pump flag {other}")),
        }
    }
    let addr = addr.ok_or("missing required pump flag --addr=HOST:PORT")?;
    let run_ms = run_ms.ok_or("missing required pump flag --run-ms=N")?;
    let peer = peer.unwrap_or_else(|| format!("source-pump-{part}"));
    let start_at = start_unix_us.map(|at| std::time::UNIX_EPOCH + Duration::from_micros(at));
    let scenario = build_federated_scenario(&p);
    run_remote_sources(
        &scenario,
        part,
        parts,
        &addr,
        &peer,
        &NetConfig::default(),
        Duration::from_millis(run_ms),
        start_at,
    )
    .map_err(|e| e.to_string())
}

/// One driven source plus its wire-routing header.
struct RemoteSource {
    driver: SourceDriver,
    node: u32,
    fragment: u32,
}

/// Final accounting of one remote pump run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemotePumpStats {
    /// Batches emitted by the drivers.
    pub emitted_batches: u64,
    /// Batches actually written to the socket.
    pub sent_batches: u64,
    /// Batches shed oldest-first from the full send queue.
    pub shed_batches: u64,
}

/// Enumerates the scenario's source bindings in installer order and
/// keeps every `parts`-th one starting at `part`. The seed formula
/// matches the engine's installer, so a partitioned federation emits
/// bit-identical streams to the in-process pump.
fn partition_sources(scenario: &Scenario, part: usize, parts: usize) -> Vec<RemoteSource> {
    let mut out = Vec::new();
    let mut index = 0usize;
    for q in &scenario.queries {
        for fi in 0..q.n_fragments() {
            let node = scenario
                .deployment
                .node_of(q.id, fi)
                .expect("validated deployment")
                .index();
            for b in &q.fragments[fi].sources {
                let mine = index % parts == part;
                index += 1;
                if !mine {
                    continue;
                }
                let si = q
                    .sources
                    .iter()
                    .position(|s| s.id == b.source)
                    .expect("bound source declared");
                let seed = scenario.seed ^ (b.source.0 as u64).wrapping_mul(0x9E37_79B9);
                out.push(RemoteSource {
                    driver: SourceDriver::new(
                        q.id,
                        &q.sources[si],
                        scenario.profiles[&b.source],
                        seed,
                    ),
                    node: node as u32,
                    fragment: fi as u32,
                });
            }
        }
    }
    out
}

/// Drives partition `part` of `parts` of the scenario's sources against
/// the engine ingest listener at `addr` for `run_for` wall time (from
/// the timeline epoch), then closes with a bye carrying the exact
/// sent/shed accounting. `peer` names this process in the engine's
/// error reports.
///
/// `start_at`, when given, anchors the pump's timeline epoch to a
/// shared wall-clock instant — typically the moment the engine process
/// started. An anchor still in the future is slept to; one already in
/// the past back-dates the epoch and the drivers fast-forward over the
/// missed emissions. Either way every pump in a federation (and the
/// engine they feed) shares one schedule epoch, so the cross-partition
/// interleaving order-sensitive shedding policies see matches the
/// in-process pump's. Without an anchor the epoch is simply now.
///
/// The emission loop is the engine pump's: a due-heap ordered by each
/// driver's next emission time, wall-clock paced, with
/// [`SourceDriver::fast_forward`] re-anchoring any driver that fell more
/// than a full interval behind, so an overloaded pump degrades its rate
/// instead of storming catch-up batches.
#[allow(clippy::too_many_arguments)]
pub fn run_remote_sources(
    scenario: &Scenario,
    part: usize,
    parts: usize,
    addr: &str,
    peer: &str,
    cfg: &NetConfig,
    run_for: Duration,
    start_at: Option<std::time::SystemTime>,
) -> Result<RemotePumpStats, NetError> {
    const MAX_SWEEP: usize = 4096;
    let mut sources = partition_sources(scenario, part, parts.max(1));
    let router = FragmentRouter::connect(&[addr.to_string()], peer, cfg)?;
    let epoch = match start_at {
        Some(target) => {
            while let Ok(rem) = target.duration_since(std::time::SystemTime::now()) {
                if rem.is_zero() {
                    break;
                }
                thread::sleep(rem.min(Duration::from_millis(5)));
            }
            // Back-date the epoch by however far past the anchor we are
            // (process spawn latency): the due-heap fast-forwards the
            // drivers straight onto the shared timeline.
            match std::time::SystemTime::now().duration_since(target) {
                Ok(behind) => Instant::now() - behind,
                Err(_) => Instant::now(),
            }
        }
        None => Instant::now(),
    };
    let deadline = epoch + run_for;
    let mut due: BinaryHeap<Reverse<(u64, usize)>> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| Reverse((s.driver.next_time().0, i)))
        .collect();
    let mut emitted = 0u64;
    loop {
        let now_wall = Instant::now();
        if now_wall >= deadline {
            break;
        }
        let now = Timestamp(now_wall.duration_since(epoch).as_micros() as u64);
        let mut sweep = 0usize;
        while let Some(&Reverse((at, i))) = due.peek() {
            if at > now.0 || sweep >= MAX_SWEEP {
                break;
            }
            due.pop();
            sweep += 1;
            let s = &mut sources[i];
            s.driver.fast_forward(now);
            let batch = s.driver.emit();
            emitted += 1;
            router.send_batch(&WireBatch {
                node: s.node,
                query: batch.query(),
                fragment: s.fragment,
                source: s.driver.source,
                created: batch.created(),
                batch: batch.into_data(),
            });
            due.push(Reverse((s.driver.next_time().0, i)));
        }
        // Sleep until the next due emission (like the engine's own
        // pump), not a fixed poll beat: quantising emissions to a coarse
        // tick would shift batches across the engine's shedding-tick
        // boundaries relative to the in-process timeline.
        let next = due
            .peek()
            .map(|&Reverse((at, _))| epoch + Duration::from_micros(at))
            .unwrap_or(deadline)
            .min(deadline);
        let pause = next.saturating_duration_since(Instant::now());
        if !pause.is_zero() {
            thread::sleep(pause);
        }
    }
    let send = router.close()?;
    Ok(RemotePumpStats {
        emitted_batches: emitted,
        sent_batches: send.sent_batches,
        shed_batches: send.shed_batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_query::prelude::Template;

    fn scenario(seed: u64) -> Scenario {
        ScenarioBuilder::new("remote-test", seed)
            .nodes(2)
            .add_queries(
                Template::Avg,
                4,
                SourceProfile::steady(100, 10, Dataset::Uniform),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn partitions_cover_every_source_exactly_once() {
        let s = scenario(9);
        let total: usize = s.queries.iter().map(|q| q.sources.len()).sum();
        let parts = 3;
        let mut seen = 0usize;
        for p in 0..parts {
            seen += partition_sources(&s, p, parts).len();
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn partition_matches_installer_seeding() {
        let s = scenario(20160626);
        let all = partition_sources(&s, 0, 1);
        // Every driver's first emission must match a fresh driver built
        // with the engine installer's seed formula — same phase, same
        // schedule.
        for rs in &all {
            let q = s.queries.iter().find(|q| q.id == rs.driver.query).unwrap();
            let spec = q
                .sources
                .iter()
                .find(|sp| sp.id == rs.driver.source)
                .unwrap();
            let seed = s.seed ^ (spec.id.0 as u64).wrapping_mul(0x9E37_79B9);
            let fresh = SourceDriver::new(q.id, spec, s.profiles[&spec.id], seed);
            assert_eq!(fresh.next_time(), rs.driver.next_time());
        }
    }
}
