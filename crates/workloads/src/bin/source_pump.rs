//! Standalone remote source pump: one process driving a partition of
//! the canonical federated scenario's sources against an engine's TCP
//! ingest listener.
//!
//! ```text
//! source-pump --addr=127.0.0.1:7700 --part=0 --parts=4 --run-ms=6000
//! ```
//!
//! Every scenario parameter (`--seed= --nodes= --queries= --rate=
//! --batches= --capacity= --stw-ms= --warmup-ms= --duration-ms=`) must
//! match the engine process; see `themis_workloads::remote::pump_main`.

use std::process::exit;

use themis_workloads::remote::pump_main;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pump_main(&args) {
        Ok(stats) => {
            eprintln!(
                "source-pump: emitted {} batches, wrote {}, shed {}",
                stats.emitted_batches, stats.sent_batches, stats.shed_batches
            );
        }
        Err(e) => {
            eprintln!("source-pump: {e}");
            exit(1);
        }
    }
}
