//! Arrival-trace replay: per-beat rate multipliers loaded from CSV/JSON
//! files, validated into [`TraceData`] and interned in a process-global
//! registry so [`crate::sources::RatePattern::Trace`] stays a `Copy`
//! handle like every other pattern.
//!
//! The pipeline is **parse → validate → register**:
//!
//! 1. [`TraceData::load`] dispatches on the file extension (`.csv` or
//!    `.json`; anything else is rejected with the expected extensions),
//! 2. every malformed input produces a [`TraceError`] naming the
//!    offending line/field *and* the fix — never a panic (the PR 7
//!    rejection convention),
//! 3. [`TraceData::register`] interns the validated trace and returns a
//!    [`TraceId`], the `Copy` handle sources replay through.
//!
//! A trace is a cyclic sequence of non-negative **rate factors**, one per
//! fixed-length *beat*: a source replaying the trace multiplies its base
//! rate by `factors[(t / beat) % len]`. The declared long-run mean
//! ([`TraceData::mean_factor`]) is the exact arithmetic mean of the
//! factors, so demand/overload accounting
//! ([`crate::scenario::Scenario::total_demand_tps`]) stays exact under
//! replay; [`TraceData::mean_factor_over`] gives the exact expectation
//! over a *finite* horizon, which is what a wall-clock experiment that
//! stops mid-cycle must compare its realised volume against.
//!
//! ## CSV format
//!
//! ```text
//! # comments and blank lines are ignored; an optional header row
//! # ("time_s,factor") is recognised and skipped.
//! time_s,factor
//! 0.0,0.4
//! 1.0,1.0
//! 2.0,2.6
//! ```
//!
//! Rules: two comma-separated columns per row; timestamps are seconds,
//! strictly increasing and uniformly spaced (the spacing *is* the beat);
//! factors are finite and non-negative; at least two rows.
//!
//! ## JSON format
//!
//! ```text
//! {"beat_s": 1.0, "factors": [0.4, 1.0, 2.6]}
//! ```
//!
//! `beat_s` is the beat length in seconds (finite, positive); `factors`
//! is a non-empty array of finite, non-negative numbers. The parser is a
//! purpose-built scanner for exactly this shape (the workspace is
//! offline — no serde), and rejects unknown keys.

use std::fmt;
use std::path::Path;
use std::sync::{Arc, OnceLock, RwLock};

use themis_core::prelude::*;

/// An actionable trace-loading failure: every variant names the offender
/// (file, line or field) and the fix.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The file could not be read.
    Io {
        /// Offending path.
        file: String,
        /// The underlying error.
        error: String,
    },
    /// The extension is neither `.csv` nor `.json`.
    UnsupportedExtension {
        /// Offending path.
        file: String,
        /// The extension found (empty when the path has none).
        ext: String,
    },
    /// A line (CSV) or field (JSON) failed to parse or validate.
    Malformed {
        /// Offending file (or trace name for in-memory parses).
        file: String,
        /// 1-based line for CSV inputs; `None` for JSON/field errors.
        line: Option<usize>,
        /// What is wrong, quoting the offending token.
        problem: String,
        /// How to repair the input.
        fix: String,
    },
}

impl TraceError {
    fn malformed(
        file: &str,
        line: Option<usize>,
        problem: impl Into<String>,
        fix: impl Into<String>,
    ) -> Self {
        TraceError::Malformed {
            file: file.to_string(),
            line,
            problem: problem.into(),
            fix: fix.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { file, error } => {
                write!(f, "trace file `{file}`: {error}")
            }
            TraceError::UnsupportedExtension { file, ext } => write!(
                f,
                "trace file `{file}`: unsupported extension `{ext}` — use `.csv` \
                 (time_s,factor rows) or `.json` ({{\"beat_s\": …, \"factors\": […]}})"
            ),
            TraceError::Malformed {
                file,
                line,
                problem,
                fix,
            } => match line {
                Some(n) => write!(f, "trace file `{file}`, line {n}: {problem} — {fix}"),
                None => write!(f, "trace file `{file}`: {problem} — {fix}"),
            },
        }
    }
}

impl std::error::Error for TraceError {}

/// A validated, replay-ready arrival trace: a cyclic sequence of
/// non-negative rate factors at a fixed beat.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    name: String,
    beat: TimeDelta,
    factors: Arc<[f64]>,
    mean: f64,
}

impl TraceData {
    /// Builds a trace directly from per-beat factors (the in-memory
    /// entry point; file loaders funnel into this after parsing).
    pub fn from_factors(
        name: impl Into<String>,
        beat: TimeDelta,
        factors: Vec<f64>,
    ) -> Result<TraceData, TraceError> {
        let name = name.into();
        if beat.is_zero() {
            return Err(TraceError::malformed(
                &name,
                None,
                "beat length is zero".to_string(),
                "declare a positive beat (e.g. `\"beat_s\": 1.0`, or CSV timestamps \
                 spaced more than 0 s apart)",
            ));
        }
        if factors.is_empty() {
            return Err(TraceError::malformed(
                &name,
                None,
                "the trace has no rate factors".to_string(),
                "provide at least one beat (CSV needs two rows to declare the beat spacing)",
            ));
        }
        for (i, &v) in factors.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(TraceError::malformed(
                    &name,
                    None,
                    format!("factor #{} is `{v}`", i + 1),
                    "rate factors must be finite and >= 0",
                ));
            }
        }
        let mean = factors.iter().sum::<f64>() / factors.len() as f64;
        if mean == 0.0 {
            return Err(TraceError::malformed(
                &name,
                None,
                "every rate factor is zero".to_string(),
                "a trace must carry some volume, or demand accounting degenerates; \
                 raise at least one factor above 0",
            ));
        }
        Ok(TraceData {
            name,
            beat,
            factors: factors.into(),
            mean,
        })
    }

    /// Loads and validates a trace file, dispatching on its extension
    /// (`.csv` or `.json`).
    pub fn load(path: impl AsRef<Path>) -> Result<TraceData, TraceError> {
        let path = path.as_ref();
        let file = path.display().to_string();
        let ext = path
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or("")
            .to_ascii_lowercase();
        if ext != "csv" && ext != "json" {
            return Err(TraceError::UnsupportedExtension { file, ext });
        }
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
            file: file.clone(),
            error: e.to_string(),
        })?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("trace")
            .to_string();
        let mut data = if ext == "csv" {
            Self::parse_csv(&name, &text)
        } else {
            Self::parse_json(&name, &text)
        }
        .map_err(|e| match e {
            // Surface the full path, not just the stem, in file errors.
            TraceError::Malformed {
                line, problem, fix, ..
            } => TraceError::Malformed {
                file: file.clone(),
                line,
                problem,
                fix,
            },
            other => other,
        })?;
        data.name = name;
        Ok(data)
    }

    /// Parses the CSV trace format (see the module docs for the spec).
    pub fn parse_csv(name: &str, text: &str) -> Result<TraceData, TraceError> {
        let mut rows: Vec<(f64, f64, usize)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 2 {
                return Err(TraceError::malformed(
                    name,
                    Some(lineno),
                    format!("expected 2 comma-separated columns, found {}", fields.len()),
                    "each data row is `time_s,factor`",
                ));
            }
            // A single header row is allowed (and skipped) before data.
            if rows.is_empty() && fields[0].parse::<f64>().is_err() {
                continue;
            }
            let t: f64 = fields[0].parse().map_err(|_| {
                TraceError::malformed(
                    name,
                    Some(lineno),
                    format!("timestamp `{}` is not a number", fields[0]),
                    "timestamps are seconds, e.g. `12.5`",
                )
            })?;
            let v: f64 = fields[1].parse().map_err(|_| {
                TraceError::malformed(
                    name,
                    Some(lineno),
                    format!("rate factor `{}` is not a number", fields[1]),
                    "factors are non-negative multipliers over the base rate, e.g. `1.8`",
                )
            })?;
            if !t.is_finite() {
                return Err(TraceError::malformed(
                    name,
                    Some(lineno),
                    format!("timestamp `{t}` is not finite"),
                    "timestamps are finite seconds",
                ));
            }
            if !v.is_finite() || v < 0.0 {
                return Err(TraceError::malformed(
                    name,
                    Some(lineno),
                    format!("rate factor `{v}` is negative or not finite"),
                    "a source cannot emit at a negative rate; factors must be >= 0",
                ));
            }
            if let Some(&(prev_t, _, prev_line)) = rows.last() {
                if t <= prev_t {
                    return Err(TraceError::malformed(
                        name,
                        Some(lineno),
                        format!(
                            "timestamp {t} is not after the previous row's {prev_t} \
                             (line {prev_line})"
                        ),
                        "timestamps must be strictly increasing",
                    ));
                }
            }
            rows.push((t, v, lineno));
        }
        if rows.is_empty() {
            return Err(TraceError::malformed(
                name,
                None,
                "the file contains no data rows".to_string(),
                "add `time_s,factor` rows (comments `#` and a header row are ignored)",
            ));
        }
        if rows.len() < 2 {
            return Err(TraceError::malformed(
                name,
                Some(rows[0].2),
                "only one data row — the beat length cannot be inferred".to_string(),
                "a CSV trace needs at least two rows; their spacing declares the beat",
            ));
        }
        let beat_s = rows[1].0 - rows[0].0;
        for w in rows.windows(2) {
            let dt = w[1].0 - w[0].0;
            if (dt - beat_s).abs() > 1e-6 * beat_s.max(1.0) {
                return Err(TraceError::malformed(
                    name,
                    Some(w[1].2),
                    format!(
                        "row spacing {dt} s differs from the trace beat {beat_s} s \
                         declared by the first two rows"
                    ),
                    "rows must be uniformly spaced; resample the trace onto a fixed beat",
                ));
            }
        }
        let beat = TimeDelta::from_micros((beat_s * 1_000_000.0).round() as u64);
        let factors: Vec<f64> = rows.iter().map(|&(_, v, _)| v).collect();
        TraceData::from_factors(name, beat, factors)
    }

    /// Parses the JSON trace format (see the module docs for the spec).
    pub fn parse_json(name: &str, text: &str) -> Result<TraceData, TraceError> {
        let mut beat_s: Option<f64> = None;
        let mut factors: Option<Vec<f64>> = None;
        let body = text.trim();
        let inner = body
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| {
                TraceError::malformed(
                    name,
                    None,
                    "the file is not a JSON object".to_string(),
                    "the expected shape is {\"beat_s\": 1.0, \"factors\": [1.0, 2.5]}",
                )
            })?;
        // Split on top-level commas (the only nesting is the factors
        // array, so one bracket-depth counter suffices).
        let mut depth = 0i32;
        let mut start = 0usize;
        let mut parts: Vec<&str> = Vec::new();
        for (i, c) in inner.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => depth -= 1,
                ',' if depth == 0 => {
                    parts.push(&inner[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(&inner[start..]);
        for part in parts {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once(':').ok_or_else(|| {
                TraceError::malformed(
                    name,
                    None,
                    format!("`{part}` is not a `\"key\": value` pair"),
                    "the expected shape is {\"beat_s\": 1.0, \"factors\": [1.0, 2.5]}",
                )
            })?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "beat_s" => {
                    let v: f64 = value.parse().map_err(|_| {
                        TraceError::malformed(
                            name,
                            None,
                            format!("`beat_s` value `{value}` is not a number"),
                            "declare the beat length in seconds, e.g. `\"beat_s\": 0.5`",
                        )
                    })?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(TraceError::malformed(
                            name,
                            None,
                            format!("`beat_s` is `{v}`"),
                            "the beat length must be finite and positive",
                        ));
                    }
                    beat_s = Some(v);
                }
                "factors" => {
                    let list = value
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .ok_or_else(|| {
                            TraceError::malformed(
                                name,
                                None,
                                format!("`factors` value `{value}` is not an array"),
                                "declare the per-beat factors as `\"factors\": [1.0, 2.5]`",
                            )
                        })?;
                    let mut out = Vec::new();
                    for (i, item) in list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .enumerate()
                    {
                        let v: f64 = item.parse().map_err(|_| {
                            TraceError::malformed(
                                name,
                                None,
                                format!("factor #{} `{item}` is not a number", i + 1),
                                "factors are non-negative multipliers over the base rate",
                            )
                        })?;
                        out.push(v);
                    }
                    factors = Some(out);
                }
                other => {
                    return Err(TraceError::malformed(
                        name,
                        None,
                        format!("unknown key `{other}`"),
                        "the only keys are `beat_s` and `factors`",
                    ));
                }
            }
        }
        let beat_s = beat_s.ok_or_else(|| {
            TraceError::malformed(
                name,
                None,
                "missing `beat_s`".to_string(),
                "declare the beat length in seconds, e.g. `\"beat_s\": 1.0`",
            )
        })?;
        let factors = factors.ok_or_else(|| {
            TraceError::malformed(
                name,
                None,
                "missing `factors`".to_string(),
                "declare the per-beat factors as `\"factors\": [1.0, 2.5]`",
            )
        })?;
        let beat = TimeDelta::from_micros((beat_s * 1_000_000.0).round() as u64);
        TraceData::from_factors(name, beat, factors)
    }

    /// The trace's name (file stem, or the name given at construction).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The beat length.
    pub fn beat(&self) -> TimeDelta {
        self.beat
    }

    /// The per-beat rate factors.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// One full cycle: `beat * factors.len()`.
    pub fn cycle(&self) -> TimeDelta {
        TimeDelta(self.beat.as_micros() * self.factors.len() as u64)
    }

    /// The exact arithmetic mean of the factors — the declared long-run
    /// mean a replaying source realises over whole cycles.
    pub fn mean_factor(&self) -> f64 {
        self.mean
    }

    /// The rate factor at `now` (cyclic replay).
    pub fn factor_at(&self, now: Timestamp) -> f64 {
        let beat_us = self.beat.as_micros().max(1);
        let idx = (now.as_micros() / beat_us) as usize % self.factors.len();
        self.factors[idx]
    }

    /// The exact expected mean factor over `[0, horizon)` — what a run
    /// that stops mid-cycle should compare its realised volume against
    /// (the plain [`TraceData::mean_factor`] is only exact over whole
    /// cycles).
    pub fn mean_factor_over(&self, horizon: TimeDelta) -> f64 {
        let beat_us = self.beat.as_micros().max(1);
        let h = horizon.as_micros();
        if h == 0 {
            return self.mean;
        }
        let mut sum_us = 0.0;
        let whole_beats = h / beat_us;
        let cycles = whole_beats / self.factors.len() as u64;
        sum_us += cycles as f64 * self.mean * self.cycle().as_micros() as f64;
        for i in (cycles * self.factors.len() as u64)..whole_beats {
            sum_us += self.factors[i as usize % self.factors.len()] * beat_us as f64;
        }
        let partial = h % beat_us;
        if partial > 0 {
            sum_us +=
                self.factors[(whole_beats % self.factors.len() as u64) as usize] * partial as f64;
        }
        sum_us / h as f64
    }

    /// This trace replayed at a different beat length (time-rescaling a
    /// shape, e.g. compressing an hourly diurnal profile into seconds for
    /// a smoke run). Factors and mean are unchanged.
    pub fn with_beat(mut self, beat: TimeDelta) -> TraceData {
        self.beat = TimeDelta(beat.as_micros().max(1));
        self
    }

    /// Interns this trace in the process-global registry, returning the
    /// `Copy` handle [`RatePattern::Trace`] replays through. Registering
    /// identical content again returns the existing id.
    ///
    /// [`RatePattern::Trace`]: crate::sources::RatePattern::Trace
    pub fn register(self) -> TraceId {
        let reg = registry();
        {
            let traces = reg.read().expect("trace registry poisoned");
            if let Some(i) = traces.iter().position(|t| **t == self) {
                return TraceId(i as u32);
            }
        }
        let mut traces = reg.write().expect("trace registry poisoned");
        // Re-check under the write lock (another thread may have won).
        if let Some(i) = traces.iter().position(|t| **t == self) {
            return TraceId(i as u32);
        }
        traces.push(Arc::new(self));
        TraceId((traces.len() - 1) as u32)
    }
}

/// A `Copy` handle to a registered [`TraceData`] — the payload of
/// [`RatePattern::Trace`](crate::sources::RatePattern::Trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u32);

impl TraceId {
    /// The registered trace behind this handle.
    pub fn data(self) -> Arc<TraceData> {
        registry()
            .read()
            .expect("trace registry poisoned")
            .get(self.0 as usize)
            .cloned()
            .expect("TraceId not in registry: ids are only minted by TraceData::register")
    }
}

fn registry() -> &'static RwLock<Vec<Arc<TraceData>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Arc<TraceData>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

/// Loads, validates and registers a trace file in one step, returning
/// the handle and the registered data.
pub fn load_trace(path: impl AsRef<Path>) -> Result<(TraceId, Arc<TraceData>), TraceError> {
    let data = TraceData::load(path)?;
    let id = data.register();
    Ok((id, id.data()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("themis-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn csv_round_trip() {
        let t = TraceData::parse_csv("t", "# shape\ntime_s,factor\n0.0,0.5\n0.5,1.5\n1.0,2.5\n")
            .unwrap();
        assert_eq!(t.beat(), TimeDelta::from_millis(500));
        assert_eq!(t.factors(), &[0.5, 1.5, 2.5]);
        assert!((t.mean_factor() - 1.5).abs() < 1e-12);
        assert_eq!(t.cycle(), TimeDelta::from_millis(1500));
        // Cyclic replay.
        assert_eq!(t.factor_at(Timestamp::ZERO), 0.5);
        assert_eq!(t.factor_at(Timestamp(600_000)), 1.5);
        assert_eq!(t.factor_at(Timestamp(1_500_000)), 0.5);
    }

    #[test]
    fn json_round_trip() {
        let t = TraceData::parse_json("t", "{\"beat_s\": 0.25, \"factors\": [1.0, 3.0]}").unwrap();
        assert_eq!(t.beat(), TimeDelta::from_millis(250));
        assert_eq!(t.factors(), &[1.0, 3.0]);
        assert!((t.mean_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_mean_is_exact() {
        let t = TraceData::from_factors("w", TimeDelta::from_secs(1), vec![1.0, 3.0]).unwrap();
        assert!((t.mean_factor_over(TimeDelta::from_secs(4)) - 2.0).abs() < 1e-12);
        assert!((t.mean_factor_over(TimeDelta::from_secs(1)) - 1.0).abs() < 1e-12);
        // 1.5 s: one full beat at 1.0 plus half a beat at 3.0.
        let m = t.mean_factor_over(TimeDelta::from_millis(1500));
        assert!((m - (1.0 + 1.5) / 1.5).abs() < 1e-12, "{m}");
    }

    #[test]
    fn empty_file_is_actionable() {
        let err = TraceData::parse_csv("empty", "").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no data rows"), "{msg}");
        assert!(msg.contains("time_s,factor"), "fix missing: {msg}");
    }

    #[test]
    fn negative_rate_names_the_line() {
        let err = TraceData::parse_csv("neg", "0,1.0\n1,-2.0\n2,1.0\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("-2"), "{msg}");
        assert!(msg.contains(">= 0"), "fix missing: {msg}");
    }

    #[test]
    fn non_monotonic_timestamps_name_both_rows() {
        let err = TraceData::parse_csv("mono", "0,1\n2,1\n1,1\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("strictly increasing"), "{msg}");
    }

    #[test]
    fn non_uniform_spacing_is_rejected() {
        let err = TraceData::parse_csv("gap", "0,1\n1,1\n3,1\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("uniformly spaced"), "{msg}");
    }

    #[test]
    fn wrong_extension_is_rejected_with_expected_ones() {
        let path = write_temp("trace.txt", "0,1\n1,1\n");
        let err = TraceData::load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsupported extension `txt`"), "{msg}");
        assert!(msg.contains(".csv") && msg.contains(".json"), "{msg}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = TraceData::load("/definitely/not/here.csv").unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }), "{err}");
    }

    #[test]
    fn json_rejections_are_actionable() {
        for (text, needle) in [
            ("[1,2,3]", "not a JSON object"),
            ("{\"factors\": [1.0]}", "missing `beat_s`"),
            ("{\"beat_s\": 1.0}", "missing `factors`"),
            ("{\"beat_s\": 0.0, \"factors\": [1.0]}", "`beat_s` is `0`"),
            (
                "{\"beat_s\": 1.0, \"factors\": [1.0], \"x\": 1}",
                "unknown key `x`",
            ),
            (
                "{\"beat_s\": 1.0, \"factors\": [1.0, oops]}",
                "not a number",
            ),
        ] {
            let msg = TraceData::parse_json("j", text).unwrap_err().to_string();
            assert!(msg.contains(needle), "`{text}` → {msg}");
        }
    }

    #[test]
    fn all_zero_trace_is_rejected() {
        let err =
            TraceData::from_factors("z", TimeDelta::from_secs(1), vec![0.0, 0.0]).unwrap_err();
        assert!(err.to_string().contains("every rate factor is zero"));
    }

    #[test]
    fn registry_dedups_identical_content() {
        let mk = || {
            TraceData::from_factors("dedup-test", TimeDelta::from_secs(1), vec![1.0, 2.0, 9.0])
                .unwrap()
        };
        let a = mk().register();
        let b = mk().register();
        assert_eq!(a, b);
        assert_eq!(a.data().factors(), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn load_registers_through_the_same_path() {
        let path = write_temp("load.csv", "0,1.0\n2,3.0\n");
        let (id, data) = load_trace(&path).unwrap();
        assert_eq!(data.beat(), TimeDelta::from_secs(2));
        let (id2, _) = load_trace(&path).unwrap();
        assert_eq!(id, id2, "same file, same registered trace");
    }
}
