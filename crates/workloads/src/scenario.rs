//! Scenario assembly: queries + placement + source profiles + node
//! capacities, ready for the simulator.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use themis_core::prelude::*;
use themis_query::prelude::*;

use crate::sources::{RatePattern, SourceProfile};

/// A complete experiment configuration consumed by `themis-sim`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (used in reports).
    pub name: String,
    /// All queries.
    pub queries: Vec<QuerySpec>,
    /// Number of processing nodes.
    pub n_nodes: usize,
    /// Fragment placement.
    pub deployment: Deployment,
    /// Per-source emission profile.
    pub profiles: HashMap<SourceId, SourceProfile>,
    /// One-way link latency between distinct nodes (and sources to nodes).
    pub link_latency: TimeDelta,
    /// True processing capacity of each node, in tuples/second.
    pub node_capacity_tps: Vec<u32>,
    /// Shedding interval (the paper's default: 250 ms).
    pub shedding_interval: TimeDelta,
    /// Source time window configuration (the paper's default: 10 s / 250 ms).
    pub stw: StwConfig,
    /// Simulated run length (measurement phase, after warm-up).
    pub duration: TimeDelta,
    /// Warm-up period excluded from metrics.
    pub warmup: TimeDelta,
    /// Master seed.
    pub seed: u64,
    /// Query lifetimes: `(arrival, departure)` relative to simulation
    /// start. Queries without an entry run for the whole experiment.
    /// Models the paper's "queries' arrivals and departures" dynamics.
    pub lifetimes: HashMap<QueryId, (Timestamp, Option<Timestamp>)>,
}

impl Scenario {
    /// True when `query` is active at `t`.
    pub fn is_active(&self, query: QueryId, t: Timestamp) -> bool {
        match self.lifetimes.get(&query) {
            None => true,
            Some(&(start, end)) => t >= start && end.map(|e| t < e).unwrap_or(true),
        }
    }

    /// The arrival time of `query` (simulation start when unset).
    pub fn arrival_of(&self, query: QueryId) -> Timestamp {
        self.lifetimes
            .get(&query)
            .map(|&(s, _)| s)
            .unwrap_or(Timestamp::ZERO)
    }

    /// The departure time of `query`, if bounded.
    pub fn departure_of(&self, query: QueryId) -> Option<Timestamp> {
        self.lifetimes.get(&query).and_then(|&(_, e)| e)
    }

    /// Total long-run source demand in tuples/second (each source's
    /// declared mean rate: base rate × multiplier × pattern mean factor).
    pub fn total_demand_tps(&self) -> f64 {
        self.profiles.values().map(|p| p.mean_rate_tps()).sum()
    }

    /// Long-run demand per node in tuples/second: each source's tuples
    /// arrive at the node hosting the fragment that binds it.
    pub fn demand_per_node_tps(&self) -> Vec<f64> {
        let mut demand = vec![0.0; self.n_nodes];
        for q in &self.queries {
            for (fi, frag) in q.fragments.iter().enumerate() {
                let Some(node) = self.deployment.node_of(q.id, fi) else {
                    continue;
                };
                for b in &frag.sources {
                    if let Some(p) = self.profiles.get(&b.source) {
                        demand[node.index()] += p.mean_rate_tps();
                    }
                }
            }
        }
        demand
    }

    /// Mean overload factor: demand over capacity, averaged over nodes with
    /// any demand. Values above 1 mean permanent overload (characteristic
    /// C2 of §2.1).
    pub fn overload_factor(&self) -> f64 {
        let demand = self.demand_per_node_tps();
        let mut total = 0.0;
        let mut n = 0usize;
        for (i, d) in demand.iter().enumerate() {
            if *d > 0.0 {
                total += d / self.node_capacity_tps[i].max(1) as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

/// Fluent builder for [`Scenario`].
#[derive(Debug)]
pub struct ScenarioBuilder {
    name: String,
    seed: u64,
    n_nodes: usize,
    capacity_tps: Vec<u32>,
    link_latency: TimeDelta,
    shedding_interval: TimeDelta,
    stw: StwConfig,
    duration: TimeDelta,
    warmup: TimeDelta,
    placement: PlacementPolicy,
    queries: Vec<QuerySpec>,
    profiles: HashMap<SourceId, SourceProfile>,
    lifetimes: HashMap<QueryId, (Timestamp, Option<Timestamp>)>,
    correlated: Option<(RatePattern, u64)>,
    sources: IdGen,
    query_ids: IdGen,
}

impl ScenarioBuilder {
    /// Starts a scenario with the paper's defaults: 250 ms shedding
    /// interval, 10 s STW, 5 ms LAN, round-robin placement, 60 s measured
    /// after a 15 s warm-up.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        ScenarioBuilder {
            name: name.into(),
            seed,
            n_nodes: 1,
            capacity_tps: Vec::new(),
            link_latency: TimeDelta::from_millis(5),
            shedding_interval: TimeDelta::from_millis(250),
            stw: StwConfig::PAPER_DEFAULT,
            duration: TimeDelta::from_secs(60),
            warmup: TimeDelta::from_secs(15),
            placement: PlacementPolicy::RoundRobin,
            queries: Vec::new(),
            profiles: HashMap::new(),
            lifetimes: HashMap::new(),
            correlated: None,
            sources: IdGen::new(),
            query_ids: IdGen::new(),
        }
    }

    /// Sets the number of processing nodes.
    pub fn nodes(mut self, n: usize) -> Self {
        self.n_nodes = n.max(1);
        self
    }

    /// Sets a uniform node capacity in tuples/second.
    pub fn capacity_tps(mut self, tps: u32) -> Self {
        self.capacity_tps = vec![tps];
        self
    }

    /// Sets per-node capacities (heterogeneous sites).
    pub fn node_capacities(mut self, tps: Vec<u32>) -> Self {
        self.capacity_tps = tps;
        self
    }

    /// Sets the one-way link latency.
    pub fn link_latency(mut self, d: TimeDelta) -> Self {
        self.link_latency = d;
        self
    }

    /// Sets the shedding interval (also the STW slide and coordinator
    /// update period).
    pub fn shedding_interval(mut self, d: TimeDelta) -> Self {
        self.shedding_interval = d;
        self.stw = StwConfig::new(self.stw.window, d);
        self
    }

    /// Sets the STW length, keeping the slide.
    pub fn stw_window(mut self, d: TimeDelta) -> Self {
        self.stw = StwConfig::new(d, self.stw.slide);
        self
    }

    /// Sets the measured duration.
    pub fn duration(mut self, d: TimeDelta) -> Self {
        self.duration = d;
        self
    }

    /// Sets the warm-up period.
    pub fn warmup(mut self, d: TimeDelta) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Adds `count` queries from `template`, all of whose sources emit with
    /// `profile`.
    pub fn add_queries(mut self, template: Template, count: usize, profile: SourceProfile) -> Self {
        for _ in 0..count {
            let id: QueryId = self.query_ids.next();
            let q = template.build(id, &mut self.sources);
            for s in &q.sources {
                self.profiles.insert(s.id, profile);
            }
            self.queries.push(q);
        }
        self
    }

    /// Adds `count` instances of a validated declarative query (the
    /// spec-layer analogue of [`ScenarioBuilder::add_queries`]): each
    /// instance is compiled against this builder's id generators, so
    /// declarative and template workloads mix freely in one scenario.
    pub fn add_query_defs(
        mut self,
        query: &ValidatedQuery,
        count: usize,
        profile: SourceProfile,
    ) -> Self {
        for _ in 0..count {
            let id: QueryId = self.query_ids.next();
            let q = query.compile(id, &mut self.sources).into_spec();
            for s in &q.sources {
                self.profiles.insert(s.id, profile);
            }
            self.queries.push(q);
        }
        self
    }

    /// Adds `count` queries whose sources emit at heterogeneous rates
    /// *inside each query*: source `j` of every query uses
    /// `profile.with_multiplier(multipliers[j % multipliers.len()])`.
    /// An empty slice behaves like [`ScenarioBuilder::add_queries`].
    pub fn add_queries_with_multipliers(
        mut self,
        template: Template,
        count: usize,
        profile: SourceProfile,
        multipliers: &[f64],
    ) -> Self {
        for _ in 0..count {
            let id: QueryId = self.query_ids.next();
            let q = template.build(id, &mut self.sources);
            for (j, s) in q.sources.iter().enumerate() {
                let m = multipliers.get(j % multipliers.len().max(1)).copied();
                self.profiles
                    .insert(s.id, profile.with_multiplier(m.unwrap_or(1.0)));
            }
            self.queries.push(q);
        }
        self
    }

    /// Adds `count` queries that arrive at `start` and (optionally) depart
    /// at `end`, both relative to simulation start — the paper's query
    /// arrival/departure dynamics.
    pub fn add_queries_with_lifetime(
        mut self,
        template: Template,
        count: usize,
        profile: SourceProfile,
        start: TimeDelta,
        end: Option<TimeDelta>,
    ) -> Self {
        for _ in 0..count {
            let id: QueryId = self.query_ids.next();
            let q = template.build(id, &mut self.sources);
            for s in &q.sources {
                self.profiles.insert(s.id, profile);
            }
            self.lifetimes.insert(
                id,
                (Timestamp::ZERO + start, end.map(|e| Timestamp::ZERO + e)),
            );
            self.queries.push(q);
        }
        self
    }

    /// Modulates **every** source in the scenario (including ones added
    /// after this call) by one hidden shared load process: the seeded
    /// `pattern` is evaluated statelessly per emission instant, so its
    /// bursts hit all sources simultaneously — correlated overload, the
    /// regime where per-source independence would otherwise let bursts
    /// average out across a node ([`SourceProfile::with_shared_load`]).
    pub fn with_correlated_load(mut self, pattern: RatePattern, seed: u64) -> Self {
        self.correlated = Some((pattern, seed));
        self
    }

    /// Finalises the scenario, computing the placement.
    pub fn build(self) -> Result<Scenario, PlacementError> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9_1ace);
        let deployment = place(&self.queries, self.n_nodes, self.placement, &mut rng)?;
        let capacities = match self.capacity_tps.len() {
            0 => vec![10_000; self.n_nodes],
            1 => vec![self.capacity_tps[0]; self.n_nodes],
            _ => {
                let mut c = self.capacity_tps.clone();
                c.resize(self.n_nodes, *c.last().unwrap());
                c
            }
        };
        let mut profiles = self.profiles;
        if let Some((pattern, seed)) = self.correlated {
            for p in profiles.values_mut() {
                *p = p.with_shared_load(pattern, seed);
            }
        }
        Ok(Scenario {
            name: self.name,
            queries: self.queries,
            n_nodes: self.n_nodes,
            deployment,
            profiles,
            link_latency: self.link_latency,
            node_capacity_tps: capacities,
            shedding_interval: self.shedding_interval,
            stw: self.stw,
            duration: self.duration,
            warmup: self.warmup,
            seed: self.seed,
            lifetimes: self.lifetimes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;

    fn profile() -> SourceProfile {
        SourceProfile::emulab(Dataset::Uniform)
    }

    #[test]
    fn builder_assembles_scenario() {
        let s = ScenarioBuilder::new("test", 1)
            .nodes(4)
            .capacity_tps(2000)
            .add_queries(Template::Cov { fragments: 2 }, 10, profile())
            .build()
            .unwrap();
        assert_eq!(s.queries.len(), 10);
        assert_eq!(s.n_nodes, 4);
        assert_eq!(s.node_capacity_tps, vec![2000; 4]);
        assert_eq!(s.profiles.len(), 40, "2 sources x 2 fragments x 10");
        s.deployment.validate(&s.queries).unwrap();
    }

    #[test]
    fn demand_accounting() {
        let s = ScenarioBuilder::new("demand", 2)
            .nodes(2)
            .capacity_tps(1000)
            .add_queries(Template::Cov { fragments: 1 }, 4, profile())
            .build()
            .unwrap();
        // 4 queries x 2 sources x 150 t/s = 1200 t/s total.
        assert_eq!(s.total_demand_tps(), 1200.0);
        let per_node: f64 = s.demand_per_node_tps().iter().sum();
        assert_eq!(per_node, 1200.0);
        // Each node has 600 t/s demand over 1000 t/s capacity.
        assert!((s.overload_factor() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_capacities_extend() {
        let s = ScenarioBuilder::new("hetero", 3)
            .nodes(3)
            .node_capacities(vec![1000, 2000])
            .add_queries(Template::Avg, 3, profile())
            .build()
            .unwrap();
        assert_eq!(s.node_capacity_tps, vec![1000, 2000, 2000]);
    }

    #[test]
    fn query_ids_are_sequential_and_sources_unique() {
        let s = ScenarioBuilder::new("ids", 3)
            .nodes(2)
            .add_queries(Template::Avg, 2, profile())
            .add_queries(Template::Cov { fragments: 2 }, 2, profile())
            .build()
            .unwrap();
        let ids: Vec<u32> = s.queries.iter().map(|q| q.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let mut srcs: Vec<u32> = s
            .queries
            .iter()
            .flat_map(|q| q.sources.iter().map(|x| x.id.0))
            .collect();
        let n = srcs.len();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), n);
    }

    #[test]
    fn heterogeneous_multipliers_cycle_per_query() {
        let s = ScenarioBuilder::new("hetero-rates", 4)
            .nodes(2)
            .add_queries_with_multipliers(Template::Cov { fragments: 1 }, 2, profile(), &[1.0, 4.0])
            .build()
            .unwrap();
        for q in &s.queries {
            let rates: Vec<f64> = q
                .sources
                .iter()
                .map(|src| s.profiles[&src.id].mean_rate_tps())
                .collect();
            assert_eq!(rates, vec![150.0, 600.0], "per-source rates in {q:?}");
        }
        // Demand accounting uses the multiplied mean rates.
        assert_eq!(s.total_demand_tps(), 2.0 * (150.0 + 600.0));
    }

    #[test]
    fn correlated_load_modulates_every_profile() {
        let pattern = RatePattern::FlashCrowd {
            every: TimeDelta::from_secs(5),
            width: TimeDelta::from_secs(1),
            magnitude: 6.0,
        };
        let s = ScenarioBuilder::new("corr", 7)
            .nodes(2)
            .add_queries(Template::Avg, 2, profile())
            .with_correlated_load(pattern, 99)
            .add_queries(Template::Avg, 1, profile())
            .build()
            .unwrap();
        for p in s.profiles.values() {
            let shared = p.shared.expect("every source carries the shared load");
            assert_eq!(shared.seed, 99);
            assert_eq!(shared.pattern, pattern);
        }
        // Demand accounting includes the shared mean (factor 2.0 here).
        let expected = s.profiles.len() as f64 * 150.0 * 2.0;
        assert!((s.total_demand_tps() - expected).abs() < 1e-9);
    }

    #[test]
    fn placement_error_propagates() {
        let r = ScenarioBuilder::new("bad", 0)
            .nodes(2)
            .add_queries(Template::Cov { fragments: 3 }, 1, profile())
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn shedding_interval_sets_stw_slide() {
        let s = ScenarioBuilder::new("slide", 0)
            .nodes(1)
            .shedding_interval(TimeDelta::from_millis(100))
            .add_queries(Template::Avg, 1, profile())
            .build()
            .unwrap();
        assert_eq!(s.stw.slide, TimeDelta::from_millis(100));
        assert_eq!(s.stw.window, TimeDelta::from_secs(10));
    }
}
