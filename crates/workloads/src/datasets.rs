//! Value distributions for source data (§7 "Experimental set-up").
//!
//! The paper's synthetic datasets follow gaussian, uniform or exponential
//! distributions with mean 50, plus a *mixed* set drawing from any of the
//! three. The real-world dataset is CPU/memory utilisation from PlanetLab
//! nodes (CoTop); since that trace is not distributable, we substitute a
//! regime-switching synthetic trace with drift, spikes and heavy tails that
//! reproduces the property the evaluation depends on: its AVG/MAX/COV
//! change when tuples are dropped, unlike the stationary synthetic sets
//! (see DESIGN.md, substitutions).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use themis_core::prelude::*;

/// The five dataset series of Figures 6 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Gaussian with mean 50 (std 15).
    Gaussian,
    /// Uniform on `[0, 100]` (mean 50).
    Uniform,
    /// Exponential with mean 50.
    Exponential,
    /// Per-tuple random choice among the three synthetic distributions.
    Mixed,
    /// PlanetLab-like regime-switching trace (non-stationary).
    PlanetLab,
}

impl Dataset {
    /// All five datasets, in the order the paper's figures list them.
    pub const ALL: [Dataset; 5] = [
        Dataset::Gaussian,
        Dataset::Uniform,
        Dataset::Exponential,
        Dataset::Mixed,
        Dataset::PlanetLab,
    ];

    /// Series label used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Gaussian => "gaussian",
            Dataset::Uniform => "uniform",
            Dataset::Exponential => "exponential",
            Dataset::Mixed => "mixed",
            Dataset::PlanetLab => "planetlab",
        }
    }
}

/// State of the PlanetLab-like trace generator.
#[derive(Debug, Clone)]
struct TraceState {
    /// Slowly drifting base level (random walk, reflected at the borders).
    base: f64,
    /// End of the current load spike, if any.
    spike_until: Timestamp,
    /// Spike multiplier while spiking.
    spike_level: f64,
    /// Last regime decision period.
    period: u64,
}

/// Stateful per-source value generator.
#[derive(Debug, Clone)]
pub struct ValueGen {
    dataset: Dataset,
    rng: SmallRng,
    trace: TraceState,
}

impl ValueGen {
    /// Creates a generator; every source gets its own seed so series are
    /// independent but reproducible.
    pub fn new(dataset: Dataset, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = 30.0 + rng.gen::<f64>() * 40.0;
        ValueGen {
            dataset,
            rng,
            trace: TraceState {
                base,
                spike_until: Timestamp::ZERO,
                spike_level: 1.0,
                period: 0,
            },
        }
    }

    fn gaussian(&mut self, mean: f64, std: f64) -> f64 {
        // Box-Muller.
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        -mean * u.ln()
    }

    fn planetlab(&mut self, now: Timestamp) -> f64 {
        // Re-evaluate the regime once per second of logical time.
        let period = now.as_micros() / 1_000_000;
        if period != self.trace.period {
            self.trace.period = period;
            // Random-walk drift of the base load, reflected into [5, 95].
            self.trace.base += self.gaussian(0.0, 4.0);
            if self.trace.base < 5.0 {
                self.trace.base = 10.0 - self.trace.base;
            }
            if self.trace.base > 95.0 {
                self.trace.base = 190.0 - self.trace.base;
            }
            // ~8% chance to enter a 2-5 s spike at 1.5-3x load.
            if now >= self.trace.spike_until && self.rng.gen::<f64>() < 0.08 {
                let secs = 2 + (self.rng.gen::<u64>() % 4);
                self.trace.spike_until = now + TimeDelta::from_secs(secs);
                self.trace.spike_level = 1.5 + 1.5 * self.rng.gen::<f64>();
            }
        }
        let spike = if now < self.trace.spike_until {
            self.trace.spike_level
        } else {
            1.0
        };
        // Heavy-ish tail: occasional large excursions.
        let noise = if self.rng.gen::<f64>() < 0.02 {
            self.exponential(20.0)
        } else {
            self.gaussian(0.0, 3.0)
        };
        (self.trace.base * spike + noise).clamp(0.0, 100.0)
    }

    /// Draws the next value at logical time `now`.
    pub fn value(&mut self, now: Timestamp) -> f64 {
        match self.dataset {
            Dataset::Gaussian => self.gaussian(50.0, 15.0),
            Dataset::Uniform => self.rng.gen::<f64>() * 100.0,
            Dataset::Exponential => self.exponential(50.0),
            Dataset::Mixed => match self.rng.gen_range(0..3) {
                0 => self.gaussian(50.0, 15.0),
                1 => self.rng.gen::<f64>() * 100.0,
                _ => self.exponential(50.0),
            },
            Dataset::PlanetLab => self.planetlab(now),
        }
    }

    /// Draws a value scaled for a free-memory source (KB around 200 MB with
    /// enough spread that the TOP-5 100 MB filter has realistic
    /// selectivity).
    pub fn mem_free_kb(&mut self, now: Timestamp) -> f64 {
        // Map the 0-100 "load" view onto free memory: high load = low mem.
        let load = self.value(now);
        ((100.0 - load) * 4_000.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(dataset: Dataset, n: usize) -> f64 {
        let mut gen = ValueGen::new(dataset, 42);
        let mut sum = 0.0;
        for i in 0..n {
            sum += gen.value(Timestamp::from_millis(i as u64 * 10));
        }
        sum / n as f64
    }

    #[test]
    fn synthetic_means_near_50() {
        for d in [
            Dataset::Gaussian,
            Dataset::Uniform,
            Dataset::Exponential,
            Dataset::Mixed,
        ] {
            let m = sample_mean(d, 20_000);
            assert!((m - 50.0).abs() < 3.0, "{}: mean {m}", d.name());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ValueGen::new(Dataset::Mixed, 7);
        let mut b = ValueGen::new(Dataset::Mixed, 7);
        for i in 0..100 {
            let t = Timestamp::from_millis(i * 5);
            assert_eq!(a.value(t), b.value(t));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ValueGen::new(Dataset::Gaussian, 1);
        let mut b = ValueGen::new(Dataset::Gaussian, 2);
        let va: Vec<f64> = (0..10).map(|_| a.value(Timestamp::ZERO)).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.value(Timestamp::ZERO)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn planetlab_is_nonstationary() {
        // Mean over disjoint 30 s windows should vary much more than for
        // the stationary gaussian set.
        let window_means = |d: Dataset| -> f64 {
            let mut gen = ValueGen::new(d, 11);
            let mut means = Vec::new();
            for w in 0..20u64 {
                let mut sum = 0.0;
                for i in 0..300u64 {
                    sum += gen.value(Timestamp::from_millis(w * 30_000 + i * 100));
                }
                means.push(sum / 300.0);
            }
            let m = means.iter().sum::<f64>() / means.len() as f64;
            (means.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / means.len() as f64).sqrt()
        };
        let pl = window_means(Dataset::PlanetLab);
        let ga = window_means(Dataset::Gaussian);
        assert!(pl > 3.0 * ga, "planetlab std {pl} vs gaussian {ga}");
    }

    #[test]
    fn planetlab_values_in_range() {
        let mut gen = ValueGen::new(Dataset::PlanetLab, 3);
        for i in 0..10_000u64 {
            let v = gen.value(Timestamp::from_millis(i * 20));
            assert!((0.0..=100.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn mem_free_spans_the_filter_threshold() {
        let mut gen = ValueGen::new(Dataset::Uniform, 9);
        let vals: Vec<f64> = (0..1000)
            .map(|i| gen.mem_free_kb(Timestamp::from_millis(i * 10)))
            .collect();
        let above = vals.iter().filter(|&&v| v >= 100_000.0).count();
        // Uniform load: ~75% of readings pass the 100 MB filter.
        assert!(above > 500 && above < 1000, "above={above}");
    }

    #[test]
    fn exponential_is_positive_and_skewed() {
        let mut gen = ValueGen::new(Dataset::Exponential, 5);
        let vals: Vec<f64> = (0..5000).map(|_| gen.value(Timestamp::ZERO)).collect();
        assert!(vals.iter().all(|&v| v >= 0.0));
        let below_mean = vals.iter().filter(|&&v| v < 50.0).count();
        // Exponential: ~63% below the mean.
        assert!(below_mean > 2800 && below_mean < 3500, "{below_mean}");
    }
}
