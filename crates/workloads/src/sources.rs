//! Source models: constant-rate batched emission, with optional burstiness
//! (§7.4: "10% of the time they generate tuples at 10× their normal
//! rate").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use themis_core::prelude::*;
use themis_query::prelude::{SourceKind, SourceSpec};

use crate::datasets::{Dataset, ValueGen};

/// Burstiness model for a source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Burstiness {
    /// Constant rate.
    Steady,
    /// For a fraction of 1-second periods, the emission rate is multiplied
    /// by `factor` (the paper's bursty sources: `fraction = 0.1`,
    /// `factor = 10`).
    Bursty {
        /// Fraction of periods that burst.
        fraction: f64,
        /// Rate multiplier while bursting.
        factor: u32,
    },
}

impl Burstiness {
    /// The paper's §7.4 configuration: 10% of the time at 10× rate.
    pub const PAPER_BURSTY: Burstiness = Burstiness::Bursty {
        fraction: 0.1,
        factor: 10,
    };
}

/// Rate/batching profile of a source (per Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceProfile {
    /// Tuples per second under the steady regime.
    pub tuples_per_sec: u32,
    /// Batches per second (batch size = rate / batches).
    pub batches_per_sec: u32,
    /// Burstiness model.
    pub burst: Burstiness,
    /// Value distribution.
    pub dataset: Dataset,
}

impl SourceProfile {
    /// The local test-bed profile of Table 2: 400 t/s in 5 batches of 80.
    pub fn local(dataset: Dataset) -> Self {
        SourceProfile {
            tuples_per_sec: 400,
            batches_per_sec: 5,
            burst: Burstiness::Steady,
            dataset,
        }
    }

    /// The Emulab profile of Table 2: 150 t/s in 3 batches of 50.
    pub fn emulab(dataset: Dataset) -> Self {
        SourceProfile {
            tuples_per_sec: 150,
            batches_per_sec: 3,
            burst: Burstiness::Steady,
            dataset,
        }
    }

    /// Steady batch size.
    pub fn batch_size(&self) -> usize {
        (self.tuples_per_sec / self.batches_per_sec.max(1)).max(1) as usize
    }

    /// Interval between batch emissions.
    pub fn interval(&self) -> TimeDelta {
        TimeDelta(1_000_000 / self.batches_per_sec.max(1) as u64)
    }
}

/// Drives one source: emits timestamped, zero-SIC batches for its query
/// (the hosting node assigns Eq.-1 SIC values on arrival). Batches are
/// built as **typed columns** against the source's declared [`Schema`] —
/// appending native column values, never materialising owning tuples.
#[derive(Debug)]
pub struct SourceDriver {
    /// The source.
    pub source: SourceId,
    /// The query it feeds.
    pub query: QueryId,
    key: Option<i64>,
    kind: SourceKind,
    schema: Schema,
    profile: SourceProfile,
    values: ValueGen,
    burst_rng: SmallRng,
    /// Periods (seconds) currently decided: (period index, bursting?).
    current_period: (u64, bool),
    next_emission: Timestamp,
}

impl SourceDriver {
    /// Creates the driver; emissions are de-phased per source so batches of
    /// different sources do not all arrive at the same instant.
    pub fn new(query: QueryId, spec: &SourceSpec, profile: SourceProfile, seed: u64) -> Self {
        let mut phase_rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let phase =
            TimeDelta::from_micros(phase_rng.gen_range(0..profile.interval().as_micros().max(1)));
        SourceDriver {
            source: spec.id,
            query,
            key: spec.key,
            kind: spec.kind,
            schema: spec.schema(),
            profile,
            values: ValueGen::new(profile.dataset, seed),
            burst_rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D)),
            current_period: (u64::MAX, false),
            next_emission: Timestamp::ZERO + phase,
        }
    }

    /// When the next batch is due.
    pub fn next_time(&self) -> Timestamp {
        self.next_emission
    }

    /// Delays the first emission until `start` (plus the source's phase);
    /// used for queries that arrive mid-run.
    pub fn start_at(&mut self, start: Timestamp) {
        if self.next_emission < start {
            self.next_emission = start + (self.next_emission - Timestamp::ZERO);
        }
    }

    fn bursting(&mut self, now: Timestamp) -> bool {
        let Burstiness::Bursty { fraction, .. } = self.profile.burst else {
            return false;
        };
        let period = now.as_micros() / 1_000_000;
        if self.current_period.0 != period {
            self.current_period = (period, self.burst_rng.gen::<f64>() < fraction);
        }
        self.current_period.1
    }

    /// Emits the batch due at `next_time()` and schedules the next one.
    pub fn emit(&mut self) -> Batch {
        let now = self.next_emission;
        let factor = if self.bursting(now) {
            match self.profile.burst {
                Burstiness::Bursty { factor, .. } => factor as usize,
                Burstiness::Steady => 1,
            }
        } else {
            1
        };
        let n = self.profile.batch_size() * factor;
        // Typed column construction: rows append straight into the
        // schema's native columns — no per-tuple `Vec<Value>` allocation
        // and no `Value` arena downstream.
        let mut data = TupleBatch::with_schema_capacity(self.schema.clone(), n);
        for _ in 0..n {
            let v = match self.kind {
                SourceKind::MemFree => self.values.mem_free_kb(now),
                _ => self.values.value(now),
            };
            match self.key {
                Some(k) => data.push_row(now, Sic::ZERO, &[Value::I64(k), Value::F64(v)]),
                None => data.push_row(now, Sic::ZERO, &[Value::F64(v)]),
            }
        }
        self.next_emission = now + self.profile.interval();
        Batch::from_source_data(self.query, self.source, now, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: SourceKind) -> SourceSpec {
        SourceSpec {
            id: SourceId(3),
            key: Some(7),
            kind,
        }
    }

    #[test]
    fn table2_profiles() {
        let local = SourceProfile::local(Dataset::Uniform);
        assert_eq!(local.batch_size(), 80);
        assert_eq!(local.interval(), TimeDelta::from_millis(200));
        let emulab = SourceProfile::emulab(Dataset::Uniform);
        assert_eq!(emulab.batch_size(), 50);
        assert_eq!(emulab.interval(), TimeDelta::from_micros(333_333));
    }

    #[test]
    fn steady_driver_emits_constant_batches() {
        let profile = SourceProfile::local(Dataset::Uniform);
        let mut d = SourceDriver::new(QueryId(1), &spec(SourceKind::Cpu), profile, 5);
        let mut last = None;
        for _ in 0..10 {
            let t = d.next_time();
            let b = d.emit();
            assert_eq!(b.len(), 80);
            assert_eq!(b.query(), QueryId(1));
            assert_eq!(b.source(), Some(SourceId(3)));
            assert_eq!(b.created(), t);
            assert!(b.iter().all(|tu| tu.sic == Sic::ZERO));
            assert_eq!(b.data().row(0).i64(0), 7, "keyed row");
            // Keyed sources emit typed columns per their declared schema.
            assert!(b.data().schema().is_some());
            assert_eq!(b.data().i64_column(0).map(|c| c[0]), Some(7));
            assert!(b.data().f64_column(1).is_some());
            if let Some(prev) = last {
                assert_eq!((t - prev), TimeDelta::from_millis(200));
            }
            last = Some(t);
        }
    }

    #[test]
    fn phases_differ_across_sources() {
        let profile = SourceProfile::emulab(Dataset::Uniform);
        let d1 = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 1);
        let d2 = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 2);
        assert_ne!(d1.next_time(), d2.next_time());
    }

    #[test]
    fn bursty_driver_bursts_roughly_ten_percent() {
        let profile = SourceProfile {
            burst: Burstiness::PAPER_BURSTY,
            ..SourceProfile::emulab(Dataset::Uniform)
        };
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 9);
        let mut burst_batches = 0;
        let mut total = 0;
        // 300 seconds of emissions.
        while d.next_time() < Timestamp::from_secs(300) {
            let b = d.emit();
            total += 1;
            if b.len() > 50 {
                assert_eq!(b.len(), 500, "burst factor 10");
                burst_batches += 1;
            }
        }
        let frac = burst_batches as f64 / total as f64;
        assert!((0.04..=0.2).contains(&frac), "burst fraction {frac}");
    }

    #[test]
    fn mem_sources_emit_memory_values() {
        let profile = SourceProfile::emulab(Dataset::Uniform);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::MemFree), profile, 4);
        let b = d.emit();
        // KB scale, not 0-100.
        assert!(b.iter().any(|t| t.f64(1) > 1000.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let profile = SourceProfile::local(Dataset::Mixed);
        let mut a = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 77);
        let mut b = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 77);
        for _ in 0..5 {
            assert_eq!(a.emit(), b.emit());
        }
    }
}
