//! Source models: batched emission under programmable **rate patterns**.
//!
//! The paper's evaluation only exercises two arrival processes — constant
//! rate and §7.4's bursty sources ("10% of the time they generate tuples
//! at 10× their normal rate"). Real federated deployments see much richer
//! workload dynamics, and load-shedding evaluations traditionally stress
//! exactly those: diurnal cycles, flash crowds, heterogeneous per-source
//! rates. [`RatePattern`] makes the arrival process a first-class,
//! composable model:
//!
//! * every pattern declares its **long-run mean rate factor**
//!   ([`RatePattern::mean_factor`]), so demand accounting
//!   ([`crate::scenario::Scenario::total_demand_tps`]) stays correct under
//!   any dynamics;
//! * patterns compose with a per-source **multiplier**
//!   ([`SourceProfile::multiplier`]), so one query can feed from
//!   heterogeneous-rate sources
//!   ([`crate::scenario::ScenarioBuilder::add_queries_with_multipliers`]);
//! * every pattern is **deterministic for a fixed seed**: replaying a
//!   driver with the same seed reproduces the exact batch-size sequence
//!   (the property tests in `crates/workloads/tests/proptests.rs` pin
//!   both guarantees).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use themis_core::prelude::*;
use themis_query::prelude::{SourceKind, SourceSpec};

use crate::datasets::{Dataset, ValueGen};
use crate::traces::{TraceData, TraceId};

/// Waveform of a [`RatePattern::Diurnal`] cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CycleShape {
    /// Smooth sinusoid from trough to peak and back over one period
    /// (starts at the trough).
    Sine,
    /// Two-level square wave: the first `duty` fraction of each period
    /// runs at the peak factor, the rest at the trough.
    Square {
        /// Fraction of the period spent at the peak, in `[0, 1]`.
        duty: f64,
    },
}

/// The emission-rate pattern of a source: a time-varying multiplier over
/// the profile's base rate.
///
/// All patterns are deterministic functions of `(elapsed time, seed)`;
/// the stochastic ones ([`RatePattern::Bursty`], the spike placement of
/// [`RatePattern::FlashCrowd`]) draw from seeded generators, so a run
/// replays exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatePattern {
    /// Constant rate (factor 1).
    Steady,
    /// For a fraction of 1-second periods, the emission rate is multiplied
    /// by `factor` (the paper's bursty sources: `fraction = 0.1`,
    /// `factor = 10`). Periods burst independently, decided by the
    /// driver's seeded generator.
    Bursty {
        /// Fraction of periods that burst.
        fraction: f64,
        /// Rate multiplier while bursting.
        factor: u32,
    },
    /// Day/night cycle: the rate factor oscillates between `trough` and
    /// `peak` with the given `period` and waveform.
    Diurnal {
        /// Cycle length.
        period: TimeDelta,
        /// Low rate factor (`0.0` = fully quiet).
        trough: f64,
        /// High rate factor.
        peak: f64,
        /// Waveform of the cycle.
        shape: CycleShape,
    },
    /// Flash crowds replayed from a seeded spike trace: each epoch of
    /// length `every` contains one spike of length `width`, placed at a
    /// seeded offset within the epoch, during which the rate factor is
    /// `magnitude` (and 1 otherwise). [`RatePattern::flash_trace`]
    /// materialises the spike intervals for a given seed.
    FlashCrowd {
        /// Epoch length (one spike per epoch).
        every: TimeDelta,
        /// Spike length (clamped to the epoch).
        width: TimeDelta,
        /// Rate factor during a spike.
        magnitude: f64,
    },
    /// Replays the per-beat rate factors of a registered arrival trace
    /// (cyclically). Traces are loaded and validated by
    /// [`crate::traces::TraceData`] and interned in a process-global
    /// registry, so the pattern stays a `Copy` handle; the trace's
    /// declared mean feeds demand accounting exactly.
    Trace {
        /// Handle to the registered trace.
        trace: TraceId,
    },
    /// A strategic source that phase-locks its emissions against the
    /// shedder's tick: the entire volume of each `tick`-long window is
    /// dumped into the window's *first* emission beat (rate factor
    /// `tick / interval` for one beat just after the tick boundary, `0`
    /// for the rest). The long-run mean factor is exactly 1 when the
    /// emission interval divides `tick` — the source looks honest in
    /// demand accounting while probing whether just-after-tick bursts
    /// can inflate its SIC share (by the next tick those batches are the
    /// *oldest* in the buffer, exactly what a FIFO shedder keeps).
    Adversarial {
        /// The shedding-tick period the source games.
        tick: TimeDelta,
    },
}

impl RatePattern {
    /// The paper's §7.4 configuration: 10% of the time at 10× rate.
    pub const PAPER_BURSTY: RatePattern = RatePattern::Bursty {
        fraction: 0.1,
        factor: 10,
    };

    /// The declared long-run mean of the pattern's rate factor; a source
    /// with base rate `r` emits `r * multiplier * mean_factor()` tuples
    /// per second on average.
    pub fn mean_factor(&self) -> f64 {
        match *self {
            RatePattern::Steady => 1.0,
            RatePattern::Bursty { fraction, factor } => {
                let f = fraction.clamp(0.0, 1.0);
                (1.0 - f) + f * factor as f64
            }
            RatePattern::Diurnal {
                trough,
                peak,
                shape,
                ..
            } => match shape {
                CycleShape::Sine => (trough + peak) / 2.0,
                CycleShape::Square { duty } => {
                    let d = duty.clamp(0.0, 1.0);
                    d * peak + (1.0 - d) * trough
                }
            },
            RatePattern::FlashCrowd {
                every,
                width,
                magnitude,
            } => {
                let every_us = every.as_micros().max(1) as f64;
                let width_us = (width.as_micros() as f64).min(every_us);
                1.0 + (magnitude - 1.0) * width_us / every_us
            }
            RatePattern::Trace { trace } => trace.data().mean_factor(),
            RatePattern::Adversarial { .. } => 1.0,
        }
    }

    /// The spike intervals a [`RatePattern::FlashCrowd`] pattern replays
    /// for `seed` within `[0, horizon)` — the seeded trace itself, one
    /// `(start, end)` pair per epoch. Empty for every other pattern.
    pub fn flash_trace(&self, seed: u64, horizon: TimeDelta) -> Vec<(Timestamp, Timestamp)> {
        let RatePattern::FlashCrowd { every, width, .. } = *self else {
            return Vec::new();
        };
        let every_us = every.as_micros().max(1);
        let width_us = width.as_micros().min(every_us);
        let mut spikes = Vec::new();
        let mut epoch = 0u64;
        while epoch * every_us < horizon.as_micros() {
            let offset = spike_offset(seed, epoch, every_us, width_us);
            let start = epoch * every_us + offset;
            spikes.push((Timestamp(start), Timestamp(start + width_us)));
            epoch += 1;
        }
        spikes
    }
}

/// Splitmix64 finaliser over a `(seed, period)` pair: any period's draw
/// can be recomputed independently — a replayable stochastic trace
/// without storing one.
fn period_mix(seed: u64, period: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(period.wrapping_mul(0xD134_2543_DE82_EF95));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded in-epoch offset of a flash-crowd spike.
fn spike_offset(seed: u64, epoch: u64, every_us: u64, width_us: u64) -> u64 {
    let z = period_mix(seed, epoch);
    let room = every_us.saturating_sub(width_us);
    if room == 0 {
        0
    } else {
        z % (room + 1)
    }
}

/// A uniform draw in `[0, 1)` for `(seed, period)` — the hash coin the
/// stateless bursty evaluation flips per one-second period.
fn period_unit(seed: u64, period: u64) -> f64 {
    (period_mix(seed, period) >> 11) as f64 / (1u64 << 53) as f64
}

/// Stateless evaluation of `pattern`'s rate factor at `now`: a pure
/// function of `(pattern, seed, now)`, so every driver sharing the pair
/// computes the *same* factor at the same instant — the property that
/// lets one hidden load process modulate many sources coherently
/// ([`SourceProfile::with_shared_load`]). Stochastic decisions come from
/// splitmix hashes of `(seed, period)` rather than an RNG stream, so any
/// instant is evaluable independently. `interval` is the evaluating
/// source's emission interval ([`RatePattern::Adversarial`] needs it);
/// `trace` is the pre-resolved registry entry for
/// [`RatePattern::Trace`].
fn stateless_factor(
    pattern: RatePattern,
    seed: u64,
    now: Timestamp,
    interval: TimeDelta,
    trace: Option<&Arc<TraceData>>,
) -> f64 {
    match pattern {
        RatePattern::Steady => 1.0,
        RatePattern::Bursty { fraction, factor } => {
            let period = now.as_micros() / 1_000_000;
            if period_unit(seed, period) < fraction {
                factor as f64
            } else {
                1.0
            }
        }
        RatePattern::Diurnal {
            period,
            trough,
            peak,
            shape,
        } => {
            let period_us = period.as_micros().max(1);
            let phase = (now.as_micros() % period_us) as f64 / period_us as f64;
            match shape {
                CycleShape::Sine => {
                    trough
                        + (peak - trough) * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
                }
                CycleShape::Square { duty } => {
                    if phase < duty.clamp(0.0, 1.0) {
                        peak
                    } else {
                        trough
                    }
                }
            }
        }
        RatePattern::FlashCrowd {
            every,
            width,
            magnitude,
        } => {
            let every_us = every.as_micros().max(1);
            let width_us = width.as_micros().min(every_us);
            let epoch = now.as_micros() / every_us;
            let offset = spike_offset(seed, epoch, every_us, width_us);
            let t_in = now.as_micros() % every_us;
            if t_in >= offset && t_in < offset + width_us {
                magnitude
            } else {
                1.0
            }
        }
        RatePattern::Trace { trace: id } => match trace {
            Some(data) => data.factor_at(now),
            None => id.data().factor_at(now),
        },
        RatePattern::Adversarial { tick } => {
            let iv = interval.as_micros().max(1);
            let tick_us = tick.as_micros().max(iv);
            if now.as_micros() % tick_us < iv {
                tick_us as f64 / iv as f64
            } else {
                0.0
            }
        }
    }
}

/// One hidden load process shared across sources: every profile carrying
/// the same `SharedLoad` evaluates the same seeded pattern at the same
/// instant, so its bursts hit all of those sources **simultaneously** —
/// correlated overload, where independent per-source patterns would
/// de-phase and average each other out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedLoad {
    /// The shared pattern (evaluated statelessly; see
    /// [`SourceProfile::with_shared_load`]).
    pub pattern: RatePattern,
    /// The load process's seed — sources sharing it see the same bursts.
    pub seed: u64,
}

/// Rate/batching profile of a source (per Table 2), plus its rate pattern
/// and heterogeneity multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceProfile {
    /// Tuples per second under the steady regime (before pattern and
    /// multiplier).
    pub tuples_per_sec: u32,
    /// Batches per second (steady batch size = rate / batches).
    pub batches_per_sec: u32,
    /// Rate pattern modulating the base rate over time.
    pub pattern: RatePattern,
    /// Per-source rate multiplier (heterogeneous rates inside one query);
    /// `1.0` leaves the base rate unchanged.
    pub multiplier: f64,
    /// Value distribution.
    pub dataset: Dataset,
    /// Optional shared (correlated) load process multiplying the
    /// source's own pattern; `None` keeps sources independent.
    pub shared: Option<SharedLoad>,
}

impl SourceProfile {
    /// A steady profile at `tuples_per_sec` in `batches_per_sec` batches.
    pub fn steady(tuples_per_sec: u32, batches_per_sec: u32, dataset: Dataset) -> Self {
        SourceProfile {
            tuples_per_sec,
            batches_per_sec,
            pattern: RatePattern::Steady,
            multiplier: 1.0,
            dataset,
            shared: None,
        }
    }

    /// The local test-bed profile of Table 2: 400 t/s in 5 batches of 80.
    pub fn local(dataset: Dataset) -> Self {
        SourceProfile::steady(400, 5, dataset)
    }

    /// The Emulab profile of Table 2: 150 t/s in 3 batches of 50.
    pub fn emulab(dataset: Dataset) -> Self {
        SourceProfile::steady(150, 3, dataset)
    }

    /// This profile under a different rate pattern.
    pub fn with_pattern(mut self, pattern: RatePattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// This profile with a per-source rate multiplier.
    pub fn with_multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = multiplier.max(0.0);
        self
    }

    /// This profile modulated by a **shared** load process: the seeded
    /// `pattern` is evaluated statelessly at each emission instant and
    /// multiplied into the source's own factor, so every source given the
    /// same `(pattern, seed)` pair bursts at the same moment
    /// ([`crate::scenario::ScenarioBuilder::with_correlated_load`]
    /// applies one pair across a whole scenario). The shared pattern's
    /// mean multiplies into [`SourceProfile::mean_rate_tps`]; the product
    /// of means is the exact long-run mean because the shared process is
    /// evaluated independently of the source's own seeded pattern.
    pub fn with_shared_load(mut self, pattern: RatePattern, seed: u64) -> Self {
        self.shared = Some(SharedLoad { pattern, seed });
        self
    }

    /// Steady batch size (before pattern and multiplier).
    pub fn batch_size(&self) -> usize {
        (self.tuples_per_sec / self.batches_per_sec.max(1)).max(1) as usize
    }

    /// Interval between batch emissions (patterns modulate batch *sizes*,
    /// never the cadence).
    pub fn interval(&self) -> TimeDelta {
        TimeDelta(1_000_000 / self.batches_per_sec.max(1) as u64)
    }

    /// The declared long-run mean emission rate in tuples/second:
    /// base rate × multiplier × the pattern's mean factor × the shared
    /// load's mean factor (if any).
    pub fn mean_rate_tps(&self) -> f64 {
        let shared = self.shared.map_or(1.0, |s| s.pattern.mean_factor());
        self.tuples_per_sec as f64 * self.multiplier * self.pattern.mean_factor() * shared
    }
}

/// Drives one source: emits timestamped, zero-SIC batches for its query
/// (the hosting node assigns Eq.-1 SIC values on arrival). Batches are
/// built as **typed columns** against the source's declared [`Schema`] —
/// appending native column values, never materialising owning tuples.
///
/// The batch cadence is fixed ([`SourceProfile::interval`]); the rate
/// pattern scales each batch's *size*. Fractional tuples carry over to
/// the next emission, so the realised long-run rate matches
/// [`SourceProfile::mean_rate_tps`] without rounding bias.
#[derive(Debug)]
pub struct SourceDriver {
    /// The source.
    pub source: SourceId,
    /// The query it feeds.
    pub query: QueryId,
    key: Option<i64>,
    /// Dictionary code of the source's tag label, for spec-compiled
    /// `GROUP BY` queries whose rows lead with a tag column.
    tag_code: Option<u32>,
    kind: SourceKind,
    schema: Schema,
    profile: SourceProfile,
    values: ValueGen,
    seed: u64,
    burst_rng: SmallRng,
    /// Periods (seconds) currently decided: (period index, bursting?).
    current_period: (u64, bool),
    /// Registry entries resolved once at construction, so the emit path
    /// never takes the trace-registry lock: the source's own pattern's
    /// trace and the shared load's trace (when either is
    /// [`RatePattern::Trace`]).
    own_trace: Option<Arc<TraceData>>,
    shared_trace: Option<Arc<TraceData>>,
    /// Fractional tuples owed from previous emissions.
    carry: f64,
    next_emission: Timestamp,
    /// Optional batch pool: when set, emitted batches are acquired from
    /// (and, downstream, recycled back into) the pool instead of being
    /// freshly allocated per emission.
    pool: Option<BatchPool>,
}

impl SourceDriver {
    /// Creates the driver; emissions are de-phased per source so batches of
    /// different sources do not all arrive at the same instant.
    pub fn new(query: QueryId, spec: &SourceSpec, profile: SourceProfile, seed: u64) -> Self {
        let mut phase_rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let phase =
            TimeDelta::from_micros(phase_rng.gen_range(0..profile.interval().as_micros().max(1)));
        let resolve = |p: RatePattern| match p {
            RatePattern::Trace { trace } => Some(trace.data()),
            _ => None,
        };
        SourceDriver {
            source: spec.id,
            query,
            key: spec.key,
            tag_code: spec.tag.as_ref().map(|t| t.code),
            kind: spec.kind,
            schema: spec.schema(),
            profile,
            values: ValueGen::new(profile.dataset, seed),
            seed,
            burst_rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D)),
            current_period: (u64::MAX, false),
            own_trace: resolve(profile.pattern),
            shared_trace: profile.shared.and_then(|s| resolve(s.pattern)),
            carry: 0.0,
            next_emission: Timestamp::ZERO + phase,
            pool: None,
        }
    }

    /// The driver's profile.
    pub fn profile(&self) -> &SourceProfile {
        &self.profile
    }

    /// Attaches a [`BatchPool`]; subsequent [`SourceDriver::emit`] calls
    /// acquire their output batches from it instead of allocating.
    pub fn set_pool(&mut self, pool: BatchPool) {
        self.pool = Some(pool);
    }

    /// The fractional tuples currently owed to the next emission.
    pub fn carry(&self) -> f64 {
        self.carry
    }

    /// Restores a fractional-tuple balance, e.g. one stashed across a
    /// pump-slot remove/re-add of the same source, so the realised
    /// long-run rate stays unbiased over the source's whole lifetime.
    pub fn set_carry(&mut self, carry: f64) {
        self.carry = carry.clamp(0.0, 1.0);
    }

    /// When the next batch is due.
    pub fn next_time(&self) -> Timestamp {
        self.next_emission
    }

    /// Delays the first emission until `start` (plus the source's phase);
    /// used for queries that arrive mid-run.
    pub fn start_at(&mut self, start: Timestamp) {
        if self.next_emission < start {
            self.next_emission = start + (self.next_emission - Timestamp::ZERO);
        }
    }

    /// Skips whole missed beats when the schedule has fallen more than
    /// one full interval behind `now` — an overloaded pump re-anchors
    /// the driver onto the current beat (phase preserved) instead of
    /// storming catch-up batches at maximum rate. Skipped beats emit
    /// nothing, so the realised rate degrades under overload rather
    /// than backlogging unboundedly.
    pub fn fast_forward(&mut self, now: Timestamp) {
        let iv = self.profile.interval().as_micros();
        if iv == 0 || self.next_emission + self.profile.interval() >= now {
            return;
        }
        let behind = (now - self.next_emission).as_micros();
        let beats = behind / iv;
        self.next_emission += TimeDelta::from_micros(beats * iv);
    }

    /// The source's own pattern's rate factor at `now`. Bursty keeps its
    /// historical seeded RNG *stream* (mutating per-period state) so
    /// pre-existing replays stay bit-identical; every other pattern is a
    /// pure function of `(pattern, seed, now)` and delegates to the
    /// stateless evaluator shared with correlated loads.
    fn factor_at(&mut self, now: Timestamp) -> f64 {
        match self.profile.pattern {
            RatePattern::Bursty { fraction, factor } => {
                let period = now.as_micros() / 1_000_000;
                if self.current_period.0 != period {
                    self.current_period = (period, self.burst_rng.gen::<f64>() < fraction);
                }
                if self.current_period.1 {
                    factor as f64
                } else {
                    1.0
                }
            }
            pattern => stateless_factor(
                pattern,
                self.seed,
                now,
                self.profile.interval(),
                self.own_trace.as_ref(),
            ),
        }
    }

    /// Emits the batch due at `next_time()` and schedules the next one.
    /// The batch size is the base size scaled by the pattern factor and
    /// the source multiplier, with fractional tuples carried forward (a
    /// quiet diurnal trough can yield empty batches).
    pub fn emit(&mut self) -> Batch {
        let now = self.next_emission;
        let mut factor = self.factor_at(now).max(0.0);
        if let Some(shared) = self.profile.shared {
            factor *= stateless_factor(
                shared.pattern,
                shared.seed,
                now,
                self.profile.interval(),
                self.shared_trace.as_ref(),
            )
            .max(0.0);
        }
        // No minimum per batch: bases below one tuple (rate < batch
        // cadence) accumulate through the carry, so the realised rate
        // always matches `mean_rate_tps()`.
        let base = self.profile.tuples_per_sec as f64 / self.profile.batches_per_sec.max(1) as f64;
        let exact = base * self.profile.multiplier * factor + self.carry;
        let n = exact.floor().max(0.0) as usize;
        self.carry = exact - n as f64;
        // Typed column construction: rows append straight into the
        // schema's native columns — no per-tuple `Vec<Value>` allocation
        // and no `Value` arena downstream. With a pool attached the
        // backing columns come from recycled batches.
        let mut data = match &self.pool {
            Some(pool) => pool.acquire(&self.schema, n),
            None => TupleBatch::with_schema_capacity(self.schema.clone(), n),
        };
        for _ in 0..n {
            let v = match self.kind {
                SourceKind::MemFree => self.values.mem_free_kb(now),
                _ => self.values.value(now),
            };
            match (self.tag_code, self.key) {
                (Some(code), _) => {
                    data.push_row(now, Sic::ZERO, &[Value::Tag(code), Value::F64(v)])
                }
                (None, Some(k)) => data.push_row(now, Sic::ZERO, &[Value::I64(k), Value::F64(v)]),
                (None, None) => data.push_row(now, Sic::ZERO, &[Value::F64(v)]),
            }
        }
        self.next_emission = now + self.profile.interval();
        Batch::from_source_data(self.query, self.source, now, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: SourceKind) -> SourceSpec {
        SourceSpec::plain(SourceId(3), Some(7), kind)
    }

    #[test]
    fn table2_profiles() {
        let local = SourceProfile::local(Dataset::Uniform);
        assert_eq!(local.batch_size(), 80);
        assert_eq!(local.interval(), TimeDelta::from_millis(200));
        assert_eq!(local.mean_rate_tps(), 400.0);
        let emulab = SourceProfile::emulab(Dataset::Uniform);
        assert_eq!(emulab.batch_size(), 50);
        assert_eq!(emulab.interval(), TimeDelta::from_micros(333_333));
    }

    #[test]
    fn steady_driver_emits_constant_batches() {
        let profile = SourceProfile::local(Dataset::Uniform);
        let mut d = SourceDriver::new(QueryId(1), &spec(SourceKind::Cpu), profile, 5);
        let mut last = None;
        for _ in 0..10 {
            let t = d.next_time();
            let b = d.emit();
            assert_eq!(b.len(), 80);
            assert_eq!(b.query(), QueryId(1));
            assert_eq!(b.source(), Some(SourceId(3)));
            assert_eq!(b.created(), t);
            assert!(b.iter().all(|tu| tu.sic == Sic::ZERO));
            assert_eq!(b.data().row(0).i64(0), 7, "keyed row");
            // Keyed sources emit typed columns per their declared schema.
            assert!(b.data().schema().is_some());
            assert_eq!(b.data().i64_column(0).map(|c| c[0]), Some(7));
            assert!(b.data().f64_column(1).is_some());
            if let Some(prev) = last {
                assert_eq!((t - prev), TimeDelta::from_millis(200));
            }
            last = Some(t);
        }
    }

    #[test]
    fn tagged_sources_emit_dictionary_codes() {
        use themis_query::prelude::QueryDef;
        let spec = QueryDef::parse("SELECT host, SUM(value) FROM sensors[3] GROUP BY host")
            .unwrap()
            .validate()
            .unwrap()
            .compile(QueryId(1), &mut IdGen::new())
            .into_spec();
        let profile = SourceProfile::local(Dataset::Uniform);
        for (i, s) in spec.sources.iter().enumerate() {
            let mut d = SourceDriver::new(QueryId(1), s, profile, 9 + i as u64);
            let b = d.emit();
            assert!(!b.is_empty());
            let tag = s.tag.as_ref().unwrap();
            // Rows lead with the source's dictionary code, in a typed
            // tag column resolvable against the shared interner.
            let codes = b.data().tag_column(0).unwrap();
            assert!(codes.codes().iter().all(|&c| c == tag.code));
            assert_eq!(
                codes.dict().resolve(tag.code).as_deref(),
                Some(format!("sensors-{i}").as_str())
            );
            assert!(b.data().f64_column(1).is_some());
        }
    }

    #[test]
    fn fast_forward_skips_whole_missed_beats() {
        let profile = SourceProfile::local(Dataset::Uniform); // 200 ms interval
        let iv = profile.interval();
        let mut d = SourceDriver::new(QueryId(1), &spec(SourceKind::Cpu), profile, 5);
        let first = d.next_time();

        // Not behind, or behind by at most one interval: untouched.
        d.fast_forward(first);
        assert_eq!(d.next_time(), first);
        d.fast_forward(first + TimeDelta::from_millis(150));
        assert_eq!(d.next_time(), first);

        // Behind by 2.5 intervals: skip exactly two beats, keep phase.
        d.fast_forward(first + TimeDelta::from_millis(500));
        assert_eq!(d.next_time(), first + TimeDelta::from_millis(400));
        assert_eq!((d.next_time() - first).as_micros() % iv.as_micros(), 0);
    }

    #[test]
    fn phases_differ_across_sources() {
        let profile = SourceProfile::emulab(Dataset::Uniform);
        let d1 = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 1);
        let d2 = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 2);
        assert_ne!(d1.next_time(), d2.next_time());
    }

    #[test]
    fn bursty_driver_bursts_roughly_ten_percent() {
        let profile =
            SourceProfile::emulab(Dataset::Uniform).with_pattern(RatePattern::PAPER_BURSTY);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 9);
        let mut burst_batches = 0;
        let mut total = 0;
        // 300 seconds of emissions.
        while d.next_time() < Timestamp::from_secs(300) {
            let b = d.emit();
            total += 1;
            if b.len() > 50 {
                assert_eq!(b.len(), 500, "burst factor 10");
                burst_batches += 1;
            }
        }
        let frac = burst_batches as f64 / total as f64;
        assert!((0.04..=0.2).contains(&frac), "burst fraction {frac}");
    }

    #[test]
    fn diurnal_sine_cycles_between_trough_and_peak() {
        let pattern = RatePattern::Diurnal {
            period: TimeDelta::from_secs(10),
            trough: 0.0,
            peak: 2.0,
            shape: CycleShape::Sine,
        };
        assert_eq!(pattern.mean_factor(), 1.0);
        let profile = SourceProfile::steady(100, 5, Dataset::Uniform).with_pattern(pattern);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 11);
        let mut sizes: Vec<(f64, usize)> = Vec::new();
        while d.next_time() < Timestamp::from_secs(10) {
            let t = d.next_time().as_secs_f64();
            sizes.push((t, d.emit().len()));
        }
        // Quiet near the trough (cycle start), maximal near mid-period.
        let near = |t0: f64| {
            sizes
                .iter()
                .filter(|&&(t, _)| (t - t0).abs() < 1.0)
                .map(|&(_, n)| n)
                .sum::<usize>()
        };
        assert!(
            near(0.5) < near(5.0),
            "trough {} peak {}",
            near(0.5),
            near(5.0)
        );
        // The peak reaches ~2x the steady batch size.
        assert!(sizes.iter().any(|&(_, n)| n >= 38), "peak batches missing");
        // Long-run mean ≈ declared mean rate (100 t/s).
        let total: usize = sizes.iter().map(|&(_, n)| n).sum();
        let rate = total as f64 / 10.0;
        assert!((rate - 100.0).abs() < 10.0, "mean rate {rate}");
    }

    #[test]
    fn diurnal_square_holds_two_levels() {
        let pattern = RatePattern::Diurnal {
            period: TimeDelta::from_secs(4),
            trough: 0.5,
            peak: 1.5,
            shape: CycleShape::Square { duty: 0.25 },
        };
        assert!((pattern.mean_factor() - 0.75).abs() < 1e-12);
        let profile = SourceProfile::steady(400, 4, Dataset::Uniform).with_pattern(pattern);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 3);
        let mut high = 0;
        let mut low = 0;
        while d.next_time() < Timestamp::from_secs(8) {
            let in_duty = (d.next_time().as_micros() % 4_000_000) < 1_000_000;
            let n = d.emit().len();
            if in_duty {
                assert!(n >= 149, "peak batch {n}");
                high += 1;
            } else {
                assert!(n <= 51, "trough batch {n}");
                low += 1;
            }
        }
        assert!(high >= 4 && low >= 12, "high {high} low {low}");
    }

    #[test]
    fn flash_crowd_replays_its_seeded_trace() {
        let pattern = RatePattern::FlashCrowd {
            every: TimeDelta::from_secs(5),
            width: TimeDelta::from_secs(1),
            magnitude: 8.0,
        };
        assert!((pattern.mean_factor() - 2.4).abs() < 1e-12);
        let profile = SourceProfile::steady(100, 10, Dataset::Uniform).with_pattern(pattern);
        let seed = 21;
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, seed);
        let trace = pattern.flash_trace(seed, TimeDelta::from_secs(30));
        assert_eq!(trace.len(), 6, "one spike per 5 s epoch");
        let mut spiked = 0;
        while d.next_time() < Timestamp::from_secs(30) {
            let t = d.next_time();
            let in_spike = trace.iter().any(|&(s, e)| t >= s && t < e);
            let n = d.emit().len();
            if in_spike {
                assert!(n >= 79, "spike batch only {n} tuples at {t}");
                spiked += 1;
            } else {
                assert!(n <= 11, "off-spike batch {n} tuples at {t}");
            }
        }
        assert!(spiked >= 30, "spiked batches {spiked}");
    }

    #[test]
    fn multiplier_scales_rate_and_composes_with_patterns() {
        let profile = SourceProfile::emulab(Dataset::Uniform).with_multiplier(3.0);
        assert_eq!(profile.mean_rate_tps(), 450.0);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 5);
        assert_eq!(d.emit().len(), 150, "3x the 50-tuple Emulab batch");
        // Composed with the paper's bursty pattern the mean multiplies.
        let bursty = profile.with_pattern(RatePattern::PAPER_BURSTY);
        assert!((bursty.mean_rate_tps() - 450.0 * 1.9).abs() < 1e-9);
    }

    #[test]
    fn fractional_rates_carry_over() {
        // 10 t/s in 4 batches/s: 2.5 tuples per batch alternates 2 and 3.
        let profile = SourceProfile::steady(10, 4, Dataset::Uniform);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 8);
        let sizes: Vec<usize> = (0..8).map(|_| d.emit().len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 20, "mean rate preserved");
        assert!(sizes.iter().all(|&n| n == 2 || n == 3), "{sizes:?}");
    }

    #[test]
    fn carry_survives_a_stash_and_restore() {
        // 10 t/s in 4 batches/s: 2.5 per batch — sizes alternate 2, 3.
        let profile = SourceProfile::steady(10, 4, Dataset::Uniform);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 8);
        assert_eq!(d.emit().len(), 2);
        let owed = d.carry();
        assert!((owed - 0.5).abs() < 1e-12, "carry {owed}");
        // A rebuilt driver (pump slot removed and re-added) starts at
        // carry 0; restoring the stash resumes the 2/3 alternation.
        let mut d2 = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 8);
        assert_eq!(d2.carry(), 0.0);
        d2.set_carry(owed);
        assert_eq!(d2.emit().len(), 3, "restored carry rounds up");
        // Restores are clamped to a legal fractional balance.
        d2.set_carry(7.5);
        assert_eq!(d2.carry(), 1.0);
    }

    #[test]
    fn pooled_emissions_reuse_recycled_batches() {
        let profile = SourceProfile::emulab(Dataset::Uniform);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 4);
        let pool = BatchPool::new();
        d.set_pool(pool.clone());
        let b = d.emit();
        assert_eq!(b.len(), 50);
        pool.recycle(b.into_data());
        let b2 = d.emit();
        assert_eq!(b2.len(), 50, "recycled batch refills to full size");
        let stats = pool.stats();
        assert_eq!((stats.fresh, stats.recycled, stats.reused), (1, 1, 1));
    }

    #[test]
    fn sub_batch_rates_are_not_inflated() {
        // 1 t/s in 5 batches/s: 0.2 tuples per batch — most batches are
        // empty, and the long-run rate stays 1 t/s (no per-batch minimum).
        let profile = SourceProfile::steady(1, 5, Dataset::Uniform);
        assert_eq!(profile.mean_rate_tps(), 1.0);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 6);
        let mut total = 0;
        while d.next_time() < Timestamp::from_secs(10) {
            total += d.emit().len();
        }
        assert_eq!(total, 10, "realised 10 s volume at 1 t/s");
    }

    #[test]
    fn mem_sources_emit_memory_values() {
        let profile = SourceProfile::emulab(Dataset::Uniform);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::MemFree), profile, 4);
        let b = d.emit();
        // KB scale, not 0-100.
        assert!(b.iter().any(|t| t.f64(1) > 1000.0));
    }

    #[test]
    fn trace_pattern_replays_registered_factors() {
        let trace = TraceData::from_factors(
            "unit-replay",
            TimeDelta::from_secs(1),
            vec![0.5, 2.0, 0.5, 1.0],
        )
        .unwrap()
        .register();
        let pattern = RatePattern::Trace { trace };
        assert!((pattern.mean_factor() - 1.0).abs() < 1e-12);
        // 100 t/s in 10 batches/s: base batch 10 tuples, scaled per beat.
        let profile = SourceProfile::steady(100, 10, Dataset::Uniform).with_pattern(pattern);
        assert_eq!(profile.mean_rate_tps(), 100.0);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 13);
        let mut per_beat = [0usize; 4];
        while d.next_time() < Timestamp::from_secs(8) {
            let beat = (d.next_time().as_micros() / 1_000_000) as usize % 4;
            per_beat[beat] += d.emit().len();
        }
        // Two cycles: beat volumes follow the factors (10 batches/beat).
        assert!((95..=105).contains(&per_beat[0]), "{per_beat:?}");
        assert!((395..=405).contains(&per_beat[1]), "{per_beat:?}");
        assert!((195..=205).contains(&per_beat[3]), "{per_beat:?}");
    }

    #[test]
    fn adversarial_dumps_each_ticks_volume_just_after_the_boundary() {
        let tick = TimeDelta::from_millis(250);
        let pattern = RatePattern::Adversarial { tick };
        assert_eq!(
            pattern.mean_factor(),
            1.0,
            "looks honest in demand accounting"
        );
        // 400 t/s in 20 batches/s: interval 50 ms divides the 250 ms tick.
        let profile = SourceProfile::steady(400, 20, Dataset::Uniform).with_pattern(pattern);
        assert_eq!(profile.mean_rate_tps(), 400.0);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 17);
        let mut total = 0usize;
        let mut bursts = 0usize;
        while d.next_time() < Timestamp::from_secs(10) {
            let in_window = d.next_time().as_micros() % tick.as_micros() < 50_000;
            let n = d.emit().len();
            total += n;
            if in_window {
                assert_eq!(n, 100, "the whole tick's volume lands in one beat");
                bursts += 1;
            } else {
                assert_eq!(n, 0, "silent for the rest of the tick");
            }
        }
        assert_eq!(bursts, 40, "one burst per 250 ms tick over 10 s");
        assert_eq!(
            total, 4000,
            "long-run volume matches an honest 400 t/s source"
        );
    }

    #[test]
    fn shared_load_bursts_hit_differently_seeded_sources_simultaneously() {
        let shared = RatePattern::FlashCrowd {
            every: TimeDelta::from_secs(5),
            width: TimeDelta::from_secs(1),
            magnitude: 8.0,
        };
        let shared_seed = 4242;
        let profile =
            SourceProfile::steady(100, 10, Dataset::Uniform).with_shared_load(shared, shared_seed);
        // The shared mean multiplies into demand accounting.
        assert!((profile.mean_rate_tps() - 240.0).abs() < 1e-9);
        // The spike schedule is the *shared* seed's flash trace — not
        // either driver's own seed.
        let trace = shared.flash_trace(shared_seed, TimeDelta::from_secs(30));
        for own_seed in [1u64, 2] {
            let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, own_seed);
            while d.next_time() < Timestamp::from_secs(30) {
                let t = d.next_time();
                let in_spike = trace.iter().any(|&(s, e)| t >= s && t < e);
                let n = d.emit().len();
                if in_spike {
                    assert!(n >= 79, "seed {own_seed}: spike batch only {n} at {t}");
                } else {
                    assert!(n <= 11, "seed {own_seed}: off-spike batch {n} at {t}");
                }
            }
        }
    }

    #[test]
    fn shared_load_composes_with_own_pattern() {
        let diurnal = RatePattern::Diurnal {
            period: TimeDelta::from_secs(10),
            trough: 0.5,
            peak: 1.5,
            shape: CycleShape::Sine,
        };
        let profile = SourceProfile::steady(200, 10, Dataset::Uniform)
            .with_pattern(diurnal)
            .with_shared_load(
                RatePattern::Bursty {
                    fraction: 0.5,
                    factor: 4,
                },
                77,
            );
        // 200 × 1.0 (diurnal mean) × 2.5 (bursty mean) = 500 t/s.
        assert!((profile.mean_rate_tps() - 500.0).abs() < 1e-9);
        let mut d = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 3);
        let mut total = 0usize;
        while d.next_time() < Timestamp::from_secs(120) {
            total += d.emit().len();
        }
        let rate = total as f64 / 120.0;
        assert!(
            (rate - 500.0).abs() < 50.0,
            "realised composed rate {rate} vs declared 500"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let profile = SourceProfile::local(Dataset::Mixed).with_pattern(RatePattern::FlashCrowd {
            every: TimeDelta::from_secs(2),
            width: TimeDelta::from_millis(400),
            magnitude: 5.0,
        });
        let mut a = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 77);
        let mut b = SourceDriver::new(QueryId(0), &spec(SourceKind::Cpu), profile, 77);
        for _ in 0..25 {
            assert_eq!(a.emit(), b.emit());
        }
    }
}
