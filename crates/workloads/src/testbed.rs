//! The two experimental test-beds of Table 2, as simulation profiles.

use themis_core::prelude::*;

use crate::datasets::Dataset;
use crate::sources::SourceProfile;

/// A test-bed profile (Table 2): node counts, link latency and the source
/// rate/batching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Testbed {
    /// Profile name.
    pub name: &'static str,
    /// Processing nodes available.
    pub processing_nodes: usize,
    /// One-way link latency between nodes.
    pub link_latency: TimeDelta,
    /// Source rate in tuples/second.
    pub source_rate: u32,
    /// Batches per second per source.
    pub batches_per_sec: u32,
}

/// Local test-bed (Table 2): 3 servers — 1 source node, 1 query submission
/// node, 1 processing node; sources at 400 t/s in 5 batches of 80.
pub const LOCAL: Testbed = Testbed {
    name: "local",
    processing_nodes: 1,
    link_latency: TimeDelta(1_000), // 1 Gbps LAN, sub-millisecond
    source_rate: 400,
    batches_per_sec: 5,
};

/// Emulab test-bed (Table 2): 25 servers — 3 source nodes, 3 submission
/// nodes, up to 18 processing nodes in a 100 Mbps star with 5 ms delays;
/// sources at 150 t/s in 3 batches of 50.
pub const EMULAB: Testbed = Testbed {
    name: "emulab",
    processing_nodes: 18,
    link_latency: TimeDelta(5_000),
    source_rate: 150,
    batches_per_sec: 3,
};

/// Wide-area variant used in §7.4: Emulab profile with 50 ms latencies.
pub const WAN: Testbed = Testbed {
    name: "fsps-wan",
    link_latency: TimeDelta(50_000),
    ..EMULAB
};

impl Testbed {
    /// The test-bed's (steady) source profile over the given dataset.
    pub fn source_profile(&self, dataset: Dataset) -> SourceProfile {
        SourceProfile::steady(self.source_rate, self.batches_per_sec, dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        assert_eq!(LOCAL.source_rate, 400);
        assert_eq!(LOCAL.source_profile(Dataset::Uniform).batch_size(), 80);
        assert_eq!(EMULAB.source_rate, 150);
        assert_eq!(EMULAB.source_profile(Dataset::Uniform).batch_size(), 50);
        assert_eq!(EMULAB.processing_nodes, 18);
        assert_eq!(EMULAB.link_latency, TimeDelta::from_millis(5));
        assert_eq!(WAN.link_latency, TimeDelta::from_millis(50));
        assert_eq!(WAN.source_rate, EMULAB.source_rate);
    }
}
