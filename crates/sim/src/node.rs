//! The simulated THEMIS node (Figure 5): input buffer, overload detector,
//! cost model, tuple shedder and the operator threads (here: fragment
//! runtimes executed at tick granularity).

use std::collections::{BTreeMap, HashMap};

use themis_core::prelude::*;
use themis_core::stw::SlidingAccumulator;
use themis_query::prelude::*;

use crate::config::SimConfig;
use crate::report::NodeStats;

/// A batch in flight or buffered, together with its routing information.
#[derive(Debug, Clone)]
pub struct RoutedBatch {
    /// The query the batch belongs to.
    pub query: QueryId,
    /// Destination fragment (index within the query).
    pub fragment: usize,
    /// How the batch enters the fragment.
    pub ingress: Ingress,
    /// The payload.
    pub batch: Batch,
}

/// An output produced while processing a node tick.
#[derive(Debug)]
pub enum NodeOutput {
    /// The root of `fragment` emitted tuples that leave the fragment.
    FragmentOutput {
        /// Producing query.
        query: QueryId,
        /// Producing fragment.
        fragment: usize,
        /// Emission timestamp.
        at: Timestamp,
        /// The columnar output batch.
        batch: TupleBatch,
    },
}

/// One simulated FSPS node.
pub struct SimNode {
    id: NodeId,
    /// True per-tuple processing cost (the simulated hardware).
    per_tuple_cost: TimeDelta,
    /// Input buffer (Figure 5's IB).
    buffer: Vec<RoutedBatch>,
    /// Hosted fragments, ordered for deterministic tick iteration.
    fragments: BTreeMap<(QueryId, usize), FragmentRuntime>,
    assigners: HashMap<QueryId, SourceSicAssigner>,
    /// Latest coordinator-disseminated result SIC per query.
    sic_table: SicTable,
    /// Fallback when `updateSIC` dissemination is disabled: locally
    /// accepted SIC mass per query over the STW.
    local_sic: HashMap<QueryId, SlidingAccumulator>,
    stw: StwConfig,
    shedder: Box<dyn Shedder>,
    cost_model: CostModel,
    detector: OverloadDetector,
    use_coordinator: bool,
    /// Counters reported at the end of the run.
    pub stats: NodeStats,
}

impl SimNode {
    /// Creates a node.
    ///
    /// `capacity_tps` is the true processing rate of the simulated
    /// hardware; the cost model starts from the matching threshold and
    /// keeps estimating it online from observed work.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        capacity_tps: u32,
        interval: TimeDelta,
        stw: StwConfig,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        let per_tuple_cost =
            TimeDelta::from_micros((1_000_000 / capacity_tps.max(1) as u64).max(1));
        let initial_capacity =
            (interval.as_micros() / per_tuple_cost.as_micros().max(1)).max(1) as usize;
        SimNode {
            id,
            per_tuple_cost,
            buffer: Vec::new(),
            fragments: BTreeMap::new(),
            assigners: HashMap::new(),
            sic_table: SicTable::new(),
            local_sic: HashMap::new(),
            stw,
            shedder: config.policy.build(seed),
            cost_model: CostModel::default(),
            detector: OverloadDetector::new(interval, initial_capacity),
            use_coordinator: config.coordinator,
            stats: NodeStats::default(),
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Deploys a fragment on this node.
    pub fn deploy(&mut self, query: &QuerySpec, fragment: usize) {
        self.fragments.insert(
            (query.id, fragment),
            FragmentRuntime::new(&query.fragments[fragment]),
        );
        let stw = self.stw;
        let n_sources = query.n_sources();
        self.assigners
            .entry(query.id)
            .or_insert_with(|| SourceSicAssigner::new(stw, n_sources));
    }

    /// Number of fragments hosted.
    pub fn n_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Handles a batch arrival: source batches get their Eq.-1 SIC values
    /// stamped *before* buffering, so the rate estimator observes every
    /// arriving tuple (shed ones included) and the shedder sees final SIC
    /// values.
    pub fn on_arrival(&mut self, now: Timestamp, mut rb: RoutedBatch) {
        self.stats.arrived_tuples += rb.batch.len() as u64;
        if rb.batch.source().is_some() {
            if let Some(assigner) = self.assigners.get_mut(&rb.query) {
                assigner.stamp(now, &mut rb.batch);
            }
        }
        self.buffer.push(rb);
    }

    /// Receives a coordinator SIC update.
    pub fn on_sic_update(&mut self, update: &SicUpdate) {
        self.stats.sic_updates += 1;
        if self.use_coordinator {
            self.sic_table.apply(update);
        }
    }

    /// Buffered tuples awaiting processing.
    pub fn buffered_tuples(&self) -> usize {
        self.buffer.iter().map(|rb| rb.batch.len()).sum()
    }

    /// The current capacity threshold `c` (tuples per interval).
    pub fn threshold(&self) -> usize {
        self.detector.threshold(&self.cost_model)
    }

    /// Runs one shedding interval: detector → shedder → processing.
    /// Returns the fragment outputs to route.
    pub fn tick(&mut self, now: Timestamp) -> Vec<NodeOutput> {
        // When updateSIC dissemination is off, nodes estimate query SIC
        // from the mass they accepted locally (Figure 4, top).
        if !self.use_coordinator {
            let queries: Vec<QueryId> = self.buffer.iter().map(|rb| rb.query).collect();
            for q in queries {
                let acc = self
                    .local_sic
                    .entry(q)
                    .or_insert_with(|| SlidingAccumulator::new(self.stw));
                acc.advance_to(now);
                self.sic_table.set(q, Sic(acc.total()).clamp_unit());
            }
        }

        let c = self.threshold();
        let buffered = self.buffered_tuples();
        // Shed decisions become a bitmap over buffer slots: shed batches
        // get a bit flipped instead of having their tuples spliced out.
        let shed = if buffered > c {
            // Overloaded: Algorithm 1 (or the configured baseline).
            self.stats.shed_invocations += 1;
            let states = self.snapshot();
            let decision = self.shedder.select_to_keep(c, &states);
            self.stats.kept_tuples += decision.kept_tuples as u64;
            self.stats.shed_tuples += decision.shed_tuples as u64;
            self.stats.shed_batches += decision.shed_batches as u64;
            decision.shed_bitmap(self.buffer.len())
        } else {
            self.stats.kept_tuples += buffered as u64;
            DropBitmap::new()
        };

        let mut kept_tuples = 0u64;
        let mut outputs = Vec::new();
        let buffer = std::mem::take(&mut self.buffer);
        for (idx, rb) in buffer.into_iter().enumerate() {
            if shed.is_dropped(idx) {
                continue; // shed
            }
            kept_tuples += rb.batch.len() as u64;
            if !self.use_coordinator {
                let acc = self
                    .local_sic
                    .entry(rb.query)
                    .or_insert_with(|| SlidingAccumulator::new(self.stw));
                acc.add(now, rb.batch.sic().value());
            }
            if let Some(rt) = self.fragments.get_mut(&(rb.query, rb.fragment)) {
                let query = rb.query;
                let fragment = rb.fragment;
                // Hand the batch's columns to the fragment: a move, not a
                // per-tuple materialisation.
                for e in rt.ingest(rb.ingress, rb.batch.into_data(), now) {
                    outputs.push(NodeOutput::FragmentOutput {
                        query,
                        fragment,
                        at: e.at,
                        batch: e.into_batch(),
                    });
                }
            }
        }

        // Advance every hosted fragment's windows.
        for (&(query, fragment), rt) in self.fragments.iter_mut() {
            for e in rt.tick(now) {
                outputs.push(NodeOutput::FragmentOutput {
                    query,
                    fragment,
                    at: e.at,
                    batch: e.into_batch(),
                });
            }
        }

        // Cost accounting: the simulated hardware spends `per_tuple_cost`
        // per admitted tuple; the cost model re-estimates the threshold.
        let busy = TimeDelta::from_micros(kept_tuples * self.per_tuple_cost.as_micros());
        self.cost_model.observe(busy, kept_tuples);
        outputs
    }

    /// Groups the buffer by query with projected base SIC values (§6): the
    /// disseminated result SIC minus locally buffered mass.
    fn snapshot(&self) -> Vec<QueryBufferState> {
        let mut by_query: HashMap<QueryId, Vec<CandidateBatch>> = HashMap::new();
        for (idx, rb) in self.buffer.iter().enumerate() {
            by_query.entry(rb.query).or_default().push(CandidateBatch {
                buffer_index: idx,
                sic: rb.batch.sic(),
                tuples: rb.batch.len(),
                created: rb.batch.created(),
            });
        }
        let mut states: Vec<QueryBufferState> = by_query
            .into_iter()
            .map(|(query, batches)| {
                let buffered: Sic = batches.iter().map(|b| b.sic).sum();
                let reported = self.sic_table.get(query);
                QueryBufferState {
                    query,
                    base_sic: Sic((reported.value() - buffered.value()).max(0.0)),
                    batches,
                }
            })
            .collect();
        states.sort_by_key(|s| s.query);
        states
    }
}

impl std::fmt::Debug for SimNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNode")
            .field("id", &self.id)
            .field("fragments", &self.fragments.len())
            .field("buffered", &self.buffer.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(capacity_tps: u32, policy: PolicyKind) -> SimNode {
        let cfg = SimConfig::with_policy(policy);
        SimNode::new(
            NodeId(0),
            capacity_tps,
            TimeDelta::from_millis(250),
            StwConfig::new(TimeDelta::from_secs(2), TimeDelta::from_millis(250)),
            &cfg,
            42,
        )
    }

    fn avg_query(id: u32) -> QuerySpec {
        let mut gen = IdGen::new();
        // Distinct source ids per query come from the scenario normally;
        // emulate by offsetting the generator.
        for _ in 0..id {
            let _: SourceId = gen.next();
        }
        Template::Avg.build(QueryId(id), &mut gen)
    }

    fn source_batch(q: &QuerySpec, ms: u64, n: usize) -> RoutedBatch {
        let src = q.sources[0].id;
        let tuples: Vec<Tuple> = (0..n)
            .map(|_| Tuple::measurement(Timestamp::from_millis(ms), Sic::ZERO, 50.0))
            .collect();
        RoutedBatch {
            query: q.id,
            fragment: 0,
            ingress: Ingress::Source(src),
            batch: Batch::from_source(q.id, src, Timestamp::from_millis(ms), tuples),
        }
    }

    #[test]
    fn threshold_matches_capacity() {
        let n = node(4000, PolicyKind::BalanceSic);
        // 4000 t/s over 250 ms = 1000 tuples.
        assert_eq!(n.threshold(), 1000);
    }

    #[test]
    fn arrival_stamps_source_sic() {
        let q = avg_query(0);
        let mut n = node(4000, PolicyKind::BalanceSic);
        n.deploy(&q, 0);
        n.on_arrival(Timestamp::from_millis(10), source_batch(&q, 10, 100));
        assert_eq!(n.buffered_tuples(), 100);
        assert_eq!(n.stats.arrived_tuples, 100);
        // The batch now carries Eq.-1 SIC mass.
        assert!(n.buffer[0].batch.sic().value() > 0.0);
    }

    #[test]
    fn underload_processes_everything() {
        let q = avg_query(0);
        let mut n = node(4000, PolicyKind::BalanceSic);
        n.deploy(&q, 0);
        n.on_arrival(Timestamp::from_millis(10), source_batch(&q, 10, 100));
        n.tick(Timestamp::from_millis(250));
        assert_eq!(n.stats.kept_tuples, 100);
        assert_eq!(n.stats.shed_tuples, 0);
        assert_eq!(n.buffered_tuples(), 0, "buffer drained");
    }

    #[test]
    fn overload_sheds_down_to_threshold() {
        let q = avg_query(0);
        let mut n = node(400, PolicyKind::BalanceSic); // c = 100
        n.deploy(&q, 0);
        for k in 0..5 {
            n.on_arrival(Timestamp::from_millis(10 + k), source_batch(&q, 10, 50));
        }
        assert_eq!(n.buffered_tuples(), 250);
        n.tick(Timestamp::from_millis(250));
        assert_eq!(n.stats.kept_tuples, 100);
        assert_eq!(n.stats.shed_tuples, 150);
        assert_eq!(n.stats.shed_invocations, 1);
    }

    #[test]
    fn windowed_results_emerge_after_grace() {
        let q = avg_query(0);
        let mut n = node(40_000, PolicyKind::BalanceSic);
        n.deploy(&q, 0);
        n.on_arrival(Timestamp::from_millis(10), source_batch(&q, 10, 100));
        let mut outputs = Vec::new();
        for t in [250u64, 500, 750, 1000, 1250, 1500, 1750] {
            outputs.extend(n.tick(Timestamp::from_millis(t)));
        }
        assert_eq!(outputs.len(), 1, "one AVG result window");
        let NodeOutput::FragmentOutput { query, batch, .. } = &outputs[0];
        assert_eq!(*query, q.id);
        assert_eq!(batch.row(0).f64(0), 50.0);
    }

    #[test]
    fn sic_update_feeds_table() {
        let mut n = node(400, PolicyKind::BalanceSic);
        n.on_sic_update(&SicUpdate {
            query: QueryId(3),
            node: NodeId(0),
            sic: Sic(0.4),
        });
        assert_eq!(n.stats.sic_updates, 1);
        // The snapshot projection uses the table; verify indirectly via a
        // shed: a query with reported SIC 0.4 and no competition keeps its
        // own batches.
        let q = avg_query(3);
        n.deploy(&q, 0);
        n.on_arrival(Timestamp::from_millis(10), source_batch(&q, 10, 200));
        n.tick(Timestamp::from_millis(250));
        assert!(n.stats.kept_tuples <= 100);
    }

    #[test]
    fn balance_prefers_starved_queries() {
        // Two queries, one reported rich (0.8), one starved (0.0); capacity
        // for only part of the buffer: the starved query's batches win.
        let q0 = avg_query(0);
        let q1 = avg_query(1);
        let mut n = node(400, PolicyKind::BalanceSic); // c = 100
        n.deploy(&q0, 0);
        n.deploy(&q1, 0);
        n.on_sic_update(&SicUpdate {
            query: q0.id,
            node: NodeId(0),
            sic: Sic(0.8),
        });
        n.on_sic_update(&SicUpdate {
            query: q1.id,
            node: NodeId(0),
            sic: Sic::ZERO,
        });
        for k in 0..2 {
            n.on_arrival(Timestamp::from_millis(10 + k), source_batch(&q0, 10, 50));
            n.on_arrival(Timestamp::from_millis(10 + k), source_batch(&q1, 10, 50));
        }
        n.tick(Timestamp::from_millis(250));
        // 100 tuples kept; all should belong to q1 (starved).
        assert_eq!(n.stats.kept_tuples, 100);
        // q0's batches were shed: find counts via stats only; the check is
        // that exactly two batches were shed and they total 100 tuples.
        assert_eq!(n.stats.shed_tuples, 100);
        assert_eq!(n.stats.shed_batches, 2);
    }
}
