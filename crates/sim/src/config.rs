//! Simulator configuration: shedding policy and the updateSIC ablation.
//!
//! The shedding policy itself is the workspace-wide registry
//! [`themis_core::shedder::PolicyKind`]; this module only holds the
//! simulator-specific switches around it.

use themis_core::prelude::*;

/// Simulator switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Shedding policy run by every node (the unified registry shared
    /// with the prototype engine).
    pub policy: PolicyKind,
    /// Whether the query coordinators disseminate result SIC values
    /// (`updateSIC`). Disabling reproduces the Figure-4 "without
    /// updateSIC" pathology: nodes fall back to their local accepted-SIC
    /// view.
    pub coordinator: bool,
    /// Record per-query result values (needed by the §7.1 correlation
    /// experiments; memory-heavy for large runs).
    pub record_results: bool,
    /// How often per-query SIC values are sampled for the report.
    pub sample_interval: TimeDelta,
    /// Record the full per-query SIC time series (for the dynamics
    /// experiment); means are always recorded.
    pub record_series: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: PolicyKind::BalanceSic,
            coordinator: true,
            record_results: false,
            sample_interval: TimeDelta::from_secs(1),
            record_series: false,
        }
    }
}

impl SimConfig {
    /// Default config with the given policy.
    pub fn with_policy(policy: PolicyKind) -> Self {
        SimConfig {
            policy,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SimConfig::default();
        assert_eq!(c.policy, PolicyKind::BalanceSic);
        assert!(c.coordinator);
        assert!(!c.record_results);
        let c2 = SimConfig::with_policy(PolicyKind::Random);
        assert_eq!(c2.policy, PolicyKind::Random);
    }
}
