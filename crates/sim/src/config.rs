//! Simulator configuration: shedding policy and the updateSIC ablation.

use themis_core::prelude::*;

/// Which tuple shedder nodes run (Algorithm 1 or a baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// The paper's BALANCE-SIC fair shedder (Algorithm 1).
    BalanceSic,
    /// Random shedding (the §7.2 baseline).
    Random,
    /// Drop-from-tail (bounded queue) baseline.
    Fifo,
    /// Admission-control baseline: lowest query ids are served to
    /// saturation, the rest starve (the node-local analogue of the
    /// throughput-maximising FIT LP of §7.5).
    Priority,
    /// Ablation: Algorithm 1 but admitting *lowest*-SIC batches first
    /// (inverts line 16's `max(xSIC)`).
    BalanceSicLowestFirst,
    /// Ablation: Algorithm 1 with arrival-order admission.
    BalanceSicFifoOrder,
}

impl ShedPolicy {
    /// Instantiates the shedder with a node-specific seed.
    pub fn build(&self, seed: u64) -> Box<dyn Shedder> {
        match self {
            ShedPolicy::BalanceSic => Box::new(BalanceSicShedder::new(seed)),
            ShedPolicy::Random => Box::new(RandomShedder::new(seed)),
            ShedPolicy::Fifo => Box::new(FifoShedder::new()),
            ShedPolicy::Priority => Box::new(PriorityShedder::new()),
            ShedPolicy::BalanceSicLowestFirst => {
                Box::new(BalanceSicShedder::with_order(seed, BatchOrder::LowestSicFirst))
            }
            ShedPolicy::BalanceSicFifoOrder => {
                Box::new(BalanceSicShedder::with_order(seed, BatchOrder::Fifo))
            }
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::BalanceSic => "balance-sic",
            ShedPolicy::Random => "random",
            ShedPolicy::Fifo => "fifo",
            ShedPolicy::Priority => "priority",
            ShedPolicy::BalanceSicLowestFirst => "balance-sic(lowest-first)",
            ShedPolicy::BalanceSicFifoOrder => "balance-sic(fifo-order)",
        }
    }
}

/// Simulator switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Shedding policy run by every node.
    pub policy: ShedPolicy,
    /// Whether the query coordinators disseminate result SIC values
    /// (`updateSIC`). Disabling reproduces the Figure-4 "without
    /// updateSIC" pathology: nodes fall back to their local accepted-SIC
    /// view.
    pub coordinator: bool,
    /// Record per-query result values (needed by the §7.1 correlation
    /// experiments; memory-heavy for large runs).
    pub record_results: bool,
    /// How often per-query SIC values are sampled for the report.
    pub sample_interval: TimeDelta,
    /// Record the full per-query SIC time series (for the dynamics
    /// experiment); means are always recorded.
    pub record_series: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: ShedPolicy::BalanceSic,
            coordinator: true,
            record_results: false,
            sample_interval: TimeDelta::from_secs(1),
            record_series: false,
        }
    }
}

impl SimConfig {
    /// Default config with the given policy.
    pub fn with_policy(policy: ShedPolicy) -> Self {
        SimConfig {
            policy,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_build() {
        for p in [
            ShedPolicy::BalanceSic,
            ShedPolicy::Random,
            ShedPolicy::Fifo,
            ShedPolicy::Priority,
            ShedPolicy::BalanceSicLowestFirst,
            ShedPolicy::BalanceSicFifoOrder,
        ] {
            let s = p.build(1);
            assert!(!s.name().is_empty());
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn defaults() {
        let c = SimConfig::default();
        assert_eq!(c.policy, ShedPolicy::BalanceSic);
        assert!(c.coordinator);
        assert!(!c.record_results);
        let c2 = SimConfig::with_policy(ShedPolicy::Random);
        assert_eq!(c2.policy, ShedPolicy::Random);
    }
}
