//! Simulator configuration: shedding policy and the updateSIC ablation.
//!
//! The shedding policy is a [`Policy`] handle from the workspace-wide
//! [`themis_core::shedder::ShedderRegistry`] (shared with the prototype
//! engine, so externally registered policies simulate too); this module
//! only holds the simulator-specific switches around it.

use themis_core::prelude::*;

/// Simulator switches.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Shedding policy run by every node (the unified registry shared
    /// with the prototype engine). Builtins convert from [`PolicyKind`]
    /// via `Into`; registered names resolve through
    /// [`themis_core::shedder::lookup_policy`].
    pub policy: Policy,
    /// Whether the query coordinators disseminate result SIC values
    /// (`updateSIC`). Disabling reproduces the Figure-4 "without
    /// updateSIC" pathology: nodes fall back to their local accepted-SIC
    /// view.
    pub coordinator: bool,
    /// Record per-query result values (needed by the §7.1 correlation
    /// experiments; memory-heavy for large runs).
    pub record_results: bool,
    /// How often per-query SIC values are sampled for the report.
    pub sample_interval: TimeDelta,
    /// Record the full per-query SIC time series (for the dynamics
    /// experiment); means are always recorded.
    pub record_series: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: Policy::default(),
            coordinator: true,
            record_results: false,
            sample_interval: TimeDelta::from_secs(1),
            record_series: false,
        }
    }
}

impl SimConfig {
    /// Default config with the given policy (a [`Policy`] handle or any
    /// [`PolicyKind`] builtin).
    pub fn with_policy(policy: impl Into<Policy>) -> Self {
        SimConfig {
            policy: policy.into(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SimConfig::default();
        assert_eq!(c.policy, PolicyKind::BalanceSic.into());
        assert!(c.coordinator);
        assert!(!c.record_results);
        let c2 = SimConfig::with_policy(PolicyKind::Random);
        assert_eq!(c2.policy.name(), "random");
    }

    #[test]
    fn accepts_registered_policy_handles() {
        let p = lookup_policy("fifo").unwrap();
        let c = SimConfig::with_policy(p);
        assert_eq!(c.policy.name(), "fifo");
    }
}
