//! Simulation reports: the per-query and per-node statistics every
//! evaluation figure is computed from.

use std::collections::HashMap;

use themis_core::prelude::*;

/// Final statistics of one query.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// The query.
    pub query: QueryId,
    /// Template name (Table 1 row) or declarative query name.
    pub template: String,
    /// Number of fragments.
    pub fragments: usize,
    /// Mean result SIC over all post-warm-up samples.
    pub mean_sic: f64,
    /// Samples taken.
    pub samples: usize,
}

/// Per-node counters.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Tuples that arrived in batches (before shedding).
    pub arrived_tuples: u64,
    /// Tuples admitted for processing.
    pub kept_tuples: u64,
    /// Tuples shed.
    pub shed_tuples: u64,
    /// Batches shed.
    pub shed_batches: u64,
    /// Shedder invocations while overloaded.
    pub shed_invocations: u64,
    /// SIC updates received from coordinators.
    pub sic_updates: u64,
}

/// One recorded result emission: the rows a query reported at a timestamp.
pub type ResultRecord = (Timestamp, Vec<Row>);

/// Complete output of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scenario label.
    pub scenario: String,
    /// Shedding policy used (registry name).
    pub policy: String,
    /// Per-query statistics, ordered by query id.
    pub per_query: Vec<QueryStats>,
    /// Fairness summary over the per-query mean SIC values — the Jain's
    /// index / std / mean series plotted in Figures 8-14.
    pub fairness: FairnessSummary,
    /// Per-node counters.
    pub nodes: Vec<NodeStats>,
    /// Total coordinator messages (30 B each, §7.6).
    pub coordinator_messages: u64,
    /// Result values per query (only when `record_results`).
    pub results: HashMap<QueryId, Vec<ResultRecord>>,
    /// Per-query SIC time series (only when `record_series`).
    pub sic_series: HashMap<QueryId, Vec<(Timestamp, f64)>>,
}

impl SimReport {
    /// Coordinator traffic in bytes (§7.6: 30 B per update message).
    pub fn coordinator_bytes(&self) -> u64 {
        self.coordinator_messages * SicUpdate::WIRE_BYTES as u64
    }

    /// Mean SIC over queries.
    pub fn mean_sic(&self) -> f64 {
        self.fairness.mean
    }

    /// Jain's fairness index over per-query mean SIC values.
    pub fn jain(&self) -> f64 {
        self.fairness.jain
    }

    /// Fraction of arrived tuples that were shed, across all nodes.
    pub fn shed_fraction(&self) -> f64 {
        let arrived: u64 = self.nodes.iter().map(|n| n.arrived_tuples).sum();
        let shed: u64 = self.nodes.iter().map(|n| n.shed_tuples).sum();
        if arrived == 0 {
            0.0
        } else {
            shed as f64 / arrived as f64
        }
    }

    /// Mean SIC of a single query, if present.
    pub fn query_sic(&self, q: QueryId) -> Option<f64> {
        self.per_query
            .iter()
            .find(|s| s.query == q)
            .map(|s| s.mean_sic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_helpers() {
        let report = SimReport {
            scenario: "t".into(),
            policy: "balance-sic".to_string(),
            per_query: vec![QueryStats {
                query: QueryId(0),
                template: "AVG".to_string(),
                fragments: 1,
                mean_sic: 0.5,
                samples: 10,
            }],
            fairness: FairnessSummary::from_sics(&[Sic(0.5)]),
            nodes: vec![NodeStats {
                arrived_tuples: 100,
                kept_tuples: 60,
                shed_tuples: 40,
                shed_batches: 4,
                shed_invocations: 2,
                sic_updates: 8,
            }],
            coordinator_messages: 10,
            results: HashMap::new(),
            sic_series: HashMap::new(),
        };
        assert_eq!(report.coordinator_bytes(), 300);
        assert_eq!(report.mean_sic(), 0.5);
        assert_eq!(report.jain(), 1.0);
        assert!((report.shed_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(report.query_sic(QueryId(0)), Some(0.5));
        assert_eq!(report.query_sic(QueryId(9)), None);
    }
}
