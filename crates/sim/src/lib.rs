//! # themis-sim
//!
//! A deterministic discrete-event simulator of a federated stream
//! processing system — this repo's substitute for the paper's Emulab
//! test-bed (Table 2; see DESIGN.md for the substitution argument).
//!
//! The simulation wires a [`themis_workloads::scenario::Scenario`] into:
//!
//! * [`node::SimNode`]s — input buffer, overload detector, online cost
//!   model and the configured tuple shedder (Figure 5 of the paper);
//! * links with configurable one-way latency (LAN 5 ms / WAN 50 ms);
//! * per-query coordinators disseminating result SIC values
//!   (`updateSIC`), with an ablation switch to disable them;
//! * a result-SIC tracker sampling every query's `qSIC` for the report.
//!
//! ```
//! use themis_core::prelude::*;
//! use themis_query::prelude::*;
//! use themis_workloads::prelude::*;
//! use themis_sim::prelude::*;
//!
//! let scenario = ScenarioBuilder::new("doc", 1)
//!     .nodes(2)
//!     .capacity_tps(200)
//!     .duration(TimeDelta::from_secs(10))
//!     .warmup(TimeDelta::from_secs(5))
//!     .add_queries(
//!         Template::Cov { fragments: 2 },
//!         4,
//!         SourceProfile::steady(40, 4, Dataset::Uniform),
//!     )
//!     .build()
//!     .unwrap();
//! let report = run_scenario(scenario, SimConfig::default());
//! assert_eq!(report.per_query.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod node;
pub mod report;
pub mod sim;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::SimConfig;
    pub use crate::node::{NodeOutput, RoutedBatch, SimNode};
    pub use crate::report::{NodeStats, QueryStats, SimReport};
    pub use crate::sim::{run_scenario, Simulation};
    pub use themis_core::shedder::PolicyKind;
}
