//! The discrete-event FSPS simulation: sources, links, nodes, coordinators.
//!
//! This is the repo's substitute for the paper's Emulab deployment
//! (Table 2). Every evaluation metric — per-query SIC values, Jain's
//! index, shed fractions, coordinator traffic — is a function of *which
//! tuples are shed where and when*, which the event-driven model captures:
//! sources emit batches on their schedule, links delay them, nodes run the
//! overload detector + shedder every shedding interval, and per-query
//! coordinators disseminate result SIC values (`updateSIC`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use themis_core::prelude::*;
use themis_query::prelude::*;
use themis_workloads::prelude::*;

use crate::config::SimConfig;
use crate::node::{NodeOutput, RoutedBatch, SimNode};
use crate::report::{NodeStats, QueryStats, SimReport};

/// Simulator events.
enum Event {
    /// A source's next batch is due.
    SourceEmit { driver: usize },
    /// A batch reaches a node.
    BatchArrival { node: usize, rb: RoutedBatch },
    /// A node's shedding interval fires.
    NodeTick { node: usize },
    /// All query coordinators disseminate result SIC values.
    CoordTick,
    /// A coordinator update reaches a node.
    SicArrival { node: usize, update: SicUpdate },
    /// Periodic metric sampling.
    Sample,
}

struct Queued {
    at: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Where a fragment's output goes.
#[derive(Debug, Clone, Copy)]
enum FragRoute {
    /// This fragment emits the query result.
    Result,
    /// Output feeds `fragment` on `node`.
    To { node: usize, fragment: usize },
}

/// A fully wired simulation, ready to run.
pub struct Simulation {
    scenario: Scenario,
    config: SimConfig,
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    nodes: Vec<SimNode>,
    drivers: Vec<SourceDriver>,
    /// source id -> (node, query, fragment).
    source_route: HashMap<SourceId, (usize, QueryId, usize)>,
    frag_route: HashMap<(QueryId, usize), FragRoute>,
    coordinators: Vec<QueryCoordinator>,
    tracker: ResultSicTracker,
    sic_samples: HashMap<QueryId, Vec<f64>>,
    sic_series: HashMap<QueryId, Vec<(Timestamp, f64)>>,
    results: HashMap<QueryId, Vec<(Timestamp, Vec<Row>)>>,
    end: Timestamp,
}

impl Simulation {
    /// Wires up the scenario.
    pub fn new(scenario: Scenario, config: SimConfig) -> Self {
        let end = Timestamp::ZERO + scenario.warmup + scenario.duration;
        let mut nodes: Vec<SimNode> = (0..scenario.n_nodes)
            .map(|i| {
                SimNode::new(
                    NodeId(i as u32),
                    scenario.node_capacity_tps[i],
                    scenario.shedding_interval,
                    scenario.stw,
                    &config,
                    scenario.seed ^ (0xA5A5_0000 + i as u64),
                )
            })
            .collect();

        let mut source_route = HashMap::new();
        let mut frag_route = HashMap::new();
        let mut drivers = Vec::new();
        let mut coordinators = Vec::new();
        for q in &scenario.queries {
            for (fi, frag) in q.fragments.iter().enumerate() {
                let node = scenario
                    .deployment
                    .node_of(q.id, fi)
                    .expect("validated deployment")
                    .index();
                nodes[node].deploy(q, fi);
                for b in &frag.sources {
                    source_route.insert(b.source, (node, q.id, fi));
                }
                let route = if fi == q.result_fragment {
                    FragRoute::Result
                } else if let Some(down) = q.downstream_of(fi) {
                    let dnode = scenario
                        .deployment
                        .node_of(q.id, down)
                        .expect("validated deployment")
                        .index();
                    FragRoute::To {
                        node: dnode,
                        fragment: down,
                    }
                } else {
                    // Dangling non-result fragment: results vanish.
                    FragRoute::Result
                };
                frag_route.insert((q.id, fi), route);
            }
            for s in &q.sources {
                let profile = scenario.profiles[&s.id];
                drivers.push(SourceDriver::new(
                    q.id,
                    s,
                    profile,
                    scenario.seed ^ (s.id.0 as u64).wrapping_mul(0x9E37_79B9),
                ));
            }
            coordinators.push(QueryCoordinator::new(
                q.id,
                scenario.deployment.hosts_of(q.id),
                scenario.shedding_interval,
            ));
        }

        let tracker = ResultSicTracker::new(scenario.stw);
        let mut sim = Simulation {
            config,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes,
            drivers,
            source_route,
            frag_route,
            coordinators,
            tracker,
            sic_samples: scenario
                .queries
                .iter()
                .map(|q| (q.id, Vec::new()))
                .collect(),
            sic_series: HashMap::new(),
            results: HashMap::new(),
            end,
            scenario,
        };

        // Seed the event queue; sources of late-arriving queries start
        // emitting at the query's arrival time.
        for d in 0..sim.drivers.len() {
            let arrival = sim.scenario.arrival_of(sim.drivers[d].query);
            sim.drivers[d].start_at(arrival);
            let at = sim.drivers[d].next_time();
            sim.push(at, Event::SourceEmit { driver: d });
        }
        let interval = sim.scenario.shedding_interval;
        for n in 0..sim.nodes.len() {
            sim.push(Timestamp::ZERO + interval, Event::NodeTick { node: n });
        }
        if sim.config.coordinator {
            sim.push(Timestamp::ZERO + interval, Event::CoordTick);
        }
        // Samples are de-phased off the node-tick grid so they do not alias
        // with the 1 Hz result emissions: results are recorded at node
        // ticks (multiples of the shedding interval, offset by window
        // grace), so sampling exactly on those instants would consistently
        // miss the newest record while the oldest just left the STW ring.
        let sample_at = Timestamp::ZERO
            + sim.scenario.warmup
            + TimeDelta::from_micros(
                sim.config.sample_interval.as_micros() / 2
                    + sim.scenario.shedding_interval.as_micros() / 2
                    + 1_000,
            );
        sim.push(sample_at, Event::Sample);
        sim
    }

    fn push(&mut self, at: Timestamp, ev: Event) {
        self.seq += 1;
        self.queue.push(Reverse(Queued {
            at: at.as_micros(),
            seq: self.seq,
            ev,
        }));
    }

    /// Runs to completion and produces the report.
    pub fn run(mut self) -> SimReport {
        let latency = self.scenario.link_latency;
        let interval = self.scenario.shedding_interval;
        while let Some(Reverse(q)) = self.queue.pop() {
            let now = Timestamp(q.at);
            if now > self.end {
                break;
            }
            match q.ev {
                Event::SourceEmit { driver } => {
                    let batch = self.drivers[driver].emit();
                    let src = self.drivers[driver].source;
                    // Quiet rate-pattern batches can be empty: nothing to
                    // route (the engine's pump skips these too).
                    if batch.is_empty() {
                        // fall through to reschedule below
                    } else if let Some(&(node, query, fragment)) = self.source_route.get(&src) {
                        let rb = RoutedBatch {
                            query,
                            fragment,
                            ingress: Ingress::Source(src),
                            batch,
                        };
                        self.push(now + latency, Event::BatchArrival { node, rb });
                    }
                    let next = self.drivers[driver].next_time();
                    let departed = self
                        .scenario
                        .departure_of(self.drivers[driver].query)
                        .map(|d| next >= d)
                        .unwrap_or(false);
                    if next <= self.end && !departed {
                        self.push(next, Event::SourceEmit { driver });
                    }
                }
                Event::BatchArrival { node, rb } => {
                    self.nodes[node].on_arrival(now, rb);
                }
                Event::NodeTick { node } => {
                    let outputs = self.nodes[node].tick(now);
                    for out in outputs {
                        self.route_output(now, out);
                    }
                    let next = now + interval;
                    if next <= self.end {
                        self.push(next, Event::NodeTick { node });
                    }
                }
                Event::CoordTick => {
                    for c in 0..self.coordinators.len() {
                        let query = self.coordinators[c].query();
                        let sic = self.tracker.query_sic(now, query);
                        self.coordinators[c].on_result_sic(sic);
                        for update in self.coordinators[c].tick(now) {
                            self.push(
                                now + latency,
                                Event::SicArrival {
                                    node: update.node.index(),
                                    update,
                                },
                            );
                        }
                    }
                    let next = now + interval;
                    if next <= self.end {
                        self.push(next, Event::CoordTick);
                    }
                }
                Event::SicArrival { node, update } => {
                    self.nodes[node].on_sic_update(&update);
                }
                Event::Sample => {
                    if now >= Timestamp::ZERO + self.scenario.warmup {
                        for (q, series) in self.sic_samples.iter_mut() {
                            // Mean statistics only cover a query's active,
                            // converged life: from one STW after arrival to
                            // its departure.
                            let settled = self.scenario.arrival_of(*q) + self.scenario.stw.window;
                            let active = now >= settled
                                && self
                                    .scenario
                                    .departure_of(*q)
                                    .map(|d| now < d)
                                    .unwrap_or(true);
                            if active {
                                series.push(self.tracker.query_sic(now, *q).value());
                            }
                        }
                    }
                    if self.config.record_series {
                        for q in self.scenario.queries.iter().map(|q| q.id) {
                            let v = self.tracker.query_sic(now, q).value();
                            self.sic_series.entry(q).or_default().push((now, v));
                        }
                    }
                    let next = now + self.config.sample_interval;
                    if next <= self.end {
                        self.push(next, Event::Sample);
                    }
                }
            }
        }
        self.finish()
    }

    fn route_output(&mut self, now: Timestamp, out: NodeOutput) {
        let NodeOutput::FragmentOutput {
            query,
            fragment,
            at,
            batch,
        } = out;
        match self.frag_route.get(&(query, fragment)) {
            Some(FragRoute::Result) => {
                self.tracker.record(now, query, batch.sic_total());
                if self.config.record_results {
                    // Result rows materialise at the edge only.
                    self.results
                        .entry(query)
                        .or_default()
                        .push((at, batch.to_rows()));
                }
            }
            Some(&FragRoute::To { node, fragment: df }) => {
                let rb = RoutedBatch {
                    query,
                    fragment: df,
                    ingress: Ingress::Upstream(fragment),
                    // Wrap the emission's columns directly — no re-copy.
                    batch: Batch::from_data(query, at, batch),
                };
                self.push(
                    now + self.scenario.link_latency,
                    Event::BatchArrival { node, rb },
                );
            }
            None => {}
        }
    }

    fn finish(self) -> SimReport {
        let mut per_query: Vec<QueryStats> = self
            .scenario
            .queries
            .iter()
            .map(|q| {
                let samples = &self.sic_samples[&q.id];
                let mean = if samples.is_empty() {
                    0.0
                } else {
                    samples.iter().sum::<f64>() / samples.len() as f64
                };
                QueryStats {
                    query: q.id,
                    template: q.template.clone(),
                    fragments: q.n_fragments(),
                    mean_sic: mean,
                    samples: samples.len(),
                }
            })
            .collect();
        per_query.sort_by_key(|s| s.query);
        let sics: Vec<Sic> = per_query.iter().map(|s| Sic(s.mean_sic)).collect();
        let fairness = FairnessSummary::from_sics(&sics);
        let nodes: Vec<NodeStats> = self.nodes.iter().map(|n| n.stats.clone()).collect();
        let coordinator_messages = self.coordinators.iter().map(|c| c.messages_sent()).sum();
        SimReport {
            scenario: self.scenario.name.clone(),
            policy: self.config.policy.name().to_string(),
            per_query,
            fairness,
            nodes,
            coordinator_messages,
            results: self.results,
            sic_series: self.sic_series,
        }
    }
}

/// Convenience: wires and runs in one call.
pub fn run_scenario(scenario: Scenario, config: SimConfig) -> SimReport {
    Simulation::new(scenario, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario(capacity_tps: u32, seed: u64) -> Scenario {
        ScenarioBuilder::new("tiny", seed)
            .nodes(2)
            .capacity_tps(capacity_tps)
            .duration(TimeDelta::from_secs(20))
            .warmup(TimeDelta::from_secs(8))
            .stw_window(TimeDelta::from_secs(4))
            .add_queries(
                Template::Cov { fragments: 2 },
                6,
                SourceProfile::steady(40, 4, Dataset::Uniform),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn underloaded_run_reaches_perfect_sic() {
        // Capacity far above demand: every query should sit near SIC = 1.
        let report = run_scenario(tiny_scenario(100_000, 1), SimConfig::default());
        assert_eq!(report.per_query.len(), 6);
        for q in &report.per_query {
            assert!(
                q.mean_sic > 0.9,
                "query {} SIC {} (expected ~1)",
                q.query,
                q.mean_sic
            );
            assert!(q.samples > 5);
        }
        assert!(report.jain() > 0.99);
        assert_eq!(report.shed_fraction(), 0.0);
    }

    #[test]
    fn overloaded_run_sheds_and_stays_fair() {
        // Demand per node: 6 queries x 2 sources x 40 t/s / 2 nodes
        // = 240 t/s; capacity 120 t/s -> 2x overload.
        let report = run_scenario(tiny_scenario(120, 2), SimConfig::default());
        assert!(
            report.shed_fraction() > 0.2,
            "shed {}",
            report.shed_fraction()
        );
        let mean = report.mean_sic();
        assert!(
            mean > 0.2 && mean < 0.95,
            "mean SIC should be degraded: {mean}"
        );
        assert!(report.jain() > 0.85, "jain {}", report.jain());
        assert!(report.coordinator_messages > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_scenario(tiny_scenario(120, 3), SimConfig::default());
        let b = run_scenario(tiny_scenario(120, 3), SimConfig::default());
        let sa: Vec<f64> = a.per_query.iter().map(|q| q.mean_sic).collect();
        let sb: Vec<f64> = b.per_query.iter().map(|q| q.mean_sic).collect();
        assert_eq!(sa, sb, "same seed must reproduce exactly");
        assert_eq!(a.nodes[0].shed_tuples, b.nodes[0].shed_tuples);
    }

    #[test]
    fn seeds_change_outcomes() {
        let a = run_scenario(tiny_scenario(120, 4), SimConfig::default());
        let b = run_scenario(tiny_scenario(120, 5), SimConfig::default());
        let sa: Vec<f64> = a.per_query.iter().map(|q| q.mean_sic).collect();
        let sb: Vec<f64> = b.per_query.iter().map(|q| q.mean_sic).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn balance_sic_fairer_than_random_under_overload() {
        let balance = run_scenario(tiny_scenario(120, 6), SimConfig::default());
        let random = run_scenario(
            tiny_scenario(120, 6),
            SimConfig::with_policy(PolicyKind::Random),
        );
        assert!(
            balance.jain() >= random.jain() - 0.02,
            "balance {} vs random {}",
            balance.jain(),
            random.jain()
        );
    }

    #[test]
    fn record_results_collects_rows() {
        let cfg = SimConfig {
            record_results: true,
            ..Default::default()
        };
        let report = run_scenario(tiny_scenario(100_000, 7), cfg);
        assert!(!report.results.is_empty());
        let any = report.results.values().next().unwrap();
        assert!(!any.is_empty());
        // COV emits single-value rows.
        assert_eq!(any[0].1[0].len(), 1);
    }

    #[test]
    fn coordinator_traffic_accounted() {
        let report = run_scenario(tiny_scenario(120, 8), SimConfig::default());
        assert_eq!(report.coordinator_bytes(), report.coordinator_messages * 30);
        // 6 queries x 2 hosts each, one update per interval.
        assert!(report.coordinator_messages > 100);
    }
}
