//! The per-query coordinator (§6 "SIC maintenance"):
//!
//! "The dissemination of query result SIC values to nodes that host query
//! fragments (i.e. `updateSIC()` in Algorithm 1) is performed by a
//! logically-centralised query coordinator component."
//!
//! The coordinator is a pure state machine: the hosting runtime (simulator or
//! engine) feeds it result-SIC observations from the root fragment and calls
//! [`QueryCoordinator::tick`] at the update interval (250 ms in §7.6,
//! matching the shedding interval); it returns the `SicUpdate` messages to
//! deliver to every node hosting a fragment of the query. Each message costs
//! 30 bytes on the wire in the prototype (§7.6).

use std::collections::HashMap;

use crate::ids::{NodeId, QueryId};
use crate::sic::Sic;
use crate::time::{TimeDelta, Timestamp};

/// A result-SIC dissemination message from a coordinator to one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SicUpdate {
    /// The query whose result SIC is being disseminated.
    pub query: QueryId,
    /// Destination node (hosts at least one fragment of the query).
    pub node: NodeId,
    /// The query's current result SIC value.
    pub sic: Sic,
}

impl SicUpdate {
    /// Wire size of one update message in the paper's prototype (§7.6).
    pub const WIRE_BYTES: usize = 30;
}

/// Coordinator for a single query's lifecycle: knows which nodes host
/// fragments, tracks the latest observed result SIC and emits periodic
/// updates.
#[derive(Debug, Clone)]
pub struct QueryCoordinator {
    query: QueryId,
    hosts: Vec<NodeId>,
    update_interval: TimeDelta,
    latest: Sic,
    last_update: Option<Timestamp>,
    messages_sent: u64,
}

impl QueryCoordinator {
    /// Creates a coordinator for `query` whose fragments run on `hosts`.
    pub fn new(query: QueryId, mut hosts: Vec<NodeId>, update_interval: TimeDelta) -> Self {
        hosts.sort_unstable();
        hosts.dedup();
        QueryCoordinator {
            query,
            hosts,
            update_interval,
            latest: Sic::ZERO,
            last_update: None,
            messages_sent: 0,
        }
    }

    /// The query managed by this coordinator.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// Nodes hosting fragments of the query.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Records a fresh result-SIC observation from the root fragment.
    pub fn on_result_sic(&mut self, sic: Sic) {
        self.latest = sic;
    }

    /// Latest observed result SIC.
    pub fn latest(&self) -> Sic {
        self.latest
    }

    /// Called by the runtime clock; when one update interval has elapsed the
    /// coordinator emits one `SicUpdate` per hosting node.
    pub fn tick(&mut self, now: Timestamp) -> Vec<SicUpdate> {
        let due = match self.last_update {
            None => true,
            Some(prev) => now.since(prev) >= self.update_interval,
        };
        if !due {
            return Vec::new();
        }
        self.last_update = Some(now);
        self.messages_sent += self.hosts.len() as u64;
        self.hosts
            .iter()
            .map(|&node| SicUpdate {
                query: self.query,
                node,
                sic: self.latest,
            })
            .collect()
    }

    /// Total messages emitted so far; `× SicUpdate::WIRE_BYTES` gives the
    /// coordination traffic reported in §7.6.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total coordination bytes emitted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.messages_sent * SicUpdate::WIRE_BYTES as u64
    }
}

/// A node's local view of the latest coordinator-disseminated result SIC per
/// hosted query. The shedder reads from this table when projecting query
/// states (Algorithm 1's `updateSIC` input).
#[derive(Debug, Clone, Default)]
pub struct SicTable {
    values: HashMap<QueryId, Sic>,
}

impl SicTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a received update.
    pub fn apply(&mut self, update: &SicUpdate) {
        self.values.insert(update.query, update.sic);
    }

    /// Directly sets the value (used by single-node deployments where the
    /// tracker is local and no messages are needed).
    pub fn set(&mut self, query: QueryId, sic: Sic) {
        self.values.insert(query, sic);
    }

    /// The latest known result SIC for `query`; zero when never updated
    /// (a query that produced no results yet is maximally degraded).
    pub fn get(&self, query: QueryId) -> Sic {
        self.values.get(&query).copied().unwrap_or(Sic::ZERO)
    }

    /// Forgets `query` (its coordinator departed — runtime query churn);
    /// returns the last known value, if any.
    pub fn remove(&mut self, query: QueryId) -> Option<Sic> {
        self.values.remove(&query)
    }

    /// Number of tracked queries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no query has been updated yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over all `(query, sic)` entries (checkpointing reads the
    /// whole table; iteration order is unspecified).
    pub fn entries(&self) -> impl Iterator<Item = (QueryId, Sic)> + '_ {
        self.values.iter().map(|(&q, &s)| (q, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_dedups_hosts() {
        let c = QueryCoordinator::new(
            QueryId(0),
            vec![NodeId(2), NodeId(1), NodeId(2)],
            TimeDelta::from_millis(250),
        );
        assert_eq!(c.hosts(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn tick_respects_interval() {
        let mut c = QueryCoordinator::new(
            QueryId(3),
            vec![NodeId(0), NodeId(1)],
            TimeDelta::from_millis(250),
        );
        c.on_result_sic(Sic(0.4));
        let first = c.tick(Timestamp::from_millis(0));
        assert_eq!(first.len(), 2);
        assert!(first
            .iter()
            .all(|u| u.sic == Sic(0.4) && u.query == QueryId(3)));
        // Too early: nothing.
        assert!(c.tick(Timestamp::from_millis(100)).is_empty());
        // Due again.
        c.on_result_sic(Sic(0.6));
        let second = c.tick(Timestamp::from_millis(250));
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|u| u.sic == Sic(0.6)));
        assert_eq!(c.messages_sent(), 4);
        assert_eq!(c.bytes_sent(), 4 * 30);
    }

    #[test]
    fn sic_table_roundtrip() {
        let mut t = SicTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(QueryId(5)), Sic::ZERO);
        t.apply(&SicUpdate {
            query: QueryId(5),
            node: NodeId(0),
            sic: Sic(0.7),
        });
        assert_eq!(t.get(QueryId(5)), Sic(0.7));
        t.set(QueryId(5), Sic(0.2));
        assert_eq!(t.get(QueryId(5)), Sic(0.2));
        assert_eq!(t.len(), 1);
    }
}
