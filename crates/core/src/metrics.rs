//! Result-quality metrics used by the SIC-correlation experiments (§7.1):
//! mean absolute (relative) error, the normalised Kendall distance between
//! top-k lists, and sample statistics for covariance streams.

/// Mean absolute relative error between perfect and degraded result series:
///
/// `( Σ |(degraded_i - perfect_i) / perfect_i| ) / n`
///
/// exactly as defined in §7.1. Pairs whose perfect value is zero fall back to
/// the absolute difference (the relative error is undefined there).
/// Returns 0 for empty input.
pub fn mean_absolute_error(perfect: &[f64], degraded: &[f64]) -> f64 {
    let n = perfect.len().min(degraded.len());
    if n == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n {
        let p = perfect[i];
        let d = degraded[i];
        sum += if p == 0.0 {
            (d - p).abs()
        } else {
            ((d - p) / p).abs()
        };
    }
    sum / n as f64
}

/// Normalised Kendall distance between two top-k lists (Fagin et al. \[18\],
/// used for the TOP-5 correlation in §7.1).
///
/// Counts pairwise disagreements over the union of elements — both inverted
/// pairs and pairs broken by elements present in only one list — and divides
/// by the maximum possible count so the result lies in `[0, 1]`
/// (`0` identical, `1` maximally different).
///
/// This is the `K^(p)` distance with the optimistic penalty `p = 1/2` for
/// pairs where both elements miss from one of the lists, a standard choice
/// for comparing partial rankings.
pub fn kendall_top_k(perfect: &[i64], degraded: &[i64]) -> f64 {
    if perfect.is_empty() && degraded.is_empty() {
        return 0.0;
    }
    let pos = |list: &[i64], x: i64| -> Option<usize> { list.iter().position(|&v| v == x) };
    // Union of elements, preserving first-seen order.
    let mut union: Vec<i64> = Vec::with_capacity(perfect.len() + degraded.len());
    for &x in perfect.iter().chain(degraded.iter()) {
        if !union.contains(&x) {
            union.push(x);
        }
    }
    let mut penalty = 0.0;
    let mut max_penalty = 0.0;
    for i in 0..union.len() {
        for j in (i + 1)..union.len() {
            let (a, b) = (union[i], union[j]);
            let pa = pos(perfect, a);
            let pb = pos(perfect, b);
            let da = pos(degraded, a);
            let db = pos(degraded, b);
            max_penalty += 1.0;
            penalty += match ((pa, pb), (da, db)) {
                // Both pairs ranked in both lists: 1 if inverted.
                ((Some(x1), Some(y1)), (Some(x2), Some(y2))) => {
                    if (x1 < y1) != (x2 < y2) {
                        1.0
                    } else {
                        0.0
                    }
                }
                // One element missing from one list: disagreement iff the
                // present element is ranked below the missing one's partner.
                ((Some(x1), Some(y1)), (Some(_), None)) => {
                    // b missing from degraded: ordered pair (a before b)
                    // agrees iff perfect also ranks a before b.
                    if x1 < y1 {
                        0.0
                    } else {
                        1.0
                    }
                }
                ((Some(x1), Some(y1)), (None, Some(_))) => {
                    if y1 < x1 {
                        0.0
                    } else {
                        1.0
                    }
                }
                ((Some(_), None), (Some(x2), Some(y2))) => {
                    if x2 < y2 {
                        0.0
                    } else {
                        1.0
                    }
                }
                ((None, Some(_)), (Some(x2), Some(y2))) => {
                    if y2 < x2 {
                        0.0
                    } else {
                        1.0
                    }
                }
                // Both elements appear in only one list each: optimistic 1/2.
                _ => 0.5,
            };
        }
    }
    if max_penalty == 0.0 {
        0.0
    } else {
        penalty / max_penalty
    }
}

/// Sample covariance of two equally long series; 0 for fewer than 2 samples.
pub fn sample_covariance(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    if n < 2 {
        return 0.0;
    }
    let mx = x[..n].iter().sum::<f64>() / n as f64;
    let my = y[..n].iter().sum::<f64>() / n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        acc += (x[i] - mx) * (y[i] - my);
    }
    acc / (n as f64 - 1.0)
}

/// Standard deviation of a series of sampled values around a reference value
/// (used for the COV correlation: "we can estimate the deviation of the
/// values from the perfect value through the standard deviation", §7.1).
pub fn std_around(values: &[f64], reference: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let var = values
        .iter()
        .map(|v| (v - reference) * (v - reference))
        .sum::<f64>()
        / values.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basic() {
        // 10% relative error everywhere.
        let p = [10.0, 20.0, 40.0];
        let d = [11.0, 18.0, 44.0];
        assert!((mean_absolute_error(&p, &d) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mae_zero_reference_uses_absolute() {
        assert_eq!(mean_absolute_error(&[0.0], &[0.5]), 0.5);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    fn mae_identical_is_zero() {
        let p = [1.0, 2.0, 3.0];
        assert_eq!(mean_absolute_error(&p, &p), 0.0);
    }

    #[test]
    fn kendall_identical_lists() {
        assert_eq!(kendall_top_k(&[1, 2, 3, 4, 5], &[1, 2, 3, 4, 5]), 0.0);
    }

    #[test]
    fn kendall_reversed_lists() {
        let d = kendall_top_k(&[1, 2, 3], &[3, 2, 1]);
        assert!((d - 1.0).abs() < 1e-12, "reversal should be maximal: {d}");
    }

    #[test]
    fn kendall_disjoint_lists() {
        // Entirely different elements: dominated by the 1/2-penalty pairs,
        // plus full penalties for same-list pairs ordered inconsistently.
        let d = kendall_top_k(&[1, 2], &[3, 4]);
        assert!(d > 0.0 && d <= 1.0);
    }

    #[test]
    fn kendall_single_swap() {
        let d = kendall_top_k(&[1, 2, 3], &[2, 1, 3]);
        // One inverted pair out of three.
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_empty() {
        assert_eq!(kendall_top_k(&[], &[]), 0.0);
    }

    #[test]
    fn kendall_one_missing_element() {
        // degraded misses 3, has 4 instead.
        let d = kendall_top_k(&[1, 2, 3], &[1, 2, 4]);
        assert!(d > 0.0 && d < 0.5, "small perturbation, got {d}");
    }

    #[test]
    fn covariance_of_correlated_series() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let c = sample_covariance(&x, &y);
        assert!((c - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(sample_covariance(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn std_around_reference() {
        assert_eq!(std_around(&[], 5.0), 0.0);
        assert_eq!(std_around(&[5.0, 5.0], 5.0), 0.0);
        assert!((std_around(&[4.0, 6.0], 5.0) - 1.0).abs() < 1e-12);
    }
}
