//! Tuples and batches — the data model of §3 plus the batch framing of §6.
//!
//! A tuple is `(τ, SIC, V)`: logical timestamp, SIC meta-data and payload.
//! Operators that emit several tuples atomically group them into a *batch*
//! with a single header carrying the query id, the aggregate SIC value and a
//! creation timestamp; the tuple shedder admits or discards whole batches.
//!
//! Since the columnar refactor, a [`Batch`] is a [`BatchHeader`] plus a
//! [`TupleBatch`]: the payload lives in
//! contiguous timestamp/SIC/value columns rather than a `Vec<Tuple>`, so
//! moving a batch through the shedder and into operator windows never
//! touches the allocator per tuple. The owning [`Tuple`] struct remains
//! the edge representation (source construction, result reporting,
//! tests).

use crate::batch::{TupleBatch, TupleRef};
use crate::ids::{QueryId, SourceId};
use crate::sic::Sic;
use crate::time::Timestamp;
use crate::value::Row;

/// One stream tuple: `(τ, SIC, V)` per the paper's data model.
///
/// This is the *owning* row representation used at the edges; hot paths
/// move [`TupleBatch`] columns and borrow rows as
/// [`TupleRef`]s instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Logical timestamp of generation (by a source or by an operator).
    pub ts: Timestamp,
    /// Source information content carried by this tuple.
    pub sic: Sic,
    /// Payload values according to the tuple's schema.
    pub values: Row,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(ts: Timestamp, sic: Sic, values: Row) -> Self {
        Tuple { ts, sic, values }
    }

    /// Convenience constructor for single-valued measurement tuples.
    pub fn measurement(ts: Timestamp, sic: Sic, v: impl Into<crate::value::Value>) -> Self {
        Tuple {
            ts,
            sic,
            values: vec![v.into()],
        }
    }

    /// Numeric view of field `i` (panics if out of range).
    pub fn f64(&self, i: usize) -> f64 {
        self.values[i].as_f64()
    }

    /// Integer view of field `i` (panics if out of range).
    pub fn i64(&self, i: usize) -> i64 {
        self.values[i].as_i64()
    }
}

/// The per-batch header of §6 ("SIC maintenance"): query id, aggregate SIC
/// value and a creation timestamp. In the prototype this header costs 10
/// bytes on the wire; here it is precomputed metadata for the shedder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchHeader {
    /// The query these tuples belong to.
    pub query: QueryId,
    /// Sum of the SIC values of the tuples in the batch.
    pub sic: Sic,
    /// Creation time of the batch (source emission or operator output time).
    pub created: Timestamp,
    /// Source that emitted the batch, when it is a source batch. Derived
    /// batches produced by operators carry `None`.
    pub source: Option<SourceId>,
}

/// A sequence of tuples moved and shed as a unit: a [`BatchHeader`] over a
/// columnar [`TupleBatch`] payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    header: BatchHeader,
    data: TupleBatch,
}

impl Batch {
    /// Builds a batch, computing the header SIC as the sum of tuple SICs.
    pub fn new(query: QueryId, created: Timestamp, tuples: Vec<Tuple>) -> Self {
        Batch::from_data(query, created, TupleBatch::from_tuples(tuples))
    }

    /// Builds a batch directly over columnar data (no per-tuple work).
    pub fn from_data(query: QueryId, created: Timestamp, data: TupleBatch) -> Self {
        Batch {
            header: BatchHeader {
                query,
                sic: data.sic_total(),
                created,
                source: None,
            },
            data,
        }
    }

    /// Builds a source batch, recording the emitting source.
    pub fn from_source(
        query: QueryId,
        source: SourceId,
        created: Timestamp,
        tuples: Vec<Tuple>,
    ) -> Self {
        Batch::from_source_data(query, source, created, TupleBatch::from_tuples(tuples))
    }

    /// Builds a source batch directly over columnar data — the typed-column
    /// construction path used by source drivers, which append native column
    /// values against the query's declared schema instead of materialising
    /// owning tuples.
    pub fn from_source_data(
        query: QueryId,
        source: SourceId,
        created: Timestamp,
        data: TupleBatch,
    ) -> Self {
        let mut b = Batch::from_data(query, created, data);
        b.header.source = Some(source);
        b
    }

    /// The batch header.
    #[inline]
    pub fn header(&self) -> &BatchHeader {
        &self.header
    }

    /// Query id from the header.
    #[inline]
    pub fn query(&self) -> QueryId {
        self.header.query
    }

    /// Aggregate SIC value from the header.
    #[inline]
    pub fn sic(&self) -> Sic {
        self.header.sic
    }

    /// Creation timestamp from the header.
    #[inline]
    pub fn created(&self) -> Timestamp {
        self.header.created
    }

    /// Emitting source, if this is a source batch.
    #[inline]
    pub fn source(&self) -> Option<SourceId> {
        self.header.source
    }

    /// The columnar payload.
    #[inline]
    pub fn data(&self) -> &TupleBatch {
        &self.data
    }

    /// Consumes the batch, returning the columnar payload (the hot-path
    /// hand-off into operator windows — a move, not a copy).
    #[inline]
    pub fn into_data(self) -> TupleBatch {
        self.data
    }

    /// Iterates the live rows as borrowed `(τ, SIC, V)` views.
    pub fn iter(&self) -> impl Iterator<Item = TupleRef<'_>> + Clone {
        self.data.iter()
    }

    /// Number of live tuples; the shedder counts capacity in tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the batch carries no live tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Materialises the live rows as owning tuples (edge/test use).
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.data.into_tuples()
    }

    /// Re-stamps the SIC values of all tuples uniformly so the batch carries
    /// `per_tuple` SIC each; used when the STW assigner re-evaluates source
    /// rates per slide (§6 "SIC maintenance"). On the columnar payload this
    /// is one contiguous fill of the SIC column.
    pub fn assign_uniform_sic(&mut self, per_tuple: Sic) {
        self.data.set_uniform_sic(per_tuple);
        self.header.sic = Sic(per_tuple.value() * self.data.len() as f64);
    }

    /// Size in bytes of the wire header as implemented in the paper's
    /// prototype (§7.6): SIC value + query id + timestamp packed in 10 bytes.
    pub const WIRE_HEADER_BYTES: usize = 10;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(ts: u64, sic: f64, v: f64) -> Tuple {
        Tuple::measurement(Timestamp(ts), Sic(sic), v)
    }

    #[test]
    fn header_sums_tuple_sics() {
        let b = Batch::new(
            QueryId(1),
            Timestamp(5),
            vec![t(1, 0.125, 10.0), t(2, 0.125, 11.0), t(3, 0.25, 12.0)],
        );
        assert_eq!(b.query(), QueryId(1));
        assert!((b.sic().value() - 0.5).abs() < 1e-12);
        assert_eq!(b.len(), 3);
        assert_eq!(b.created(), Timestamp(5));
        assert_eq!(b.source(), None);
    }

    #[test]
    fn source_batches_record_source() {
        let b = Batch::from_source(QueryId(0), SourceId(7), Timestamp(1), vec![t(1, 0.1, 1.0)]);
        assert_eq!(b.source(), Some(SourceId(7)));
    }

    #[test]
    fn uniform_sic_restamping() {
        let mut b = Batch::new(
            QueryId(0),
            Timestamp(0),
            vec![t(0, 0.0, 1.0), t(0, 0.0, 2.0)],
        );
        assert_eq!(b.sic(), Sic::ZERO);
        b.assign_uniform_sic(Sic(0.05));
        assert!((b.sic().value() - 0.1).abs() < 1e-12);
        assert!(b.iter().all(|t| t.sic == Sic(0.05)));
    }

    #[test]
    fn tuple_accessors() {
        let tu = Tuple::new(Timestamp(9), Sic(0.2), vec![Value::I64(4), Value::F64(2.5)]);
        assert_eq!(tu.i64(0), 4);
        assert_eq!(tu.f64(1), 2.5);
    }

    #[test]
    fn empty_batch() {
        let b = Batch::new(QueryId(0), Timestamp(0), vec![]);
        assert!(b.is_empty());
        assert_eq!(b.sic(), Sic::ZERO);
    }

    #[test]
    fn columnar_round_trip_preserves_rows() {
        let tuples = vec![t(1, 0.1, 1.0), t(2, 0.2, 2.0)];
        let b = Batch::new(QueryId(0), Timestamp(2), tuples.clone());
        assert_eq!(b.data().width(), 1);
        assert_eq!(b.into_tuples(), tuples);
    }
}
