//! Declared tuple schemas and typed column storage.
//!
//! THEMIS treats query logic as a black box (§4), but its *evaluation*
//! workloads (Table 1) all move rows with a small, fixed shape —
//! `[value]` or `[key, value]`. When a query declares that shape as a
//! [`Schema`] up front, the hot path can store each field as a
//! contiguous **native column** ([`Column`]: `Vec<f64>` / `Vec<i64>` /
//! a word-packed bitset) instead of the dynamically-typed [`Value`]
//! arena, removing the per-element enum match from every aggregate read
//! and letting slice kernels auto-vectorize.
//!
//! A [`Schema`] is an ordered list of `field name →` [`FieldType`]
//! entries, shared cheaply across batches through an [`Arc`]. Query
//! templates declare one schema per query; sources build typed batches
//! against it, and every window slice and pane hand-off preserves it.

use std::fmt;
use std::sync::Arc;

use crate::bits::BitVec;
use crate::value::Value;

/// The native type of one schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// 64-bit float (sensor measurements, aggregates).
    F64,
    /// 64-bit signed integer (identifiers, counts).
    I64,
    /// Boolean (filter outcomes), stored word-packed.
    Bool,
}

impl FieldType {
    /// Display name of the type.
    pub fn name(&self) -> &'static str {
        match self {
            FieldType::F64 => "f64",
            FieldType::I64 => "i64",
            FieldType::Bool => "bool",
        }
    }

    /// The column default used to pad short rows: `0.0`, `0` or `false`
    /// (the typed counterpart of the arena's `Value::F64(0.0)` pad).
    pub fn default_value(&self) -> Value {
        match self {
            FieldType::F64 => Value::F64(0.0),
            FieldType::I64 => Value::I64(0),
            FieldType::Bool => Value::Bool(false),
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, PartialEq, Eq)]
struct SchemaInner {
    fields: Vec<(String, FieldType)>,
}

/// An ordered `field name → type` declaration for one query's tuples.
///
/// Schemas are immutable and cheap to clone (the field list is behind an
/// [`Arc`]), so every batch, window pane and emission of a query can
/// carry one. Equality compares the declared fields; two independently
/// built schemas with the same fields are equal.
///
/// ```
/// use themis_core::prelude::*;
///
/// // Declare the TOP-5 workload's keyed rows: `[key: i64, value: f64]`.
/// let schema = Schema::new([("key", FieldType::I64), ("value", FieldType::F64)]);
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.index_of("value"), Some(1));
/// assert_eq!(schema.field_type(0), Some(FieldType::I64));
///
/// // Batches built against the schema store native columns, so kernels
/// // read `&[f64]` slices instead of matching a `Value` enum per field.
/// let mut batch = TupleBatch::with_schema(schema.clone());
/// batch.push_row(Timestamp(0), Sic(0.1), &[Value::I64(7), Value::F64(42.0)]);
/// assert_eq!(batch.schema(), Some(&schema));
/// assert_eq!(batch.i64_column(0), Some(&[7i64][..]));
/// assert_eq!(batch.f64_column(1), Some(&[42.0][..]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

impl Schema {
    /// Declares a schema from `(name, type)` fields, in row order.
    pub fn new<N: Into<String>>(fields: impl IntoIterator<Item = (N, FieldType)>) -> Self {
        Schema {
            inner: Arc::new(SchemaInner {
                fields: fields.into_iter().map(|(n, t)| (n.into(), t)).collect(),
            }),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.inner.fields.len()
    }

    /// True when the schema declares no fields.
    pub fn is_empty(&self) -> bool {
        self.inner.fields.is_empty()
    }

    /// The type of field `i`, if declared.
    pub fn field_type(&self, i: usize) -> Option<FieldType> {
        self.inner.fields.get(i).map(|(_, t)| *t)
    }

    /// The name of field `i`, if declared.
    pub fn field_name(&self, i: usize) -> Option<&str> {
        self.inner.fields.get(i).map(|(n, _)| n.as_str())
    }

    /// Index of the field named `name`, if declared.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.inner.fields.iter().position(|(n, _)| n == name)
    }

    /// Iterates `(name, type)` pairs in field order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, FieldType)> {
        self.inner.fields.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// True when both handles share one declaration (O(1)); used as the
    /// fast path before a field-by-field comparison.
    pub fn same_as(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (n, t)) in self.inner.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{n}: {t}")?;
        }
        f.write_str("]")
    }
}

/// A word-packed boolean column (a length-tracked [`BitVec`] underneath —
/// the same shared bitset the drop bitmap and the predicate-mask kernels
/// use).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoolColumn {
    bits: BitVec,
}

impl BoolColumn {
    /// An empty column.
    pub fn new() -> Self {
        BoolColumn::default()
    }

    /// An empty column with room for `rows` bits.
    pub fn with_capacity(rows: usize) -> Self {
        // Pre-sizing words is free for equality (BitVec compares
        // semantically), and push never reallocates below `rows`.
        BoolColumn {
            bits: BitVec::with_bits(rows),
        }
    }

    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Appends one bit.
    pub fn push(&mut self, v: bool) {
        self.bits.push(v);
    }

    /// Bit `i` (`false` when out of range).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.bits.len() && self.bits.get(i)
    }

    /// The packed words (the last word's bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }

    /// Splits off and returns the first `n` bits, keeping the rest —
    /// word-level copies (front) and shift-merges (tail), not a per-bit
    /// rebuild.
    pub fn split_front(&mut self, n: usize) -> BoolColumn {
        BoolColumn {
            bits: self.bits.split_front(n),
        }
    }
}

impl FromIterator<bool> for BoolColumn {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut c = BoolColumn::new();
        for b in iter {
            c.push(b);
        }
        c
    }
}

/// One typed column of a schema-declared batch: the contiguous native
/// storage that replaces a stride of the [`Value`] arena.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Contiguous 64-bit floats.
    F64(Vec<f64>),
    /// Contiguous 64-bit signed integers.
    I64(Vec<i64>),
    /// Word-packed booleans.
    Bool(BoolColumn),
}

impl Column {
    /// An empty column of the given type.
    pub fn new(ty: FieldType) -> Self {
        Column::with_capacity(ty, 0)
    }

    /// An empty column of the given type with room for `rows` entries.
    pub fn with_capacity(ty: FieldType, rows: usize) -> Self {
        match ty {
            FieldType::F64 => Column::F64(Vec::with_capacity(rows)),
            FieldType::I64 => Column::I64(Vec::with_capacity(rows)),
            FieldType::Bool => Column::Bool(BoolColumn::with_capacity(rows)),
        }
    }

    /// The column's field type.
    pub fn field_type(&self) -> FieldType {
        match self {
            Column::F64(_) => FieldType::F64,
            Column::I64(_) => FieldType::I64,
            Column::Bool(_) => FieldType::Bool,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a [`Value`], coercing it to the column type (`as_f64` /
    /// `as_i64` / `as_bool` — the same numeric views the arena exposes).
    #[inline]
    pub fn push_value(&mut self, v: Value) {
        match self {
            Column::F64(c) => c.push(v.as_f64()),
            Column::I64(c) => c.push(v.as_i64()),
            Column::Bool(c) => c.push(v.as_bool()),
        }
    }

    /// Entry `i` as a [`Value`] (panics if out of range).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::F64(c) => Value::F64(c[i]),
            Column::I64(c) => Value::I64(c[i]),
            Column::Bool(c) => Value::Bool(c.get(i)),
        }
    }

    /// Numeric view of entry `i` (panics if out of range).
    #[inline]
    pub fn f64_at(&self, i: usize) -> f64 {
        match self {
            Column::F64(c) => c[i],
            Column::I64(c) => c[i] as f64,
            Column::Bool(c) => c.get(i) as i64 as f64,
        }
    }

    /// Copies entry `i` of `src` onto the end of `self`. The columns must
    /// share a type (callers check the schema first); mismatches coerce
    /// through [`Value`].
    #[inline]
    pub fn push_from(&mut self, src: &Column, i: usize) {
        match (self, src) {
            (Column::F64(d), Column::F64(s)) => d.push(s[i]),
            (Column::I64(d), Column::I64(s)) => d.push(s[i]),
            (Column::Bool(d), Column::Bool(s)) => d.push(s.get(i)),
            (d, s) => d.push_value(s.value(i)),
        }
    }

    /// Appends all of `src`'s entries (a contiguous copy when the types
    /// match).
    pub fn extend_from(&mut self, src: &Column) {
        match (self, src) {
            (Column::F64(d), Column::F64(s)) => d.extend_from_slice(s),
            (Column::I64(d), Column::I64(s)) => d.extend_from_slice(s),
            (Column::Bool(d), Column::Bool(s)) => {
                for i in 0..s.len() {
                    d.push(s.get(i));
                }
            }
            (d, s) => {
                for i in 0..s.len() {
                    d.push_value(s.value(i));
                }
            }
        }
    }

    /// Splits off and returns the first `n` entries, keeping the rest.
    pub fn split_front(&mut self, n: usize) -> Column {
        match self {
            Column::F64(v) => {
                let tail = v.split_off(n.min(v.len()));
                Column::F64(std::mem::replace(v, tail))
            }
            Column::I64(v) => {
                let tail = v.split_off(n.min(v.len()));
                Column::I64(std::mem::replace(v, tail))
            }
            Column::Bool(v) => Column::Bool(v.split_front(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_declares_fields_in_order() {
        let s = Schema::new([("key", FieldType::I64), ("value", FieldType::F64)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.field_name(0), Some("key"));
        assert_eq!(s.field_type(1), Some(FieldType::F64));
        assert_eq!(s.index_of("value"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field_type(9), None);
        assert_eq!(s.to_string(), "[key: i64, value: f64]");
    }

    #[test]
    fn schema_equality_is_structural() {
        let a = Schema::new([("v", FieldType::F64)]);
        let b = Schema::new([("v", FieldType::F64)]);
        let c = Schema::new([("v", FieldType::I64)]);
        assert_eq!(a, b);
        assert!(!a.same_as(&b), "distinct allocations");
        assert!(a.same_as(&a.clone()), "clones share the declaration");
        assert_ne!(a, c);
    }

    #[test]
    fn bool_column_packs_words() {
        let mut c = BoolColumn::new();
        for i in 0..130 {
            c.push(i % 3 == 0);
        }
        assert_eq!(c.len(), 130);
        assert!(c.get(0));
        assert!(!c.get(1));
        assert!(c.get(129));
        assert!(!c.get(500), "out of range reads false");
        let front = c.split_front(65);
        assert_eq!(front.len(), 65);
        assert_eq!(c.len(), 65);
        assert!(front.get(63) == (63 % 3 == 0));
        assert!(c.get(0) == (65 % 3 == 0));
        assert!(!front.get(65), "front bits past len read false");
    }

    #[test]
    fn bool_column_split_at_any_offset() {
        // Word-boundary and unaligned splits both preserve every bit.
        for split in [0usize, 1, 63, 64, 65, 128, 200] {
            let bits: Vec<bool> = (0..200).map(|i| (i * 7) % 5 < 2).collect();
            let mut c: BoolColumn = bits.iter().copied().collect();
            let front = c.split_front(split);
            assert_eq!(front.len(), split);
            assert_eq!(c.len(), 200 - split);
            for (i, &b) in bits.iter().enumerate() {
                if i < split {
                    assert_eq!(front.get(i), b, "split {split}, front bit {i}");
                } else {
                    assert_eq!(c.get(i - split), b, "split {split}, rest bit {i}");
                }
            }
        }
    }

    #[test]
    fn column_coerces_values() {
        let mut c = Column::new(FieldType::I64);
        c.push_value(Value::F64(2.9));
        c.push_value(Value::Bool(true));
        assert_eq!(c.value(0), Value::I64(2));
        assert_eq!(c.f64_at(1), 1.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.field_type(), FieldType::I64);
    }

    #[test]
    fn column_copies_and_splits() {
        let mut a = Column::with_capacity(FieldType::F64, 4);
        for v in [1.0, 2.0, 3.0] {
            a.push_value(Value::F64(v));
        }
        let mut b = Column::new(FieldType::F64);
        b.push_from(&a, 1);
        b.extend_from(&a);
        assert_eq!(b.len(), 4);
        assert_eq!(b.value(0), Value::F64(2.0));
        let front = a.split_front(2);
        assert_eq!(front.len(), 2);
        assert_eq!(a.len(), 1);
        assert_eq!(a.value(0), Value::F64(3.0));
    }

    #[test]
    fn mismatched_column_copy_coerces() {
        let mut f = Column::new(FieldType::F64);
        f.push_value(Value::F64(1.5));
        let mut i = Column::new(FieldType::I64);
        i.push_from(&f, 0);
        i.extend_from(&f);
        assert_eq!(i.value(0), Value::I64(1));
        assert_eq!(i.value(1), Value::I64(1));
    }

    #[test]
    fn field_type_defaults() {
        assert_eq!(FieldType::F64.default_value(), Value::F64(0.0));
        assert_eq!(FieldType::I64.default_value(), Value::I64(0));
        assert_eq!(FieldType::Bool.default_value(), Value::Bool(false));
        assert_eq!(FieldType::Bool.to_string(), "bool");
    }
}
