//! Declared tuple schemas and typed column storage.
//!
//! THEMIS treats query logic as a black box (§4), but its *evaluation*
//! workloads (Table 1) all move rows with a small, fixed shape —
//! `[value]` or `[key, value]`. When a query declares that shape as a
//! [`Schema`] up front, the hot path can store each field as a
//! contiguous **native column** ([`Column`]: `Vec<f64>` / `Vec<i64>` /
//! a word-packed bitset) instead of the dynamically-typed [`Value`]
//! arena, removing the per-element enum match from every aggregate read
//! and letting slice kernels auto-vectorize.
//!
//! A [`Schema`] is an ordered list of `field name →` [`FieldType`]
//! entries, shared cheaply across batches through an [`Arc`]. Query
//! templates declare one schema per query; sources build typed batches
//! against it, and every window slice and pane hand-off preserves it.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use crate::bits::BitVec;
use crate::value::Value;

/// The native type of one schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// 64-bit float (sensor measurements, aggregates).
    F64,
    /// 64-bit signed integer (identifiers, counts).
    I64,
    /// Boolean (filter outcomes), stored word-packed.
    Bool,
    /// Dictionary-encoded tag string: the column stores `u32` codes and
    /// the strings live once in the schema's shared [`TagInterner`].
    Tag,
}

impl FieldType {
    /// Display name of the type.
    pub fn name(&self) -> &'static str {
        match self {
            FieldType::F64 => "f64",
            FieldType::I64 => "i64",
            FieldType::Bool => "bool",
            FieldType::Tag => "tag",
        }
    }

    /// The column default used to pad short rows: `0.0`, `0`, `false` or
    /// the empty-string tag (the typed counterpart of the arena's
    /// `Value::F64(0.0)` pad).
    pub fn default_value(&self) -> Value {
        match self {
            FieldType::F64 => Value::F64(0.0),
            FieldType::I64 => Value::I64(0),
            FieldType::Bool => Value::Bool(false),
            FieldType::Tag => Value::Tag(TagInterner::EMPTY),
        }
    }
}

/// An append-only, thread-safe string dictionary shared by every tag
/// column of one schema.
///
/// Sources intern their tag once at construction and push bare `u32`
/// codes per row, so the hot path never touches the lock; resolution
/// back to strings only happens on output edges. Code
/// [`TagInterner::EMPTY`] is always the empty string — it backs the
/// short-row pad of [`FieldType::Tag`].
///
/// ```
/// use themis_core::prelude::*;
///
/// let dict = TagInterner::new();
/// let code = dict.intern("host-17");
/// assert_eq!(dict.intern("host-17"), code, "idempotent");
/// assert_eq!(dict.resolve(code).as_deref(), Some("host-17"));
/// assert_eq!(dict.resolve(TagInterner::EMPTY).as_deref(), Some(""));
/// ```
#[derive(Debug)]
pub struct TagInterner {
    inner: RwLock<InternerInner>,
}

#[derive(Debug, Default)]
struct InternerInner {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl TagInterner {
    /// The code of the empty string, pre-interned by [`TagInterner::new`]
    /// (the pad for short rows).
    pub const EMPTY: u32 = 0;

    /// A fresh interner holding only the empty string.
    pub fn new() -> Self {
        let it = TagInterner {
            inner: RwLock::new(InternerInner::default()),
        };
        it.intern("");
        it
    }

    /// Interns `s`, returning its stable code (idempotent).
    pub fn intern(&self, s: &str) -> u32 {
        if let Some(&code) = self.inner.read().unwrap().index.get(s) {
            return code;
        }
        let mut inner = self.inner.write().unwrap();
        if let Some(&code) = inner.index.get(s) {
            return code;
        }
        let code = inner.strings.len() as u32;
        let owned: Arc<str> = Arc::from(s);
        inner.strings.push(owned.clone());
        inner.index.insert(owned, code);
        code
    }

    /// The string behind `code`, if interned.
    pub fn resolve(&self, code: u32) -> Option<Arc<str>> {
        self.inner
            .read()
            .unwrap()
            .strings
            .get(code as usize)
            .cloned()
    }

    /// Number of interned strings (at least 1: the empty string).
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().strings.len()
    }

    /// Never true: the empty string is always interned.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for TagInterner {
    fn default() -> Self {
        TagInterner::new()
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug)]
struct SchemaInner {
    fields: Vec<(String, FieldType)>,
    /// Shared tag dictionary, `Some` iff any field is [`FieldType::Tag`].
    interner: Option<Arc<TagInterner>>,
}

/// Structural equality over the declared fields; schemas with tag fields
/// additionally compare interner *identity*, because tag codes are only
/// comparable relative to one dictionary.
impl PartialEq for SchemaInner {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
            && match (&self.interner, &other.interner) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for SchemaInner {}

/// An ordered `field name → type` declaration for one query's tuples.
///
/// Schemas are immutable and cheap to clone (the field list is behind an
/// [`Arc`]), so every batch, window pane and emission of a query can
/// carry one. Equality compares the declared fields; two independently
/// built schemas with the same fields are equal — except schemas with
/// [`FieldType::Tag`] fields, which also compare dictionary identity
/// (tag codes are only comparable relative to one [`TagInterner`]).
///
/// ```
/// use themis_core::prelude::*;
///
/// // Declare the TOP-5 workload's keyed rows: `[key: i64, value: f64]`.
/// let schema = Schema::new([("key", FieldType::I64), ("value", FieldType::F64)]);
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.index_of("value"), Some(1));
/// assert_eq!(schema.field_type(0), Some(FieldType::I64));
///
/// // Batches built against the schema store native columns, so kernels
/// // read `&[f64]` slices instead of matching a `Value` enum per field.
/// let mut batch = TupleBatch::with_schema(schema.clone());
/// batch.push_row(Timestamp(0), Sic(0.1), &[Value::I64(7), Value::F64(42.0)]);
/// assert_eq!(batch.schema(), Some(&schema));
/// assert_eq!(batch.i64_column(0), Some(&[7i64][..]));
/// assert_eq!(batch.f64_column(1), Some(&[42.0][..]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

impl Schema {
    /// Declares a schema from `(name, type)` fields, in row order. If any
    /// field is [`FieldType::Tag`], a fresh shared [`TagInterner`] is
    /// created for the schema's tag columns.
    pub fn new<N: Into<String>>(fields: impl IntoIterator<Item = (N, FieldType)>) -> Self {
        let fields: Vec<(String, FieldType)> =
            fields.into_iter().map(|(n, t)| (n.into(), t)).collect();
        let interner = fields
            .iter()
            .any(|(_, t)| *t == FieldType::Tag)
            .then(|| Arc::new(TagInterner::new()));
        Schema {
            inner: Arc::new(SchemaInner { fields, interner }),
        }
    }

    /// Declares a schema whose tag columns share an existing dictionary —
    /// the way derived schemas (group-by outputs, projections) keep their
    /// tag codes resolvable against the input's interner. The interner is
    /// dropped again when no field is [`FieldType::Tag`].
    pub fn with_interner<N: Into<String>>(
        fields: impl IntoIterator<Item = (N, FieldType)>,
        dict: Arc<TagInterner>,
    ) -> Self {
        let fields: Vec<(String, FieldType)> =
            fields.into_iter().map(|(n, t)| (n.into(), t)).collect();
        let interner = fields
            .iter()
            .any(|(_, t)| *t == FieldType::Tag)
            .then_some(dict);
        Schema {
            inner: Arc::new(SchemaInner { fields, interner }),
        }
    }

    /// The shared tag dictionary (`Some` iff any field is
    /// [`FieldType::Tag`]).
    pub fn interner(&self) -> Option<&Arc<TagInterner>> {
        self.inner.interner.as_ref()
    }

    /// Builds an empty column for field `i`, sharing the schema's tag
    /// dictionary when the field is a tag.
    pub fn column_for(&self, i: usize, rows: usize) -> Option<Column> {
        let ty = self.field_type(i)?;
        Some(match ty {
            FieldType::Tag => Column::Tag(TagColumn::with_capacity(
                self.inner
                    .interner
                    .clone()
                    .unwrap_or_else(|| Arc::new(TagInterner::new())),
                rows,
            )),
            other => Column::with_capacity(other, rows),
        })
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.inner.fields.len()
    }

    /// True when the schema declares no fields.
    pub fn is_empty(&self) -> bool {
        self.inner.fields.is_empty()
    }

    /// The type of field `i`, if declared.
    pub fn field_type(&self, i: usize) -> Option<FieldType> {
        self.inner.fields.get(i).map(|(_, t)| *t)
    }

    /// The name of field `i`, if declared.
    pub fn field_name(&self, i: usize) -> Option<&str> {
        self.inner.fields.get(i).map(|(n, _)| n.as_str())
    }

    /// Index of the field named `name`, if declared.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.inner.fields.iter().position(|(n, _)| n == name)
    }

    /// Iterates `(name, type)` pairs in field order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, FieldType)> {
        self.inner.fields.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// True when both handles share one declaration (O(1)); used as the
    /// fast path before a field-by-field comparison.
    pub fn same_as(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (n, t)) in self.inner.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{n}: {t}")?;
        }
        f.write_str("]")
    }
}

/// A word-packed boolean column (a length-tracked [`BitVec`] underneath —
/// the same shared bitset the drop bitmap and the predicate-mask kernels
/// use).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoolColumn {
    bits: BitVec,
}

impl BoolColumn {
    /// An empty column.
    pub fn new() -> Self {
        BoolColumn::default()
    }

    /// An empty column with room for `rows` bits.
    pub fn with_capacity(rows: usize) -> Self {
        // Pre-sizing words is free for equality (BitVec compares
        // semantically), and push never reallocates below `rows`.
        BoolColumn {
            bits: BitVec::with_bits(rows),
        }
    }

    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Appends one bit.
    pub fn push(&mut self, v: bool) {
        self.bits.push(v);
    }

    /// Bit `i` (`false` when out of range).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.bits.len() && self.bits.get(i)
    }

    /// The packed words (the last word's bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }

    /// Splits off and returns the first `n` bits, keeping the rest —
    /// word-level copies (front) and shift-merges (tail), not a per-bit
    /// rebuild.
    pub fn split_front(&mut self, n: usize) -> BoolColumn {
        BoolColumn {
            bits: self.bits.split_front(n),
        }
    }
}

impl FromIterator<bool> for BoolColumn {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut c = BoolColumn::new();
        for b in iter {
            c.push(b);
        }
        c
    }
}

/// A dictionary-encoded string column: contiguous `u32` codes plus a
/// shared [`TagInterner`] holding each distinct string once. Batch
/// operations (push/append/split/gather) move bare codes; crossing into a
/// column with a *different* dictionary re-interns through the strings
/// (a cold path guarded by `Arc::ptr_eq`).
#[derive(Debug, Clone)]
pub struct TagColumn {
    codes: Vec<u32>,
    dict: Arc<TagInterner>,
}

impl TagColumn {
    /// An empty column over `dict`.
    pub fn new(dict: Arc<TagInterner>) -> Self {
        TagColumn {
            codes: Vec::new(),
            dict,
        }
    }

    /// An empty column over `dict` with room for `rows` codes.
    pub fn with_capacity(dict: Arc<TagInterner>, rows: usize) -> Self {
        TagColumn {
            codes: Vec::with_capacity(rows),
            dict,
        }
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The stored codes.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Arc<TagInterner> {
        &self.dict
    }

    /// Appends a bare code (the hot source path: the caller interned the
    /// tag against this column's dictionary up front).
    #[inline]
    pub fn push_code(&mut self, code: u32) {
        self.codes.push(code);
    }

    /// Interns `s` into this column's dictionary and appends its code.
    pub fn push_str(&mut self, s: &str) -> u32 {
        let code = self.dict.intern(s);
        self.codes.push(code);
        code
    }

    /// The code at row `i` (panics if out of range).
    #[inline]
    pub fn code(&self, i: usize) -> u32 {
        self.codes[i]
    }

    /// The string at row `i`, if its code is interned.
    pub fn resolve(&self, i: usize) -> Option<Arc<str>> {
        self.dict.resolve(self.codes[i])
    }

    /// Appends entry `i` of `src`, re-interning when the dictionaries
    /// differ.
    #[inline]
    pub fn push_from(&mut self, src: &TagColumn, i: usize) {
        if Arc::ptr_eq(&self.dict, &src.dict) {
            self.codes.push(src.codes[i]);
        } else {
            let s = src.resolve(i).unwrap_or_else(|| Arc::from(""));
            self.codes.push(self.dict.intern(&s));
        }
    }

    /// Appends all of `src`'s codes (a contiguous copy when the
    /// dictionaries match, per-row re-interning otherwise).
    pub fn extend_from(&mut self, src: &TagColumn) {
        if Arc::ptr_eq(&self.dict, &src.dict) {
            self.codes.extend_from_slice(&src.codes);
        } else {
            for i in 0..src.len() {
                self.push_from(src, i);
            }
        }
    }

    /// Splits off and returns the first `n` codes, keeping the rest; both
    /// halves share the dictionary.
    pub fn split_front(&mut self, n: usize) -> TagColumn {
        let tail = self.codes.split_off(n.min(self.codes.len()));
        TagColumn {
            codes: std::mem::replace(&mut self.codes, tail),
            dict: self.dict.clone(),
        }
    }
}

/// Same-dictionary columns compare codes; columns over different
/// dictionaries compare the resolved strings.
impl PartialEq for TagColumn {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.dict, &other.dict) {
            return self.codes == other.codes;
        }
        self.len() == other.len() && (0..self.len()).all(|i| self.resolve(i) == other.resolve(i))
    }
}

/// One typed column of a schema-declared batch: the contiguous native
/// storage that replaces a stride of the [`Value`] arena.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Contiguous 64-bit floats.
    F64(Vec<f64>),
    /// Contiguous 64-bit signed integers.
    I64(Vec<i64>),
    /// Word-packed booleans.
    Bool(BoolColumn),
    /// Dictionary-encoded tag strings (`u32` codes + shared interner).
    Tag(TagColumn),
}

impl Column {
    /// An empty column of the given type.
    pub fn new(ty: FieldType) -> Self {
        Column::with_capacity(ty, 0)
    }

    /// An empty column of the given type with room for `rows` entries.
    /// A [`FieldType::Tag`] column built this way gets a *fresh*
    /// dictionary — batch construction goes through
    /// [`Schema::column_for`] instead so tag columns share the schema's
    /// interner.
    pub fn with_capacity(ty: FieldType, rows: usize) -> Self {
        match ty {
            FieldType::F64 => Column::F64(Vec::with_capacity(rows)),
            FieldType::I64 => Column::I64(Vec::with_capacity(rows)),
            FieldType::Bool => Column::Bool(BoolColumn::with_capacity(rows)),
            FieldType::Tag => {
                Column::Tag(TagColumn::with_capacity(Arc::new(TagInterner::new()), rows))
            }
        }
    }

    /// An empty column of `self`'s type that keeps `self`'s tag
    /// dictionary — the layout-preserving constructor window slicing and
    /// pane hand-offs use.
    pub fn empty_like(&self, rows: usize) -> Column {
        match self {
            Column::Tag(c) => Column::Tag(TagColumn::with_capacity(c.dict.clone(), rows)),
            other => Column::with_capacity(other.field_type(), rows),
        }
    }

    /// The column's field type.
    pub fn field_type(&self) -> FieldType {
        match self {
            Column::F64(_) => FieldType::F64,
            Column::I64(_) => FieldType::I64,
            Column::Bool(_) => FieldType::Bool,
            Column::Tag(_) => FieldType::Tag,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Tag(v) => v.len(),
        }
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a [`Value`], coercing it to the column type (`as_f64` /
    /// `as_i64` / `as_bool` — the same numeric views the arena exposes).
    /// A [`Value::Tag`] pushed into a tag column appends its bare code;
    /// the caller guarantees the code came from this column's dictionary
    /// (batch paths check schema equality, which compares interner
    /// identity, before taking this route).
    #[inline]
    pub fn push_value(&mut self, v: Value) {
        match self {
            Column::F64(c) => c.push(v.as_f64()),
            Column::I64(c) => c.push(v.as_i64()),
            Column::Bool(c) => c.push(v.as_bool()),
            Column::Tag(c) => c.push_code(v.as_i64().max(0) as u32),
        }
    }

    /// Entry `i` as a [`Value`] (panics if out of range).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::F64(c) => Value::F64(c[i]),
            Column::I64(c) => Value::I64(c[i]),
            Column::Bool(c) => Value::Bool(c.get(i)),
            Column::Tag(c) => Value::Tag(c.code(i)),
        }
    }

    /// Numeric view of entry `i` (panics if out of range).
    #[inline]
    pub fn f64_at(&self, i: usize) -> f64 {
        match self {
            Column::F64(c) => c[i],
            Column::I64(c) => c[i] as f64,
            Column::Bool(c) => c.get(i) as i64 as f64,
            Column::Tag(c) => c.code(i) as f64,
        }
    }

    /// Copies entry `i` of `src` onto the end of `self`. The columns must
    /// share a type (callers check the schema first); mismatches coerce
    /// through [`Value`], and tag-to-tag copies across dictionaries
    /// re-intern.
    #[inline]
    pub fn push_from(&mut self, src: &Column, i: usize) {
        match (self, src) {
            (Column::F64(d), Column::F64(s)) => d.push(s[i]),
            (Column::I64(d), Column::I64(s)) => d.push(s[i]),
            (Column::Bool(d), Column::Bool(s)) => d.push(s.get(i)),
            (Column::Tag(d), Column::Tag(s)) => d.push_from(s, i),
            (d, s) => d.push_value(s.value(i)),
        }
    }

    /// Appends all of `src`'s entries (a contiguous copy when the types
    /// match).
    pub fn extend_from(&mut self, src: &Column) {
        match (self, src) {
            (Column::F64(d), Column::F64(s)) => d.extend_from_slice(s),
            (Column::I64(d), Column::I64(s)) => d.extend_from_slice(s),
            (Column::Bool(d), Column::Bool(s)) => {
                for i in 0..s.len() {
                    d.push(s.get(i));
                }
            }
            (Column::Tag(d), Column::Tag(s)) => d.extend_from(s),
            (d, s) => {
                for i in 0..s.len() {
                    d.push_value(s.value(i));
                }
            }
        }
    }

    /// Splits off and returns the first `n` entries, keeping the rest.
    pub fn split_front(&mut self, n: usize) -> Column {
        match self {
            Column::F64(v) => {
                let tail = v.split_off(n.min(v.len()));
                Column::F64(std::mem::replace(v, tail))
            }
            Column::I64(v) => {
                let tail = v.split_off(n.min(v.len()));
                Column::I64(std::mem::replace(v, tail))
            }
            Column::Bool(v) => Column::Bool(v.split_front(n)),
            Column::Tag(v) => Column::Tag(v.split_front(n)),
        }
    }

    /// Clears the stored entries, keeping the allocation (and, for tag
    /// columns, the dictionary) — the batch-pool recycle path.
    pub fn clear(&mut self) {
        match self {
            Column::F64(v) => v.clear(),
            Column::I64(v) => v.clear(),
            Column::Bool(v) => *v = BoolColumn::new(),
            Column::Tag(v) => v.codes.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_declares_fields_in_order() {
        let s = Schema::new([("key", FieldType::I64), ("value", FieldType::F64)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.field_name(0), Some("key"));
        assert_eq!(s.field_type(1), Some(FieldType::F64));
        assert_eq!(s.index_of("value"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field_type(9), None);
        assert_eq!(s.to_string(), "[key: i64, value: f64]");
    }

    #[test]
    fn schema_equality_is_structural() {
        let a = Schema::new([("v", FieldType::F64)]);
        let b = Schema::new([("v", FieldType::F64)]);
        let c = Schema::new([("v", FieldType::I64)]);
        assert_eq!(a, b);
        assert!(!a.same_as(&b), "distinct allocations");
        assert!(a.same_as(&a.clone()), "clones share the declaration");
        assert_ne!(a, c);
    }

    #[test]
    fn bool_column_packs_words() {
        let mut c = BoolColumn::new();
        for i in 0..130 {
            c.push(i % 3 == 0);
        }
        assert_eq!(c.len(), 130);
        assert!(c.get(0));
        assert!(!c.get(1));
        assert!(c.get(129));
        assert!(!c.get(500), "out of range reads false");
        let front = c.split_front(65);
        assert_eq!(front.len(), 65);
        assert_eq!(c.len(), 65);
        assert!(front.get(63) == (63 % 3 == 0));
        assert!(c.get(0) == (65 % 3 == 0));
        assert!(!front.get(65), "front bits past len read false");
    }

    #[test]
    fn bool_column_split_at_any_offset() {
        // Word-boundary and unaligned splits both preserve every bit.
        for split in [0usize, 1, 63, 64, 65, 128, 200] {
            let bits: Vec<bool> = (0..200).map(|i| (i * 7) % 5 < 2).collect();
            let mut c: BoolColumn = bits.iter().copied().collect();
            let front = c.split_front(split);
            assert_eq!(front.len(), split);
            assert_eq!(c.len(), 200 - split);
            for (i, &b) in bits.iter().enumerate() {
                if i < split {
                    assert_eq!(front.get(i), b, "split {split}, front bit {i}");
                } else {
                    assert_eq!(c.get(i - split), b, "split {split}, rest bit {i}");
                }
            }
        }
    }

    #[test]
    fn column_coerces_values() {
        let mut c = Column::new(FieldType::I64);
        c.push_value(Value::F64(2.9));
        c.push_value(Value::Bool(true));
        assert_eq!(c.value(0), Value::I64(2));
        assert_eq!(c.f64_at(1), 1.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.field_type(), FieldType::I64);
    }

    #[test]
    fn column_copies_and_splits() {
        let mut a = Column::with_capacity(FieldType::F64, 4);
        for v in [1.0, 2.0, 3.0] {
            a.push_value(Value::F64(v));
        }
        let mut b = Column::new(FieldType::F64);
        b.push_from(&a, 1);
        b.extend_from(&a);
        assert_eq!(b.len(), 4);
        assert_eq!(b.value(0), Value::F64(2.0));
        let front = a.split_front(2);
        assert_eq!(front.len(), 2);
        assert_eq!(a.len(), 1);
        assert_eq!(a.value(0), Value::F64(3.0));
    }

    #[test]
    fn mismatched_column_copy_coerces() {
        let mut f = Column::new(FieldType::F64);
        f.push_value(Value::F64(1.5));
        let mut i = Column::new(FieldType::I64);
        i.push_from(&f, 0);
        i.extend_from(&f);
        assert_eq!(i.value(0), Value::I64(1));
        assert_eq!(i.value(1), Value::I64(1));
    }

    #[test]
    fn field_type_defaults() {
        assert_eq!(FieldType::F64.default_value(), Value::F64(0.0));
        assert_eq!(FieldType::I64.default_value(), Value::I64(0));
        assert_eq!(FieldType::Bool.default_value(), Value::Bool(false));
        assert_eq!(
            FieldType::Tag.default_value(),
            Value::Tag(TagInterner::EMPTY)
        );
        assert_eq!(FieldType::Bool.to_string(), "bool");
        assert_eq!(FieldType::Tag.to_string(), "tag");
    }

    #[test]
    fn interner_is_idempotent_and_resolves() {
        let dict = TagInterner::new();
        assert_eq!(dict.len(), 1, "empty string pre-interned");
        assert_eq!(dict.resolve(TagInterner::EMPTY).as_deref(), Some(""));
        let a = dict.intern("alpha");
        let b = dict.intern("beta");
        assert_ne!(a, b);
        assert_eq!(dict.intern("alpha"), a);
        assert_eq!(dict.resolve(b).as_deref(), Some("beta"));
        assert_eq!(dict.resolve(999), None);
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn tag_schemas_compare_dictionary_identity() {
        let a = Schema::new([("tag", FieldType::Tag), ("v", FieldType::F64)]);
        let b = Schema::new([("tag", FieldType::Tag), ("v", FieldType::F64)]);
        assert_ne!(a, b, "independent dictionaries, incomparable codes");
        assert_eq!(a, a.clone());
        let shared = Schema::with_interner(
            [("tag", FieldType::Tag), ("v", FieldType::F64)],
            a.interner().unwrap().clone(),
        );
        assert_eq!(a, shared, "same fields, same dictionary");
        assert!(b.interner().is_some());
        assert!(Schema::new([("v", FieldType::F64)]).interner().is_none());
        assert_eq!(a.to_string(), "[tag: tag, v: f64]");
    }

    #[test]
    fn tag_column_round_trips_codes_and_strings() {
        let dict = Arc::new(TagInterner::new());
        let mut c = TagColumn::with_capacity(dict.clone(), 4);
        let a = c.push_str("host-1");
        c.push_str("host-2");
        c.push_code(a);
        assert_eq!(c.len(), 3);
        assert_eq!(c.codes(), &[a, a + 1, a]);
        assert_eq!(c.resolve(1).as_deref(), Some("host-2"));
        let front = c.split_front(2);
        assert_eq!(front.len(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resolve(0).as_deref(), Some("host-1"));
        assert!(Arc::ptr_eq(front.dict(), c.dict()));
    }

    #[test]
    fn tag_copies_across_dictionaries_reintern() {
        let mut src = TagColumn::new(Arc::new(TagInterner::new()));
        src.push_str("x");
        src.push_str("y");
        let mut dst = TagColumn::new(Arc::new(TagInterner::new()));
        dst.push_str("filler"); // skew the code space
        dst.push_from(&src, 1);
        dst.extend_from(&src);
        assert_eq!(dst.resolve(1).as_deref(), Some("y"));
        assert_eq!(dst.resolve(2).as_deref(), Some("x"));
        assert_eq!(dst.resolve(3).as_deref(), Some("y"));
        assert_ne!(dst.code(2), src.code(0), "codes re-numbered, strings kept");
        // Semantic equality across dictionaries compares strings.
        let mut same = TagColumn::new(Arc::new(TagInterner::new()));
        same.push_str("x");
        same.push_str("y");
        assert_eq!(src, same);
        same.push_str("z");
        assert_ne!(src, same);
    }

    #[test]
    fn schema_column_for_shares_the_dictionary() {
        let s = Schema::new([("tag", FieldType::Tag), ("v", FieldType::F64)]);
        let (c0, c1) = (s.column_for(0, 8).unwrap(), s.column_for(1, 8).unwrap());
        assert_eq!(c0.field_type(), FieldType::Tag);
        assert_eq!(c1.field_type(), FieldType::F64);
        match (&c0, s.interner()) {
            (Column::Tag(t), Some(dict)) => assert!(Arc::ptr_eq(t.dict(), dict)),
            _ => panic!("tag column must share the schema dictionary"),
        }
        // empty_like preserves the dictionary; with_capacity does not.
        match c0.empty_like(4) {
            Column::Tag(t) => assert!(Arc::ptr_eq(t.dict(), s.interner().unwrap())),
            _ => panic!("empty_like keeps the type"),
        }
        assert!(s.column_for(9, 0).is_none());
    }

    #[test]
    fn column_clear_keeps_layout() {
        let s = Schema::new([("tag", FieldType::Tag)]);
        let mut c = s.column_for(0, 4).unwrap();
        c.push_value(Value::Tag(0));
        c.clear();
        assert!(c.is_empty());
        match &c {
            Column::Tag(t) => assert!(Arc::ptr_eq(t.dict(), s.interner().unwrap())),
            _ => panic!("clear keeps the tag dictionary"),
        }
    }
}
