//! Fairness statistics: Jain's Fairness Index and summary statistics over
//! per-query SIC values (§7.2, "To measure the effectiveness of the
//! BALANCE-SIC fairness approach, we use the Jain's Fairness Index").

use crate::sic::Sic;

/// Jain's Fairness Index over a set of allocations:
///
/// `J(x) = (Σ x_i)² / (n · Σ x_i²)`
///
/// Ranges from `1/n` (one query gets everything) to `1` (perfect balance).
/// Returns 1.0 for an empty set (vacuously fair) and for all-zero
/// allocations (every query is equally starved).
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Jain's index over SIC values.
pub fn jain_index_sic(values: &[Sic]) -> f64 {
    let raw: Vec<f64> = values.iter().map(|s| s.value()).collect();
    jain_index(&raw)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// A fairness summary over the per-query SIC values of one experiment —
/// exactly the three series the paper plots in Figure 10 (Jain's index,
/// std and mean of SIC values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessSummary {
    /// Number of queries summarised.
    pub n: usize,
    /// Jain's Fairness Index of the SIC values.
    pub jain: f64,
    /// Mean SIC value.
    pub mean: f64,
    /// Population standard deviation of the SIC values.
    pub std: f64,
    /// Minimum SIC value.
    pub min: f64,
    /// Maximum SIC value.
    pub max: f64,
}

impl FairnessSummary {
    /// Summarises a set of per-query SIC values.
    pub fn from_sics(values: &[Sic]) -> Self {
        let raw: Vec<f64> = values.iter().map(|s| s.value()).collect();
        FairnessSummary {
            n: raw.len(),
            jain: jain_index(&raw),
            mean: mean(&raw),
            std: std_dev(&raw),
            min: raw.iter().copied().fold(f64::INFINITY, f64::min),
            max: raw.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfect_balance() {
        assert!((jain_index(&[0.3, 0.3, 0.3, 0.3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_worst_case_is_one_over_n() {
        let v = [1.0, 0.0, 0.0, 0.0];
        assert!((jain_index(&v) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_intermediate() {
        // Two equal, two starved: J = (2)^2 / (4 * 2) = 0.5.
        assert!((jain_index(&[1.0, 1.0, 0.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[0.42]), 1.0);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = [0.1, 0.2, 0.7];
        let b = [1.0, 2.0, 7.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_from_sics() {
        let s = FairnessSummary::from_sics(&[Sic(0.2), Sic(0.2), Sic(0.4)]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 0.26666666).abs() < 1e-6);
        assert_eq!(s.min, 0.2);
        assert_eq!(s.max, 0.4);
        assert!(s.jain < 1.0 && s.jain > 0.8);
    }
}
