//! Write-ahead log and checkpoint codec for durable shard state.
//!
//! THEMIS sheds deliberately, so durability only has to bound the error on
//! what was *kept* — the AF-Stream observation ("Approximate Fault
//! Tolerance", Cheng/Huang/Lee): dropped tuples never need recovery, and a
//! checkpoint taken whenever the uncheckpointed SIC drift exceeds a declared
//! bound keeps post-restore divergence bounded without replaying every
//! tuple.
//!
//! The on-disk unit is a **frame**:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [kind: u8] [payload: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the payload; `crc` is CRC-32 (IEEE) over
//! the kind byte and payload. Two record kinds exist:
//!
//! * [`NodeSnapshot`] (`kind = 1`) — one node's full recoverable state:
//!   its SIC table and every buffered window pane as a columnar
//!   [`TupleBatch`] (timestamp/SIC columns bit-exact via `f64::to_bits`,
//!   payload as the native column layout, tag dictionaries snapshotted in
//!   code order so restored codes resolve identically).
//! * [`SicDelta`] (`kind = 2`) — a coordinator SIC update applied since the
//!   last checkpoint. Replay in order; the last write per query wins.
//!
//! A shard's durability directory is `root/shard-<i>/`, holding the latest
//! `checkpoint-<seq>.ckpt` (written to a temp file, then renamed; older
//! sequences pruned) plus `tail.wal`, the delta log appended between
//! checkpoints and truncated by each one. [`restore_shard`] reads the
//! newest checkpoint strictly and the tail tolerantly: an *incomplete*
//! final frame (the write the crash interrupted) is reported as a torn
//! tail and skipped, while any complete-but-corrupt frame is a hard
//! [`WalError::Corrupt`] naming the byte offset — never a panic.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::batch::{DropBitmap, PayloadView, TupleBatch};
use crate::ids::QueryId;
use crate::schema::{BoolColumn, Column, FieldType, Schema, TagColumn, TagInterner};
use crate::sic::Sic;
use crate::time::Timestamp;
use crate::value::Value;

/// Record kind byte of a [`NodeSnapshot`] frame.
pub const REC_NODE_SNAPSHOT: u8 = 1;
/// Record kind byte of a [`SicDelta`] frame.
pub const REC_SIC_DELTA: u8 = 2;

/// Bytes of frame header (`len` + `crc`) preceding every record.
pub const FRAME_HEADER_BYTES: usize = 8;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table generated at compile time — no dependency.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Which pane of a window buffer a checkpointed batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaneKey {
    /// A time-window pane, keyed by its pane index.
    Time(u64),
    /// A count-window's pending (not yet full) batch buffer.
    Pending,
}

/// One buffered window pane of one operator port, addressed by its
/// position in the node's runtime tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PaneRecord {
    /// Owning query.
    pub query: QueryId,
    /// Fragment index within the query (the `(query, fragment)` runtime
    /// key).
    pub fragment: usize,
    /// Operator position within the fragment's pipeline.
    pub op: usize,
    /// Input port of the operator.
    pub port: usize,
    /// Which pane of the window buffer.
    pub key: PaneKey,
    /// The buffered columnar batch.
    pub batch: TupleBatch,
}

/// A full checkpoint of one node's recoverable state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeSnapshot {
    /// The node's id.
    pub node: usize,
    /// The node's SIC table, `(query, latest sic)` per hosted query.
    pub sic: Vec<(QueryId, Sic)>,
    /// Every buffered window pane on the node.
    pub panes: Vec<PaneRecord>,
}

/// A coordinator SIC update logged since the last checkpoint. Carries the
/// absolute value, so replaying the tail in order converges regardless of
/// where the checkpoint cut the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SicDelta {
    /// The node whose table was updated.
    pub node: usize,
    /// The updated query.
    pub query: QueryId,
    /// The new absolute SIC value.
    pub sic: Sic,
}

/// Any record a WAL stream can hold.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A node checkpoint.
    Snapshot(NodeSnapshot),
    /// A SIC-table delta.
    SicDelta(SicDelta),
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a WAL operation failed. Decoding never panics: every anomaly in the
/// byte stream maps to [`WalError::Corrupt`] naming the offset.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The byte stream is invalid at `offset`.
    Corrupt {
        /// Byte offset of the offending frame or field.
        offset: u64,
        /// Human-readable description of the anomaly.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "wal corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

fn corrupt(offset: u64, detail: impl Into<String>) -> WalError {
    WalError::Corrupt {
        offset,
        detail: detail.into(),
    }
}

/// Prefixes a [`WalError::Corrupt`] detail with the file it came from.
fn in_file(err: WalError, path: &Path) -> WalError {
    match err {
        WalError::Corrupt { offset, detail } => WalError::Corrupt {
            offset,
            detail: format!("{}: {detail}", path.display()),
        },
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over one frame body. `base` is
/// the body's absolute offset, so errors name file positions.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Reader { buf, pos: 0, base }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WalError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt(
                self.offset(),
                format!(
                    "truncated {what}: need {n} bytes, {} left in record",
                    self.buf.len() - self.pos
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WalError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, WalError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WalError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self, what: &str) -> Result<f64, WalError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A length guarded against the bytes actually remaining, so corrupt
    /// counts fail as "truncated" instead of attempting huge allocations.
    fn count(&mut self, per_item: usize, what: &str) -> Result<usize, WalError> {
        let n = self.u32(what)? as usize;
        let need = n.saturating_mul(per_item.max(1));
        if self.buf.len() - self.pos < need {
            return Err(corrupt(
                self.offset(),
                format!(
                    "implausible {what} count {n}: needs ≥{need} bytes, {} left in record",
                    self.buf.len() - self.pos
                ),
            ));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, WalError> {
        let n = self.count(1, what)?;
        let at = self.offset();
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(at, format!("{what} is not valid utf-8")))
    }

    fn done(&self, what: &str) -> Result<(), WalError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(
                self.offset(),
                format!(
                    "{} trailing bytes after {what} record",
                    self.buf.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Batch codec
// ---------------------------------------------------------------------------

const PAYLOAD_ARENA: u8 = 0;
const PAYLOAD_TYPED: u8 = 1;

const VALUE_I64: u8 = 0;
const VALUE_F64: u8 = 1;
const VALUE_BOOL: u8 = 2;
const VALUE_TAG: u8 = 3;

fn field_type_code(ty: FieldType) -> u8 {
    match ty {
        FieldType::F64 => 0,
        FieldType::I64 => 1,
        FieldType::Bool => 2,
        FieldType::Tag => 3,
    }
}

fn field_type_from(code: u8, at: u64) -> Result<FieldType, WalError> {
    match code {
        0 => Ok(FieldType::F64),
        1 => Ok(FieldType::I64),
        2 => Ok(FieldType::Bool),
        3 => Ok(FieldType::Tag),
        other => Err(corrupt(at, format!("unknown field type code {other}"))),
    }
}

fn put_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::I64(x) => {
            out.push(VALUE_I64);
            put_u64(out, x as u64);
        }
        Value::F64(x) => {
            out.push(VALUE_F64);
            put_u64(out, x.to_bits());
        }
        Value::Bool(x) => {
            out.push(VALUE_BOOL);
            put_u64(out, x as u64);
        }
        Value::Tag(x) => {
            out.push(VALUE_TAG);
            put_u64(out, x as u64);
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, WalError> {
    let at = r.offset();
    let tag = r.u8("value tag")?;
    let raw = r.u64("value payload")?;
    match tag {
        VALUE_I64 => Ok(Value::I64(raw as i64)),
        VALUE_F64 => Ok(Value::F64(f64::from_bits(raw))),
        VALUE_BOOL => Ok(Value::Bool(raw != 0)),
        VALUE_TAG => Ok(Value::Tag(raw as u32)),
        other => Err(corrupt(at, format!("unknown value tag {other}"))),
    }
}

fn encode_batch(out: &mut Vec<u8>, batch: &TupleBatch) {
    let rows = batch.rows();
    put_u32(out, rows as u32);
    for ts in batch.ts_column() {
        put_u64(out, ts.0);
    }
    for sic in batch.sic_column() {
        put_u64(out, sic.0.to_bits());
    }
    let words = batch.drops().words();
    put_u32(out, words.len() as u32);
    for &w in words {
        put_u64(out, w);
    }
    match batch.payload_view() {
        PayloadView::Arena { width, values } => {
            out.push(PAYLOAD_ARENA);
            put_u32(out, width as u32);
            for &v in values {
                put_value(out, v);
            }
        }
        PayloadView::Typed { schema, columns } => {
            out.push(PAYLOAD_TYPED);
            put_u32(out, schema.len() as u32);
            for (name, ty) in schema.fields() {
                put_str(out, name);
                out.push(field_type_code(ty));
            }
            // Full dictionary snapshot in code order, so restored codes
            // resolve to the same strings (and an in-order re-intern into
            // a fresh interner reproduces the codes exactly).
            match schema.interner() {
                Some(dict) => {
                    let n = dict.len();
                    put_u32(out, n as u32);
                    for code in 0..n as u32 {
                        let s = dict.resolve(code).unwrap_or_else(|| Arc::from(""));
                        put_str(out, &s);
                    }
                }
                None => put_u32(out, 0),
            }
            for col in columns {
                match col {
                    Column::F64(v) => {
                        for &x in v {
                            put_u64(out, x.to_bits());
                        }
                    }
                    Column::I64(v) => {
                        for &x in v {
                            put_u64(out, x as u64);
                        }
                    }
                    Column::Bool(v) => {
                        let words = v.words();
                        put_u32(out, words.len() as u32);
                        for &w in words {
                            put_u64(out, w);
                        }
                    }
                    Column::Tag(v) => {
                        for &c in v.codes() {
                            put_u32(out, c);
                        }
                    }
                }
            }
        }
    }
}

/// Interned decode state shared across the panes of one restore pass:
/// all panes of a query that declared the same fields share one
/// [`Schema`] (hence one tag dictionary), exactly as they did live.
///
/// Public because the wire codec (`themis_net`) shares the WAL's batch
/// layout and keeps one cache per ingest connection, so every batch a
/// remote source ships for the same query resolves into one shared
/// schema and tag dictionary.
pub type SchemaCache = HashMap<(QueryId, Vec<(String, FieldType)>), Schema>;

/// Encodes one [`TupleBatch`] in the WAL's columnar batch layout
/// (timestamps, bit-exact SIC values, drop-bitmap words, then the arena
/// or typed payload with its code-ordered tag-dictionary snapshot).
/// Exposed so the wire codec frames the exact same bytes the durability
/// layer does; see [`decode_batch_bytes`] for the inverse.
pub fn encode_batch_bytes(out: &mut Vec<u8>, batch: &TupleBatch) {
    encode_batch(out, batch);
}

/// Decodes one batch that occupies *exactly* `buf` (trailing bytes are a
/// [`WalError::Corrupt`]). `base` is `buf`'s absolute offset within the
/// enclosing stream, so errors name real positions; `schemas` plays the
/// same role as in a restore pass — batches of the same query re-intern
/// their dictionary snapshots into one shared [`Schema`].
pub fn decode_batch_bytes(
    buf: &[u8],
    base: u64,
    query: QueryId,
    schemas: &mut SchemaCache,
) -> Result<TupleBatch, WalError> {
    let mut r = Reader::new(buf, base);
    let batch = decode_batch(&mut r, query, schemas)?;
    r.done("batch")?;
    Ok(batch)
}

fn read_drops(r: &mut Reader<'_>, rows: usize) -> Result<DropBitmap, WalError> {
    let words_len = r.count(8, "drop words")?;
    let mut drops = DropBitmap::with_rows(rows);
    for w in 0..words_len {
        let at = r.offset();
        let word = r.u64("drop word")?;
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            let row = w * 64 + b;
            if row >= rows {
                return Err(corrupt(at, format!("drop bit {row} beyond {rows} rows")));
            }
            drops.drop_row(row);
            bits &= bits - 1;
        }
    }
    Ok(drops)
}

fn decode_batch(
    r: &mut Reader<'_>,
    query: QueryId,
    schemas: &mut SchemaCache,
) -> Result<TupleBatch, WalError> {
    let rows = r.count(16, "batch rows")?;
    let mut ts = Vec::with_capacity(rows);
    for _ in 0..rows {
        ts.push(Timestamp(r.u64("timestamp")?));
    }
    let mut sic = Vec::with_capacity(rows);
    for _ in 0..rows {
        sic.push(Sic(r.f64("sic")?));
    }
    let drops = read_drops(r, rows)?;
    let at = r.offset();
    match r.u8("payload tag")? {
        PAYLOAD_ARENA => {
            let width = r.u32("arena width")? as usize;
            let n = rows.saturating_mul(width);
            let mut values = Vec::with_capacity(n.min(r.buf.len() / 9));
            for _ in 0..n {
                values.push(read_value(r)?);
            }
            Ok(TupleBatch::from_arena_parts(width, ts, sic, values, drops))
        }
        PAYLOAD_TYPED => {
            let n_fields = r.count(6, "schema fields")?;
            let mut fields = Vec::with_capacity(n_fields);
            for _ in 0..n_fields {
                let name = r.str("field name")?;
                let at = r.offset();
                let ty = field_type_from(r.u8("field type")?, at)?;
                fields.push((name, ty));
            }
            let schema = schemas
                .entry((query, fields.clone()))
                .or_insert_with(|| Schema::new(fields.clone()))
                .clone();
            // Re-intern the snapshotted dictionary in code order; `remap`
            // translates stored codes into the (possibly pre-existing)
            // shared interner. Identity when the orders match — the
            // common case of a fresh restore.
            let n_dict = r.count(4, "tag dictionary")?;
            let mut remap = Vec::with_capacity(n_dict);
            if n_dict > 0 {
                let Some(dict) = schema.interner() else {
                    return Err(corrupt(
                        at,
                        "tag dictionary present but schema has no tag field",
                    ));
                };
                for _ in 0..n_dict {
                    let s = r.str("tag dictionary entry")?;
                    remap.push(dict.intern(&s));
                }
            }
            let mut columns = Vec::with_capacity(n_fields);
            for (i, (_, ty)) in fields.iter().enumerate() {
                match ty {
                    FieldType::F64 => {
                        let mut v = Vec::with_capacity(rows);
                        for _ in 0..rows {
                            v.push(r.f64("f64 column")?);
                        }
                        columns.push(Column::F64(v));
                    }
                    FieldType::I64 => {
                        let mut v = Vec::with_capacity(rows);
                        for _ in 0..rows {
                            v.push(r.u64("i64 column")? as i64);
                        }
                        columns.push(Column::I64(v));
                    }
                    FieldType::Bool => {
                        let words_len = r.count(8, "bool words")?;
                        let mut words = Vec::with_capacity(words_len);
                        for _ in 0..words_len {
                            words.push(r.u64("bool word")?);
                        }
                        let mut col = BoolColumn::with_capacity(rows);
                        for row in 0..rows {
                            let w = words.get(row / 64).copied().unwrap_or(0);
                            col.push(w >> (row % 64) & 1 != 0);
                        }
                        columns.push(Column::Bool(col));
                    }
                    FieldType::Tag => {
                        let dict = schema
                            .interner()
                            .cloned()
                            .unwrap_or_else(|| Arc::new(TagInterner::new()));
                        let mut col = TagColumn::with_capacity(dict, rows);
                        for _ in 0..rows {
                            let at = r.offset();
                            let code = r.u32("tag code")? as usize;
                            let Some(&mapped) = remap.get(code) else {
                                return Err(corrupt(
                                    at,
                                    format!(
                                        "tag code {code} beyond dictionary of {} in field {i}",
                                        remap.len()
                                    ),
                                ));
                            };
                            col.push_code(mapped);
                        }
                        columns.push(Column::Tag(col));
                    }
                }
            }
            Ok(TupleBatch::from_typed_parts(
                schema, ts, sic, columns, drops,
            ))
        }
        other => Err(corrupt(at, format!("unknown payload tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

fn encode_pane(out: &mut Vec<u8>, pane: &PaneRecord) {
    put_u32(out, pane.query.0);
    put_u32(out, pane.fragment as u32);
    put_u32(out, pane.op as u32);
    put_u32(out, pane.port as u32);
    match pane.key {
        PaneKey::Time(idx) => {
            out.push(0);
            put_u64(out, idx);
        }
        PaneKey::Pending => out.push(1),
    }
    encode_batch(out, &pane.batch);
}

fn decode_pane(r: &mut Reader<'_>, schemas: &mut SchemaCache) -> Result<PaneRecord, WalError> {
    let query = QueryId(r.u32("pane query")?);
    let fragment = r.u32("pane fragment")? as usize;
    let op = r.u32("pane op")? as usize;
    let port = r.u32("pane port")? as usize;
    let at = r.offset();
    let key = match r.u8("pane key tag")? {
        0 => PaneKey::Time(r.u64("pane index")?),
        1 => PaneKey::Pending,
        other => return Err(corrupt(at, format!("unknown pane key tag {other}"))),
    };
    let batch = decode_batch(r, query, schemas)?;
    Ok(PaneRecord {
        query,
        fragment,
        op,
        port,
        key,
        batch,
    })
}

fn encode_snapshot(out: &mut Vec<u8>, snap: &NodeSnapshot) {
    put_u32(out, snap.node as u32);
    put_u32(out, snap.sic.len() as u32);
    for &(query, sic) in &snap.sic {
        put_u32(out, query.0);
        put_u64(out, sic.0.to_bits());
    }
    put_u32(out, snap.panes.len() as u32);
    for pane in &snap.panes {
        encode_pane(out, pane);
    }
}

fn decode_snapshot(
    r: &mut Reader<'_>,
    schemas: &mut SchemaCache,
) -> Result<NodeSnapshot, WalError> {
    let node = r.u32("snapshot node")? as usize;
    let n_sic = r.count(12, "sic entries")?;
    let mut sic = Vec::with_capacity(n_sic);
    for _ in 0..n_sic {
        let query = QueryId(r.u32("sic query")?);
        sic.push((query, Sic(r.f64("sic value")?)));
    }
    let n_panes = r.count(17, "panes")?;
    let mut panes = Vec::with_capacity(n_panes);
    for _ in 0..n_panes {
        panes.push(decode_pane(r, schemas)?);
    }
    Ok(NodeSnapshot { node, sic, panes })
}

fn encode_delta(out: &mut Vec<u8>, delta: &SicDelta) {
    put_u32(out, delta.node as u32);
    put_u32(out, delta.query.0);
    put_u64(out, delta.sic.0.to_bits());
}

fn decode_delta(r: &mut Reader<'_>) -> Result<SicDelta, WalError> {
    Ok(SicDelta {
        node: r.u32("delta node")? as usize,
        query: QueryId(r.u32("delta query")?),
        sic: Sic(r.f64("delta sic")?),
    })
}

/// Appends one framed record to `out`.
pub fn encode_record(record: &WalRecord, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    match record {
        WalRecord::Snapshot(s) => {
            out.push(REC_NODE_SNAPSHOT);
            encode_snapshot(out, s);
        }
        WalRecord::SicDelta(d) => {
            out.push(REC_SIC_DELTA);
            encode_delta(out, d);
        }
    }
    let body = start + FRAME_HEADER_BYTES;
    let len = (out.len() - body) as u32;
    let crc = crc32(&out[body..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

fn decode_stream(buf: &[u8], tolerate_torn_tail: bool) -> Result<(Vec<WalRecord>, bool), WalError> {
    let mut records = Vec::new();
    let mut schemas = SchemaCache::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let remaining = buf.len() - pos;
        if remaining < FRAME_HEADER_BYTES {
            if tolerate_torn_tail {
                return Ok((records, true));
            }
            return Err(corrupt(
                pos as u64,
                format!("truncated frame header: {remaining} bytes"),
            ));
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 {
            return Err(corrupt(pos as u64, "empty frame"));
        }
        if remaining - FRAME_HEADER_BYTES < len {
            // The record the crash interrupted: its bytes simply end
            // early. Only ever tolerated as the *final* frame.
            if tolerate_torn_tail {
                return Ok((records, true));
            }
            return Err(corrupt(
                pos as u64,
                format!(
                    "truncated frame body: header declares {len} bytes, {} present",
                    remaining - FRAME_HEADER_BYTES
                ),
            ));
        }
        let body = &buf[pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len];
        let computed = crc32(body);
        if computed != stored_crc {
            // A complete frame that fails its checksum is damage, not a
            // torn write — always a hard error.
            return Err(corrupt(
                pos as u64,
                format!("checksum mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"),
            ));
        }
        let base = (pos + FRAME_HEADER_BYTES) as u64;
        let mut r = Reader::new(&body[1..], base + 1);
        match body[0] {
            REC_NODE_SNAPSHOT => {
                let snap = decode_snapshot(&mut r, &mut schemas)?;
                r.done("snapshot")?;
                records.push(WalRecord::Snapshot(snap));
            }
            REC_SIC_DELTA => {
                let delta = decode_delta(&mut r)?;
                r.done("sic delta")?;
                records.push(WalRecord::SicDelta(delta));
            }
            other => {
                return Err(corrupt(base, format!("unknown record kind {other}")));
            }
        }
        pos += FRAME_HEADER_BYTES + len;
    }
    Ok((records, false))
}

/// Strictly decodes a record stream: any anomaly — truncation anywhere,
/// checksum mismatch, malformed body — is a [`WalError::Corrupt`]. Used
/// for checkpoint files, which are written atomically and must be whole.
pub fn decode_records(buf: &[u8]) -> Result<Vec<WalRecord>, WalError> {
    decode_stream(buf, false).map(|(records, _)| records)
}

/// Decodes a record stream tolerating a torn final record (the append a
/// crash interrupted): an *incomplete* last frame stops decoding and sets
/// the returned flag. A complete frame with a bad checksum is still a
/// hard [`WalError::Corrupt`].
pub fn decode_records_tolerant(buf: &[u8]) -> Result<(Vec<WalRecord>, bool), WalError> {
    decode_stream(buf, true)
}

// ---------------------------------------------------------------------------
// Shard log: checkpoint files + delta tail
// ---------------------------------------------------------------------------

/// The durability directory of shard `shard` under `root`.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq}.ckpt"))
}

fn tail_path(dir: &Path) -> PathBuf {
    dir.join("tail.wal")
}

/// Sequence numbers of the checkpoints present in `dir`, unsorted.
fn checkpoint_seqs(dir: &Path) -> Result<Vec<u64>, WalError> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    Ok(seqs)
}

/// One shard's durable log: atomically-replaced checkpoint files plus an
/// appended delta tail, under `root/shard-<i>/`.
#[derive(Debug)]
pub struct ShardLog {
    dir: PathBuf,
    next_seq: u64,
    tail: Option<fs::File>,
}

impl ShardLog {
    /// Opens (creating directories as needed) the log of `shard` under
    /// `root`. Appends continue an existing tail; the next checkpoint
    /// sequence follows the highest already on disk.
    pub fn create(root: &Path, shard: usize) -> Result<Self, WalError> {
        let dir = shard_dir(root, shard);
        fs::create_dir_all(&dir)?;
        let next_seq = checkpoint_seqs(&dir)?
            .into_iter()
            .max()
            .map_or(0, |s| s + 1);
        Ok(ShardLog {
            dir,
            next_seq,
            tail: None,
        })
    }

    /// The shard's durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a checkpoint holding `snapshots` (temp file + rename, so a
    /// crash mid-write never leaves a partial checkpoint), truncates the
    /// delta tail it supersedes, and prunes older checkpoint files.
    pub fn checkpoint(&mut self, snapshots: &[NodeSnapshot]) -> Result<(), WalError> {
        let mut buf = Vec::new();
        for snap in snapshots {
            let start = buf.len();
            buf.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
            buf.push(REC_NODE_SNAPSHOT);
            encode_snapshot(&mut buf, snap);
            let body = start + FRAME_HEADER_BYTES;
            let len = (buf.len() - body) as u32;
            let crc = crc32(&buf[body..]);
            buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
            buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        }
        let seq = self.next_seq;
        let tmp = self.dir.join("checkpoint.tmp");
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, checkpoint_path(&self.dir, seq))?;
        self.next_seq = seq + 1;
        // The tail's deltas are folded into this checkpoint: start fresh.
        self.tail = None;
        fs::write(tail_path(&self.dir), b"")?;
        for old in checkpoint_seqs(&self.dir)? {
            if old < seq {
                let _ = fs::remove_file(checkpoint_path(&self.dir, old));
            }
        }
        Ok(())
    }

    /// Appends one SIC delta to the tail and flushes it to the OS.
    pub fn append(&mut self, delta: &SicDelta) -> Result<(), WalError> {
        if self.tail.is_none() {
            self.tail = Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(tail_path(&self.dir))?,
            );
        }
        let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + 17);
        encode_record(&WalRecord::SicDelta(*delta), &mut buf);
        let file = self.tail.as_mut().expect("tail opened above");
        file.write_all(&buf)?;
        file.flush()?;
        Ok(())
    }
}

/// Everything recoverable for one shard: the latest checkpoint's node
/// snapshots plus the delta tail logged after it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardRestore {
    /// Node snapshots of the newest checkpoint, in file order.
    pub snapshots: Vec<NodeSnapshot>,
    /// SIC deltas appended since that checkpoint, in log order.
    pub deltas: Vec<SicDelta>,
    /// True when the tail ended in a torn (incomplete) record that was
    /// skipped — the write the crash interrupted.
    pub torn_tail: bool,
}

/// Reads shard `shard`'s durable state under `root`: the newest
/// checkpoint (strict decode — checkpoints are atomic and must be whole)
/// plus the delta tail (tolerant decode — a torn final record is
/// skipped and flagged). `Ok(None)` when the shard never logged anything.
pub fn restore_shard(root: &Path, shard: usize) -> Result<Option<ShardRestore>, WalError> {
    let dir = shard_dir(root, shard);
    if !dir.is_dir() {
        return Ok(None);
    }
    let mut restore = ShardRestore::default();
    let mut found = false;
    if let Some(seq) = checkpoint_seqs(&dir)?.into_iter().max() {
        let path = checkpoint_path(&dir, seq);
        let bytes = fs::read(&path)?;
        for record in decode_records(&bytes).map_err(|e| in_file(e, &path))? {
            match record {
                WalRecord::Snapshot(s) => restore.snapshots.push(s),
                WalRecord::SicDelta(d) => restore.deltas.push(d),
            }
        }
        found = true;
    }
    let tail = tail_path(&dir);
    if tail.is_file() {
        let bytes = fs::read(&tail)?;
        if !bytes.is_empty() {
            found = true;
        }
        let (records, torn) = decode_records_tolerant(&bytes).map_err(|e| in_file(e, &tail))?;
        restore.torn_tail = torn;
        for record in records {
            match record {
                WalRecord::Snapshot(s) => restore.snapshots.push(s),
                WalRecord::SicDelta(d) => restore.deltas.push(d),
            }
        }
    }
    Ok(found.then_some(restore))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("themis-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn arena_batch() -> TupleBatch {
        let mut b = TupleBatch::with_capacity(2, 3);
        for i in 0..3i64 {
            b.push_row(
                Timestamp::from_millis(10 * (i as u64 + 1)),
                Sic(0.125 * (i + 1) as f64),
                &[Value::I64(i), Value::F64(i as f64 * 0.5)],
            );
        }
        b.drop_row(1);
        b
    }

    fn snapshot() -> NodeSnapshot {
        NodeSnapshot {
            node: 3,
            sic: vec![(QueryId(1), Sic(0.25)), (QueryId(2), Sic(0.5))],
            panes: vec![PaneRecord {
                query: QueryId(1),
                fragment: 0,
                op: 0,
                port: 1,
                key: PaneKey::Time(42),
                batch: arena_batch(),
            }],
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_stream_round_trips() {
        let mut buf = Vec::new();
        encode_record(&WalRecord::Snapshot(snapshot()), &mut buf);
        let delta = SicDelta {
            node: 3,
            query: QueryId(1),
            sic: Sic(0.75),
        };
        encode_record(&WalRecord::SicDelta(delta), &mut buf);
        let records = decode_records(&buf).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], WalRecord::Snapshot(snapshot()));
        assert_eq!(records[1], WalRecord::SicDelta(delta));
    }

    #[test]
    fn torn_tail_is_tolerated_but_strict_decode_rejects_it() {
        let mut buf = Vec::new();
        encode_record(
            &WalRecord::SicDelta(SicDelta {
                node: 0,
                query: QueryId(9),
                sic: Sic(0.5),
            }),
            &mut buf,
        );
        let whole = buf.len();
        encode_record(&WalRecord::Snapshot(snapshot()), &mut buf);
        buf.truncate(whole + 11); // rip the second record mid-body
        let (records, torn) = decode_records_tolerant(&buf).unwrap();
        assert_eq!(records.len(), 1);
        assert!(torn);
        let err = decode_records(&buf).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("truncated frame body"), "{err}");
    }

    #[test]
    fn flipped_byte_is_a_checksum_error_even_when_tolerant() {
        let mut buf = Vec::new();
        encode_record(&WalRecord::Snapshot(snapshot()), &mut buf);
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = decode_records_tolerant(&buf).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn shard_log_checkpoints_appends_and_restores() {
        let root = tmp_root("cycle");
        let mut log = ShardLog::create(&root, 7).unwrap();
        log.checkpoint(&[snapshot()]).unwrap();
        let d1 = SicDelta {
            node: 3,
            query: QueryId(1),
            sic: Sic(0.3),
        };
        let d2 = SicDelta {
            node: 3,
            query: QueryId(1),
            sic: Sic(0.6),
        };
        log.append(&d1).unwrap();
        log.append(&d2).unwrap();
        let restore = restore_shard(&root, 7).unwrap().unwrap();
        assert_eq!(restore.snapshots, vec![snapshot()]);
        assert_eq!(restore.deltas, vec![d1, d2]);
        assert!(!restore.torn_tail);
        // A new checkpoint truncates the tail and prunes the old file.
        log.checkpoint(&[snapshot()]).unwrap();
        let restore = restore_shard(&root, 7).unwrap().unwrap();
        assert!(restore.deltas.is_empty());
        let seqs = checkpoint_seqs(&shard_dir(&root, 7)).unwrap();
        assert_eq!(seqs, vec![1]);
        // Unlogged shards restore to None.
        assert!(restore_shard(&root, 8).unwrap().is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_on_disk_is_flagged_and_skipped() {
        let root = tmp_root("torn");
        let mut log = ShardLog::create(&root, 0).unwrap();
        let d = SicDelta {
            node: 1,
            query: QueryId(4),
            sic: Sic(0.9),
        };
        log.append(&d).unwrap();
        log.append(&d).unwrap();
        drop(log);
        let tail = tail_path(&shard_dir(&root, 0));
        let bytes = fs::read(&tail).unwrap();
        fs::write(&tail, &bytes[..bytes.len() - 5]).unwrap();
        let restore = restore_shard(&root, 0).unwrap().unwrap();
        assert_eq!(restore.deltas, vec![d]);
        assert!(restore.torn_tail);
        let _ = fs::remove_dir_all(&root);
    }
}
