//! Columnar tuple batches — the allocation-free hot-path representation.
//!
//! The seed moved `Vec<Tuple>` through every hot loop: each [`Tuple`]
//! owns a heap-allocated `Vec<Value>` payload, so building a source
//! batch costs one allocation per tuple, shedding spliced tuple vectors,
//! and every window pane re-allocated the tuples it grouped. THEMIS's
//! premise is that fair shedding only pays off while the *mechanism*
//! stays negligible, so the enforcement path must not pay a per-tuple
//! allocator round-trip.
//!
//! [`TupleBatch`] stores the same data column-wise:
//!
//! * a contiguous **timestamp column** (`τ` of the §3 data model),
//! * a contiguous **SIC column** shared by the shedder and the Eq.-3
//!   propagation (the per-tuple SIC tags of §4),
//! * the **payload**, in one of two layouts:
//!   * **typed columns** for batches whose query declared a [`Schema`]:
//!     one contiguous native [`Column`] (`Vec<f64>` / `Vec<i64>` /
//!     bitset) per field, so aggregate kernels read plain slices with no
//!     per-element enum match;
//!   * a fixed-width [`Value`] **arena** holding payload rows back to
//!     back — the fallback for schema-less batches and for the
//!     [`TupleBatch::from_tuples`] / [`TupleBatch::into_tuples`] edges,
//!     which are unchanged;
//! * a [`DropBitmap`] marking shed rows, so dropping tuples flips bits
//!   instead of splicing vectors.
//!
//! Row views are provided by [`TupleRef`] (a borrowed `(τ, SIC, V)`
//! triple whose values are a [`RowValues`] view over either layout) and
//! [`TupleBatch::iter`]; the edges of the system — sources building
//! batches, reports materialising result rows — can still convert from
//! and to `Vec<Tuple>` via [`TupleBatch::from_tuples`] and
//! [`TupleBatch::into_tuples`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::bits::BitVec;
use crate::schema::{BoolColumn, Column, Schema, TagColumn};
use crate::sic::Sic;
use crate::time::Timestamp;
use crate::tuple::Tuple;
use crate::value::Value;

/// Count of capacity-carrying batch constructions
/// ([`TupleBatch::with_capacity`] / [`TupleBatch::with_schema_capacity`])
/// since process start. [`BatchPool`] reuse skips these constructors, so
/// benches assert on deltas of this counter to make pooling's effect
/// visible next to throughput.
static BATCH_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide batch-allocation counter (monotonic; compare
/// deltas around a measured region).
pub fn batch_allocs() -> u64 {
    BATCH_ALLOCS.load(Ordering::Relaxed)
}

/// A bitmap over batch rows; a set bit means the row has been dropped
/// (shed). Bits are allocated lazily: a batch that never sheds carries an
/// empty bitmap. Callers that know the row count up front (a
/// [`ShedDecision`](crate::shedder::ShedDecision) covering a whole input
/// buffer) pre-size the words with [`DropBitmap::with_rows`] so marking
/// bits never reallocates.
///
/// Equality is semantic: trailing zero words do not distinguish bitmaps,
/// so a pre-sized empty bitmap equals a lazy one.
///
/// The word storage is a [`BitVec`] (the workspace's one shared bitset);
/// this wrapper only pins the drop-bitmap vocabulary and semantics.
#[derive(Debug, Clone, Default)]
pub struct DropBitmap {
    bits: BitVec,
}

impl DropBitmap {
    /// An empty bitmap: every row is live.
    pub fn new() -> Self {
        DropBitmap::default()
    }

    /// An empty bitmap pre-sized for `rows` rows, so [`DropBitmap::drop_row`]
    /// on any row below `rows` never grows the word vector.
    pub fn with_rows(rows: usize) -> Self {
        DropBitmap {
            bits: BitVec::with_bits(rows),
        }
    }

    /// Grows the word vector (if needed) to cover `rows` rows in one
    /// resize, instead of one word at a time per [`DropBitmap::drop_row`].
    pub fn ensure_rows(&mut self, rows: usize) {
        self.bits.ensure_bits(rows);
    }

    /// Marks row `i` dropped; returns `true` when the bit was newly set.
    pub fn drop_row(&mut self, i: usize) -> bool {
        self.bits.set(i)
    }

    /// True when row `i` has been dropped.
    #[inline]
    pub fn is_dropped(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Number of dropped rows.
    #[inline]
    pub fn dropped(&self) -> usize {
        self.bits.count_ones()
    }

    /// The `w`-th 64-row word of drop bits (0 beyond the allocated words,
    /// meaning "all live"). Kernels walk the bitmap word-at-a-time: a zero
    /// word admits a whole 64-row block to the vectorized path.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.bits.word(w)
    }

    /// The allocated drop words (rows past the end are live).
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }

    /// Resets the bitmap: every row is live again.
    pub fn clear(&mut self) {
        self.bits.clear();
    }
}

impl PartialEq for DropBitmap {
    fn eq(&self, other: &Self) -> bool {
        if self.dropped() != other.dropped() {
            return false;
        }
        let n = self.bits.words().len().max(other.bits.words().len());
        (0..n).all(|i| self.word(i) == other.word(i))
    }
}

/// A borrowed view of one row's payload values, over either batch layout.
///
/// For arena batches this wraps the row's `&[Value]` slice; for
/// schema-typed batches it indexes the native columns, materialising a
/// [`Value`] only at the access site. Equality is semantic on the
/// materialised values (note that `Value::F64(1.0) != Value::I64(1)`, so
/// a typed `f64` column never equals an arena holding `I64`s).
#[derive(Debug, Clone, Copy)]
pub enum RowValues<'a> {
    /// A row slice of a fixed-width [`Value`] arena.
    Arena(&'a [Value]),
    /// One row of a schema-typed batch's native columns.
    Typed {
        /// The batch's declared schema.
        schema: &'a Schema,
        /// The batch's typed columns (one per schema field).
        columns: &'a [Column],
        /// The physical row index.
        row: usize,
    },
}

impl RowValues<'_> {
    /// Number of payload fields in the row.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            RowValues::Arena(s) => s.len(),
            RowValues::Typed { columns, .. } => columns.len(),
        }
    }

    /// True when the row has no payload fields.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Field `i`, if present.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Value> {
        match self {
            RowValues::Arena(s) => s.get(i).copied(),
            RowValues::Typed { columns, row, .. } => columns.get(i).map(|c| c.value(*row)),
        }
    }

    /// Field `i` (panics if out of range).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            RowValues::Arena(s) => s[i],
            RowValues::Typed { columns, row, .. } => columns[i].value(*row),
        }
    }

    /// Numeric view of field `i` (panics if out of range).
    #[inline]
    pub fn f64(&self, i: usize) -> f64 {
        match self {
            RowValues::Arena(s) => s[i].as_f64(),
            RowValues::Typed { columns, row, .. } => columns[i].f64_at(*row),
        }
    }

    /// Integer view of field `i` (panics if out of range).
    #[inline]
    pub fn i64(&self, i: usize) -> i64 {
        self.value(i).as_i64()
    }

    /// Iterates the row's values in field order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Materialises the row as an owning value vector (edge use).
    pub fn to_vec(&self) -> Vec<Value> {
        match self {
            RowValues::Arena(s) => s.to_vec(),
            RowValues::Typed { .. } => self.iter().collect(),
        }
    }
}

impl PartialEq for RowValues<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// A borrowed row view: the `(τ, SIC, V)` triple of one tuple without
/// materialising an owning [`Tuple`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleRef<'a> {
    /// Logical timestamp of the tuple.
    pub ts: Timestamp,
    /// SIC mass carried by the tuple.
    pub sic: Sic,
    /// Payload fields (a borrowed view over the batch's payload layout).
    pub values: RowValues<'a>,
}

impl TupleRef<'_> {
    /// Numeric view of field `i` (panics if out of range).
    #[inline]
    pub fn f64(&self, i: usize) -> f64 {
        self.values.f64(i)
    }

    /// Integer view of field `i` (panics if out of range).
    #[inline]
    pub fn i64(&self, i: usize) -> i64 {
        self.values.i64(i)
    }

    /// Field `i`, if present.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Value> {
        self.values.get(i)
    }

    /// Materialises an owning [`Tuple`] (edge/report use only — this is
    /// the per-tuple allocation the batch representation avoids).
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(self.ts, self.sic, self.values.to_vec())
    }
}

/// The payload storage of a batch: a fixed-width [`Value`] arena
/// (schema-less fallback) or one native column per declared field.
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    Arena {
        width: usize,
        values: Vec<Value>,
    },
    Typed {
        schema: Schema,
        columns: Vec<Column>,
    },
}

impl Default for Payload {
    fn default() -> Self {
        Payload::Arena {
            width: 0,
            values: Vec::new(),
        }
    }
}

impl Payload {
    /// An empty typed payload with the given schema and column types —
    /// the single construction both layout-adoption paths share. Tag
    /// columns keep the source columns' dictionary ([`Column::empty_like`]),
    /// so adopted panes stay code-compatible with their input.
    fn empty_typed_like(schema: &Schema, columns: &[Column]) -> Payload {
        Payload::Typed {
            schema: schema.clone(),
            columns: columns.iter().map(|c| c.empty_like(0)).collect(),
        }
    }
}

/// A borrowed view of the payload storage for the checkpoint codec
/// ([`crate::wal`]): the codec serialises whichever representation the
/// batch already holds, so restore rebuilds a bit-identical layout.
#[derive(Clone, Copy)]
pub(crate) enum PayloadView<'a> {
    /// Schema-less fixed-width value arena.
    Arena {
        /// Payload fields per row.
        width: usize,
        /// Row-major `rows * width` value arena.
        values: &'a [Value],
    },
    /// Schema-typed native columns.
    Typed {
        /// The declaring schema.
        schema: &'a Schema,
        /// One column per declared field.
        columns: &'a [Column],
    },
}

/// Per-element access into one payload field, resolved once per column
/// walk so the per-row loop carries no payload-layout dispatch.
#[derive(Clone, Copy)]
enum ColumnSource<'a> {
    Arena {
        values: &'a [Value],
        width: usize,
        field: usize,
    },
    F64(&'a [f64]),
    I64(&'a [i64]),
    Bool(&'a BoolColumn),
    Tag(&'a [u32]),
    Missing,
}

impl<'a> ColumnSource<'a> {
    fn new(payload: &'a Payload, field: usize) -> Self {
        match payload {
            Payload::Arena { width, values } => {
                if field < *width {
                    ColumnSource::Arena {
                        values,
                        width: *width,
                        field,
                    }
                } else {
                    ColumnSource::Missing
                }
            }
            Payload::Typed { columns, .. } => match columns.get(field) {
                Some(Column::F64(v)) => ColumnSource::F64(v),
                Some(Column::I64(v)) => ColumnSource::I64(v),
                Some(Column::Bool(v)) => ColumnSource::Bool(v),
                Some(Column::Tag(v)) => ColumnSource::Tag(v.codes()),
                None => ColumnSource::Missing,
            },
        }
    }

    #[inline]
    fn f64_at(&self, i: usize) -> f64 {
        match self {
            ColumnSource::Arena {
                values,
                width,
                field,
            } => values[i * width + field].as_f64(),
            ColumnSource::F64(v) => v[i],
            ColumnSource::I64(v) => v[i] as f64,
            ColumnSource::Bool(v) => v.get(i) as i64 as f64,
            ColumnSource::Tag(v) => v[i] as f64,
            ColumnSource::Missing => 0.0,
        }
    }
}

/// A columnar batch of tuples: contiguous timestamp/SIC columns, a
/// payload (schema-typed native columns, or one fixed-width value arena
/// as the schema-less fallback), and a [`DropBitmap`] for shed rows.
///
/// **Arena batches** ([`TupleBatch::new`] / [`TupleBatch::with_capacity`]
/// / [`TupleBatch::from_tuples`]): the first row pushed into an empty
/// batch fixes the payload width; later rows are padded with
/// `Value::F64(0.0)` or truncated to fit (the same semantics as the row
/// path's `values.get(i).unwrap_or(0.0)` reads).
///
/// **Typed batches** ([`TupleBatch::with_schema`]): each field lives in a
/// contiguous native [`Column`] declared by a [`Schema`]; pushed values
/// are coerced to the field type, short rows pad with the type's zero
/// value, long rows truncate. [`TupleBatch::f64_column`] /
/// [`TupleBatch::i64_column`] expose the raw slices that the aggregate
/// kernels consume.
///
/// Equality compares the stored representation, so an arena batch never
/// equals a typed batch even when both hold the same logical rows.
///
/// ```
/// use themis_core::prelude::*;
///
/// let mut batch = TupleBatch::with_capacity(1, 3);
/// for (ms, v) in [(10u64, 1.0), (20, 2.0), (30, 3.0)] {
///     batch.push_row(Timestamp::from_millis(ms), Sic(0.1), &[Value::F64(v)]);
/// }
/// // Shedding marks a bit — no rows move.
/// batch.drop_row(1);
/// assert_eq!(batch.rows(), 3);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.column_f64(0).sum::<f64>(), 4.0);
/// assert!((batch.sic_total().value() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleBatch {
    ts: Vec<Timestamp>,
    sic: Vec<Sic>,
    payload: Payload,
    drops: DropBitmap,
}

impl TupleBatch {
    /// An empty arena batch; the first pushed row decides the payload
    /// width.
    pub fn new() -> Self {
        TupleBatch::default()
    }

    /// An empty arena batch with a fixed payload `width` and room for
    /// `rows`.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        BATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TupleBatch {
            ts: Vec::with_capacity(rows),
            sic: Vec::with_capacity(rows),
            payload: Payload::Arena {
                width,
                values: Vec::with_capacity(rows * width),
            },
            drops: DropBitmap::new(),
        }
    }

    /// An empty schema-typed batch: one native column per declared field.
    pub fn with_schema(schema: Schema) -> Self {
        TupleBatch::with_schema_capacity(schema, 0)
    }

    /// An empty schema-typed batch with room for `rows`. Tag fields get
    /// columns sharing the schema's dictionary ([`Schema::column_for`]).
    pub fn with_schema_capacity(schema: Schema, rows: usize) -> Self {
        BATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let columns = (0..schema.len())
            .map(|i| schema.column_for(i, rows).expect("field in range"))
            .collect();
        TupleBatch {
            ts: Vec::with_capacity(rows),
            sic: Vec::with_capacity(rows),
            payload: Payload::Typed { schema, columns },
            drops: DropBitmap::new(),
        }
    }

    /// Builds an arena batch from owning tuples (the source/report edge).
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        let width = tuples.first().map(|t| t.values.len()).unwrap_or(0);
        let mut b = TupleBatch::with_capacity(width, tuples.len());
        for t in &tuples {
            b.push_row(t.ts, t.sic, &t.values);
        }
        b
    }

    /// The declared schema, when this is a typed batch.
    #[inline]
    pub fn schema(&self) -> Option<&Schema> {
        match &self.payload {
            Payload::Typed { schema, .. } => Some(schema),
            Payload::Arena { .. } => None,
        }
    }

    /// Payload fields per row (0 until an arena batch's first row is
    /// pushed; the schema length for typed batches).
    #[inline]
    pub fn width(&self) -> usize {
        match &self.payload {
            Payload::Arena { width, .. } => *width,
            Payload::Typed { schema, .. } => schema.len(),
        }
    }

    /// Physical rows, dropped ones included.
    #[inline]
    pub fn rows(&self) -> usize {
        self.ts.len()
    }

    /// Live (not dropped) rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.ts.len() - self.drops.dropped()
    }

    /// True when no live rows remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one row. Arena batches adopt the first row's width; typed
    /// batches coerce each value to its column type, padding short rows
    /// with the field type's zero and truncating long ones.
    #[inline]
    pub fn push_row(&mut self, ts: Timestamp, sic: Sic, values: &[Value]) {
        self.ts.push(ts);
        self.sic.push(sic);
        self.push_payload_values(values);
    }

    /// Appends `values` to the payload (after ts/sic were pushed).
    #[inline]
    fn push_payload_values(&mut self, values: &[Value]) {
        match &mut self.payload {
            Payload::Arena {
                width,
                values: arena,
            } => {
                if values.len() == *width {
                    // Fast path: uniform schema, one contiguous copy.
                    arena.extend_from_slice(values);
                } else if self.ts.len() == 1 && *width == 0 {
                    // Width adoption on the first row.
                    *width = values.len();
                    arena.extend_from_slice(values);
                } else {
                    // Pad / truncate non-uniform rows (cold).
                    let take = values.len().min(*width);
                    arena.extend_from_slice(&values[..take]);
                    for _ in take..*width {
                        arena.push(Value::F64(0.0));
                    }
                }
            }
            Payload::Typed { columns, .. } => {
                for (i, col) in columns.iter_mut().enumerate() {
                    match values.get(i) {
                        Some(&v) => col.push_value(v),
                        None => {
                            let pad = col.field_type().default_value();
                            col.push_value(pad);
                        }
                    }
                }
            }
        }
    }

    /// Appends an owning tuple's row.
    #[inline]
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.push_row(t.ts, t.sic, &t.values);
    }

    /// Appends a borrowed row. Same-layout copies (typed→typed with an
    /// equal schema, arena→arena) move native values without
    /// materialising [`Value`]s; an empty layout-less batch adopts the
    /// row's typed layout first, so window panes sliced from typed
    /// batches stay typed.
    #[inline]
    pub fn push_ref(&mut self, r: TupleRef<'_>) {
        self.push_ref_sic(r, r.sic);
    }

    /// [`TupleBatch::push_ref`] with an overridden SIC value (sliding
    /// windows divide a tuple's SIC across its panes).
    pub fn push_ref_sic(&mut self, r: TupleRef<'_>, sic: Sic) {
        if self.ts.is_empty() {
            self.adopt_layout_of(&r.values);
        }
        self.ts.push(r.ts);
        self.sic.push(sic);
        match (&mut self.payload, r.values) {
            (
                Payload::Typed { schema, columns },
                RowValues::Typed {
                    schema: src_schema,
                    columns: src_columns,
                    row,
                },
            ) if schema.same_as(src_schema) || *schema == *src_schema => {
                for (d, s) in columns.iter_mut().zip(src_columns) {
                    d.push_from(s, row);
                }
            }
            (Payload::Arena { .. }, RowValues::Arena(slice)) => {
                self.push_payload_values(slice);
            }
            (_, rv) => {
                // Cross-layout (cold): coerce through owned values.
                let tmp = rv.to_vec();
                self.push_payload_values(&tmp);
            }
        }
    }

    /// If this batch is still layout-less (the empty arena default),
    /// adopt the typed layout of `values`' batch.
    fn adopt_layout_of(&mut self, values: &RowValues<'_>) {
        if let (
            Payload::Arena {
                width: 0,
                values: arena,
            },
            RowValues::Typed {
                schema, columns, ..
            },
        ) = (&self.payload, values)
        {
            if arena.is_empty() {
                self.payload = Payload::empty_typed_like(schema, columns);
            }
        }
    }

    /// Same, adopting from a whole batch (used by append paths).
    fn adopt_layout_from(&mut self, other: &TupleBatch) {
        if let Payload::Arena { width: 0, values } = &self.payload {
            if values.is_empty() {
                self.payload = match &other.payload {
                    Payload::Arena { width, .. } => Payload::Arena {
                        width: *width,
                        values: Vec::new(),
                    },
                    Payload::Typed { schema, columns } => {
                        Payload::empty_typed_like(schema, columns)
                    }
                };
            }
        }
    }

    /// True when both batches store the same payload layout (equal arena
    /// width, or equal schema), so rows copy column-to-column.
    fn same_layout(&self, other: &TupleBatch) -> bool {
        match (&self.payload, &other.payload) {
            (Payload::Arena { width: a, .. }, Payload::Arena { width: b, .. }) => a == b,
            (Payload::Typed { schema: a, .. }, Payload::Typed { schema: b, .. }) => {
                a.same_as(b) || a == b
            }
            _ => false,
        }
    }

    /// Borrowed view of physical row `i` (dropped rows included; check
    /// [`TupleBatch::is_live`] when iterating manually).
    #[inline]
    pub fn row(&self, i: usize) -> TupleRef<'_> {
        TupleRef {
            ts: self.ts[i],
            sic: self.sic[i],
            values: match &self.payload {
                Payload::Arena { width, values } => {
                    RowValues::Arena(&values[i * width..(i + 1) * width])
                }
                Payload::Typed { schema, columns } => RowValues::Typed {
                    schema,
                    columns,
                    row: i,
                },
            },
        }
    }

    /// True when physical row `i` has not been dropped.
    #[inline]
    pub fn is_live(&self, i: usize) -> bool {
        !self.drops.is_dropped(i)
    }

    /// Marks physical row `i` dropped (shed); returns `true` when the row
    /// was live before. This is the shedder's O(1) alternative to
    /// splicing a `Vec<Tuple>`.
    #[inline]
    pub fn drop_row(&mut self, i: usize) -> bool {
        debug_assert!(i < self.ts.len());
        self.drops.drop_row(i)
    }

    /// Marks every row dropped (a whole-batch shed). Pre-sizes the bitmap
    /// to the row count so the loop never reallocates.
    pub fn drop_all(&mut self) {
        self.drops.ensure_rows(self.ts.len());
        for i in 0..self.ts.len() {
            self.drops.drop_row(i);
        }
    }

    /// The drop bitmap.
    #[inline]
    pub fn drops(&self) -> &DropBitmap {
        &self.drops
    }

    /// The raw timestamp column, dropped rows included (checkpoint codec
    /// read path).
    #[inline]
    pub(crate) fn ts_column(&self) -> &[Timestamp] {
        &self.ts
    }

    /// The raw SIC column, dropped rows included (checkpoint codec read
    /// path).
    #[inline]
    pub(crate) fn sic_column(&self) -> &[Sic] {
        &self.sic
    }

    /// Borrows the payload storage for the checkpoint codec.
    #[inline]
    pub(crate) fn payload_view(&self) -> PayloadView<'_> {
        match &self.payload {
            Payload::Arena { width, values } => PayloadView::Arena {
                width: *width,
                values,
            },
            Payload::Typed { schema, columns } => PayloadView::Typed { schema, columns },
        }
    }

    /// Rebuilds an arena batch from decoded checkpoint parts.
    pub(crate) fn from_arena_parts(
        width: usize,
        ts: Vec<Timestamp>,
        sic: Vec<Sic>,
        values: Vec<Value>,
        drops: DropBitmap,
    ) -> Self {
        debug_assert_eq!(ts.len(), sic.len());
        debug_assert_eq!(values.len(), ts.len() * width);
        BATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TupleBatch {
            ts,
            sic,
            payload: Payload::Arena { width, values },
            drops,
        }
    }

    /// Rebuilds a schema-typed batch from decoded checkpoint parts.
    pub(crate) fn from_typed_parts(
        schema: Schema,
        ts: Vec<Timestamp>,
        sic: Vec<Sic>,
        columns: Vec<Column>,
        drops: DropBitmap,
    ) -> Self {
        debug_assert_eq!(ts.len(), sic.len());
        debug_assert_eq!(columns.len(), schema.len());
        debug_assert!(columns.iter().all(|c| c.len() == ts.len()));
        BATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TupleBatch {
            ts,
            sic,
            payload: Payload::Typed { schema, columns },
            drops,
        }
    }

    /// Iterates the live rows in physical order. Batches without drops
    /// (the common case) skip the bitmap test entirely.
    pub fn iter(&self) -> impl Iterator<Item = TupleRef<'_>> + Clone {
        let all_live = self.drops.dropped() == 0;
        (0..self.ts.len())
            .filter(move |&i| all_live || self.is_live(i))
            .map(move |i| self.row(i))
    }

    /// Streams the numeric view of one payload column over the live rows.
    /// This is the scalar aggregate read path: typed batches read their
    /// native column, arena batches do a strided walk over the value
    /// arena; kernels use [`TupleBatch::f64_column`] for slice access
    /// instead.
    ///
    /// The `field` index must be in range for a non-empty batch
    /// (`debug_assert`ed); in release builds an out-of-range field
    /// silently reads as 0.0 for every row, matching the row path's
    /// `values.get(i).unwrap_or(0.0)` semantics.
    pub fn column_f64(&self, field: usize) -> impl Iterator<Item = f64> + '_ {
        debug_assert!(
            self.ts.is_empty() || field < self.width(),
            "column_f64: field {field} out of range for width {}",
            self.width()
        );
        let all_live = self.drops.dropped() == 0;
        let src = ColumnSource::new(&self.payload, field);
        (0..self.ts.len())
            .filter(move |&i| all_live || self.is_live(i))
            .map(move |i| src.f64_at(i))
    }

    /// The raw typed column at `field`, if this batch is schema-typed.
    #[inline]
    pub fn column(&self, field: usize) -> Option<&Column> {
        match &self.payload {
            Payload::Typed { columns, .. } => columns.get(field),
            Payload::Arena { .. } => None,
        }
    }

    /// The contiguous `f64` slice of a typed `F64` field (dropped rows
    /// *included* — pair with [`TupleBatch::drops`] for masked kernels).
    /// `None` for arena batches or non-`F64` fields.
    #[inline]
    pub fn f64_column(&self, field: usize) -> Option<&[f64]> {
        match self.column(field) {
            Some(Column::F64(v)) => Some(v),
            _ => None,
        }
    }

    /// The contiguous `i64` slice of a typed `I64` field (dropped rows
    /// included). `None` for arena batches or non-`I64` fields.
    #[inline]
    pub fn i64_column(&self, field: usize) -> Option<&[i64]> {
        match self.column(field) {
            Some(Column::I64(v)) => Some(v),
            _ => None,
        }
    }

    /// The word-packed column of a typed `Bool` field (dropped rows
    /// included). `None` for arena batches or non-`Bool` fields.
    #[inline]
    pub fn bool_column(&self, field: usize) -> Option<&BoolColumn> {
        match self.column(field) {
            Some(Column::Bool(v)) => Some(v),
            _ => None,
        }
    }

    /// The dictionary-encoded column of a typed `Tag` field (dropped rows
    /// included — pair with [`TupleBatch::drops`] for masked kernels).
    /// `None` for arena batches or non-`Tag` fields.
    #[inline]
    pub fn tag_column(&self, field: usize) -> Option<&TagColumn> {
        match self.column(field) {
            Some(Column::Tag(v)) => Some(v),
            _ => None,
        }
    }

    /// Sum of the live rows' SIC column.
    pub fn sic_total(&self) -> Sic {
        if self.drops.dropped() == 0 {
            self.sic.iter().copied().sum()
        } else {
            (0..self.sic.len())
                .filter(|&i| self.is_live(i))
                .map(|i| self.sic[i])
                .sum()
        }
    }

    /// Overwrites the SIC column of every live row (the STW assigner's
    /// per-slide re-stamping, §6 "SIC maintenance").
    pub fn set_uniform_sic(&mut self, sic: Sic) {
        if self.drops.dropped() == 0 {
            self.sic.fill(sic);
        } else {
            for i in 0..self.sic.len() {
                if self.is_live(i) {
                    self.sic[i] = sic;
                }
            }
        }
    }

    /// Latest live timestamp, or `Timestamp::ZERO` when empty. A plain
    /// walk of the timestamp column when nothing has been dropped.
    pub fn max_ts(&self) -> Timestamp {
        if self.drops.dropped() == 0 {
            self.ts.iter().copied().max().unwrap_or(Timestamp::ZERO)
        } else {
            (0..self.ts.len())
                .filter(|&i| self.is_live(i))
                .map(|i| self.ts[i])
                .max()
                .unwrap_or(Timestamp::ZERO)
        }
    }

    /// Appends `other`'s live rows. When both batches share a layout
    /// (equal width or equal schema) and `other` has no drops this is a
    /// handful of contiguous column copies — the batch path's replacement
    /// for per-tuple moves. An empty layout-less batch adopts `other`'s
    /// layout first, so typed batches stay typed across pane appends.
    pub fn append_batch(&mut self, other: &TupleBatch) {
        if other.ts.is_empty() {
            return;
        }
        if self.ts.is_empty() {
            self.adopt_layout_from(other);
        }
        if self.same_layout(other) && other.drops.dropped() == 0 {
            self.ts.extend_from_slice(&other.ts);
            self.sic.extend_from_slice(&other.sic);
            match (&mut self.payload, &other.payload) {
                (Payload::Arena { values: d, .. }, Payload::Arena { values: s, .. }) => {
                    d.extend_from_slice(s);
                }
                (Payload::Typed { columns: d, .. }, Payload::Typed { columns: s, .. }) => {
                    for (dc, sc) in d.iter_mut().zip(s) {
                        dc.extend_from(sc);
                    }
                }
                _ => unreachable!("same_layout checked"),
            }
        } else {
            for r in other.iter() {
                self.push_ref(r);
            }
        }
    }

    /// Appends the rows of `other` whose bit is set in `mask` (one bit
    /// per physical row, word-packed like the drop bitmap). Callers are
    /// expected to have cleared the bits of dropped rows already — the
    /// filter kernel's predicate mask does. Same-layout copies gather
    /// column by column, one layout dispatch per column rather than per
    /// row.
    pub fn append_gathered(&mut self, other: &TupleBatch, mask: &[u64]) {
        if other.ts.is_empty() {
            return;
        }
        if self.ts.is_empty() {
            self.adopt_layout_from(other);
        }
        let mut idx = Vec::new();
        for (w, &word) in mask.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                let i = w * 64 + m.trailing_zeros() as usize;
                if i >= other.rows() {
                    break;
                }
                idx.push(i);
                m &= m - 1;
            }
        }
        if idx.is_empty() {
            return;
        }
        self.ts.extend(idx.iter().map(|&i| other.ts[i]));
        self.sic.extend(idx.iter().map(|&i| other.sic[i]));
        if self.same_layout(other) {
            match (&mut self.payload, &other.payload) {
                (
                    Payload::Arena {
                        width, values: d, ..
                    },
                    Payload::Arena { values: s, .. },
                ) => {
                    let w = *width;
                    for &i in &idx {
                        d.extend_from_slice(&s[i * w..(i + 1) * w]);
                    }
                }
                (Payload::Typed { columns: d, .. }, Payload::Typed { columns: s, .. }) => {
                    for (dc, sc) in d.iter_mut().zip(s) {
                        for &i in &idx {
                            dc.push_from(sc, i);
                        }
                    }
                }
                _ => unreachable!("same_layout checked"),
            }
        } else {
            // Cross-layout gather (cold): coerce row by row.
            for &i in &idx {
                let tmp = other.row(i).values.to_vec();
                self.push_payload_values(&tmp);
            }
        }
    }

    /// The rows of this batch whose bit is set in `mask`, as a fresh
    /// compact batch of the same layout (see
    /// [`TupleBatch::append_gathered`]).
    pub fn gather(&self, mask: &[u64]) -> TupleBatch {
        let mut out = TupleBatch::new();
        out.append_gathered(self, mask);
        out
    }

    /// Splits off and returns the first `n` physical rows, leaving the
    /// rest in place. Only valid on batches without drops (count-window
    /// pending buffers never shed).
    pub fn split_front(&mut self, n: usize) -> TupleBatch {
        debug_assert_eq!(self.drops.dropped(), 0, "split_front on a shed batch");
        let n = n.min(self.ts.len());
        let tail_ts = self.ts.split_off(n);
        let tail_sic = self.sic.split_off(n);
        let payload = match &mut self.payload {
            Payload::Arena { width, values } => {
                let tail_values = values.split_off(n * *width);
                Payload::Arena {
                    width: *width,
                    values: std::mem::replace(values, tail_values),
                }
            }
            Payload::Typed { schema, columns } => Payload::Typed {
                schema: schema.clone(),
                columns: columns.iter_mut().map(|c| c.split_front(n)).collect(),
            },
        };
        TupleBatch {
            ts: std::mem::replace(&mut self.ts, tail_ts),
            sic: std::mem::replace(&mut self.sic, tail_sic),
            payload,
            drops: DropBitmap::new(),
        }
    }

    /// Materialises the live rows as owning tuples (edge/report use).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().map(|r| r.to_tuple()).collect()
    }

    /// Consumes the batch, materialising the live rows (edge/report use).
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.to_tuples()
    }

    /// Materialises the live rows' payloads (result reporting).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.iter().map(|r| r.values.to_vec()).collect()
    }

    /// Clears every row while keeping the payload layout, the column
    /// allocations and (for tag columns) the shared dictionary — the
    /// [`BatchPool`] recycle path.
    pub fn clear_rows(&mut self) {
        self.ts.clear();
        self.sic.clear();
        self.drops.clear();
        match &mut self.payload {
            Payload::Arena { values, .. } => values.clear(),
            Payload::Typed { columns, .. } => {
                for c in columns {
                    c.clear();
                }
            }
        }
    }
}

/// Counters describing a [`BatchPool`]'s traffic since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from a recycled slot (no fresh allocation).
    pub reused: u64,
    /// Acquisitions that fell through to a fresh construction.
    pub fresh: u64,
    /// Batches returned to the pool (capped drops not included).
    pub recycled: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    slots: Mutex<Vec<TupleBatch>>,
    reused: AtomicU64,
    fresh: AtomicU64,
    recycled: AtomicU64,
}

/// A shared recycling pool of [`TupleBatch`]es, keyed by schema.
///
/// The hot path allocates one batch per source tick and drops it again a
/// window later; at 10⁵+ sources that is hundreds of thousands of
/// allocator round-trips per second for identically-shaped buffers. The
/// pool keeps cleared batches (rows gone, column capacity and tag
/// dictionaries kept) and hands them back to any producer of the same
/// schema. Clones share the pool, so the source pump, shard ingest and
/// window eviction can recycle into one pool across threads.
///
/// ```
/// use themis_core::prelude::*;
///
/// let pool = BatchPool::new();
/// let schema = Schema::new([("v", FieldType::F64)]);
/// let mut b = pool.acquire(&schema, 64);
/// b.push_row(Timestamp(0), Sic(0.1), &[Value::F64(1.0)]);
/// pool.recycle(b);
/// let b = pool.acquire(&schema, 64);
/// assert_eq!(b.rows(), 0, "recycled batches come back empty");
/// assert_eq!(pool.stats().reused, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchPool {
    inner: Arc<PoolInner>,
}

/// Pool slots kept per pool; beyond this, recycled batches are dropped
/// (the cap bounds idle memory after a load spike).
const POOL_CAP: usize = 256;

impl BatchPool {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        BatchPool::default()
    }

    /// A batch for `schema` with room for `rows`: a recycled slot of the
    /// same schema when one is pooled, else a fresh
    /// [`TupleBatch::with_schema_capacity`].
    pub fn acquire(&self, schema: &Schema, rows: usize) -> TupleBatch {
        let mut slots = self.inner.slots.lock().unwrap();
        if let Some(pos) = slots
            .iter()
            .position(|b| b.schema().is_some_and(|s| s.same_as(schema) || s == schema))
        {
            let batch = slots.swap_remove(pos);
            drop(slots);
            self.inner.reused.fetch_add(1, Ordering::Relaxed);
            return batch;
        }
        drop(slots);
        self.inner.fresh.fetch_add(1, Ordering::Relaxed);
        TupleBatch::with_schema_capacity(schema.clone(), rows)
    }

    /// Returns a batch to the pool: rows are cleared, allocations kept.
    /// Arena batches and overflow beyond the pool cap are simply dropped
    /// (the pool is schema-keyed).
    pub fn recycle(&self, mut batch: TupleBatch) {
        if batch.schema().is_none() {
            return;
        }
        batch.clear_rows();
        let mut slots = self.inner.slots.lock().unwrap();
        if slots.len() < POOL_CAP {
            slots.push(batch);
            self.inner.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of idle batches currently pooled.
    pub fn idle(&self) -> usize {
        self.inner.slots.lock().unwrap().len()
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reused: self.inner.reused.load(Ordering::Relaxed),
            fresh: self.inner.fresh.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
        }
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleBatch::from_tuples(tuples)
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = TupleRef<'a>;
    type IntoIter = Box<dyn Iterator<Item = TupleRef<'a>> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<Tuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut b = TupleBatch::new();
        for t in iter {
            b.push_tuple(&t);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;

    fn t(ts: u64, sic: f64, v: f64) -> Tuple {
        Tuple::measurement(Timestamp(ts), Sic(sic), v)
    }

    fn keyed_schema() -> Schema {
        Schema::new([("key", FieldType::I64), ("value", FieldType::F64)])
    }

    fn typed_batch(rows: &[(i64, f64)]) -> TupleBatch {
        let mut b = TupleBatch::with_schema_capacity(keyed_schema(), rows.len());
        for (i, &(k, v)) in rows.iter().enumerate() {
            b.push_row(
                Timestamp(i as u64),
                Sic(0.1),
                &[Value::I64(k), Value::F64(v)],
            );
        }
        b
    }

    #[test]
    fn columns_round_trip_tuples() {
        let tuples = vec![t(1, 0.1, 10.0), t(2, 0.2, 20.0), t(3, 0.3, 30.0)];
        let b = TupleBatch::from_tuples(tuples.clone());
        assert_eq!(b.rows(), 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.width(), 1);
        assert_eq!(b.to_tuples(), tuples);
        assert!((b.sic_total().value() - 0.6).abs() < 1e-12);
        assert_eq!(b.max_ts(), Timestamp(3));
    }

    #[test]
    fn drop_marks_bits_without_moving_rows() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0), t(2, 0.2, 2.0), t(3, 0.3, 3.0)]);
        assert!(b.drop_row(1));
        assert!(!b.drop_row(1), "double drop is idempotent");
        assert_eq!(b.rows(), 3, "physical rows untouched");
        assert_eq!(b.len(), 2);
        assert!(!b.is_live(1));
        let live: Vec<f64> = b.iter().map(|r| r.f64(0)).collect();
        assert_eq!(live, vec![1.0, 3.0]);
        assert!((b.sic_total().value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn drop_all_empties_the_batch() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0), t(2, 0.1, 2.0)]);
        b.drop_all();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
        assert_eq!(b.sic_total(), Sic::ZERO);
    }

    #[test]
    fn uniform_sic_restamps_live_rows_only() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.0, 1.0), t(2, 0.0, 2.0), t(3, 0.0, 3.0)]);
        b.drop_row(0);
        b.set_uniform_sic(Sic(0.25));
        assert!((b.sic_total().value() - 0.5).abs() < 1e-12);
        assert_eq!(b.row(0).sic, Sic::ZERO, "dropped row untouched");
    }

    #[test]
    fn append_batch_is_contiguous_and_skips_drops() {
        let mut a = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0)]);
        let mut other = TupleBatch::from_tuples(vec![t(2, 0.2, 2.0), t(3, 0.3, 3.0)]);
        other.drop_row(0);
        a.append_batch(&other);
        assert_eq!(a.len(), 2);
        let vals: Vec<f64> = a.iter().map(|r| r.f64(0)).collect();
        assert_eq!(vals, vec![1.0, 3.0]);
        // Fast path: no drops, same width.
        let c = TupleBatch::from_tuples(vec![t(4, 0.4, 4.0)]);
        a.append_batch(&c);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn split_front_keeps_remainder() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0), t(2, 0.1, 2.0), t(3, 0.1, 3.0)]);
        let front = b.split_front(2);
        assert_eq!(front.len(), 2);
        assert_eq!(front.row(1).f64(0), 2.0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.row(0).f64(0), 3.0);
    }

    #[test]
    fn ragged_rows_pad_and_truncate() {
        let mut b = TupleBatch::new();
        b.push_row(Timestamp(0), Sic(0.1), &[Value::I64(1), Value::F64(2.0)]);
        b.push_row(Timestamp(1), Sic(0.1), &[Value::I64(9)]);
        b.push_row(
            Timestamp(2),
            Sic(0.1),
            &[Value::I64(3), Value::F64(4.0), Value::Bool(true)],
        );
        assert_eq!(b.width(), 2);
        assert_eq!(b.row(1).f64(1), 0.0, "short row padded with 0.0");
        assert_eq!(b.row(2).values.len(), 2, "long row truncated");
    }

    #[test]
    fn empty_batch_behaviour() {
        let b = TupleBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.rows(), 0);
        assert_eq!(b.sic_total(), Sic::ZERO);
        assert_eq!(b.max_ts(), Timestamp::ZERO);
        assert!(b.to_tuples().is_empty());
        assert_eq!(b.schema(), None);
    }

    #[test]
    fn bitmap_grows_lazily() {
        let mut bm = DropBitmap::new();
        assert!(!bm.is_dropped(1000));
        assert!(bm.drop_row(130));
        assert!(bm.is_dropped(130));
        assert!(!bm.is_dropped(129));
        assert_eq!(bm.dropped(), 1);
        bm.clear();
        assert!(!bm.is_dropped(130));
        assert_eq!(bm.dropped(), 0);
    }

    #[test]
    fn bitmap_presizing_matches_lazy_semantics() {
        let mut pre = DropBitmap::with_rows(130);
        assert_eq!(pre.words().len(), 3, "130 rows need 3 words");
        let lazy = DropBitmap::new();
        assert_eq!(pre, lazy, "trailing zero words do not distinguish");
        pre.drop_row(5);
        let mut lazy = DropBitmap::new();
        lazy.drop_row(5);
        assert_eq!(pre, lazy);
        assert_eq!(pre.word(0), 1 << 5);
        assert_eq!(pre.word(99), 0, "beyond the words reads all-live");
        pre.ensure_rows(1000);
        assert_eq!(pre.words().len(), 16);
        assert_eq!(pre, lazy, "pre-sizing never changes semantics");
    }

    #[test]
    fn column_f64_strides_live_rows() {
        let mut b = TupleBatch::new();
        b.push_row(Timestamp(0), Sic(0.1), &[Value::I64(1), Value::F64(10.0)]);
        b.push_row(Timestamp(1), Sic(0.1), &[Value::I64(2), Value::F64(20.0)]);
        b.push_row(Timestamp(2), Sic(0.1), &[Value::I64(3), Value::F64(30.0)]);
        assert_eq!(b.column_f64(1).sum::<f64>(), 60.0);
        b.drop_row(1);
        assert_eq!(b.column_f64(1).sum::<f64>(), 40.0);
        // An empty batch accepts any field index (no rows to read).
        assert_eq!(TupleBatch::new().column_f64(9).sum::<f64>(), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn column_f64_bounds_are_debug_asserted() {
        let b = TupleBatch::from_tuples(vec![t(0, 0.1, 1.0)]);
        // Release builds read 0.0 here (documented); debug builds panic.
        let _ = b.column_f64(9).sum::<f64>();
    }

    #[test]
    fn from_iterator_collects() {
        let b: TupleBatch = (0..4).map(|i| t(i, 0.1, i as f64)).collect();
        assert_eq!(b.len(), 4);
        let sum: f64 = (&b).into_iter().map(|r| r.f64(0)).sum();
        assert_eq!(sum, 6.0);
    }

    #[test]
    fn typed_batch_exposes_native_columns() {
        let b = typed_batch(&[(1, 10.0), (2, 20.0), (3, 30.0)]);
        assert_eq!(b.schema().unwrap().len(), 2);
        assert_eq!(b.width(), 2);
        assert_eq!(b.i64_column(0), Some(&[1i64, 2, 3][..]));
        assert_eq!(b.f64_column(1), Some(&[10.0, 20.0, 30.0][..]));
        assert_eq!(b.f64_column(0), None, "type mismatch");
        assert_eq!(b.i64_column(9), None, "out of range");
        assert_eq!(b.column_f64(1).sum::<f64>(), 60.0);
        // Row views read through the columns.
        assert_eq!(b.row(1).i64(0), 2);
        assert_eq!(b.row(1).f64(1), 20.0);
        assert_eq!(b.row(1).get(5), None);
    }

    #[test]
    fn typed_batch_coerces_pads_and_truncates() {
        let mut b = TupleBatch::with_schema(keyed_schema());
        // Coercion to the declared types.
        b.push_row(Timestamp(0), Sic(0.1), &[Value::F64(7.9), Value::I64(4)]);
        // Short row pads with the type's zero; long row truncates.
        b.push_row(Timestamp(1), Sic(0.1), &[Value::I64(1)]);
        b.push_row(
            Timestamp(2),
            Sic(0.1),
            &[Value::I64(2), Value::F64(5.0), Value::Bool(true)],
        );
        assert_eq!(b.i64_column(0), Some(&[7i64, 1, 2][..]));
        assert_eq!(b.f64_column(1), Some(&[4.0, 0.0, 5.0][..]));
        assert_eq!(b.row(2).values.len(), 2);
    }

    #[test]
    fn typed_round_trip_to_tuples() {
        let b = typed_batch(&[(1, 10.0), (2, 20.0)]);
        let tuples = b.to_tuples();
        assert_eq!(
            tuples[0].values,
            vec![Value::I64(1), Value::F64(10.0)],
            "typed columns materialise their declared Value types"
        );
        assert_eq!(tuples[1].ts, Timestamp(1));
    }

    #[test]
    fn typed_append_fast_path_and_split() {
        let mut a = typed_batch(&[(1, 1.0)]);
        let b = typed_batch(&[(2, 2.0), (3, 3.0)]);
        a.append_batch(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.f64_column(1), Some(&[1.0, 2.0, 3.0][..]));
        let front = a.split_front(2);
        assert_eq!(front.i64_column(0), Some(&[1i64, 2][..]));
        assert_eq!(a.i64_column(0), Some(&[3i64][..]));
        assert!(front.schema().is_some(), "split keeps the schema");
    }

    #[test]
    fn empty_batch_adopts_typed_layout() {
        let src = typed_batch(&[(1, 1.0), (2, 2.0)]);
        // append_batch adoption.
        let mut pane = TupleBatch::new();
        pane.append_batch(&src);
        assert!(pane.schema().is_some(), "pane adopted the schema");
        assert_eq!(pane.f64_column(1), Some(&[1.0, 2.0][..]));
        // push_ref adoption (the window slicing path).
        let mut pane = TupleBatch::new();
        for r in src.iter() {
            pane.push_ref(r);
        }
        assert_eq!(pane.schema(), src.schema());
        assert_eq!(pane.i64_column(0), Some(&[1i64, 2][..]));
    }

    #[test]
    fn cross_layout_append_coerces() {
        let mut typed = typed_batch(&[(1, 1.0)]);
        let arena = TupleBatch::from_tuples(vec![Tuple::new(
            Timestamp(9),
            Sic(0.2),
            vec![Value::I64(5), Value::F64(50.0)],
        )]);
        typed.append_batch(&arena);
        assert_eq!(typed.len(), 2);
        assert_eq!(typed.i64_column(0), Some(&[1i64, 5][..]));
        assert_eq!(typed.f64_column(1), Some(&[1.0, 50.0][..]));
    }

    #[test]
    fn gather_selects_masked_rows() {
        let b = typed_batch(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]);
        // Keep rows 0 and 2.
        let out = b.gather(&[0b0101]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.i64_column(0), Some(&[1i64, 3][..]));
        assert_eq!(out.row(1).ts, Timestamp(2));
        assert!(out.schema().is_some());
        // Arena gather too.
        let arena = TupleBatch::from_tuples(vec![t(0, 0.1, 1.0), t(1, 0.1, 2.0)]);
        let out = arena.gather(&[0b10]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0).f64(0), 2.0);
        // Mask bits past the end are ignored.
        assert_eq!(arena.gather(&[!0u64]).len(), 2);
    }

    #[test]
    fn push_ref_sic_overrides_mass() {
        let src = typed_batch(&[(1, 1.0)]);
        let mut out = TupleBatch::new();
        out.push_ref_sic(src.row(0), Sic(0.5));
        assert_eq!(out.row(0).sic, Sic(0.5));
        assert_eq!(out.row(0).f64(1), 1.0);
    }

    #[test]
    fn typed_drop_and_sic_paths() {
        let mut b = typed_batch(&[(1, 10.0), (2, 1000.0), (3, 30.0)]);
        b.drop_row(1);
        assert_eq!(b.column_f64(1).sum::<f64>(), 40.0);
        let live: Vec<i64> = b.iter().map(|r| r.i64(0)).collect();
        assert_eq!(live, vec![1, 3]);
        b.set_uniform_sic(Sic(0.2));
        assert!((b.sic_total().value() - 0.4).abs() < 1e-12);
    }

    fn tagged_schema() -> Schema {
        Schema::new([("tag", FieldType::Tag), ("value", FieldType::F64)])
    }

    fn tagged_batch(schema: &Schema, rows: &[(&str, f64)]) -> TupleBatch {
        let dict = schema.interner().unwrap().clone();
        let mut b = TupleBatch::with_schema_capacity(schema.clone(), rows.len());
        for (i, &(tag, v)) in rows.iter().enumerate() {
            let code = dict.intern(tag);
            b.push_row(
                Timestamp(i as u64),
                Sic(0.1),
                &[Value::Tag(code), Value::F64(v)],
            );
        }
        b
    }

    #[test]
    fn tag_columns_thread_through_batch_ops() {
        let schema = tagged_schema();
        let mut b = tagged_batch(&schema, &[("a", 1.0), ("b", 2.0), ("a", 3.0)]);
        let tags = b.tag_column(0).expect("tag column");
        assert_eq!(tags.len(), 3);
        assert_eq!(tags.resolve(0).as_deref(), Some("a"));
        assert_eq!(tags.resolve(1).as_deref(), Some("b"));
        assert_eq!(tags.codes()[0], tags.codes()[2], "same tag, same code");
        assert_eq!(b.tag_column(1), None, "type mismatch");
        // column_f64 reads codes numerically.
        assert!(b.column_f64(0).sum::<f64>() > 0.0);
        // Append keeps the dictionary (same schema fast path).
        let more = tagged_batch(&schema, &[("c", 4.0)]);
        b.append_batch(&more);
        assert_eq!(b.tag_column(0).unwrap().resolve(3).as_deref(), Some("c"));
        // Split keeps both halves resolvable.
        let front = b.split_front(2);
        assert_eq!(
            front.tag_column(0).unwrap().resolve(1).as_deref(),
            Some("b")
        );
        assert_eq!(b.tag_column(0).unwrap().resolve(0).as_deref(), Some("a"));
        // Gather preserves codes.
        let out = b.gather(&[0b10]);
        assert_eq!(out.tag_column(0).unwrap().resolve(0).as_deref(), Some("c"));
    }

    #[test]
    fn tag_panes_stay_dictionary_typed_through_push_ref() {
        let schema = tagged_schema();
        let src = tagged_batch(&schema, &[("x", 1.0), ("y", 2.0)]);
        let mut pane = TupleBatch::new();
        for r in src.iter() {
            pane.push_ref(r);
        }
        assert_eq!(pane.schema(), src.schema());
        let tags = pane.tag_column(0).expect("adopted pane keeps tag layout");
        assert!(
            Arc::ptr_eq(tags.dict(), schema.interner().unwrap()),
            "adopted pane shares the source dictionary"
        );
        assert_eq!(tags.resolve(1).as_deref(), Some("y"));
        // Round trip to tuples keeps the codes.
        let tuples = pane.to_tuples();
        assert_eq!(tuples[0].values[0], Value::Tag(src.row(0).i64(0) as u32));
    }

    #[test]
    fn short_tag_rows_pad_with_the_empty_string() {
        let schema = tagged_schema();
        let mut b = TupleBatch::with_schema(schema.clone());
        b.push_row(Timestamp(0), Sic(0.1), &[]);
        let tags = b.tag_column(0).unwrap();
        assert_eq!(tags.resolve(0).as_deref(), Some(""));
    }

    #[test]
    fn pool_recycles_by_schema() {
        let pool = BatchPool::new();
        let tagged = tagged_schema();
        let plain = keyed_schema();
        let before = batch_allocs();
        let mut a = pool.acquire(&tagged, 8);
        let code = tagged.interner().unwrap().intern("host");
        a.push_row(Timestamp(0), Sic(0.1), &[Value::Tag(code), Value::F64(1.0)]);
        a.drop_row(0);
        pool.recycle(a);
        assert_eq!(pool.idle(), 1);
        // Wrong schema misses the slot; right schema reuses it.
        let b = pool.acquire(&plain, 8);
        assert!(b.schema().unwrap().same_as(&plain));
        let c = pool.acquire(&tagged, 8);
        assert_eq!(c.rows(), 0, "recycled batch is empty");
        assert_eq!(c.drops().dropped(), 0, "drop bitmap cleared");
        assert!(
            Arc::ptr_eq(c.tag_column(0).unwrap().dict(), tagged.interner().unwrap()),
            "recycled batch keeps the dictionary"
        );
        let stats = pool.stats();
        assert_eq!((stats.reused, stats.fresh, stats.recycled), (1, 2, 1));
        assert_eq!(
            batch_allocs() - before,
            2,
            "only the fresh acquisitions constructed batches"
        );
        // Arena batches are not pooled.
        pool.recycle(TupleBatch::with_capacity(1, 4));
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_clones_share_slots() {
        let pool = BatchPool::new();
        let schema = keyed_schema();
        pool.recycle(TupleBatch::with_schema(schema.clone()));
        let other = pool.clone();
        assert_eq!(other.idle(), 1);
        let _ = other.acquire(&schema, 0);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn row_values_equality_is_semantic() {
        let typed = typed_batch(&[(1, 10.0)]);
        let arena_same = TupleBatch::from_tuples(vec![Tuple::new(
            Timestamp(0),
            Sic(0.1),
            vec![Value::I64(1), Value::F64(10.0)],
        )]);
        assert_eq!(typed.row(0).values, arena_same.row(0).values);
        let arena_diff = TupleBatch::from_tuples(vec![Tuple::new(
            Timestamp(0),
            Sic(0.1),
            vec![Value::F64(1.0), Value::F64(10.0)],
        )]);
        assert_ne!(typed.row(0).values, arena_diff.row(0).values);
    }
}
