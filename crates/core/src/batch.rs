//! Columnar tuple batches — the allocation-free hot-path representation.
//!
//! The seed moved `Vec<Tuple>` through every hot loop: each [`Tuple`]
//! owns a heap-allocated `Vec<Value>` payload, so building a source
//! batch costs one allocation per tuple, shedding spliced tuple vectors,
//! and every window pane re-allocated the tuples it grouped. THEMIS's
//! premise is that fair shedding only pays off while the *mechanism*
//! stays negligible, so the enforcement path must not pay a per-tuple
//! allocator round-trip.
//!
//! [`TupleBatch`] stores the same data column-wise:
//!
//! * a contiguous **timestamp column** (`τ` of the §3 data model),
//! * a contiguous **SIC column** shared by the shedder and the Eq.-3
//!   propagation (the per-tuple SIC tags of §4),
//! * one contiguous **value arena** holding the fixed-width payload rows
//!   back to back ([`Value`] is `Copy`, so appends are `memcpy`s),
//! * a [`DropBitmap`] marking shed rows, so dropping tuples flips bits
//!   instead of splicing vectors.
//!
//! Row views are provided by [`TupleRef`] (a borrowed `(τ, SIC, V)`
//! triple) and [`TupleBatch::iter`]; the edges of the system — sources
//! building batches, reports materialising result rows — can still
//! convert from and to `Vec<Tuple>` via [`TupleBatch::from_tuples`] and
//! [`TupleBatch::into_tuples`].

use crate::sic::Sic;
use crate::time::Timestamp;
use crate::tuple::Tuple;
use crate::value::Value;

/// A bitmap over batch rows; a set bit means the row has been dropped
/// (shed). Bits are allocated lazily: a batch that never sheds carries an
/// empty bitmap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DropBitmap {
    words: Vec<u64>,
    dropped: usize,
}

impl DropBitmap {
    /// An empty bitmap: every row is live.
    pub fn new() -> Self {
        DropBitmap::default()
    }

    /// Marks row `i` dropped; returns `true` when the bit was newly set.
    pub fn drop_row(&mut self, i: usize) -> bool {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let newly = self.words[word] & bit == 0;
        if newly {
            self.words[word] |= bit;
            self.dropped += 1;
        }
        newly
    }

    /// True when row `i` has been dropped.
    #[inline]
    pub fn is_dropped(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1u64 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// Number of dropped rows.
    #[inline]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Resets the bitmap: every row is live again.
    pub fn clear(&mut self) {
        self.words.clear();
        self.dropped = 0;
    }
}

/// A borrowed row view: the `(τ, SIC, V)` triple of one tuple without
/// materialising an owning [`Tuple`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleRef<'a> {
    /// Logical timestamp of the tuple.
    pub ts: Timestamp,
    /// SIC mass carried by the tuple.
    pub sic: Sic,
    /// Payload fields (a slice into the batch's value arena).
    pub values: &'a [Value],
}

impl TupleRef<'_> {
    /// Numeric view of field `i` (panics if out of range).
    #[inline]
    pub fn f64(&self, i: usize) -> f64 {
        self.values[i].as_f64()
    }

    /// Integer view of field `i` (panics if out of range).
    #[inline]
    pub fn i64(&self, i: usize) -> i64 {
        self.values[i].as_i64()
    }

    /// Field `i`, if present.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Value> {
        self.values.get(i).copied()
    }

    /// Materialises an owning [`Tuple`] (edge/report use only — this is
    /// the per-tuple allocation the batch representation avoids).
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(self.ts, self.sic, self.values.to_vec())
    }
}

/// A columnar batch of tuples: contiguous timestamp/SIC columns, one
/// fixed-width value arena, and a [`DropBitmap`] for shed rows.
///
/// The first row pushed into an empty batch fixes the payload width;
/// later rows are padded with `Value::F64(0.0)` or truncated to fit (the
/// same semantics as the row path's `values.get(i).unwrap_or(0.0)`
/// reads). All pipelines in this workspace move uniform-schema batches,
/// so the pad/truncate path is a safety net, not a steady state.
///
/// ```
/// use themis_core::prelude::*;
///
/// let mut batch = TupleBatch::with_capacity(1, 3);
/// for (ms, v) in [(10u64, 1.0), (20, 2.0), (30, 3.0)] {
///     batch.push_row(Timestamp::from_millis(ms), Sic(0.1), &[Value::F64(v)]);
/// }
/// // Shedding marks a bit — no rows move.
/// batch.drop_row(1);
/// assert_eq!(batch.rows(), 3);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.column_f64(0).sum::<f64>(), 4.0);
/// assert!((batch.sic_total().value() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleBatch {
    width: usize,
    ts: Vec<Timestamp>,
    sic: Vec<Sic>,
    values: Vec<Value>,
    drops: DropBitmap,
}

impl TupleBatch {
    /// An empty batch; the first pushed row decides the payload width.
    pub fn new() -> Self {
        TupleBatch::default()
    }

    /// An empty batch with a fixed payload `width` and room for `rows`.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        TupleBatch {
            width,
            ts: Vec::with_capacity(rows),
            sic: Vec::with_capacity(rows),
            values: Vec::with_capacity(rows * width),
            drops: DropBitmap::new(),
        }
    }

    /// Builds a batch from owning tuples (the source/report edge).
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        let width = tuples.first().map(|t| t.values.len()).unwrap_or(0);
        let mut b = TupleBatch::with_capacity(width, tuples.len());
        for t in &tuples {
            b.push_row(t.ts, t.sic, &t.values);
        }
        b
    }

    /// Payload fields per row (0 until the first row is pushed).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Physical rows, dropped ones included.
    #[inline]
    pub fn rows(&self) -> usize {
        self.ts.len()
    }

    /// Live (not dropped) rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.ts.len() - self.drops.dropped()
    }

    /// True when no live rows remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one row, adopting its width if the batch is empty.
    #[inline]
    pub fn push_row(&mut self, ts: Timestamp, sic: Sic, values: &[Value]) {
        self.ts.push(ts);
        self.sic.push(sic);
        if values.len() == self.width {
            // Fast path: uniform schema, one contiguous copy.
            self.values.extend_from_slice(values);
        } else {
            self.push_values_slow(values);
        }
    }

    /// Width adoption / pad / truncate for non-uniform rows (cold).
    fn push_values_slow(&mut self, values: &[Value]) {
        if self.ts.len() == 1 && self.width == 0 {
            self.width = values.len();
            self.values.extend_from_slice(values);
            return;
        }
        let take = values.len().min(self.width);
        self.values.extend_from_slice(&values[..take]);
        for _ in take..self.width {
            self.values.push(Value::F64(0.0));
        }
    }

    /// Appends an owning tuple's row.
    #[inline]
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.push_row(t.ts, t.sic, &t.values);
    }

    /// Borrowed view of physical row `i` (dropped rows included; check
    /// [`TupleBatch::is_live`] when iterating manually).
    #[inline]
    pub fn row(&self, i: usize) -> TupleRef<'_> {
        TupleRef {
            ts: self.ts[i],
            sic: self.sic[i],
            values: &self.values[i * self.width..(i + 1) * self.width],
        }
    }

    /// True when physical row `i` has not been dropped.
    #[inline]
    pub fn is_live(&self, i: usize) -> bool {
        !self.drops.is_dropped(i)
    }

    /// Marks physical row `i` dropped (shed); returns `true` when the row
    /// was live before. This is the shedder's O(1) alternative to
    /// splicing a `Vec<Tuple>`.
    #[inline]
    pub fn drop_row(&mut self, i: usize) -> bool {
        debug_assert!(i < self.ts.len());
        self.drops.drop_row(i)
    }

    /// Marks every row dropped (a whole-batch shed).
    pub fn drop_all(&mut self) {
        for i in 0..self.ts.len() {
            self.drops.drop_row(i);
        }
    }

    /// The drop bitmap.
    #[inline]
    pub fn drops(&self) -> &DropBitmap {
        &self.drops
    }

    /// Iterates the live rows in physical order. Batches without drops
    /// (the common case) skip the bitmap test entirely.
    pub fn iter(&self) -> impl Iterator<Item = TupleRef<'_>> + Clone {
        let all_live = self.drops.dropped() == 0;
        (0..self.ts.len())
            .filter(move |&i| all_live || self.is_live(i))
            .map(move |i| self.row(i))
    }

    /// Streams the numeric view of one payload column over the live rows
    /// (missing fields read as 0, matching the row path's
    /// `values.get(i)` semantics). This is the aggregate read path: a
    /// strided walk over the contiguous value arena.
    pub fn column_f64(&self, field: usize) -> impl Iterator<Item = f64> + '_ {
        let all_live = self.drops.dropped() == 0;
        let width = self.width;
        (0..self.ts.len())
            .filter(move |&i| all_live || self.is_live(i))
            .map(move |i| {
                if field < width {
                    self.values[i * width + field].as_f64()
                } else {
                    0.0
                }
            })
    }

    /// Sum of the live rows' SIC column.
    pub fn sic_total(&self) -> Sic {
        if self.drops.dropped() == 0 {
            self.sic.iter().copied().sum()
        } else {
            (0..self.sic.len())
                .filter(|&i| self.is_live(i))
                .map(|i| self.sic[i])
                .sum()
        }
    }

    /// Overwrites the SIC column of every live row (the STW assigner's
    /// per-slide re-stamping, §6 "SIC maintenance").
    pub fn set_uniform_sic(&mut self, sic: Sic) {
        if self.drops.dropped() == 0 {
            self.sic.fill(sic);
        } else {
            for i in 0..self.sic.len() {
                if self.is_live(i) {
                    self.sic[i] = sic;
                }
            }
        }
    }

    /// Latest live timestamp, or `Timestamp::ZERO` when empty. A plain
    /// walk of the timestamp column when nothing has been dropped.
    pub fn max_ts(&self) -> Timestamp {
        if self.drops.dropped() == 0 {
            self.ts.iter().copied().max().unwrap_or(Timestamp::ZERO)
        } else {
            (0..self.ts.len())
                .filter(|&i| self.is_live(i))
                .map(|i| self.ts[i])
                .max()
                .unwrap_or(Timestamp::ZERO)
        }
    }

    /// Appends `other`'s live rows. When both batches share a width and
    /// `other` has no drops this is three contiguous column copies — the
    /// batch path's replacement for per-tuple moves.
    pub fn append_batch(&mut self, other: &TupleBatch) {
        if other.ts.is_empty() {
            return;
        }
        if self.ts.is_empty() && self.width == 0 {
            self.width = other.width;
        }
        if self.width == other.width && other.drops.dropped() == 0 {
            self.ts.extend_from_slice(&other.ts);
            self.sic.extend_from_slice(&other.sic);
            self.values.extend_from_slice(&other.values);
        } else {
            for r in other.iter() {
                self.push_row(r.ts, r.sic, r.values);
            }
        }
    }

    /// Splits off and returns the first `n` physical rows, leaving the
    /// rest in place. Only valid on batches without drops (count-window
    /// pending buffers never shed).
    pub fn split_front(&mut self, n: usize) -> TupleBatch {
        debug_assert_eq!(self.drops.dropped(), 0, "split_front on a shed batch");
        let n = n.min(self.ts.len());
        let tail_ts = self.ts.split_off(n);
        let tail_sic = self.sic.split_off(n);
        let tail_values = self.values.split_off(n * self.width);
        TupleBatch {
            width: self.width,
            ts: std::mem::replace(&mut self.ts, tail_ts),
            sic: std::mem::replace(&mut self.sic, tail_sic),
            values: std::mem::replace(&mut self.values, tail_values),
            drops: DropBitmap::new(),
        }
    }

    /// Materialises the live rows as owning tuples (edge/report use).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().map(|r| r.to_tuple()).collect()
    }

    /// Consumes the batch, materialising the live rows (edge/report use).
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.to_tuples()
    }

    /// Materialises the live rows' payloads (result reporting).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.iter().map(|r| r.values.to_vec()).collect()
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleBatch::from_tuples(tuples)
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = TupleRef<'a>;
    type IntoIter = Box<dyn Iterator<Item = TupleRef<'a>> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<Tuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut b = TupleBatch::new();
        for t in iter {
            b.push_tuple(&t);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ts: u64, sic: f64, v: f64) -> Tuple {
        Tuple::measurement(Timestamp(ts), Sic(sic), v)
    }

    #[test]
    fn columns_round_trip_tuples() {
        let tuples = vec![t(1, 0.1, 10.0), t(2, 0.2, 20.0), t(3, 0.3, 30.0)];
        let b = TupleBatch::from_tuples(tuples.clone());
        assert_eq!(b.rows(), 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.width(), 1);
        assert_eq!(b.to_tuples(), tuples);
        assert!((b.sic_total().value() - 0.6).abs() < 1e-12);
        assert_eq!(b.max_ts(), Timestamp(3));
    }

    #[test]
    fn drop_marks_bits_without_moving_rows() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0), t(2, 0.2, 2.0), t(3, 0.3, 3.0)]);
        assert!(b.drop_row(1));
        assert!(!b.drop_row(1), "double drop is idempotent");
        assert_eq!(b.rows(), 3, "physical rows untouched");
        assert_eq!(b.len(), 2);
        assert!(!b.is_live(1));
        let live: Vec<f64> = b.iter().map(|r| r.f64(0)).collect();
        assert_eq!(live, vec![1.0, 3.0]);
        assert!((b.sic_total().value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn drop_all_empties_the_batch() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0), t(2, 0.1, 2.0)]);
        b.drop_all();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
        assert_eq!(b.sic_total(), Sic::ZERO);
    }

    #[test]
    fn uniform_sic_restamps_live_rows_only() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.0, 1.0), t(2, 0.0, 2.0), t(3, 0.0, 3.0)]);
        b.drop_row(0);
        b.set_uniform_sic(Sic(0.25));
        assert!((b.sic_total().value() - 0.5).abs() < 1e-12);
        assert_eq!(b.row(0).sic, Sic::ZERO, "dropped row untouched");
    }

    #[test]
    fn append_batch_is_contiguous_and_skips_drops() {
        let mut a = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0)]);
        let mut other = TupleBatch::from_tuples(vec![t(2, 0.2, 2.0), t(3, 0.3, 3.0)]);
        other.drop_row(0);
        a.append_batch(&other);
        assert_eq!(a.len(), 2);
        let vals: Vec<f64> = a.iter().map(|r| r.f64(0)).collect();
        assert_eq!(vals, vec![1.0, 3.0]);
        // Fast path: no drops, same width.
        let c = TupleBatch::from_tuples(vec![t(4, 0.4, 4.0)]);
        a.append_batch(&c);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn split_front_keeps_remainder() {
        let mut b = TupleBatch::from_tuples(vec![t(1, 0.1, 1.0), t(2, 0.1, 2.0), t(3, 0.1, 3.0)]);
        let front = b.split_front(2);
        assert_eq!(front.len(), 2);
        assert_eq!(front.row(1).f64(0), 2.0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.row(0).f64(0), 3.0);
    }

    #[test]
    fn ragged_rows_pad_and_truncate() {
        let mut b = TupleBatch::new();
        b.push_row(Timestamp(0), Sic(0.1), &[Value::I64(1), Value::F64(2.0)]);
        b.push_row(Timestamp(1), Sic(0.1), &[Value::I64(9)]);
        b.push_row(
            Timestamp(2),
            Sic(0.1),
            &[Value::I64(3), Value::F64(4.0), Value::Bool(true)],
        );
        assert_eq!(b.width(), 2);
        assert_eq!(b.row(1).f64(1), 0.0, "short row padded with 0.0");
        assert_eq!(b.row(2).values.len(), 2, "long row truncated");
    }

    #[test]
    fn empty_batch_behaviour() {
        let b = TupleBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.rows(), 0);
        assert_eq!(b.sic_total(), Sic::ZERO);
        assert_eq!(b.max_ts(), Timestamp::ZERO);
        assert!(b.to_tuples().is_empty());
    }

    #[test]
    fn bitmap_grows_lazily() {
        let mut bm = DropBitmap::new();
        assert!(!bm.is_dropped(1000));
        assert!(bm.drop_row(130));
        assert!(bm.is_dropped(130));
        assert!(!bm.is_dropped(129));
        assert_eq!(bm.dropped(), 1);
        bm.clear();
        assert!(!bm.is_dropped(130));
        assert_eq!(bm.dropped(), 0);
    }

    #[test]
    fn column_f64_strides_live_rows() {
        let mut b = TupleBatch::new();
        b.push_row(Timestamp(0), Sic(0.1), &[Value::I64(1), Value::F64(10.0)]);
        b.push_row(Timestamp(1), Sic(0.1), &[Value::I64(2), Value::F64(20.0)]);
        b.push_row(Timestamp(2), Sic(0.1), &[Value::I64(3), Value::F64(30.0)]);
        assert_eq!(b.column_f64(1).sum::<f64>(), 60.0);
        b.drop_row(1);
        assert_eq!(b.column_f64(1).sum::<f64>(), 40.0);
        // Out-of-range fields read as 0 (row-path `get` semantics).
        assert_eq!(b.column_f64(9).sum::<f64>(), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let b: TupleBatch = (0..4).map(|i| t(i, 0.1, i as f64)).collect();
        assert_eq!(b.len(), 4);
        let sum: f64 = (&b).into_iter().map(|r| r.f64(0)).sum();
        assert_eq!(sum, 6.0);
    }
}
