//! Tuple payload values.
//!
//! THEMIS treats queries as black boxes (§4), so the core only needs a small
//! dynamically-typed value model rich enough for the evaluation workloads of
//! Table 1: numeric measurements, identifiers for joins/group-by and booleans
//! for filters.

use std::cmp::Ordering;
use std::fmt;

/// One field of a tuple payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit signed integer (identifiers, counts).
    I64(i64),
    /// 64-bit float (sensor measurements, aggregates).
    F64(f64),
    /// Boolean (filter outcomes).
    Bool(bool),
    /// Dictionary code of a tag string. The code is meaningful relative
    /// to the interner of the schema (or column) the value came from —
    /// `Value` stays `Copy`, so the string itself lives only in the
    /// [`TagInterner`](crate::schema::TagInterner).
    Tag(u32),
}

impl Value {
    /// Numeric view of the value; booleans map to 0/1, tags to their
    /// dictionary code.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I64(v) => v as f64,
            Value::F64(v) => v,
            Value::Bool(b) => b as i64 as f64,
            Value::Tag(c) => c as f64,
        }
    }

    /// Integer view of the value; floats are truncated, tags read as
    /// their dictionary code.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            Value::F64(v) => v as i64,
            Value::Bool(b) => b as i64,
            Value::Tag(c) => c as i64,
        }
    }

    /// Boolean view; numbers are true when non-zero, tags when their
    /// code is non-zero (code 0 is the interner's empty-string pad).
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::I64(v) => v != 0,
            Value::F64(v) => v != 0.0,
            Value::Tag(c) => c != 0,
        }
    }

    /// Total order over values via their numeric view, treating NaN as the
    /// smallest value so sorting never panics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        self.as_f64().total_cmp(&other.as_f64())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Tag(c) => write!(f, "tag#{c}"),
        }
    }
}

/// A tuple payload: an ordered list of values following the tuple's schema
/// (`V` in the paper's data model, §3).
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::I64(3).as_f64(), 3.0);
        assert_eq!(Value::F64(2.5).as_i64(), 2);
        assert_eq!(Value::Bool(true).as_f64(), 1.0);
        assert!(Value::I64(1).as_bool());
        assert!(!Value::F64(0.0).as_bool());
    }

    #[test]
    fn ordering_handles_nan() {
        let mut vals = [
            Value::F64(f64::NAN),
            Value::F64(1.0),
            Value::I64(-2),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        // NaN sorts first under total_cmp (negative NaN bit pattern aside,
        // the positive NaN produced here sorts last); just assert no panic
        // and that the finite values are ordered.
        let finite: Vec<f64> = vals
            .iter()
            .map(|v| v.as_f64())
            .filter(|f| f.is_finite())
            .collect();
        assert_eq!(finite, vec![-2.0, 1.0, 1.0]);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(4i64), Value::I64(4));
        assert_eq!(Value::from(0.5f64), Value::F64(0.5));
        assert_eq!(Value::from(false), Value::Bool(false));
    }

    #[test]
    fn display() {
        assert_eq!(Value::I64(7).to_string(), "7");
        assert_eq!(Value::F64(0.25).to_string(), "0.2500");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Tag(3).to_string(), "tag#3");
    }

    #[test]
    fn tag_codes_read_numerically() {
        assert_eq!(Value::Tag(5).as_f64(), 5.0);
        assert_eq!(Value::Tag(5).as_i64(), 5);
        assert!(Value::Tag(5).as_bool());
        assert!(!Value::Tag(0).as_bool(), "code 0 is the empty-string pad");
    }
}
